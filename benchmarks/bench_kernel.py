#!/usr/bin/env python
"""Kernel benchmark: golden parity + instructions/second on the fig10 matrix.

Runs every (config, workload) pair of the differential matrix
(``repro.sim.parity.differential_matrix``) through both simulation kernels —
the per-instruction *reference* loop and the optimized *fast* span loop —
asserting byte-identical ``RunResult`` JSON, and records both kernels'
instructions/second into ``BENCH_kernel.json``.

Two baselines appear in that file:

* ``seed_ips`` — the **pre-optimization tree** (a pristine checkout of the
  commit before the hot-path PR, pointed at by ``--seed-path`` and timed in
  a subprocess), which is the baseline the ≥1.5x speedup target is measured
  against;
* ``reference_ips`` — the in-tree reference kernel, which shares the
  optimized cache/DDG/TACT components and differs from ``fast`` only in
  loop structure.  It is the *parity twin*: byte-identical results are
  asserted against it, so it isolates how much the span loop itself buys on
  top of the shared component work.

Exit status is nonzero if any pair diverges (CI runs this as the perf smoke
job), so a parity break fails the build even though this is "just" a
benchmark.

Usage::

    python benchmarks/bench_kernel.py                    # parity + i/s
    git worktree add .bench-seed <pre-PR-commit>
    python benchmarks/bench_kernel.py --seed-path .bench-seed   # + seed baseline

Not a pytest file on purpose: deterministic rounds per pair, wall-clock
measured directly.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.parity import compare_kernels, differential_matrix  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_kernel.json"
#: Matches ``repro.experiments.common.QUICK_TRACE_LENGTH`` — the trace length
#: the fig10 smoke figures run at.
DEFAULT_N_INSTRS = 24_000

#: Timing driver executed inside the seed (pre-PR) tree: same methodology as
#: ``compare_kernels`` — trace prebuilt outside the timed region, fresh
#: simulator per repeat, minimum wall-clock kept.  Runs as a line-oriented
#: coprocess so each pair's seed timing happens *back-to-back* with the
#: in-tree timings (machine-speed drift over a long matrix would otherwise
#: skew the ratios).
_SEED_DRIVER = """
import gc, json, sys, time
from repro.sim.config import fig10_configs, skylake_server
from repro.sim.simulator import Simulator
from repro.workloads.suites import build_trace, get_spec

configs = {c.name: c for c in [skylake_server(), *fig10_configs()]}
for line in sys.stdin:
    req = json.loads(line)
    config = configs[req["config"]]
    length = req["n_instrs"] * get_spec(req["workload"]).length_multiplier
    trace = build_trace(req["workload"], 2 * length)
    best = float("inf")
    for _ in range(max(1, req["repeats"])):
        sim = Simulator(config)
        gc.collect()
        t0 = time.perf_counter()
        sim.run(trace)
        best = min(best, time.perf_counter() - t0)
    print(json.dumps({"seed_s": best}), flush=True)
"""


class _SeedTimer:
    """Coprocess handle timing pairs in the pre-PR tree on demand."""

    def __init__(self, seed_path: Path, n_instrs: int, repeats: int) -> None:
        self.n_instrs = n_instrs
        self.repeats = repeats
        env = dict(os.environ, PYTHONPATH=str(seed_path / "src"))
        self._proc = subprocess.Popen(
            [sys.executable, "-c", _SEED_DRIVER],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True, env=env,
        )

    def time_pair(self, config_name: str, workload: str) -> float:
        req = {
            "config": config_name, "workload": workload,
            "n_instrs": self.n_instrs, "repeats": self.repeats,
        }
        assert self._proc.stdin is not None and self._proc.stdout is not None
        self._proc.stdin.write(json.dumps(req) + "\n")
        self._proc.stdin.flush()
        line = self._proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"seed driver died (exit {self._proc.poll()})"
            )
        return json.loads(line)["seed_s"]

    def close(self) -> None:
        if self._proc.stdin is not None:
            self._proc.stdin.close()
        self._proc.wait(timeout=30)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n-instrs", type=int, default=DEFAULT_N_INSTRS,
        help="trace length per run (default: the fig10 smoke length)",
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None,
        help="restrict to these suite workloads (default: all quick)",
    )
    parser.add_argument(
        "--configs", nargs="*", default=None,
        help="restrict to these config names (default: all fig10 configs)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed runs per kernel per pair, keeping the minimum (default 2)",
    )
    parser.add_argument(
        "--seed-path", type=Path, default=None,
        help="checkout of the pre-optimization commit; when given, its "
        "instructions/second are measured too and recorded as seed_ips",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT.name})",
    )
    args = parser.parse_args(argv)

    matrix = differential_matrix(quick=True)
    if args.workloads:
        matrix = [(c, w) for c, w in matrix if w in args.workloads]
    if args.configs:
        matrix = [(c, w) for c, w in matrix if c.name in args.configs]
    if not matrix:
        parser.error("matrix is empty after filtering")

    seed_timer: _SeedTimer | None = None
    if args.seed_path is not None:
        if not (args.seed_path / "src" / "repro").is_dir():
            parser.error(f"{args.seed_path} is not a repro checkout")
        seed_timer = _SeedTimer(args.seed_path, args.n_instrs, args.repeats)

    pairs = []
    broken = 0
    any_seed = False
    for config, workload in matrix:
        # Time the seed tree immediately before the in-tree kernels so all
        # three timings for a pair share the same machine conditions.
        seed_s = None
        if seed_timer is not None:
            seed_s = seed_timer.time_pair(config.name, workload)
        cmp = compare_kernels(
            config, workload, args.n_instrs, repeats=args.repeats
        )
        row = {
            "config": cmp.config_name,
            "workload": cmp.workload,
            "n_instrs": cmp.n_instrs,
            "instructions_stepped": cmp.instructions_stepped,
            "reference_s": round(cmp.reference_s, 4),
            "fast_s": round(cmp.fast_s, 4),
            "reference_ips": round(cmp.reference_ips, 1),
            "fast_ips": round(cmp.fast_ips, 1),
            "speedup_vs_reference": round(cmp.speedup, 3),
            "parity": cmp.match,
        }
        seed_col = ""
        if seed_s is not None:
            any_seed = True
            row["seed_s"] = round(seed_s, 4)
            row["seed_ips"] = round(cmp.instructions_stepped / seed_s, 1)
            row["speedup_vs_seed"] = round(seed_s / cmp.fast_s, 3)
            seed_col = f"   {row['speedup_vs_seed']:5.2f}x vs seed"
        pairs.append(row)
        status = "MATCH" if cmp.match else "DIVERGED"
        if not cmp.match:
            broken += 1
        print(
            f"{cmp.config_name:>18} {cmp.workload:<15} {status:<8} "
            f"ref {cmp.reference_ips:>9.0f} i/s   fast {cmp.fast_ips:>9.0f} i/s"
            f"   {cmp.speedup:5.2f}x{seed_col}",
            flush=True,
        )
    if seed_timer is not None:
        seed_timer.close()

    def geomean(values) -> float:
        values = list(values)
        return math.exp(sum(math.log(v) for v in values) / len(values))

    total_ref_s = sum(p["reference_s"] for p in pairs)
    total_fast_s = sum(p["fast_s"] for p in pairs)
    total_stepped = sum(p["instructions_stepped"] for p in pairs)
    aggregate = {
        "pairs": len(pairs),
        "parity": broken == 0,
        "reference_ips": round(total_stepped / total_ref_s, 1),
        "fast_ips": round(total_stepped / total_fast_s, 1),
        "total_speedup_vs_reference": round(total_ref_s / total_fast_s, 3),
        "geomean_speedup_vs_reference": round(
            geomean(p["speedup_vs_reference"] for p in pairs), 3
        ),
    }
    if any_seed:
        total_seed_s = sum(p["seed_s"] for p in pairs)
        aggregate["seed_ips"] = round(total_stepped / total_seed_s, 1)
        aggregate["total_speedup_vs_seed"] = round(total_seed_s / total_fast_s, 3)
        aggregate["geomean_speedup_vs_seed"] = round(
            geomean(p["speedup_vs_seed"] for p in pairs), 3
        )
    report = {
        "benchmark": "kernel",
        "n_instrs": args.n_instrs,
        "aggregate": aggregate,
        "pairs": pairs,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    line = (
        f"\naggregate over {len(pairs)} pairs: "
        f"ref {aggregate['reference_ips']:.0f} i/s -> "
        f"fast {aggregate['fast_ips']:.0f} i/s "
        f"({aggregate['geomean_speedup_vs_reference']:.2f}x geomean vs "
        f"reference kernel"
    )
    if any_seed:
        line += (
            f"; seed {aggregate['seed_ips']:.0f} i/s, "
            f"{aggregate['geomean_speedup_vs_seed']:.2f}x geomean vs pre-PR seed"
        )
    print(line + f"); parity {'OK' if aggregate['parity'] else 'BROKEN'}")
    print(f"wrote {args.output}")
    if broken:
        print(f"ERROR: {broken} pair(s) diverged from the reference kernel",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
