"""Benchmarks regenerating the main results: Figures 10-13 and Table I."""

from repro.experiments import (
    fig10_catch_exclusive,
    fig11_timeliness,
    fig12_per_workload,
    fig13_tact_components,
    table1_area,
)


def test_fig10_catch_exclusive(once):
    """Figure 10: CATCH turns the noL2 loss around; CATCH on the baseline
    gains (paper +8.4%)."""
    data = once(lambda: fig10_catch_exclusive.run(quick=True))
    s = {k: v["GeoMean"] for k, v in data["summary"].items()}
    print("\nfig10:", {k: f"{v:+.1%}" for k, v in s.items()})
    assert s["noL2_6.5MB"] < -0.02
    assert s["CATCH"] > 0.02
    assert s["noL2_6.5MB+CATCH"] > s["noL2_6.5MB"] + 0.05
    assert s["noL2_9.5MB+CATCH"] >= s["noL2_6.5MB+CATCH"] - 1e-6


def test_fig11_timeliness(once):
    """Figure 11: TACT prefetches come from the LLC and hide most latency."""
    data = once(lambda: fig11_timeliness.run(quick=True))
    o = data["overall"]
    print(f"\nfig11: from LLC {o['llc']:.1%} (paper ~88%), "
          f">80% saved {o['over_80']:.1%} (paper >85%)")
    # Quick-run thresholds; the full suite lands much closer to the paper.
    # (The >80% bucket is diluted by feeder prefetches on pointer chases,
    # which are issued but cannot be early — the paper's namd/gromacs case.)
    assert o["llc"] > 0.25
    assert o["over_80"] > 0.3


def test_fig12_per_workload(once):
    """Figure 12 callouts: hmmer recovered by CATCH, mcf lifted, povray and
    namd/gromacs left behind."""
    data = once(lambda: fig12_per_workload.run(quick=True))
    callouts = data["callouts"]
    print("\nfig12 callouts:", {
        wl: {k: round(v, 2) for k, v in row.items()} for wl, row in callouts.items()
    })
    hmmer = callouts["hmmer_like"]
    assert hmmer["noL2_6.5MB"] < 0.7            # big loss without the L2
    assert hmmer["noL2_9.5+CATCH"] > 0.9        # CATCH recovers it
    assert callouts["mcf_like"]["CATCH"] > 1.05  # feeder lift
    assert abs(callouts["namd_like"]["CATCH"] - 1.0) < 0.05  # unprefetchable


def test_fig13_tact_components(once):
    """Figure 13: every TACT component contributes on the noL2 hierarchy."""
    data = once(lambda: fig13_tact_components.run(quick=True))
    inc = data["increments"]
    print("\nfig13 increments:", {k: f"{v:+.1%}" for k, v in inc.items()})
    total = sum(inc.values())
    assert total > 0.05  # paper: ~13% over noL2
    assert inc["Code"] > 0  # server code prefetching contributes
    assert inc["+Deep"] > 0  # deep-self is a major component


def test_table1_area(once):
    data = once(table1_area.run)
    assert 2.5 <= data["detector_total_kb"] <= 4.0
    assert data["tact_total_kb"] <= 1.3
