"""Benchmarks for the extension studies (beyond the paper's own figures).

* Detector comparison: the DDG detector vs the related-work heuristics
  (Section VII), measuring delivered performance and over-flagging.
* Future-work critical-table management: the paper notes that "better
  critical load table management can help [povray] significantly"; the
  frequency-aware (LFU + probabilistic-insertion) table implements that.
"""

from dataclasses import replace

from repro.experiments import detector_comparison
from repro.sim.config import no_l2, skylake_server, with_catch
from repro.sim.simulator import Simulator


def test_detector_comparison(once):
    data = once(lambda: detector_comparison.run(quick=True))
    rows = data["by_detector"]
    print("\ndetectors:", {
        k: f"{v['speedup']:+.1%} ({v['avg_flagged_pcs']:.0f} PCs)"
        for k, v in rows.items()
    })
    # The DDG detector is the most *selective* mechanism: it flags fewer PCs
    # than the liberal heuristics (the paper's over-flagging claim) while
    # still delivering a solid speedup.
    ddg = rows["ddg"]
    assert ddg["speedup"] > 0.02
    liberal = max(
        rows["oldest_in_rob"]["avg_flagged_pcs"],
        rows["consumer_count"]["avg_flagged_pcs"],
    )
    assert ddg["avg_flagged_pcs"] < liberal
    # Every detector must at least not hurt: TACT only prefetches.
    for name, row in rows.items():
        assert row["speedup"] > -0.02, name


def test_future_work_lfu_table(once):
    """The frequency-aware table rescues povray (paper Section VI-A: 'better
    critical load table management can help these workloads significantly')."""

    def body():
        nol2 = no_l2(skylake_server(), 6.5)
        base = Simulator(nol2).run("povray_like", 24_000)
        lru = Simulator(with_catch(nol2)).run("povray_like", 24_000)
        lfu_cfg = with_catch(nol2, name="noL2+CATCH[lfu]")
        lfu_cfg = replace(lfu_cfg, catch=replace(lfu_cfg.catch, table_policy="lfu"))
        lfu = Simulator(lfu_cfg).run("povray_like", 24_000)
        return base.ipc, lru.ipc, lfu.ipc

    base, lru, lfu = once(body)
    print(f"\npovray on noL2: LRU {lru / base - 1:+.1%}, LFU {lfu / base - 1:+.1%}")
    assert lru / base < 1.05   # the paper's observed thrash: LRU barely helps
    assert lfu / base > 1.10   # frequency-aware management rescues it
