"""Benchmarks regenerating Figures 14-17 and Table II."""

from repro.experiments import (
    fig14_multiprogrammed,
    fig15_llc_latency,
    fig16_energy,
    fig17_inclusive,
    table2_workloads,
)


def test_fig14_multiprogrammed(once):
    """Figure 14: MP weighted-speedup gains mirror ST (paper: noL2 -4.1%,
    noL2+CATCH +8.5%, CATCH +9.0%)."""
    data = once(lambda: fig14_multiprogrammed.run(quick=True, n_mixes=3))
    s = data["summary"]
    print("\nfig14:", {k: f"{v:+.1%}" for k, v in s.items()})
    assert s["noL2_6.5MB"] < 0.01
    assert s["noL2+CATCH"] > s["noL2_6.5MB"]
    assert s["CATCH"] > 0.0


def test_fig15_llc_latency(once):
    """Figure 15: each +6 LLC cycles costs performance in both hierarchies."""
    data = once(lambda: fig15_llc_latency.run(quick=True))
    lat = data["llc_latency"]
    print("\nfig15:", {k: f"{v:+.1%}" for k, v in lat.items()})
    base_nol2 = lat["noL2_6.5MB"]
    assert lat["noL2_6.5MB+llc+6cyc"] <= base_nol2 + 1e-6
    assert lat["noL2_6.5MB+llc+12cyc"] <= lat["noL2_6.5MB+llc+6cyc"] + 1e-6
    catch = lat["noL2_9.5+CATCH"]
    assert lat["noL2_9.5+CATCH+llc+12cyc"] <= catch + 1e-6


def test_fig16_energy(once):
    """Figure 16: two-level CATCH saves energy despite far more interconnect
    traffic (paper: ~11% savings, ~5x ring traffic, less cache+DRAM work)."""
    data = once(lambda: fig16_energy.run(quick=True))
    savings = data["energy_savings"]["GeoMean"]
    ratios = data["traffic_ratio_vs_baseline"]
    print(f"\nfig16: energy savings {savings:+.1%} (paper ~11%); traffic "
          + str({k: f'{v:.2f}x' for k, v in ratios.items()}))
    assert ratios["interconnect"] > 1.5   # much more ring traffic
    assert ratios["cache"] < 1.0          # less total cache work
    # NOTE: the energy *sign* is not asserted.  At capacity_scale=4 the
    # 8 KB L1 misses ~4x more often than the paper's 32 KB L1, multiplying
    # ring crossings (~30x vs the paper's ~5x) and flipping the net energy
    # negative; the traffic directions above are the reproducible shape.
    # See EXPERIMENTS.md.
    a = data["area"]
    assert abs(a["two_level_mm2"] / a["baseline_mm2"] - 1.0) < 0.06  # iso-area


def test_fig17_inclusive(once):
    """Figure 17: CATCH also wins on the small-L2 inclusive baseline
    (paper: noL2 -5.7%, noL2+CATCH +6.4%, +9MB +7.2%, CATCH +10.3%)."""
    data = once(lambda: fig17_inclusive.run(quick=True))
    s = {k: v["GeoMean"] for k, v in data["summary"].items()}
    print("\nfig17:", {k: f"{v:+.1%}" for k, v in s.items()})
    assert s["noL2_incl"] < 0.01
    assert s["noL2+CATCH"] > s["noL2_incl"]
    assert s["noL2+CATCH+9MB_L3"] >= s["noL2+CATCH"] - 1e-6
    assert s["CATCH_incl"] > 0.0


def test_table2_workloads(once):
    data = once(lambda: table2_workloads.run(quick=True, n_instrs=4000))
    categories = {r["category"] for r in data["rows"]}
    assert categories == {"client", "FSPEC", "HPC", "ISPEC", "server"}
