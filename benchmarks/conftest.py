"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures (quick variant:
the representative workload cross-section at a reduced trace length) and
asserts the paper's qualitative shape.  Simulations are deterministic, so a
single round is meaningful; ``benchmark.pedantic(..., rounds=1)`` keeps the
full harness runnable in minutes.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.experiments.common import clear_cache


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)

    return runner


@pytest.fixture(scope="session", autouse=True)
def _release_cached_results():
    """Drop the runner's memoised results once the benchmark session ends.

    Benchmarks deliberately share memoised baseline runs *within* the
    session (experiments reuse each other's baselines); clearing at teardown
    keeps full ``RunResult`` objects from outliving the suite when it runs
    inside a larger process.
    """
    yield
    clear_cache()
