"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures (quick variant:
the representative workload cross-section at a reduced trace length) and
asserts the paper's qualitative shape.  Simulations are deterministic, so a
single round is meaningful; ``benchmark.pedantic(..., rounds=1)`` keeps the
full harness runnable in minutes.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)

    return runner
