"""Microbenchmarks of the simulator substrates (throughput tracking).

These measure simulator *performance* (events per second), complementing the
figure-regeneration benchmarks: regressions here make the full experiments
impractically slow.
"""

from repro.caches.cache import Cache
from repro.caches.hierarchy import CacheHierarchy, LevelSpec
from repro.cpu.core import CoreParams, OOOCore
from repro.memory.controller import MemoryController
from repro.memory.dram import DRAM
from repro.sim.config import skylake_server, with_catch
from repro.sim.simulator import Simulator
from repro.workloads.suites import build_trace


def test_cache_access_throughput(benchmark):
    cache = Cache("B", 256 * 1024, 8, 10)
    addrs = [(i * 37) % 16384 for i in range(10_000)]

    def body():
        for a in addrs:
            if cache.access(a, 0.0) is None:
                cache.fill(a, 0.0)

    benchmark(body)


def test_dram_read_throughput(benchmark):
    dram = DRAM()
    addrs = [(i * 97) % (1 << 20) for i in range(5000)]

    def body():
        now = 0.0
        for a in addrs:
            dram.read(a, now)
            now += 3.0

    benchmark(body)


def test_core_instruction_throughput(benchmark):
    """Simulated instructions per second on the baseline machine."""
    trace = build_trace("hmmer_like", 20_000)
    cfg = skylake_server()

    def body():
        hierarchy = Simulator(cfg).build_hierarchy(1)
        OOOCore(0, hierarchy, cfg.core).run(trace)

    benchmark.pedantic(body, rounds=1, iterations=1, warmup_rounds=0)


def test_catch_overhead(benchmark):
    """CATCH engine cost on top of the baseline simulation."""
    trace = build_trace("hmmer_like", 20_000)
    cfg = with_catch(skylake_server())

    def body():
        sim = Simulator(cfg)
        hierarchy = sim.build_hierarchy(1)
        OOOCore(0, hierarchy, cfg.core, sim.make_engine()).run(trace)

    benchmark.pedantic(body, rounds=1, iterations=1, warmup_rounds=0)


def test_trace_generation_throughput(benchmark):
    from repro.workloads.generator import server_app

    benchmark.pedantic(
        lambda: server_app("bench", "server", 40_000, code_kb=56),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
