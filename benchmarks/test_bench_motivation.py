"""Benchmarks regenerating the motivation studies: Figures 1, 3, 4 and 5."""

from repro.experiments import (
    fig01_remove_l2,
    fig03_latency_sensitivity,
    fig04_criticality_oracle,
    fig05_oracle_prefetch,
)


def test_fig01_remove_l2(once):
    """Figure 1: removing the L2 loses performance, even iso-area."""
    data = once(lambda: fig01_remove_l2.run(quick=True))
    no65 = data["summary"]["noL2_6.5MB"]["GeoMean"]
    no95 = data["summary"]["noL2_9.5MB"]["GeoMean"]
    print(f"\nfig01: noL2+6.5MB {no65:+.1%} (paper -7.8%), "
          f"noL2+9.5MB {no95:+.1%} (paper -5.1%)")
    assert no65 < -0.02
    assert no95 < -0.02
    assert no95 >= no65  # the bigger LLC recovers part of the loss


def test_fig03_latency_sensitivity(once):
    """Figure 3: L1 latency matters most, LLC least."""
    data = once(lambda: fig03_latency_sensitivity.run(quick=True))
    s = {k: v["GeoMean"] for k, v in data["summary"].items()}
    l1 = s["baseline_server+l1+3cyc"]
    l2 = s["baseline_server+l2+3cyc"]
    llc = s["baseline_server+llc+3cyc"]
    print(f"\nfig03 (+3cyc): L1 {l1:+.1%} (paper -7.2%), "
          f"L2 {l2:+.1%} (paper -1.4%), LLC {llc:+.1%} (paper -0.6%)")
    # Added latency is never free, and more cycles never help.  (The
    # paper's L1 >> L2 > LLC ordering is only partially reproduced: our
    # synthetic kernels generate addresses through ALU chains where real
    # code loads pointers/indices from the L1, under-weighting L1 latency
    # on the critical path — see EXPERIMENTS.md.)
    assert l1 < 0.005 and l2 < 0.005 and llc < 0.005
    for lvl in ("l1", "l2", "llc"):
        one = s[f"baseline_server+{lvl}+1cyc"]
        three = s[f"baseline_server+{lvl}+3cyc"]
        assert three <= one + 0.005


def test_fig04_criticality_oracle(once):
    """Figure 4: non-critical L2 hits are nearly free to demote; L1 is not."""
    data = once(lambda: fig04_criticality_oracle.run(quick=True))
    imp = {k: v["GeoMean"] for k, v in data["impact"].items()}
    print("\nfig04:", {k: f"{v:+.1%}" for k, v in imp.items()})
    # Demoting everything at a level always hurts at least as much as
    # demoting only the non-critical subset.
    for level in ("L1_to_L2", "L2_to_LLC", "LLC_to_MEM"):
        assert imp[f"{level}_all"] <= imp[f"{level}_noncritical"] + 1e-6
    # The paper's key asymmetry: non-critical L2 demotion is the cheapest.
    assert imp["L2_to_LLC_noncritical"] >= imp["L2_to_LLC_all"]
    assert imp["L2_to_LLC_noncritical"] > -0.05


def test_fig05_oracle_prefetch(once):
    """Figure 5: few tracked critical PCs capture most of the oracle gain."""
    data = once(lambda: fig05_oracle_prefetch.run(quick=True))
    g = data["gain_by_budget"]
    print("\nfig05:", {k: f"{v:+.1%}" for k, v in g.items()})
    assert g["32"] > 0  # tracking 32 critical PCs already gains
    assert g["all"] >= g["32"] - 0.02
    # The noL2 + oracle configuration lands near the with-L2 oracle
    # (the motivating "L2 becomes redundant" result).
    assert g["noL2+2048"] > g["2048"] - 0.10
