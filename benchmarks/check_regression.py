#!/usr/bin/env python
"""Gate a fresh kernel-benchmark report against the committed baseline.

CI runs ``bench_kernel.py`` (which already fails on any golden-parity break)
and then this checker, which compares the fresh ``BENCH_kernel.json``-shaped
report against the baseline committed at the repo root:

* **parity** — the fresh report must say every pair was byte-identical
  across kernels, and so must the baseline (a committed report with broken
  parity would make the gate vacuous);
* **throughput** — the fast kernel's instructions/second, *normalized by
  the same run's reference kernel* (``geomean_speedup_vs_reference``), must
  not regress more than ``--tolerance`` below the committed value.

The normalized ratio is what makes the gate portable: raw i/s depends on
the CI machine, but both kernels run back-to-back in the same job, so their
ratio cancels machine speed and measures only what a code change did to the
span loop relative to the reference loop.  The raw ``fast_ips`` numbers are
printed for context but never gate.

Usage::

    python benchmarks/bench_kernel.py --output BENCH_fresh.json
    python benchmarks/check_regression.py BENCH_fresh.json \
        --baseline BENCH_kernel.json --tolerance 0.05
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_kernel.json"


def check(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Return the list of gate violations (empty means the gate passes)."""
    problems: list[str] = []
    fresh_agg = fresh["aggregate"]
    base_agg = baseline["aggregate"]
    if not fresh_agg["parity"]:
        problems.append("fresh report has broken golden parity")
    if not base_agg["parity"]:
        problems.append("baseline report has broken golden parity")
    for row in fresh.get("pairs", []):
        if not row["parity"]:
            problems.append(
                f"pair {row['config']}/{row['workload']}: RunResult JSON "
                f"diverged between kernels"
            )
    fresh_speedup = fresh_agg["geomean_speedup_vs_reference"]
    base_speedup = base_agg["geomean_speedup_vs_reference"]
    floor = base_speedup * (1.0 - tolerance)
    if fresh_speedup < floor:
        problems.append(
            f"fast-kernel throughput regressed: geomean speedup vs reference "
            f"{fresh_speedup:.3f}x < floor {floor:.3f}x "
            f"(baseline {base_speedup:.3f}x, tolerance {tolerance:.0%})"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="report from this build")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"committed baseline report (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed fractional drop in geomean speedup vs reference "
             "(default 0.05 = 5%%)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    baseline = json.loads(args.baseline.read_text())
    problems = check(fresh, baseline, args.tolerance)

    fresh_agg = fresh["aggregate"]
    base_agg = baseline["aggregate"]
    print(
        f"baseline: {base_agg['fast_ips']:.0f} i/s fast, "
        f"{base_agg['geomean_speedup_vs_reference']:.3f}x vs reference "
        f"({base_agg['pairs']} pairs)"
    )
    print(
        f"fresh:    {fresh_agg['fast_ips']:.0f} i/s fast, "
        f"{fresh_agg['geomean_speedup_vs_reference']:.3f}x vs reference "
        f"({fresh_agg['pairs']} pairs)"
    )
    if problems:
        for problem in problems:
            print(f"ERROR: {problem}", file=sys.stderr)
        return 1
    print(f"gate OK (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
