"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's own figures: they vary one CATCH/hierarchy design
parameter at a time and check the direction the paper's arguments predict.
"""

import dataclasses

from repro.caches.hierarchy import LevelSpec
from repro.core.tact.coordinator import TACTConfig
from repro.sim.config import no_l2, skylake_server, with_catch
from repro.sim.metrics import geomean
from repro.sim.simulator import Simulator

WORKLOADS = ("hmmer_like", "mcf_like", "tpcc_like", "sphinx3_like")
N = 24_000


def run_suite(cfg):
    sim = Simulator(cfg)
    return {wl: sim.run(wl, N).ipc for wl in WORKLOADS}


def rel(results, base):
    return geomean([results[wl] / base[wl] for wl in results])


def test_ablation_deep_distance(once):
    """Deep-self distance: 16 must beat 2 (the paper's timeliness argument
    for deep distances), and the hmmer-class workload is the one that cares."""

    def body():
        base = run_suite(no_l2(skylake_server(), 6.5))
        shallow = run_suite(
            with_catch(
                no_l2(skylake_server(), 6.5),
                name="catch_d2",
                tact=TACTConfig(deep_max_distance=2),
            )
        )
        deep = run_suite(
            with_catch(
                no_l2(skylake_server(), 6.5),
                name="catch_d16",
                tact=TACTConfig(deep_max_distance=16),
            )
        )
        return base, shallow, deep

    base, shallow, deep = once(body)
    print(
        f"\ndeep-distance ablation: d2 {rel(shallow, base) - 1:+.1%}, "
        f"d16 {rel(deep, base) - 1:+.1%}"
    )
    assert rel(deep, base) > rel(shallow, base)
    assert deep["hmmer_like"] > shallow["hmmer_like"] * 1.05


def test_ablation_runahead_depth(once):
    """Code runahead depth: deeper runahead must help the server workload."""

    def body():
        out = {}
        for lines in (2, 24):
            cfg = with_catch(
                no_l2(skylake_server(), 6.5),
                name=f"catch_ra{lines}",
                tact=TACTConfig(code_runahead_lines=lines),
            )
            out[lines] = Simulator(cfg).run("tpcc_like", N).ipc
        return out

    out = once(body)
    print(f"\nrunahead ablation (tpcc): 2 lines {out[2]:.2f}, 24 lines {out[24]:.2f}")
    assert out[24] > out[2]


def test_ablation_critical_table_size(once):
    """povray needs more than 32 entries; hmmer does not (Section VI-D2)."""

    def body():
        out = {}
        for entries in (32, 256):
            cfg = with_catch(
                no_l2(skylake_server(), 6.5),
                name=f"catch_t{entries}",
                table_entries=entries,
            )
            sim = Simulator(cfg)
            out[entries] = {
                "povray_like": sim.run("povray_like", N).ipc,
                "hmmer_like": sim.run("hmmer_like", N).ipc,
            }
        return out

    out = once(body)
    povray_gain = out[256]["povray_like"] / out[32]["povray_like"]
    hmmer_gain = out[256]["hmmer_like"] / out[32]["hmmer_like"]
    print(f"\ntable-size 32->256: povray x{povray_gain:.2f}, hmmer x{hmmer_gain:.2f}")
    # The 96-critical-PC workload benefits from a bigger table far more than
    # the 4-critical-PC workload (which the paper uses to justify 32).
    assert povray_gain > hmmer_gain - 0.02


def test_ablation_replacement_policy(once):
    """CATCH's gains are orthogonal to the LLC replacement policy (the paper
    cites RRIP-family work as complementary)."""

    def body():
        out = {}
        for policy in ("lru", "srrip"):
            base_cfg = skylake_server(name=f"base_{policy}")
            base_cfg = dataclasses.replace(
                base_cfg,
                llc=LevelSpec(5632, 11, 40, replacement=policy, hashed_index=True),
            )
            base = run_suite(base_cfg)
            catch = run_suite(with_catch(base_cfg, name=f"catch_{policy}"))
            out[policy] = rel(catch, base)
        return out

    out = once(body)
    print(
        f"\nreplacement ablation: CATCH gain on LRU {out['lru'] - 1:+.1%}, "
        f"on SRRIP {out['srrip'] - 1:+.1%}"
    )
    for policy, gain in out.items():
        assert gain > 1.0  # CATCH wins under both policies


def test_ablation_quantization(once):
    """The 8-cycle latency quantisation must not change which PCs the
    detector finds (the paper's area-saving claim)."""
    from repro.core.oracle import profile_critical_pcs
    from repro.workloads.suites import build_trace, get_spec

    def body():
        spec = get_spec("hmmer_like")
        trace = build_trace("hmmer_like", 2 * N * spec.length_multiplier)
        sim = Simulator(skylake_server())
        return profile_critical_pcs(
            trace, lambda: sim.build_hierarchy(1), skylake_server().core, top_n=8
        )

    pcs = once(body)
    print(f"\nquantisation check: {len(pcs)} critical PCs found")
    # hot_loop has 4 chained load PCs; the detector must find them.
    assert len(pcs) >= 4
