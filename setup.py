"""Shim for legacy editable installs (`python setup.py develop`).

Offline environments without the `wheel` package cannot use PEP 660
editable installs; `pip install -e . --no-build-isolation` or
`python setup.py develop` both work through this shim.  All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
