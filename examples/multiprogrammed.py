#!/usr/bin/env python3
"""Four-core multi-programmed demo (the Figure 14 setting).

Runs a RATE-4 mix (four copies of one application) and a heterogeneous mix on
the shared-LLC four-core machine, for the baseline and for two-level CATCH,
reporting per-core IPC and weighted speedup.

Run:  python examples/multiprogrammed.py
"""

from repro.sim import (
    MultiCoreSimulator,
    alone_ipcs,
    no_l2,
    skylake_server,
    with_catch,
)

N_INSTRS = 20_000
MIXES = [
    ("hmmer_like",) * 4,
    ("hmmer_like", "mcf_like", "tpcc_like", "bwaves_like"),
]


def main():
    base = skylake_server()
    configs = [base, with_catch(no_l2(base, 6.5), name="noL2+CATCH")]
    names = {name for mix in MIXES for name in mix}
    alone = alone_ipcs(base, names, N_INSTRS)
    print("alone IPC (baseline):", {k: round(v, 2) for k, v in alone.items()})

    for mix in MIXES:
        print(f"\nmix: {', '.join(mix)}")
        for cfg in configs:
            result = MultiCoreSimulator(cfg).run_mix(mix, N_INSTRS)
            per_core = "  ".join(
                f"c{c}:{ipc:4.2f}" for c, ipc in sorted(result.per_core_ipc.items())
            )
            ws = result.weighted_speedup(alone)
            print(f"  {cfg.name:14s} {per_core}   weighted speedup {ws:4.2f}")
    print(
        "\nA weighted speedup of 4.0 means zero interference; shared-LLC and "
        "DRAM contention pull it down, and CATCH recovers latency exactly as "
        "in the single-core runs (paper Figure 14)."
    )


if __name__ == "__main__":
    main()
