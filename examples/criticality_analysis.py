#!/usr/bin/env python3
"""Criticality analysis: watch the hardware detector find the critical path.

Part 1 rebuilds the paper's Figure 2 example by hand: seven instructions
where one L2-hitting load sits on the critical path and two do not, and shows
that the incremental walk finds exactly the critical one.

Part 2 runs the detector over a real workload (``mcf_like``) and prints the
critical-PC ranking, the critical-load table contents and the hardware area
budget (Table I).

Run:  python examples/criticality_analysis.py
"""

from repro.caches.hierarchy import Level
from repro.core.criticality import detector_area
from repro.core.ddg import BufferedDDG
from repro.core.oracle import profile_critical_pcs
from repro.cpu.engine import RetireRecord
from repro.sim import Simulator, skylake_server
from repro.workloads.suites import build_trace, get_spec
from repro.workloads.trace import Instr, Op


def figure2_example():
    """The paper's Figure 2: only load #2 (on the dependence chain feeding
    the final instructions) is critical; loads #3 and #6 are not."""
    print("=== Part 1: the Figure 2 example graph ===")
    # ROB deeper than the example so the C-D (ROB-full) edge does not
    # interfere with the 7-instruction window.
    g = BufferedDDG(rob_size=8)

    def add(idx, op, lat, producers=(), level=None, pc=0):
        g.add(
            RetireRecord(
                idx=idx,
                instr=Instr(pc, op, addr=idx * 64 if op is Op.LOAD else -1),
                exec_lat=lat,
                producers=producers,
                level=level,
                mispredicted=False,
                e_time=0.0,
            )
        )

    # As in Figure 2: three loads hit the L2; only the one feeding the long
    # dependent chain (0x20) is critical — the chain through it outweighs
    # every other path, so raising the latency of 0x30/0x60 would not move
    # the critical path at all.
    add(0, Op.ALU, 2, pc=0x10)
    add(1, Op.LOAD, 16, producers=(0,), level=Level.L2, pc=0x20)   # critical
    add(2, Op.LOAD, 16, level=Level.L2, pc=0x30)                   # not
    add(3, Op.ALU, 8, producers=(1,), pc=0x40)
    add(4, Op.ALU, 8, producers=(3,), pc=0x50)
    add(5, Op.LOAD, 16, producers=(), level=Level.L2, pc=0x60)     # not
    add(6, Op.ALU, 2, producers=(4,), pc=0x70)
    found = g.walk()
    print("loads found on the critical path:", [hex(f.pc) for f in found])
    assert [f.pc for f in found] == [0x20]
    print("=> only the load feeding the dependent chain (0x20) is critical,")
    print("   exactly as in the paper's Figure 2.\n")


def real_workload():
    print("=== Part 2: hardware detection on mcf_like ===")
    spec = get_spec("mcf_like")
    trace = build_trace("mcf_like", 40_000 * spec.length_multiplier)
    sim = Simulator(skylake_server())
    ranked = profile_critical_pcs(
        trace, lambda: sim.build_hierarchy(1), skylake_server().core
    )
    loads_by_pc = {}
    for instr in trace.instrs[:200]:
        if instr.op is Op.LOAD:
            loads_by_pc.setdefault(instr.pc, instr)
    print(f"critical load PCs found (top {min(5, len(ranked))}):")
    for pc in ranked[:5]:
        role = "gather (A[B[i]])" if pc in loads_by_pc and loads_by_pc[pc].srcs else ""
        print(f"  {hex(pc)}  {role}")
    print()
    area = detector_area(rob_size=224, table_entries=32)
    print("hardware budget (Table I):")
    print(f"  buffered graph : {area.graph_bytes / 1024:.2f} KB")
    print(f"  hashed PCs     : {area.pc_bytes / 1024:.2f} KB")
    print(f"  critical table : {area.table_bytes:.0f} B")
    print(f"  total          : {area.total_kb:.2f} KB  (paper: 'about 3 KB')")


if __name__ == "__main__":
    figure2_example()
    real_workload()
