#!/usr/bin/env python3
"""Design-space exploration: the CATCH framework for area/performance trades.

Section VI of the paper argues CATCH is "a powerful framework to explore
broad chip-level area, performance and power trade-offs".  This example walks
that space: for a set of hierarchies (three-level vs two-level, several LLC
sizes, with and without CATCH) it reports performance, cache-subsystem area
and an efficiency figure (performance per mm^2), using a quick workload
cross-section.

Run:  python examples/design_space.py            (quick cross-section)
      python examples/design_space.py --full     (entire Table-II suite)
"""

import sys

from repro.experiments.common import cached_run
from repro.power.energy import ChipModel
from repro.sim import no_l2, skylake_server, with_catch
from repro.sim.metrics import geomean
from repro.workloads import suite

N_INSTRS = 30_000


def evaluate(config, workloads):
    # Through the resilient runner: memoised in-process, and a campaign can
    # wrap this in repro.runner.use_runner(...) for checkpointing/timeouts.
    return [cached_run(config, name, N_INSTRS) for name in workloads]


def main(full=False):
    workloads = [s.name for s in suite(quick=not full)]
    base = skylake_server()
    design_points = [
        base,
        with_catch(base, name="3-level+CATCH"),
        no_l2(base, 5.5, name="2-level_5.5MB"),
        with_catch(no_l2(base, 5.5), name="2-level_5.5MB+CATCH"),
        with_catch(no_l2(base, 6.5), name="2-level_6.5MB+CATCH"),
        with_catch(no_l2(base, 9.5), name="2-level_9.5MB+CATCH"),
    ]
    print(f"{len(workloads)} workloads x {len(design_points)} design points\n")

    base_results = evaluate(base, workloads)
    base_ipc = {r.workload: r.ipc for r in base_results}
    base_area = ChipModel(base).area().total_mm2

    header = (
        f"{'design point':26s}{'perf vs base':>14s}{'cache mm2':>11s}"
        f"{'area vs base':>14s}{'perf/mm2':>10s}"
    )
    print(header)
    print("-" * len(header))
    for cfg in design_points:
        if cfg is base:
            results = base_results
        else:
            results = evaluate(cfg, workloads)
        rel = geomean([r.ipc / base_ipc[r.workload] for r in results])
        area = ChipModel(cfg).area().total_mm2
        print(
            f"{cfg.name:26s}{rel - 1:>+14.1%}{area:>11.1f}"
            f"{area / base_area - 1:>+14.1%}{rel / (area / base_area):>10.2f}"
        )
    print(
        "\nReading the table: the two-level CATCH points dominate the plain "
        "two-level ones at every size, and the 6.5 MB point delivers its "
        "performance at ~30% less cache area than the baseline — the paper's "
        "Section VI-A trade-off."
    )


if __name__ == "__main__":
    main(full="--full" in sys.argv)
