#!/usr/bin/env python3
"""Quickstart: run one workload on the baseline and on CATCH.

Builds the paper's Skylake-server-like baseline (1 MB L2 + 5.5 MB exclusive
LLC), runs the ``hmmer_like`` workload — an L2-resident dependent-load loop,
the paper's poster child — on the baseline, on a two-level hierarchy with the
L2 removed, and on the two-level hierarchy with CATCH.  Prints where loads
were served and the resulting performance.

Run:  python examples/quickstart.py
"""

from repro import no_l2, skylake_server, with_catch
from repro.experiments.common import cached_run

WORKLOAD = "hmmer_like"
N_INSTRS = 40_000


def describe(result, baseline_ipc=None):
    served = {
        level.name: count for level, count in result.load_served.items() if count
    }
    line = (
        f"  {result.config_name:22s} IPC {result.ipc:5.2f}"
        f"   loads served: {served}"
    )
    if baseline_ipc:
        line += f"   vs baseline {result.ipc / baseline_ipc - 1:+.1%}"
    print(line)


def main():
    baseline_cfg = skylake_server()
    nol2_cfg = no_l2(baseline_cfg, 6.5)
    catch_cfg = with_catch(nol2_cfg, name="noL2+CATCH")

    print(f"workload: {WORKLOAD} ({N_INSTRS} measured instructions)\n")
    # cached_run routes through the resilient runner (repro.runner): results
    # are memoised, validated, and checkpointable in larger campaigns.
    baseline = cached_run(baseline_cfg, WORKLOAD, N_INSTRS)
    describe(baseline)

    nol2 = cached_run(nol2_cfg, WORKLOAD, N_INSTRS)
    describe(nol2, baseline.ipc)

    catch = cached_run(catch_cfg, WORKLOAD, N_INSTRS)
    describe(catch, baseline.ipc)

    ts = catch.tact_stats
    print(
        f"\nCATCH issued {ts.issued} data prefetches "
        f"({ts.deep_prefetches} deep-self, {ts.cross_prefetches} cross, "
        f"{ts.feeder_prefetches} feeder); "
        f"{ts.pct_from_llc:.0%} were served by the LLC."
    )
    frac = ts.timeliness_fractions()
    print(
        f"Of the demand loads they covered, {frac['over_80']:.0%} had more "
        f"than 80% of the LLC latency hidden."
    )
    print(
        "\nThe story of the paper in three lines: removing the L2 costs "
        f"{1 - nol2.ipc / baseline.ipc:.0%}, and CATCH recovers it to "
        f"{catch.ipc / baseline.ipc - 1:+.1%} — on 30% less cache area."
    )


if __name__ == "__main__":
    main()
