"""Tests for service-grade telemetry: the flight recorder, end-to-end job
tracing, SLO latency accounting, request-id correlation, and the /metrics
endpoint.

The HTTP tests run a real ThreadingHTTPServer; the daemon tests run real
executor threads, so the spans and histograms asserted here are produced
by the same code paths an operator would scrape in production.
"""

import json
import os
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.errors import RunFailure
from repro.obs import (
    FlightRecorder,
    NullFlightRecorder,
    TraceCollector,
    load_flight_dump,
    validate_exposition,
)
from repro.obs.trace import validate_trace_events
from repro.runner import FailureRecord, FleetRunner, ResultStore
from repro.service import DONE, FAILED, build_service, make_server, serve_in_thread
from repro.service.cli import make_sigquit_handler
from repro.service.http import preset_configs
from repro.service.journal import Journal
from repro.service.queue import JobQueue
from repro.sim.serialization import config_to_dict

N = 2000


# --------------------------------------------------------------- harness

class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_service(tmp_path, **kwargs):
    queue_kwargs = kwargs.pop("queue_kwargs", {})
    return build_service(
        tmp_path / "journal.wal", tmp_path / "ckpt", fsync=False,
        queue_kwargs=queue_kwargs, **kwargs,
    )


def submit_preset(service, preset="baseline_server", workload="hmmer_like",
                  n=N, **kwargs):
    payload = config_to_dict(preset_configs()[preset])
    job, _ = service.submit_config(payload, workload, n, **kwargs)
    return job


def request(url, method="GET", payload=None, headers=None):
    """Return (status, headers, body) with body parsed per content type."""
    data = json.dumps(payload).encode() if payload is not None else None
    all_headers = {"Content-Type": "application/json"} if data else {}
    all_headers.update(headers or {})
    req = urllib.request.Request(url, data=data, method=method,
                                 headers=all_headers)
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            raw = resp.read().decode()
            status, resp_headers = resp.status, dict(resp.headers)
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode()
        status, resp_headers = exc.code, dict(exc.headers)
    if resp_headers.get("Content-Type", "").startswith("application/json"):
        return status, resp_headers, json.loads(raw) if raw else {}
    return status, resp_headers, raw


@pytest.fixture
def api(tmp_path):
    """A served (but not started) service; yields (base_url, service)."""
    service = make_service(
        tmp_path, queue_kwargs={"max_depth": 8, "quota": 8}
    )
    server = make_server(service)
    serve_in_thread(server)
    host, port = server.server_address
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        service.queue.journal.close()


def submit_body(preset="baseline_server", **overrides):
    body = {"preset": preset, "workload": "hmmer_like", "n_instrs": N}
    body.update(overrides)
    return body


class CrashingRunner:
    """Stands in for a fleet whose worker dies on this config every time."""

    def __init__(self):
        self.failures = []

    def run(self, config, workload, n_instrs):
        self.failures.append(FailureRecord(
            config_name=config.name, workload=workload, n_instrs=n_instrs,
            error_type="WorkerCrashError", message="simulated worker death",
            elapsed_s=0.0, attempts=1,
        ))
        raise RunFailure(
            f"worker crashed on {config.name}",
            config_name=config.name, workload=workload, n_instrs=n_instrs,
            attempts=1, elapsed_s=0.0,
        )


# ------------------------------------------------------- flight recorder

class TestFlightRecorder:
    def test_ring_evicts_oldest(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("tick", i=i)
        assert len(rec) == 3
        assert [e["i"] for e in rec.events()] == [2, 3, 4]
        assert rec.recorded == 5

    def test_events_filter_by_kind_and_count(self):
        rec = FlightRecorder()
        rec.record("submit", job="j1")
        rec.record("lease", job="j1")
        rec.record("submit", job="j2")
        assert [e["job"] for e in rec.events(kind="submit")] == ["j1", "j2"]
        assert [e["job"] for e in rec.events(n=1, kind="submit")] == ["j2"]

    def test_sequence_numbers_are_stable_across_eviction(self):
        rec = FlightRecorder(capacity=2)
        for i in range(4):
            rec.record("tick", i=i)
        assert [e["seq"] for e in rec.events()] == [3, 4]

    def test_dump_round_trip(self, tmp_path):
        rec = FlightRecorder()
        rec.record("submit", job="j1")
        rec.record("done", job="j1")
        path = tmp_path / "dump.jsonl"
        rec.dump(path, reason="test")
        header, events = load_flight_dump(path)
        assert header["reason"] == "test"
        assert header["recorded_total"] == 2
        assert [e["kind"] for e in events] == ["submit", "done"]

    def test_dump_to_dir_avoids_collisions(self, tmp_path):
        rec = FlightRecorder(clock=FakeClock(1234.0))
        rec.record("tick")
        first = rec.dump_to_dir(tmp_path, reason="a")
        second = rec.dump_to_dir(tmp_path, reason="b")
        assert first != second
        assert first.name.startswith("flightrec-")
        assert load_flight_dump(second)[0]["reason"] == "b"

    def test_load_rejects_non_dump_files(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"kind": "not-a-dump"}\n')
        with pytest.raises(ValueError):
            load_flight_dump(path)

    def test_null_recorder_is_disabled_and_undumpable(self):
        rec = NullFlightRecorder()
        rec.record("anything", x=1)
        assert not rec.enabled
        assert len(rec) == 0
        with pytest.raises(RuntimeError):
            rec.dump("nowhere.jsonl")


# ------------------------------------------------------------ trace core

class TestTraceCollector:
    def test_counter_timestamps_strictly_increase(self):
        # A frozen clock is the coarse-clock worst case: every raw sample
        # lands on the same tick, so the collector must nudge each one.
        collector = TraceCollector(clock=lambda: 5.0)
        collector.counter("c", {"v": 1})
        collector.counter("c", {"v": 2})
        collector.counter("c", {"v": 3})
        stamps = [e["ts"] for e in collector.events if e["ph"] == "C"]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 3

    def test_complete_records_retroactive_span(self):
        collector = TraceCollector()
        start = collector.now_us()
        collector.complete("job:queue-wait", start, 125.0, "service",
                           {"job_id": "j1"})
        (event,) = collector.events
        assert event["ph"] == "X"
        assert event["dur"] == 125.0
        assert validate_trace_events({"traceEvents": [event]}) == []

    def test_merge_rebases_onto_parent_wall_clock(self):
        parent = TraceCollector()
        child = TraceCollector()
        with obs.use_tracer(child):
            with obs.span("worker:run", "worker", {"trace_id": "t1"}):
                pass
        parent.merge_events(child.events, wall_t0=child.wall_t0)
        merged = [e for e in parent.events if e["name"] == "worker:run"]
        assert merged
        assert merged[0]["args"]["trace_id"] == "t1"
        assert merged[0]["ts"] >= 0
        assert validate_trace_events({"traceEvents": parent.events}) == []


# ----------------------------------------------- queue-level observability

class TestQueueObservability:
    def make_queue(self, tmp_path, clock=None, recorder=None, **kwargs):
        kwargs.setdefault("max_depth", 8)
        kwargs.setdefault("quota", 8)
        journal = Journal(tmp_path / "q.wal", fsync=False)
        return JobQueue(journal, clock=clock or FakeClock(),
                        recorder=recorder, **kwargs)

    def test_trace_id_survives_journal_replay(self, tmp_path):
        queue = self.make_queue(tmp_path)
        job, _ = queue.submit({"name": "cfg"}, "wl", 1000,
                              fingerprint="fp0", trace_id="req-abc123")
        queue.journal.close()
        reopened = self.make_queue(tmp_path)
        assert reopened.get(job.job_id).trace_id == "req-abc123"
        reopened.journal.close()

    def test_lease_expiry_counts_separately_from_failed(self, tmp_path):
        clock = FakeClock()
        queue = self.make_queue(tmp_path, clock=clock,
                                lease_s=1.0, max_attempts=1)
        job, _ = queue.submit({"name": "cfg"}, "wl", 1000, fingerprint="fp0")
        assert queue.lease("w0") is not None
        clock.advance(5.0)
        (reclaimed,) = queue.expire_leases()
        assert reclaimed.job_id == job.job_id
        assert queue.get(job.job_id).state == FAILED
        assert queue.counters.lease_expiry_failed == 1
        assert queue.counters.failed == 0
        stats = queue.stats()
        assert stats["counters"]["lease_expiry_failed"] == 1
        assert stats["error_rate"] == 1.0
        queue.journal.close()

    def test_stats_exposes_breaker_states_and_journal_counters(self, tmp_path):
        queue = self.make_queue(tmp_path)
        queue.submit({"name": "cfg"}, "wl", 1000, fingerprint="fp0")
        stats = queue.stats()
        assert stats["breaker_states"] == {
            "closed": 0, "open": 0, "half_open": 0,
        }
        assert stats["error_rate"] == 0.0
        assert stats["journal"]["appends"] >= 1
        assert stats["journal"]["compactions"] == 0
        queue.journal.close()

    def test_queue_events_reach_the_recorder(self, tmp_path):
        recorder = FlightRecorder()
        queue = self.make_queue(tmp_path, recorder=recorder)
        job, _ = queue.submit({"name": "cfg"}, "wl", 1000,
                              fingerprint="fp0", trace_id="t1")
        queue.lease("w0")
        queue.complete(job.job_id, "w0", {"ipc": 1.0})
        kinds = [e["kind"] for e in recorder.events()]
        assert kinds == ["submit", "lease", "done"]
        lease_event = recorder.events(kind="lease")[0]
        assert lease_event["trace_id"] == "t1"
        assert lease_event["queue_wait_s"] >= 0.0
        queue.journal.close()


# ------------------------------------------------- daemon spans and SLOs

class TestDaemonTelemetry:
    def test_job_lifecycle_spans_share_the_trace_id(self, tmp_path):
        collector = TraceCollector()
        with obs.use_tracer(collector):
            service = make_service(tmp_path)
            job = submit_preset(service, trace_id="req-42")
            service.start()
            try:
                assert service.wait_idle(timeout=30)
            finally:
                service.stop()
        assert service.queue.get(job.job_id).state == DONE
        names = {e["name"] for e in collector.events}
        assert {"job:submit", "job:queue-wait", "job:run",
                "job:result-write", "job:done"} <= names
        for name in ("job:submit", "job:run", "job:done"):
            matching = [e for e in collector.events if e["name"] == name]
            assert matching[0]["args"]["trace_id"] == "req-42"
        assert validate_trace_events({"traceEvents": collector.events}) == []
        service.queue.journal.close()

    def test_service_stats_reports_slo_quantiles(self, tmp_path):
        service = make_service(tmp_path)
        submit_preset(service)
        service.start()
        try:
            assert service.wait_idle(timeout=30)
        finally:
            service.stop()
        stats = service.service_stats()
        assert stats["uptime_s"] > 0.0
        import repro

        assert stats["version"] == repro.__version__
        latency = stats["latency"]
        assert set(latency) == {
            "queue_wait", "lease_to_start", "run", "result_write",
        }
        for phase in ("queue_wait", "run", "result_write"):
            assert latency[phase]["count"] >= 1
            assert latency[phase]["p50_s"] >= 0.0
            assert latency[phase]["p99_s"] >= latency[phase]["p50_s"]
        service.queue.journal.close()

    def test_worker_crash_dumps_the_flight_recorder(self, tmp_path):
        service = make_service(
            tmp_path,
            runner_factory=CrashingRunner,
            queue_kwargs={"max_attempts": 1},
            poll_s=0.01,
        )
        job = submit_preset(service)
        service.start()
        try:
            deadline_hit = False
            import time as _time
            deadline = _time.monotonic() + 30
            while _time.monotonic() < deadline:
                if service.queue.get(job.job_id).state == FAILED:
                    deadline_hit = True
                    break
                _time.sleep(0.02)
            assert deadline_hit
        finally:
            service.stop()
        dumps = sorted(tmp_path.glob("flightrec-*.jsonl"))
        assert dumps
        header, events = load_flight_dump(dumps[0])
        assert header["reason"] == "worker-crash"
        assert any(e["kind"] == "worker_crash" for e in events)
        service.queue.journal.close()

    def test_sigquit_handler_dumps_without_raising(self, tmp_path, capsys):
        service = make_service(tmp_path)
        submit_preset(service)
        handler = make_sigquit_handler(service)
        handler(None, None)
        dumps = sorted(tmp_path.glob("flightrec-*.jsonl"))
        assert len(dumps) == 1
        header, events = load_flight_dump(dumps[0])
        assert header["reason"] == "sigquit"
        assert any(e["kind"] == "submit" for e in events)
        assert str(dumps[0]) in capsys.readouterr().err
        service.queue.journal.close()

    def test_metrics_snapshot_has_slo_histograms(self, tmp_path):
        service = make_service(tmp_path)
        snapshot = service.telemetry_snapshot()
        assert "job.queue_wait_seconds" in snapshot["histograms"]
        assert "service" in snapshot["providers"]
        service.queue.journal.close()


# ------------------------------------------------------------- HTTP layer

class TestRequestCorrelation:
    def test_response_carries_a_request_id(self, api):
        url, _ = api
        _, headers, _ = request(f"{url}/api/v1/healthz")
        assert headers["X-Request-Id"]

    def test_inbound_request_id_is_adopted(self, api):
        url, service = api
        status, headers, body = request(
            f"{url}/api/v1/jobs", "POST", submit_body(),
            headers={"X-Request-Id": "trace-me-42"},
        )
        assert status == 202
        assert headers["X-Request-Id"] == "trace-me-42"
        assert service.queue.get(body["job_id"]).trace_id == "trace-me-42"

    def test_invalid_inbound_id_is_replaced(self, api):
        url, _ = api
        _, headers, _ = request(
            f"{url}/api/v1/healthz",
            headers={"X-Request-Id": "bad id with spaces!"},
        )
        assert headers["X-Request-Id"] != "bad id with spaces!"
        assert headers["X-Request-Id"]


class TestMetricsEndpoint:
    def test_scrape_is_spec_valid_and_names_slo_series(self, api):
        url, _ = api
        request(f"{url}/api/v1/jobs", "POST", submit_body())
        status, headers, text = request(f"{url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        assert validate_exposition(text) == []
        assert "repro_job_queue_wait_seconds_bucket" in text
        assert 'repro_snapshot{provider="service",key="depth"} 1' in text


class TestEventsEndpoint:
    def test_events_listing_with_filters(self, api):
        url, _ = api
        _, _, job = request(f"{url}/api/v1/jobs", "POST", submit_body())
        request(f"{url}/api/v1/jobs/{job['job_id']}/cancel", "POST", {})
        status, _, body = request(f"{url}/api/v1/events")
        assert status == 200
        kinds = [e["kind"] for e in body["events"]]
        assert "submit" in kinds and "cancelled" in kinds
        assert body["recorded_total"] >= 2
        assert body["capacity"] > 0
        _, _, filtered = request(f"{url}/api/v1/events?kind=submit&n=1")
        assert [e["kind"] for e in filtered["events"]] == ["submit"]


# ------------------------------------------------ fleet trace propagation

class TestFleetTracePropagation:
    def test_worker_spans_merge_with_the_parent_trace(self, tmp_path):
        collector = TraceCollector()
        config = preset_configs()["baseline_server"]
        with obs.use_tracer(collector):
            runner = FleetRunner(ResultStore(tmp_path), jobs=1)
            runner.trace_args = {"job_id": "j1", "trace_id": "tr-fleet"}
            result = runner.run(config, "hmmer_like", N)
        assert result.instructions >= N
        worker_spans = [
            e for e in collector.events if e["name"] == "worker:run"
        ]
        assert worker_spans
        span = worker_spans[0]
        assert span["args"]["trace_id"] == "tr-fleet"
        assert span["args"]["job_id"] == "j1"
        # The span was recorded in the worker process, then rebased onto
        # the parent timeline — it keeps the worker's pid and a valid ts.
        assert span["pid"] != os.getpid()
        assert span["ts"] >= 0
        assert validate_trace_events({"traceEvents": collector.events}) == []

    def test_workers_do_not_trace_when_parent_has_no_tracer(self, tmp_path):
        config = preset_configs()["baseline_server"]
        runner = FleetRunner(ResultStore(tmp_path), jobs=1)
        result = runner.run(config, "hmmer_like", N)
        assert result.instructions >= N
        assert obs.tracer() is None
