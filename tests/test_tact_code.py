"""Unit tests for the TACT-Code CNPIP runahead prefetcher."""

from repro.caches.hierarchy import CacheHierarchy, LevelSpec
from repro.core.tact.code import CodePrefetcher
from repro.cpu.branch import GshareBranchPredictor
from repro.memory.controller import MemoryController
from repro.workloads.trace import Instr, Op, Trace


def make_env(max_lines=8):
    h = CacheHierarchy(
        1,
        l1i=LevelSpec(1, 2, 5),
        l1d=LevelSpec(1, 2, 5),
        l2=LevelSpec(16, 4, 15),
        llc=LevelSpec(64, 4, 40),
        memory=MemoryController(fixed_latency=100),
    )
    predictor = GshareBranchPredictor()
    return h, predictor, CodePrefetcher(0, h, predictor, max_lines=max_lines)


def straight_line_trace(n_lines=20):
    instrs = []
    for line in range(n_lines):
        for k in range(4):
            instrs.append(Instr(0x400000 + line * 64 + k * 16, Op.ALU))
    return Trace("code", "server", instrs)


class TestRunahead:
    def test_prefetches_future_lines(self):
        h, pred, pf = make_env()
        trace = straight_line_trace()
        pf.set_trace(trace)
        pf.on_code_miss(0, 0.0, 40.0)
        assert pf.stats.lines_prefetched > 0
        # the line after the missing one is now resident in the L1I
        assert h.l1i[0].contains((0x400040) >> 6)

    def test_respects_max_lines(self):
        h, pred, pf = make_env(max_lines=3)
        pf.set_trace(straight_line_trace(30))
        pf.on_code_miss(0, 0.0, 40.0)
        assert pf.stats.lines_prefetched <= 3

    def test_no_trace_is_noop(self):
        h, pred, pf = make_env()
        pf.on_code_miss(0, 0.0, 40.0)
        assert pf.stats.activations == 0

    def test_stops_at_unpredicted_branch(self):
        h, pred, pf = make_env()
        # an always-taken branch the predictor has never seen -> BTB miss
        instrs = [Instr(0x400000, Op.ALU)]
        instrs.append(Instr(0x400040, Op.BRANCH, taken=True, target=0x500000))
        for k in range(40):
            instrs.append(Instr(0x500000 + k * 16, Op.ALU))
        pf.set_trace(Trace("b", "server", instrs))
        pf.on_code_miss(0, 0.0, 40.0)
        assert pf.stats.stopped_by_branch == 1
        assert not h.l1i[0].contains(0x500040 >> 6)

    def test_continues_through_trained_branch(self):
        h, pred, pf = make_env()
        # Train the predictor+BTB on the branch first.
        for _ in range(32):
            pred.predict_and_update(0x400040, True, 0x500000)
        instrs = [Instr(0x400000, Op.ALU)]
        instrs.append(Instr(0x400040, Op.BRANCH, taken=True, target=0x500000))
        for k in range(12):
            instrs.append(Instr(0x500000 + k * 16, Op.ALU))
        pf.set_trace(Trace("b", "server", instrs))
        pf.on_code_miss(0, 0.0, 40.0)
        assert h.l1i[0].contains(0x500000 >> 6)

    def test_cyclic_position_for_mp_replay(self):
        h, pred, pf = make_env()
        trace = straight_line_trace(4)
        pf.set_trace(trace)
        # idx beyond the trace length wraps (warmup+measure indexing)
        pf.on_code_miss(len(trace.instrs) + 1, 0.0, 40.0)
        assert pf.stats.activations == 1
