"""Tests for the WAL-backed job queue: state machine, leases, admission,
dedup, shedding, circuit breaker and crash-recovery replay."""

import pytest

from repro.errors import (
    CircuitOpen,
    JobNotFound,
    JobStateError,
    QueueFull,
    QuotaExceeded,
)
from repro.service.journal import Journal
from repro.service.queue import (
    CANCELLED,
    DONE,
    FAILED,
    LEASED,
    PENDING,
    JobQueue,
)


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_queue(tmp_path, clock=None, **kwargs):
    kwargs.setdefault("max_depth", 8)
    kwargs.setdefault("quota", 8)
    kwargs.setdefault("lease_s", 60.0)
    kwargs.setdefault("shed_n_instrs", 1000)
    journal = Journal(tmp_path / "j.wal", fsync=False)
    return JobQueue(journal, clock=clock or FakeClock(), **kwargs)


def submit(queue, i=0, *, workload="wl", n=50_000, **kwargs):
    kwargs.setdefault("fingerprint", f"fp{i:04d}")
    kwargs.setdefault("config_name", f"cfg{i}")
    job, deduped = queue.submit({"name": f"cfg{i}"}, workload, n, **kwargs)
    return job, deduped


def reopen(queue, tmp_path, clock=None, **kwargs):
    """Simulate a crash-restart: fresh queue over the same journal."""
    queue.journal.close()
    return make_queue(tmp_path, clock=clock, **kwargs)


class TestStateMachine:
    def test_submit_lease_complete(self, tmp_path):
        queue = make_queue(tmp_path)
        job, deduped = submit(queue)
        assert (job.state, deduped) == (PENDING, False)
        leased = queue.lease("w0")
        assert leased.job_id == job.job_id
        assert leased.state == LEASED
        assert leased.attempts == 1
        done = queue.complete(job.job_id, "w0", {"ipc": 1.5})
        assert done.state == DONE
        assert done.summary == {"ipc": 1.5}
        assert queue.idle()

    def test_complete_requires_the_lease_owner(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        queue.lease("w0")
        with pytest.raises(JobStateError, match="lease owner"):
            queue.complete(job.job_id, "intruder")

    def test_complete_without_lease_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        with pytest.raises(JobStateError):
            queue.complete(job.job_id, "w0")

    def test_unknown_job(self, tmp_path):
        queue = make_queue(tmp_path)
        with pytest.raises(JobNotFound):
            queue.get("j999999")

    def test_cancel_pending_is_terminal(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        assert queue.cancel(job.job_id).state == CANCELLED
        with pytest.raises(JobStateError, match="terminal"):
            queue.cancel(job.job_id)
        assert queue.lease("w0") is None

    def test_cancel_leased_flags_then_fail_finishes_it(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        queue.lease("w0")
        assert queue.cancel(job.job_id).cancel_requested
        queue.fail(job.job_id, "w0", error_type="Cancelled", message="mid-run")
        assert queue.get(job.job_id).state == CANCELLED

    def test_fail_requeues_until_attempts_spent(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=2)
        job, _ = submit(queue)
        queue.lease("w0")
        queue.fail(job.job_id, "w0", error_type="InjectedFault", message="x")
        assert queue.get(job.job_id).state == PENDING
        queue.lease("w1")
        queue.fail(job.job_id, "w1", error_type="InjectedFault", message="x")
        refreshed = queue.get(job.job_id)
        assert refreshed.state == FAILED
        assert refreshed.error["error_type"] == "InjectedFault"
        assert refreshed.error["attempts"] == 2
        assert len(refreshed.attempt_errors) == 1  # first attempt's error

    def test_release_returns_job_to_pending(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        queue.lease("w0")
        queue.release(job.job_id, "w0")
        assert queue.get(job.job_id).state == PENDING
        assert queue.lease("w1") is not None


class TestScheduling:
    def test_priority_then_fifo(self, tmp_path):
        queue = make_queue(tmp_path)
        low, _ = submit(queue, 0, priority="low")
        normal_a, _ = submit(queue, 1, priority="normal")
        high, _ = submit(queue, 2, priority="high")
        normal_b, _ = submit(queue, 3, priority="normal")
        order = [queue.lease("w").job_id for _ in range(4)]
        assert order == [high.job_id, normal_a.job_id, normal_b.job_id, low.job_id]

    def test_unknown_priority_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        with pytest.raises(ValueError, match="priority"):
            submit(queue, priority="urgent")


class TestDedup:
    def test_active_job_deduped(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue, 0)
        again, deduped = submit(queue, 0)
        assert deduped and again.job_id == job.job_id
        assert queue.counters.deduped == 1

    def test_done_job_deduped(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue, 0)
        queue.lease("w0")
        queue.complete(job.job_id, "w0")
        again, deduped = submit(queue, 0)
        assert deduped and again.state == DONE

    def test_failed_job_resubmittable(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=1)
        job, _ = submit(queue, 0)
        queue.lease("w0")
        queue.fail(job.job_id, "w0", error_type="RunFailure", message="x")
        fresh, deduped = submit(queue, 0)
        assert not deduped and fresh.job_id != job.job_id

    def test_different_length_is_a_different_job(self, tmp_path):
        queue = make_queue(tmp_path)
        a, _ = submit(queue, 0, n=50_000)
        b, deduped = submit(queue, 0, n=100_000)
        assert not deduped and a.job_id != b.job_id


class TestAdmission:
    def test_queue_full_typed_rejection(self, tmp_path):
        queue = make_queue(tmp_path, max_depth=2, shed_watermark=1.1)
        submit(queue, 0)
        submit(queue, 1)
        with pytest.raises(QueueFull) as info:
            submit(queue, 2)
        assert info.value.retry_after_s >= 1.0
        assert queue.counters.rejected_full == 1
        assert len(queue) == 2  # nothing was enqueued

    def test_per_submitter_quota(self, tmp_path):
        queue = make_queue(tmp_path, quota=1)
        submit(queue, 0, submitter="alice")
        with pytest.raises(QuotaExceeded, match="alice"):
            submit(queue, 1, submitter="alice")
        # A different submitter still gets in.
        job, _ = submit(queue, 1, submitter="bob")
        assert job.state == PENDING
        assert queue.counters.rejected_quota == 1

    def test_terminal_jobs_free_depth_and_quota(self, tmp_path):
        queue = make_queue(tmp_path, max_depth=1, quota=1, shed_watermark=1.1)
        job, _ = submit(queue, 0, submitter="alice")
        queue.lease("w0")
        queue.complete(job.job_id, "w0")
        next_job, _ = submit(queue, 1, submitter="alice")
        assert next_job.state == PENDING


class TestLoadShedding:
    def test_low_priority_degrades_above_watermark(self, tmp_path):
        queue = make_queue(
            tmp_path, max_depth=4, shed_watermark=0.5, shed_n_instrs=1000
        )
        submit(queue, 0)
        submit(queue, 1)  # depth 2 >= 0.5 * 4: shedding active
        job, _ = submit(queue, 2, priority="low", n=50_000)
        assert job.degraded
        assert job.n_instrs == 1000
        assert job.requested_n_instrs == 50_000
        assert queue.counters.shed_degraded == 1

    def test_normal_priority_not_shed(self, tmp_path):
        queue = make_queue(tmp_path, max_depth=4, shed_watermark=0.5)
        submit(queue, 0)
        submit(queue, 1)
        job, _ = submit(queue, 2, priority="normal", n=50_000)
        assert not job.degraded and job.n_instrs == 50_000

    def test_below_watermark_low_priority_runs_full(self, tmp_path):
        queue = make_queue(tmp_path, max_depth=8, shed_watermark=0.75)
        job, _ = submit(queue, 0, priority="low", n=50_000)
        assert not job.degraded


class TestLeases:
    def test_expiry_reclaims_to_pending(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock, lease_s=10.0)
        job, _ = submit(queue)
        queue.lease("w0")
        clock.advance(11.0)
        reclaimed = queue.expire_leases()
        assert [j.job_id for j in reclaimed] == [job.job_id]
        assert queue.get(job.job_id).state == PENDING
        assert queue.counters.leases_expired == 1

    def test_renewal_defers_expiry(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock, lease_s=10.0)
        job, _ = submit(queue)
        queue.lease("w0")
        clock.advance(8.0)
        queue.renew(job.job_id, "w0")
        clock.advance(8.0)
        assert queue.expire_leases() == []
        assert queue.get(job.job_id).state == LEASED

    def test_expiry_exhausts_attempts_to_failed(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock, lease_s=10.0, max_attempts=2)
        job, _ = submit(queue)
        for _ in range(2):
            queue.lease("w0")
            clock.advance(11.0)
            queue.expire_leases()
        refreshed = queue.get(job.job_id)
        assert refreshed.state == FAILED
        assert refreshed.error["error_type"] == "LeaseExpired"


class TestCircuitBreaker:
    def crash(self, queue, job_id, worker="w0"):
        queue.lease(worker)
        queue.fail(
            job_id, worker, error_type="WorkerCrashError", message="boom"
        )

    def test_opens_after_threshold_crashes(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(
            tmp_path, clock=clock, breaker_threshold=2, max_attempts=10
        )
        job, _ = submit(queue, 0)
        self.crash(queue, job.job_id)
        self.crash(queue, job.job_id)
        # The circuit is open: the job was terminally failed and fresh
        # submissions of the same config are rejected.
        assert queue.get(job.job_id).state == FAILED
        with pytest.raises(CircuitOpen) as info:
            submit(queue, 0)
        assert info.value.retry_after_s > 0
        assert queue.counters.rejected_breaker == 1
        # Other configs are unaffected.
        other, _ = submit(queue, 1)
        assert other.state == PENDING

    def test_half_open_probe_closes_on_success(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(
            tmp_path, clock=clock, breaker_threshold=1,
            breaker_cooldown_s=100.0, max_attempts=10,
        )
        job, _ = submit(queue, 0)
        self.crash(queue, job.job_id)
        clock.advance(101.0)  # cooldown over: half-open
        probe, deduped = submit(queue, 0)
        assert not deduped
        leased = queue.lease("w1")
        assert leased.job_id == probe.job_id
        # Only one probe at a time: a second pending job of the same
        # fingerprint is withheld while the probe is in flight.
        submit(queue, 0, workload="wl2")
        assert queue.lease("w2") is None
        queue.complete(probe.job_id, "w1")
        assert queue.lease("w2") is not None  # circuit closed

    def test_half_open_probe_failure_reopens(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(
            tmp_path, clock=clock, breaker_threshold=1,
            breaker_cooldown_s=100.0, max_attempts=10,
        )
        job, _ = submit(queue, 0)
        self.crash(queue, job.job_id)
        clock.advance(101.0)
        probe, _ = submit(queue, 0)
        self.crash(queue, probe.job_id, "w1")
        with pytest.raises(CircuitOpen):
            submit(queue, 0, workload="wl3")

    def test_non_crash_failures_do_not_trip_it(self, tmp_path):
        queue = make_queue(tmp_path, breaker_threshold=1, max_attempts=10)
        job, _ = submit(queue, 0)
        queue.lease("w0")
        queue.fail(job.job_id, "w0", error_type="RunTimeoutError", message="slow")
        again, _ = submit(queue, 0, workload="wl2")
        assert again.state == PENDING


class TestRecovery:
    def test_replay_rebuilds_exact_state(self, tmp_path):
        queue = make_queue(tmp_path)
        a, _ = submit(queue, 0)
        b, _ = submit(queue, 1)
        c, _ = submit(queue, 2)
        queue.lease("w0")  # leases a? (priority fifo: a)
        queue.complete(a.job_id, "w0", {"ipc": 2.0})
        queue.cancel(c.job_id)

        recovered = reopen(queue, tmp_path)
        assert len(recovered) == 3
        assert recovered.get(a.job_id).state == DONE
        assert recovered.get(a.job_id).summary == {"ipc": 2.0}
        assert recovered.get(b.job_id).state == PENDING
        assert recovered.get(c.job_id).state == CANCELLED
        # The dedup index survives: resubmitting the done point dedups.
        again, deduped = submit(recovered, 0)
        assert deduped and again.job_id == a.job_id

    def test_leased_jobs_reclaimed_after_crash(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        queue.lease("w0")
        recovered = reopen(queue, tmp_path)
        refreshed = recovered.get(job.job_id)
        assert refreshed.state == PENDING
        assert refreshed.lease_owner is None
        assert refreshed.attempts == 1  # the dead lease still counted
        assert recovered.counters.leases_recovered == 1

    def test_lease_after_unjournaled_recovery_replays_cleanly(self, tmp_path):
        """recover_lease deliberately skips the journal (the disk is the
        suspect), so a valid WAL can carry lease-after-lease.  Replay must
        treat the second grant as a takeover — no skipped records, no
        double-counted attempt — so fsck sees a consistent journal."""
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        queue.lease("w0")
        queue.recover_lease(job.job_id, "w0")  # memory-only release
        released = queue.get(job.job_id)
        assert released.state == PENDING and released.attempts == 0
        queue.lease("w1")  # journals a lease over the still-LEASED WAL state

        recovered = reopen(queue, tmp_path)
        assert recovered.replay_stats.errors == []
        refreshed = recovered.get(job.job_id)
        assert refreshed.state == PENDING  # dead lease reclaimed at startup
        assert refreshed.attempts == 1  # the refund survives replay

    def test_breaker_state_survives_restart(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(
            tmp_path, clock=clock, breaker_threshold=1, max_attempts=10
        )
        job, _ = submit(queue, 0)
        queue.lease("w0")
        queue.fail(job.job_id, "w0", error_type="WorkerOOMError", message="oom")
        recovered = reopen(queue, tmp_path, clock=clock, breaker_threshold=1)
        with pytest.raises(CircuitOpen):
            submit(recovered, 0, workload="wl2")

    def test_compaction_preserves_state_and_bounds_journal(self, tmp_path):
        queue = make_queue(tmp_path)
        jobs = [submit(queue, i)[0] for i in range(4)]
        leased = queue.lease("w0")
        queue.complete(leased.job_id, "w0")
        queue.compact()
        records, _ = Journal(tmp_path / "j.wal", fsync=False).replay()
        assert all(r["op"] in ("job", "breaker") for r in records)
        recovered = reopen(queue, tmp_path)
        assert {j.job_id: j.state for j in recovered.jobs()} == {
            j.job_id: queue.get(j.job_id).state for j in jobs
        }

    def test_torn_journal_tail_costs_only_the_torn_record(self, tmp_path):
        queue = make_queue(tmp_path)
        a, _ = submit(queue, 0)
        b, _ = submit(queue, 1)
        queue.journal.close()
        path = tmp_path / "j.wal"
        with open(path, "ab") as fh:
            fh.write(b"J1 00000000 5 {torn")  # the crash-torn final append
        recovered = make_queue(tmp_path)
        assert recovered.replay_stats.torn_bytes > 0
        assert {j.job_id for j in recovered.jobs()} == {a.job_id, b.job_id}

    def test_stats_shape(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        stats = queue.stats()
        assert stats["depth"] == 1
        assert stats["states"]["pending"] == 1
        assert stats["counters"]["submitted"] == 1
        assert "journal_replay" in stats
