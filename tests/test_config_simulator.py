"""Tests for configurations and the single-core simulation driver."""

import dataclasses

import pytest

from repro.caches.hierarchy import Level
from repro.sim.config import (
    SimConfig,
    fig10_configs,
    fig17_configs,
    no_l2,
    skylake_client,
    skylake_server,
    with_catch,
    with_extra_latency,
)
from repro.sim.simulator import Simulator
from repro.workloads.generator import hot_loop

FAST = dict(n_instrs=8000)


class TestConfigFactories:
    def test_server_baseline_paper_values(self):
        cfg = skylake_server()
        assert cfg.l2.size_kb == 1024 and cfg.l2.latency == 15
        assert cfg.llc.size_kb == 5632 and cfg.llc.latency == 40
        assert cfg.llc_policy == "exclusive"
        assert cfg.core.rob_size == 224 and cfg.core.width == 4

    def test_client_baseline(self):
        cfg = skylake_client()
        assert cfg.l2.size_kb == 256
        assert cfg.llc_policy == "inclusive"

    def test_no_l2(self):
        cfg = no_l2(skylake_server(), 9.5)
        assert cfg.l2 is None
        assert cfg.llc.size_kb == 9.5 * 1024

    def test_with_catch(self):
        cfg = with_catch(skylake_server())
        assert cfg.is_catch
        assert cfg.catch.table_entries == 32

    def test_with_extra_latency_accumulates(self):
        cfg = with_extra_latency(skylake_server(), Level.LLC, 6)
        cfg = with_extra_latency(cfg, Level.LLC, 6)
        assert dict(cfg.extra_latency)[Level.LLC] == 12

    def test_scaled_divides_capacity(self):
        cfg = skylake_server(capacity_scale=4)
        assert cfg.scaled(cfg.l2).size_kb == 256
        assert cfg.scaled(None) is None

    def test_describe_mentions_pieces(self):
        text = with_catch(skylake_server()).describe()
        assert "L2" in text and "CATCH" in text

    def test_config_hashable(self):
        assert hash(skylake_server()) == hash(skylake_server())
        assert skylake_server() == skylake_server()

    def test_fig_config_lists(self):
        assert len(fig10_configs()) == 5
        assert len(fig17_configs()) == 4


class TestSimulator:
    def test_build_hierarchy_scaled(self):
        sim = Simulator(skylake_server())
        h = sim.build_hierarchy(1)
        assert h.l2[0].size_bytes == 256 * 1024
        assert h.llc.latency == 40

    def test_run_by_name(self):
        r = Simulator(skylake_server()).run("hmmer_like", **FAST)
        assert r.workload == "hmmer_like"
        assert r.category == "ISPEC"
        assert 0 < r.ipc <= 4.0
        assert r.instructions > 0
        assert r.activity is not None

    def test_run_by_trace(self):
        trace = hot_loop("custom", "ISPEC", 4000, ws_bytes=16 << 10)
        r = Simulator(skylake_server()).run(trace, warmup=False)
        assert r.workload == "custom"
        assert r.instructions == len(trace)

    def test_trace_warmup_halves(self):
        trace = hot_loop("custom", "ISPEC", 4000, ws_bytes=16 << 10)
        r = Simulator(skylake_server()).run(trace, warmup=True)
        assert r.instructions == len(trace) - len(trace) // 2

    def test_determinism(self):
        a = Simulator(skylake_server()).run("hmmer_like", **FAST)
        b = Simulator(skylake_server()).run("hmmer_like", **FAST)
        assert a.cycles == b.cycles

    def test_unknown_workload_raises(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown workload"):
            Simulator(skylake_server()).run("quake_like", **FAST)

    def test_catch_config_builds_engine(self):
        from repro.core.catch_engine import CatchEngine

        sim = Simulator(with_catch(skylake_server()))
        assert isinstance(sim.make_engine(), CatchEngine)

    def test_speedup_over_same_workload_only(self):
        sim = Simulator(skylake_server())
        a = sim.run("hmmer_like", **FAST)
        b = sim.run("mcf_like", **FAST)
        with pytest.raises(ValueError):
            a.speedup_over(b)


class TestPaperShapes:
    """Slow-ish end-to-end assertions of the paper's headline directions."""

    def test_removing_l2_hurts_l2_resident_workload(self):
        base = Simulator(skylake_server()).run("hmmer_like", n_instrs=20_000)
        nol2 = Simulator(no_l2(skylake_server(), 6.5)).run(
            "hmmer_like", n_instrs=20_000
        )
        assert nol2.ipc < base.ipc * 0.7

    def test_catch_recovers_most_of_the_loss(self):
        base = Simulator(skylake_server()).run("hmmer_like", n_instrs=20_000)
        cfg = with_catch(no_l2(skylake_server(), 6.5))
        rec = Simulator(cfg).run("hmmer_like", n_instrs=20_000)
        assert rec.ipc > base.ipc * 0.85

    def test_feeder_lifts_gather_workload(self):
        # mcf's gather pool is sized for the default 40K trace length: the
        # permutation must wrap so the pool is resident in the measured half.
        base = Simulator(skylake_server()).run("mcf_like", n_instrs=40_000)
        catch = Simulator(with_catch(skylake_server())).run(
            "mcf_like", n_instrs=40_000
        )
        assert catch.ipc > base.ipc * 1.05

    def test_pointer_chase_unhelped(self):
        base = Simulator(skylake_server()).run("namd_like", n_instrs=20_000)
        catch = Simulator(with_catch(skylake_server())).run(
            "namd_like", n_instrs=20_000
        )
        assert catch.ipc == pytest.approx(base.ipc, rel=0.03)
