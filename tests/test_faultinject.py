"""Tests for the deterministic fault-injection harness."""

import math

import pytest

from repro.errors import InjectedFault, ResultIntegrityError
from repro.runner import FaultInjector
from repro.runner.runner import validate_result
from repro.sim.config import no_l2, skylake_server
from repro.workloads.suites import build_trace

N = 2000
CFG = skylake_server()


class TestRaise:
    def test_raises_at_the_chosen_instruction(self):
        injector = FaultInjector(kind="raise", at_instruction=321)
        sim = injector.simulator_factory(CFG)
        with pytest.raises(InjectedFault, match="instruction 321"):
            sim.run("hmmer_like", N)
        assert injector.fired == 1

    def test_deterministic_across_runs(self):
        messages = set()
        for _ in range(2):
            injector = FaultInjector(kind="raise", at_instruction=500)
            with pytest.raises(InjectedFault) as info:
                injector.simulator_factory(CFG).run("hmmer_like", N)
            messages.add(str(info.value))
        assert len(messages) == 1

    def test_times_budget_respected(self):
        injector = FaultInjector(kind="raise", at_instruction=500, times=1)
        with pytest.raises(InjectedFault):
            injector.simulator_factory(CFG).run("hmmer_like", N)
        # Budget spent: the same injector now lets runs through.
        result = injector.simulator_factory(CFG).run("hmmer_like", N)
        assert result.ipc > 0

    def test_workload_filter(self):
        injector = FaultInjector(kind="raise", at_instruction=500,
                                 workload="mcf_like")
        result = injector.simulator_factory(CFG).run("hmmer_like", N)
        assert result.ipc > 0
        with pytest.raises(InjectedFault):
            injector.simulator_factory(CFG).run("mcf_like", N)

    def test_config_filter(self):
        injector = FaultInjector(kind="raise", at_instruction=500,
                                 config_substr="noL2")
        assert injector.simulator_factory(CFG).run("hmmer_like", N).ipc > 0
        with pytest.raises(InjectedFault):
            injector.simulator_factory(no_l2(CFG, 6.5)).run("hmmer_like", N)


class TestCorruptTrace:
    def test_corrupt_trace_crashes_the_run(self):
        injector = FaultInjector(kind="corrupt-trace", at_instruction=700)
        with pytest.raises(Exception) as info:
            injector.simulator_factory(CFG).run("hmmer_like", N)
        assert not isinstance(info.value, InjectedFault)  # looks like a real bug

    def test_shared_memoised_trace_is_untouched(self):
        spec_len = 2 * N  # what the simulator materialises with warmup
        before = build_trace("hmmer_like", spec_len)
        record = before.instrs[700]
        injector = FaultInjector(kind="corrupt-trace", at_instruction=700)
        with pytest.raises(Exception):
            injector.simulator_factory(CFG).run("hmmer_like", N)
        after = build_trace("hmmer_like", spec_len)
        assert after is before
        assert after.instrs[700] is record


class TestNaNMetrics:
    def test_nan_metrics_fail_integrity_validation(self):
        injector = FaultInjector(kind="nan-metrics")
        result = injector.simulator_factory(CFG).run("hmmer_like", N)
        assert math.isnan(result.cycles)
        with pytest.raises(ResultIntegrityError, match="non-finite cycles"):
            validate_result(result)


class TestSpecParsing:
    def test_full_spec(self):
        injector = FaultInjector.from_spec(
            "raise:workload=mcf_like:at=2000:config=CATCH:times=3"
        )
        assert injector.kind == "raise"
        assert injector.at_instruction == 2000
        assert injector.workload == "mcf_like"
        assert injector.config_substr == "CATCH"
        assert injector.times == 3

    def test_kind_only(self):
        assert FaultInjector.from_spec("nan-metrics").kind == "nan-metrics"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultInjector.from_spec("segfault")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultInjector.from_spec("raise:pc=12")

    def test_malformed_segment_rejected(self):
        with pytest.raises(ValueError, match="bad fault spec segment"):
            FaultInjector.from_spec("raise:at")
