"""Tests for the deterministic fault-injection harness."""

import math

import pytest

from repro.errors import InjectedFault, ResultIntegrityError
from repro.runner import FaultInjector
from repro.runner.runner import validate_result
from repro.sim.config import no_l2, skylake_server
from repro.workloads.suites import build_trace

N = 2000
CFG = skylake_server()


class TestRaise:
    def test_raises_at_the_chosen_instruction(self):
        injector = FaultInjector(kind="raise", at_instruction=321)
        sim = injector.simulator_factory(CFG)
        with pytest.raises(InjectedFault, match="instruction 321"):
            sim.run("hmmer_like", N)
        assert injector.fired == 1

    def test_deterministic_across_runs(self):
        messages = set()
        for _ in range(2):
            injector = FaultInjector(kind="raise", at_instruction=500)
            with pytest.raises(InjectedFault) as info:
                injector.simulator_factory(CFG).run("hmmer_like", N)
            messages.add(str(info.value))
        assert len(messages) == 1

    def test_times_budget_respected(self):
        injector = FaultInjector(kind="raise", at_instruction=500, times=1)
        with pytest.raises(InjectedFault):
            injector.simulator_factory(CFG).run("hmmer_like", N)
        # Budget spent: the same injector now lets runs through.
        result = injector.simulator_factory(CFG).run("hmmer_like", N)
        assert result.ipc > 0

    def test_workload_filter(self):
        injector = FaultInjector(kind="raise", at_instruction=500,
                                 workload="mcf_like")
        result = injector.simulator_factory(CFG).run("hmmer_like", N)
        assert result.ipc > 0
        with pytest.raises(InjectedFault):
            injector.simulator_factory(CFG).run("mcf_like", N)

    def test_config_filter(self):
        injector = FaultInjector(kind="raise", at_instruction=500,
                                 config_substr="noL2")
        assert injector.simulator_factory(CFG).run("hmmer_like", N).ipc > 0
        with pytest.raises(InjectedFault):
            injector.simulator_factory(no_l2(CFG, 6.5)).run("hmmer_like", N)


class TestCorruptTrace:
    def test_corrupt_trace_crashes_the_run(self):
        injector = FaultInjector(kind="corrupt-trace", at_instruction=700)
        with pytest.raises(Exception) as info:
            injector.simulator_factory(CFG).run("hmmer_like", N)
        assert not isinstance(info.value, InjectedFault)  # looks like a real bug

    def test_shared_memoised_trace_is_untouched(self):
        spec_len = 2 * N  # what the simulator materialises with warmup
        before = build_trace("hmmer_like", spec_len)
        record = before.instrs[700]
        injector = FaultInjector(kind="corrupt-trace", at_instruction=700)
        with pytest.raises(Exception):
            injector.simulator_factory(CFG).run("hmmer_like", N)
        after = build_trace("hmmer_like", spec_len)
        assert after is before
        assert after.instrs[700] is record


class TestNaNMetrics:
    def test_nan_metrics_fail_integrity_validation(self):
        injector = FaultInjector(kind="nan-metrics")
        result = injector.simulator_factory(CFG).run("hmmer_like", N)
        assert math.isnan(result.cycles)
        with pytest.raises(ResultIntegrityError, match="non-finite cycles"):
            validate_result(result)


class TestWorkerKinds:
    """The process-killing kinds, tested without killing the test process:
    spec plumbing and hook construction here; actual containment end to end
    in ``test_fleet.py``."""

    def test_worker_kinds_are_valid_specs(self):
        from repro.runner import WORKER_KINDS

        for kind in WORKER_KINDS:
            injector = FaultInjector.from_spec(f"{kind}:at=500:times=2")
            assert injector.kind == kind
            assert injector.at_instruction == 500
            assert injector.times == 2

    def test_unfired_worker_fault_passes_through(self):
        injector = FaultInjector(kind="worker-crash", workload="mcf_like")
        result = injector.simulator_factory(CFG).run("hmmer_like", N)
        assert result.ipc > 0
        assert injector.fired == 0

    def test_crash_hook_exits_the_process(self, monkeypatch):
        from repro.runner.faultinject import WORKER_CRASH_EXIT, _worker_fault_hook

        exits = []
        monkeypatch.setattr("os._exit", exits.append)
        hook = _worker_fault_hook("worker-crash", target=100, on_instruction=None)
        hook(99)
        assert exits == []
        hook(100)
        assert exits == [WORKER_CRASH_EXIT]

    def test_hooks_chain_the_inner_hook_until_tripped(self):
        from repro.runner.faultinject import _worker_fault_hook

        seen = []
        hook = _worker_fault_hook(
            "worker-crash", target=10**9, on_instruction=seen.append
        )
        hook(1)
        hook(2)
        assert seen == [1, 2]


class TestSpecParsing:
    def test_full_spec(self):
        injector = FaultInjector.from_spec(
            "raise:workload=mcf_like:at=2000:config=CATCH:times=3"
        )
        assert injector.kind == "raise"
        assert injector.at_instruction == 2000
        assert injector.workload == "mcf_like"
        assert injector.config_substr == "CATCH"
        assert injector.times == 3

    def test_kind_only(self):
        assert FaultInjector.from_spec("nan-metrics").kind == "nan-metrics"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultInjector.from_spec("segfault")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultInjector.from_spec("raise:pc=12")

    def test_malformed_segment_rejected(self):
        with pytest.raises(ValueError, match="bad fault spec segment"):
            FaultInjector.from_spec("raise:at")
