"""Unit tests for the observability subsystem (repro.obs)."""

import io
import json
import logging

import pytest

import repro.obs as obs
from repro.obs import (
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    Progress,
    TraceCollector,
    validate_trace_events,
)
from repro.obs.logs import configure_logging, get_logger, log_event, reset_logging


class TestRegistry:
    def test_counter_gauge(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc()
        c.inc(4)
        reg.gauge("g").set(2.5)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 2.5

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_histogram_bucketing(self):
        h = Histogram("lat", bounds=(10, 20, 30))
        for v in (5, 10, 11, 25, 31, 1000):
            h.record(v)
        # <=10: 5,10 | <=20: 11 | <=30: 25 | overflow: 31,1000
        assert h.counts == [2, 1, 1, 2]
        assert h.count == 6
        assert h.mean == pytest.approx(sum((5, 10, 11, 25, 31, 1000)) / 6)

    def test_histogram_requires_sorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(3, 1))
        with pytest.raises(ValueError):
            Histogram("empty", bounds=())

    def test_provider_replacement_not_accumulation(self):
        reg = MetricsRegistry()
        reg.register_provider("p", lambda: {"v": 1})
        reg.register_provider("p", lambda: {"v": 2})
        assert reg.snapshot()["providers"] == {"p": {"v": 2}}

    def test_provider_errors_do_not_kill_snapshot(self):
        reg = MetricsRegistry()

        def broken():
            raise RuntimeError("boom")

        reg.register_provider("bad", broken)
        reg.register_provider("good", lambda: {"v": 1})
        snap = reg.snapshot()
        assert snap["providers"]["good"] == {"v": 1}
        assert "RuntimeError" in snap["providers"]["bad"]["error"]

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.gauge("g").set(1)
        NULL_REGISTRY.histogram("h").record(5)
        NULL_REGISTRY.register_provider("p", lambda: {"v": 1})
        assert NULL_REGISTRY.snapshot() == {}
        assert not NULL_REGISTRY.enabled

    def test_active_registry_scoping(self):
        assert obs.metrics() is NULL_REGISTRY
        with obs.use_metrics() as reg:
            assert obs.metrics() is reg
            assert reg.enabled
        assert obs.metrics() is NULL_REGISTRY


class TestTracing:
    def test_span_records_complete_event(self):
        fake_now = [0.0]
        collector = TraceCollector(clock=lambda: fake_now[0])
        with collector.span("work", args={"k": 1}):
            fake_now[0] = 0.002
        (event,) = collector.events
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["ts"] == 0.0
        assert event["dur"] == pytest.approx(2000.0)  # microseconds
        assert event["args"] == {"k": 1}

    def test_span_recorded_even_on_exception(self):
        collector = TraceCollector()
        with pytest.raises(RuntimeError):
            with collector.span("broken"):
                raise RuntimeError
        assert [e["name"] for e in collector.events] == ["broken"]

    def test_instant_and_counter_events_validate(self):
        collector = TraceCollector()
        collector.instant("marker")
        collector.counter("ipc", {"value": 1.5})
        assert validate_trace_events(collector.to_payload()) == []

    def test_file_round_trip(self, tmp_path):
        collector = TraceCollector()
        with collector.span("outer"):
            with collector.span("inner"):
                pass
        path = tmp_path / "trace.json"
        collector.write(path)
        payload = obs.load_trace(path)
        assert validate_trace_events(payload) == []
        assert [e["name"] for e in payload["traceEvents"]] == ["inner", "outer"]
        assert payload["displayTimeUnit"] == "ms"

    def test_validator_rejects_garbage(self):
        assert validate_trace_events([]) != []
        assert validate_trace_events({"traceEvents": 3}) != []
        assert validate_trace_events({"traceEvents": [{"ph": "Z"}]}) != []
        bad_dur = {
            "traceEvents": [
                {"name": "x", "cat": "c", "ph": "X", "ts": 1, "dur": -1,
                 "pid": 1, "tid": 0}
            ]
        }
        assert any("dur" in p for p in validate_trace_events(bad_dur))

    def test_module_span_is_noop_without_tracer(self):
        assert obs.tracer() is None
        with obs.span("nothing"):
            pass  # must not raise and must not record anywhere
        obs.instant("nothing")

    def test_module_span_routes_to_active_tracer(self):
        with obs.use_tracer() as collector:
            with obs.span("step"):
                pass
        assert [e["name"] for e in collector.events] == ["step"]
        assert obs.tracer() is None


class TestLogging:
    def teardown_method(self):
        reset_logging()

    def test_silent_by_default(self, capsys):
        get_logger("test").warning("should vanish")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_jsonl_output(self):
        stream = io.StringIO()
        configure_logging("info", json_lines=True, stream=stream)
        log_event(get_logger("unit"), logging.INFO, "hello", answer=42)
        record = json.loads(stream.getvalue())
        assert record["event"] == "hello"
        assert record["answer"] == 42
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.unit"

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging("warning", json_lines=True, stream=stream)
        log_event(get_logger("unit"), logging.INFO, "dropped")
        log_event(get_logger("unit"), logging.WARNING, "kept")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "kept"

    def test_reconfigure_replaces_handler(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging("info", json_lines=True, stream=first)
        configure_logging("info", json_lines=True, stream=second)
        log_event(get_logger("unit"), logging.INFO, "once")
        assert first.getvalue() == ""
        assert len(second.getvalue().splitlines()) == 1

    def test_log_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        configure_logging("info", json_lines=True, path=str(path))
        log_event(get_logger("unit"), logging.INFO, "to file")
        reset_logging()
        assert json.loads(path.read_text())["event"] == "to file"


class TestConsole:
    def test_default_is_print(self, capsys):
        obs.console("hello world")
        assert capsys.readouterr().out == "hello world\n"

    def test_json_mode_goes_to_log(self, capsys):
        stream = io.StringIO()
        configure_logging("info", json_lines=True, stream=stream)
        previous = obs.set_console_json(True)
        try:
            obs.console("figure text", experiment="fig10")
        finally:
            obs.set_console_json(previous)
            reset_logging()
        assert capsys.readouterr().out == ""
        record = json.loads(stream.getvalue())
        assert record["event"] == "figure text"
        assert record["experiment"] == "fig10"


class TestProgress:
    def test_ticks_with_eta(self):
        stream = io.StringIO()
        fake_now = [0.0]
        progress = Progress(
            4, label="sweep", stream=stream, clock=lambda: fake_now[0]
        )
        fake_now[0] = 10.0
        line = progress.tick("fig01")
        assert line.startswith("sweep [1/4] fig01")
        assert "elapsed 10.0s" in line
        assert "ETA 30.0s" in line  # 10s/item * 3 remaining

    def test_final_tick_has_no_eta(self):
        stream = io.StringIO()
        progress = Progress(1, stream=stream, clock=lambda: 0.0)
        line = progress.tick("only")
        assert "ETA" not in line
        assert "[1/1]" in line

    def test_output_goes_to_stream_not_stdout(self, capsys):
        stream = io.StringIO()
        Progress(2, stream=stream, clock=lambda: 0.0).tick("x")
        assert capsys.readouterr().out == ""
        assert "[1/2]" in stream.getvalue()


class TestProfiling:
    def test_profiled_emits_report(self):
        stream = io.StringIO()
        with obs.profiled(stream=stream, top=5):
            sum(range(1000))
        text = stream.getvalue()
        assert "cProfile" in text
        assert "cumulative" in text

    def test_disabled_is_transparent(self):
        stream = io.StringIO()
        with obs.profiled(enabled=False, stream=stream) as prof:
            assert prof is None
        assert stream.getvalue() == ""

    def test_phase_timer_accumulates(self):
        fake_now = [0.0]
        timer = obs.PhaseTimer(clock=lambda: fake_now[0])
        with timer.phase("measure"):
            fake_now[0] = 1.0
        with timer.phase("measure"):
            fake_now[0] = 1.5
        assert timer.to_dict() == {"measure": pytest.approx(1.5)}
