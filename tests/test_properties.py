"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.cache import Cache
from repro.caches.hierarchy import CacheHierarchy, LevelSpec
from repro.core.critical_table import CriticalLoadTable
from repro.core.ddg import BufferedDDG, dequantize, quantize_latency
from repro.core.tact.deep_self import DeepSelfState
from repro.cpu.core import CoreParams, OOOCore
from repro.cpu.engine import RetireRecord
from repro.memory.controller import MemoryController
from repro.memory.dram import DRAM
from repro.workloads.trace import Instr, Op, Trace

lines = st.integers(min_value=0, max_value=1 << 20)


class TestCacheProperties:
    @given(st.lists(st.tuples(lines, st.booleans()), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded_and_residency_consistent(self, ops):
        cache = Cache("P", 2048, 2, 1)
        for line, is_fill in ops:
            if is_fill:
                cache.fill(line, 0.0)
            else:
                cache.access(line, 0.0)
        assert cache.occupancy() <= cache.num_sets * cache.assoc
        for line in cache.resident_lines():
            assert cache.contains(line)

    @given(st.lists(lines, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_fill_then_access_always_hits(self, addrs):
        cache = Cache("P", 64 * 1024, 8, 1)  # big enough: no eviction
        distinct = list(dict.fromkeys(addrs))[:500]
        for line in distinct:
            cache.fill(line, 0.0)
        for line in distinct:
            assert cache.access(line, 1.0) is not None

    @given(st.lists(lines, max_size=300), st.sampled_from(["lru", "srrip", "nru"]))
    @settings(max_examples=30, deadline=None)
    def test_stats_accounting_consistent(self, addrs, policy):
        cache = Cache("P", 1024, 2, 1, replacement=policy)
        for line in addrs:
            if cache.access(line, 0.0) is None:
                cache.fill(line, 0.0)
        assert cache.stats.hits + cache.stats.misses == len(addrs)
        assert cache.stats.fills == cache.stats.misses
        assert cache.stats.evictions <= cache.stats.fills


class TestHierarchyProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 4095), st.booleans()),
            min_size=1,
            max_size=400,
        ),
        st.sampled_from(["exclusive", "inclusive"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_inclusion_invariants_under_random_traffic(self, ops, policy):
        h = CacheHierarchy(
            1,
            l1i=LevelSpec(1, 2, 5),
            l1d=LevelSpec(1, 2, 5),
            l2=LevelSpec(4, 4, 15),
            llc=LevelSpec(16, 4, 40),
            llc_policy=policy,
            memory=MemoryController(fixed_latency=100),
        )
        t = 0.0
        for line, is_store in ops:
            t += 50.0
            if is_store:
                h.store(0, 0x400, line, t)
            else:
                h.load(0, 0x400, line, t)
        assert h.check_inclusion() == []

    @given(st.lists(st.integers(0, 2047), min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_latencies_positive_and_level_consistent(self, linestream):
        h = CacheHierarchy(
            1,
            l1i=LevelSpec(1, 2, 5),
            l1d=LevelSpec(1, 2, 5),
            l2=LevelSpec(4, 4, 15),
            llc=LevelSpec(16, 4, 40),
            memory=MemoryController(fixed_latency=100),
        )
        t = 0.0
        for line in linestream:
            t += 100.0
            r = h.load(0, 0x400, line, t)
            assert r.latency >= 5
            assert r.latency <= 5 + 15 + 40 + 100 + 1


class TestDRAMProperties:
    @given(st.lists(st.tuples(lines, st.floats(0, 1e6)), max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_read_latency_bounds(self, reqs):
        d = DRAM()
        now = 0.0
        for line, gap in sorted(reqs, key=lambda x: x[1]):
            now = max(now, gap)
            lat = d.read(line, now)
            assert lat > 0

    @given(lines)
    @settings(max_examples=100, deadline=None)
    def test_mapping_total(self, line):
        d = DRAM()
        ch, bank, row = d.map_address(line)
        assert 0 <= ch < d.config.channels
        assert 0 <= bank < d.config.total_banks
        assert row >= 0


class TestDDGProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5),        # op selector
                st.integers(1, 300),      # latency
                st.booleans(),            # depends on previous
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_node_costs_monotone_and_walk_terminates(self, items):
        g = BufferedDDG(rob_size=16)
        for idx, (opsel, lat, dep) in enumerate(items):
            rec = RetireRecord(
                idx=idx,
                instr=Instr(0x400 + 4 * (idx % 64), Op(opsel % 6), addr=idx * 64),
                exec_lat=float(lat),
                producers=(idx - 1,) if dep and idx else (),
                level=None,
                mispredicted=opsel == 5,
                e_time=0.0,
            )
            g.add(rec)
            if g.buffered:
                node = g._buffer[-1]
                assert node.c_cost >= node.e_cost >= node.d_cost >= 0
        g.walk()  # must terminate regardless of structure

    @given(st.integers(0, 100_000))
    @settings(max_examples=200, deadline=None)
    def test_quantization_bounds(self, lat):
        q = quantize_latency(lat)
        assert 0 <= q <= 31
        assert dequantize(q) <= max(lat, 31 * 8)


class TestDeepSelfProperties:
    @given(st.lists(st.integers(-(1 << 16), 1 << 16), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_counters_stay_in_hardware_ranges(self, deltas):
        s = DeepSelfState()
        addr = 1 << 20
        for d in deltas:
            addr = max(0, addr + d)
            s.observe(addr)
            assert 0 <= s.run_length <= 32
            assert 1 <= s.safe_length <= 32
            assert 0 <= s.safe_conf <= 3
            assert 0 <= s.stride_conf <= 3

    @given(st.integers(1, 1024), st.integers(5, 50))
    @settings(max_examples=30, deadline=None)
    def test_stable_stride_prefetches_forward(self, stride_lines, count):
        s = DeepSelfState()
        stride = stride_lines * 64
        addr = 0
        for _ in range(count):
            out = s.observe(addr)
            for p in out:
                assert p > addr  # never prefetch behind a positive stride
            addr += stride


class TestCriticalTableProperties:
    @given(st.lists(st.integers(0, 1 << 30), max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_capacity_and_confidence_invariants(self, pcs):
        t = CriticalLoadTable(entries=32, ways=8)
        for pc in pcs:
            t.observe_critical(pc)
            t.tick_retire(10)
        assert t.resident_count() <= 32
        assert t.critical_count() <= t.resident_count()


class TestCoreProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.booleans(), st.integers(0, 63)),
            min_size=5,
            max_size=150,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_commit_times_monotone(self, items):
        h = CacheHierarchy(
            1,
            l1i=LevelSpec(1, 2, 5),
            l1d=LevelSpec(1, 2, 5),
            l2=LevelSpec(4, 4, 15),
            llc=LevelSpec(16, 4, 40),
            memory=MemoryController(fixed_latency=100),
        )
        instrs = []
        for opsel, dep, line in items:
            op = [Op.ALU, Op.LOAD, Op.MUL, Op.STORE][opsel]
            instrs.append(
                Instr(
                    0x400000,
                    op,
                    srcs=(1,) if dep else (),
                    dst=1 if op is not Op.STORE else -1,
                    addr=line * 64 if op in (Op.LOAD, Op.STORE) else -1,
                )
            )
        core = OOOCore(0, h, CoreParams(rob_size=16, width=2))
        trace = Trace("p", "ISPEC", instrs)
        core.start(trace)
        last = 0.0
        for idx, ins in enumerate(instrs):
            c = core.step(idx, ins)
            assert c >= last
            last = c
        assert core.time > 0
