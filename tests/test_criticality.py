"""Integration tests: criticality detection end to end on a live core."""

from repro.caches.hierarchy import CacheHierarchy, Level, LevelSpec
from repro.core.catch_engine import CatchConfig, CatchEngine
from repro.core.criticality import CriticalityDetector, detector_area
from repro.cpu.core import CoreParams, OOOCore
from repro.memory.controller import MemoryController
from repro.workloads.generator import hot_loop, streaming
from repro.workloads.trace import Instr, Op, Trace


def make_hierarchy():
    return CacheHierarchy(
        1,
        l1i=LevelSpec(8, 8, 5),
        l1d=LevelSpec(8, 8, 5),
        l2=LevelSpec(128, 8, 15),
        llc=LevelSpec(512, 8, 40),
        memory=MemoryController(fixed_latency=160),
    )


def run_with_detector(trace, params=None):
    engine = CatchEngine(CatchConfig(detector_only=True))
    core = OOOCore(0, make_hierarchy(), params or CoreParams(), engine)
    # Warm + measure so the working set is resident.
    core.run(trace)
    core.run(trace)
    return engine.detector


class TestDetectorOnCore:
    def test_l2_chain_loads_flagged(self):
        """An L2-resident serial load chain must produce critical PCs."""
        trace = hot_loop("t", "ISPEC", 30_000, ws_bytes=48 << 10, chain_loads=3)
        det = run_with_detector(trace)
        assert det.table.critical_count() >= 1
        assert det.graph.stats.walks > 10

    def test_l1_resident_loop_barely_flagged(self):
        """Once the working set is L1-resident, critical observations stop
        (cold-start misses may leave a few stale saturated entries, which is
        the hardware's behaviour too — they only age out via LRU/epochs)."""
        trace = hot_loop("t", "ISPEC", 20_000, ws_bytes=2 << 10, chain_loads=2)
        l1_det = run_with_detector(trace)
        l2_trace = hot_loop("t", "ISPEC", 20_000, ws_bytes=48 << 10, chain_loads=2)
        l2_det = run_with_detector(l2_trace)
        l1_obs = sum(l1_det.critical_pc_counts.values())
        l2_obs = sum(l2_det.critical_pc_counts.values())
        assert l2_obs > 2 * l1_obs

    def test_independent_stream_rarely_critical(self):
        """Independent streaming loads are hidden by MLP; the critical path
        runs through dispatch, not the loads."""
        trace = streaming("t", "FSPEC", 20_000, ws_bytes=64 << 10)
        det = run_with_detector(trace)
        chain = hot_loop("t2", "ISPEC", 20_000, ws_bytes=48 << 10, chain_loads=3)
        det_chain = run_with_detector(chain)
        stream_hits = sum(det.critical_pc_counts.values())
        chain_hits = sum(det_chain.critical_pc_counts.values())
        assert chain_hits > stream_hits

    def test_top_critical_pcs_ranked(self):
        trace = hot_loop("t", "ISPEC", 30_000, ws_bytes=48 << 10, chain_loads=3)
        det = run_with_detector(trace)
        top = det.top_critical_pcs(4)
        counts = [det.critical_pc_counts[pc] for pc in top]
        assert counts == sorted(counts, reverse=True)


class TestDetectorUnit:
    def test_record_levels_filter(self):
        from repro.cpu.engine import RetireRecord

        det = CriticalityDetector(rob_size=4, record_levels=(int(Level.L2),))
        # Build a window where an LLC-serving load is critical; it must NOT
        # be recorded because only L2 is in record_levels.
        for i in range(8):
            det.on_retire(
                RetireRecord(
                    idx=i,
                    instr=Instr(0x100, Op.LOAD, addr=i * 64),
                    exec_lat=40.0,
                    producers=(i - 1,) if i else (),
                    level=Level.LLC,
                    mispredicted=False,
                    e_time=0.0,
                )
            )
        assert det.table.resident_count() == 0
        assert det.critical_pc_counts  # still counted for oracle ranking

    def test_area_about_3kb(self):
        area = detector_area(224, 32)
        assert 2.5 <= area.total_kb <= 4.0


class TestCatchEngineWiring:
    def test_attach_creates_components(self):
        engine = CatchEngine()
        core = OOOCore(0, make_hierarchy(), CoreParams(), engine)
        trace = Trace("t", "ISPEC", [Instr(0, Op.ALU)])
        core.run(trace)
        assert engine.detector is not None
        assert engine.tact is not None
        assert core.frontend.on_code_miss is not None

    def test_detector_only_has_no_tact(self):
        engine = CatchEngine(CatchConfig(detector_only=True))
        core = OOOCore(0, make_hierarchy(), CoreParams(), engine)
        core.run(Trace("t", "ISPEC", [Instr(0, Op.ALU)]))
        assert engine.tact is None

    def test_reattach_same_core_keeps_state(self):
        engine = CatchEngine()
        core = OOOCore(0, make_hierarchy(), CoreParams(), engine)
        core.run(Trace("t", "ISPEC", [Instr(0, Op.ALU)]))
        detector = engine.detector
        core.run(Trace("t", "ISPEC", [Instr(0, Op.ALU)]))
        assert engine.detector is detector

    def test_reset_stats_clears_tact_counters(self):
        trace = hot_loop("t", "ISPEC", 20_000, ws_bytes=48 << 10, chain_loads=3)
        engine = CatchEngine()
        core = OOOCore(0, make_hierarchy(), CoreParams(), engine)
        core.run(trace)
        core.run(trace)
        engine.reset_stats()
        assert engine.tact.stats.issued == 0

    def test_catch_prefetches_on_l2_chain(self):
        trace = hot_loop("t", "ISPEC", 30_000, ws_bytes=48 << 10, chain_loads=3)
        engine = CatchEngine()
        core = OOOCore(0, make_hierarchy(), CoreParams(), engine)
        core.run(trace)
        core.run(trace)
        assert engine.tact.stats.deep_prefetches > 100
