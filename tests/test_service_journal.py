"""Tests for the crash-safe write-ahead journal (repro.service.journal).

The centrepiece is the byte-boundary crash property: a journal truncated at
*every possible byte offset* — simulating ``kill -9`` at any instant of a
write — must replay to an exact prefix of the committed records, never to
garbage, a suffix, or an error.
"""

import os

import pytest

from repro.errors import JournalError
from repro.service.journal import Journal, decode_line, encode_record


def record(i: int) -> dict:
    return {"op": "test", "seq": i, "payload": f"value-{i}" * (i % 3 + 1)}


def write_journal(path, n: int) -> list[dict]:
    records = [record(i) for i in range(n)]
    with Journal(path) as journal:
        for payload in records:
            journal.append(payload)
    return records


class TestFormat:
    def test_encode_decode_round_trip(self):
        payload = {"op": "x", "nested": {"a": [1, 2]}, "s": "héllo"}
        assert decode_line(encode_record(payload)) == payload

    def test_missing_newline_is_torn(self):
        line = encode_record({"op": "x"})
        with pytest.raises(ValueError, match="torn"):
            decode_line(line[:-1])

    def test_flipped_byte_fails_checksum(self):
        line = bytearray(encode_record({"op": "x", "v": 12345}))
        line[-5] ^= 0xFF
        with pytest.raises(ValueError, match="checksum|length|header"):
            decode_line(bytes(line))


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.wal"
        records = write_journal(path, 5)
        replayed, stats = Journal(path).replay()
        assert replayed == records
        assert stats.records == 5
        assert stats.torn_bytes == 0
        assert stats.errors == []

    def test_missing_journal_is_empty(self, tmp_path):
        replayed, stats = Journal(tmp_path / "absent.wal").replay()
        assert replayed == []
        assert stats.records == 0

    def test_each_append_is_fsynced(self, tmp_path, monkeypatch):
        fsyncs = []
        real = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: fsyncs.append(fd) or real(fd))
        with Journal(tmp_path / "j.wal") as journal:
            journal.append({"op": "a"})
            first = len(fsyncs)
            journal.append({"op": "b"})
        assert first >= 1
        assert len(fsyncs) > first

    def test_no_fsync_mode_skips_fsync(self, tmp_path, monkeypatch):
        fsyncs = []
        monkeypatch.setattr(os, "fsync", lambda fd: fsyncs.append(fd))
        with Journal(tmp_path / "j.wal", fsync=False) as journal:
            journal.append({"op": "a"})
        assert fsyncs == []

    def test_replay_on_open_journal_refused(self, tmp_path):
        journal = Journal(tmp_path / "j.wal")
        journal.append({"op": "a"})
        with pytest.raises(JournalError, match="open for append"):
            journal.replay()
        journal.close()

    def test_append_after_interpreter_close_raises_journal_error(self, tmp_path):
        journal = Journal(tmp_path / "j.wal")
        journal.append({"op": "a"})
        journal._fh.close()  # simulate the handle dying under us
        with pytest.raises(JournalError, match="closed"):
            journal.append({"op": "b"})


class TestCrashRecovery:
    """Kill the writer at every byte boundary; replay must yield a prefix."""

    def test_every_byte_boundary_replays_to_a_prefix(self, tmp_path):
        records = [record(i) for i in range(4)]
        encoded = [encode_record(r) for r in records]
        blob = b"".join(encoded)
        # Committed-record count as a function of intact byte length.
        boundaries = []
        total = 0
        for line in encoded:
            total += len(line)
            boundaries.append(total)

        for cut in range(len(blob) + 1):
            path = tmp_path / f"cut-{cut}.wal"
            path.write_bytes(blob[:cut])
            replayed, stats = Journal(path).replay()
            expected = sum(1 for b in boundaries if b <= cut)
            assert replayed == records[:expected], f"cut at byte {cut}"
            assert stats.records == expected
            # The torn tail was truncated: the file now holds exactly the
            # committed prefix, so a second replay is clean.
            assert path.read_bytes() == blob[: boundaries[expected - 1] if expected else 0]
            again, stats2 = Journal(path).replay()
            assert again == records[:expected]
            assert stats2.torn_bytes == 0

    def test_corrupt_middle_byte_truncates_from_there(self, tmp_path):
        path = tmp_path / "j.wal"
        records = write_journal(path, 6)
        data = bytearray(path.read_bytes())
        # Flip a byte inside the 4th record's payload.
        offset = sum(len(encode_record(r)) for r in records[:3]) + 20
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        replayed, stats = Journal(path).replay()
        assert replayed == records[:3]
        assert stats.torn_bytes > 0
        assert stats.errors

    def test_torn_tail_preserved_in_sidecar(self, tmp_path):
        path = tmp_path / "j.wal"
        write_journal(path, 2)
        good = path.read_bytes()
        path.write_bytes(good + b"J1 deadbeef 99 {torn")
        _, stats = Journal(path).replay()
        assert stats.torn_sidecar is not None
        sidecar = tmp_path / "j.wal.torn"
        assert sidecar.read_bytes() == b"J1 deadbeef 99 {torn"
        assert path.read_bytes() == good

    def test_sidecar_collisions_are_numbered(self, tmp_path):
        path = tmp_path / "j.wal"
        for _ in range(3):
            write_journal(path, 1)
            with open(path, "ab") as fh:
                fh.write(b"garbage-tail")
            Journal(path).replay()
            path.unlink()
        names = sorted(p.name for p in tmp_path.glob("*.torn*"))
        assert names == ["j.wal.torn", "j.wal.torn.1", "j.wal.torn.2"]

    def test_append_resumes_after_truncated_replay(self, tmp_path):
        path = tmp_path / "j.wal"
        records = write_journal(path, 3)
        with open(path, "ab") as fh:
            fh.write(b"half a reco")
        journal = Journal(path)
        replayed, _ = journal.replay()
        assert replayed == records
        journal.append({"op": "after-crash"})
        journal.close()
        final, stats = Journal(path).replay()
        assert final == records + [{"op": "after-crash"}]
        assert stats.torn_bytes == 0


class TestRewriteCrash:
    """Interrupt a compaction at every syscall — and every byte *within*
    each syscall — and prove the journal is always either the complete old
    contents or the complete new contents, never a hybrid or an error."""

    def test_rewrite_interrupted_at_every_byte_offset(self, tmp_path):
        from repro.service.chaos import ChaosFS, replay_prefix

        work = tmp_path / "work"
        work.mkdir()
        path = work / "j.wal"
        new_records = [{"op": "snapshot", "n": i} for i in range(2)]

        # The whole journal life runs under recording, so every replayed
        # prefix carries the pre-compaction contents too.
        chaos = ChaosFS(root=work)
        with chaos.install():
            old_records = write_journal(path, 3)
            rewrite_start = len(chaos.ops)
            journal = Journal(path)
            journal.rewrite(new_records)
            journal.close()

        outcomes = set()
        for index, entry in enumerate(chaos.ops):
            if index < rewrite_start:
                continue  # cuts before the rewrite trivially read old
            widths = (
                range(len(entry["data"]) + 1) if entry["op"] == "write"
                else [None]
            )
            for cut_bytes in widths:
                mirror = tmp_path / f"cut-{index}-{cut_bytes}"
                replay_prefix(chaos.ops, mirror, index,
                              partial_bytes=cut_bytes)
                replayed, stats = Journal(mirror / "j.wal").replay()
                assert replayed in (old_records, new_records), (
                    f"cut at op {index} byte {cut_bytes}: hybrid journal"
                )
                assert stats.torn_bytes == 0, "tmp bytes leaked into the WAL"
                outcomes.add(replayed == new_records)
        # The sweep actually crossed the commit point: both outcomes seen.
        assert outcomes == {False, True}

    def test_power_cut_mid_tmp_write_preserves_old_journal(self, tmp_path):
        from repro.service.chaos import ChaosFS, FaultRule, PowerCut

        work = tmp_path / "work"
        work.mkdir()
        path = work / "j.wal"
        old_records = write_journal(path, 4)
        chaos = ChaosFS(
            [FaultRule("torn-write", path_substr=".tmp")], root=work
        )
        with chaos.install():
            journal = Journal(path)
            with pytest.raises(PowerCut):
                journal.rewrite([{"op": "snapshot"}])
        replayed, stats = Journal(path).replay()
        assert replayed == old_records
        assert stats.torn_bytes == 0

    def test_rename_failure_keeps_old_journal_appendable(self, tmp_path):
        from repro.service.chaos import ChaosFS, FaultRule

        work = tmp_path / "work"
        work.mkdir()
        path = work / "j.wal"
        old_records = write_journal(path, 2)
        chaos = ChaosFS(
            [FaultRule("erename", path_substr="j.wal")], root=work
        )
        with chaos.install():
            journal = Journal(path)
            with pytest.raises(OSError):
                journal.rewrite([{"op": "snapshot"}])
        journal = Journal(path)
        replayed, _ = journal.replay()
        assert replayed == old_records
        journal.append({"op": "after"})
        journal.close()
        final, _ = Journal(path).replay()
        assert final == old_records + [{"op": "after"}]


class TestRewrite:
    def test_compaction_replaces_contents(self, tmp_path):
        path = tmp_path / "j.wal"
        write_journal(path, 10)
        journal = Journal(path)
        journal.rewrite([{"op": "snapshot", "n": 1}])
        replayed, stats = Journal(path).replay()
        assert replayed == [{"op": "snapshot", "n": 1}]
        assert stats.records == 1

    def test_rewrite_keeps_journal_appendable(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = Journal(path)
        journal.append({"op": "a"})
        journal.rewrite([{"op": "s"}])
        journal.append({"op": "b"})
        journal.close()
        replayed, _ = Journal(path).replay()
        assert replayed == [{"op": "s"}, {"op": "b"}]
