"""Tests for the heuristic criticality predictors and the LFU table."""

import pytest

from repro.caches.hierarchy import Level
from repro.core.critical_table import CriticalLoadTable
from repro.core.heuristics import (
    BranchFeederHeuristic,
    ConsumerCountHeuristic,
    OldestInROBHeuristic,
    make_heuristic,
)
from repro.cpu.engine import RetireRecord
from repro.workloads.trace import Instr, Op


def rec(idx, op=Op.ALU, pc=0x100, lat=1.0, producers=(), level=None,
        mispredicted=False, e_time=0.0, srcs=(), dst=-1):
    return RetireRecord(
        idx=idx,
        instr=Instr(pc, op, srcs=srcs, dst=dst,
                    addr=idx * 64 if op in (Op.LOAD, Op.STORE) else -1),
        exec_lat=lat,
        producers=producers,
        level=level,
        mispredicted=mispredicted,
        e_time=e_time,
    )


class TestOldestInROB:
    def test_stalling_load_flagged(self):
        h = OldestInROBHeuristic(slack=4.0)
        h.on_retire(rec(0, Op.ALU, e_time=0.0, lat=1.0))
        h.on_retire(rec(1, Op.LOAD, pc=0x200, e_time=1.0, lat=40.0,
                        level=Level.LLC, dst=1))
        assert h.flagged == 1
        assert 0x200 in h.critical_pc_counts

    def test_fast_load_not_flagged(self):
        h = OldestInROBHeuristic(slack=4.0)
        h.on_retire(rec(0, Op.ALU, e_time=0.0, lat=50.0))
        h.on_retire(rec(1, Op.LOAD, pc=0x200, e_time=1.0, lat=5.0,
                        level=Level.L1, dst=1))
        assert h.flagged == 0

    def test_shadow_effect(self):
        """A load finishing under the shadow of an earlier long-latency op
        is not flagged (retirement was already blocked)."""
        h = OldestInROBHeuristic(slack=4.0)
        h.on_retire(rec(0, Op.LOAD, pc=0x100, e_time=0.0, lat=200.0,
                        level=Level.MEM, dst=1))
        h.on_retire(rec(1, Op.LOAD, pc=0x200, e_time=1.0, lat=40.0,
                        level=Level.LLC, dst=2))
        assert 0x200 not in h.critical_pc_counts


class TestConsumerCount:
    def test_consumed_load_flagged(self):
        h = ConsumerCountHeuristic(threshold=1)
        h.on_retire(rec(0, Op.LOAD, pc=0x300, level=Level.L2, dst=1))
        h.on_retire(rec(1, Op.ALU, producers=(0,)))
        assert h.flagged == 1

    def test_unconsumed_load_not_flagged(self):
        h = ConsumerCountHeuristic(threshold=1)
        h.on_retire(rec(0, Op.LOAD, pc=0x300, level=Level.L2, dst=1))
        h.on_retire(rec(1, Op.ALU))
        assert h.flagged == 0

    def test_threshold_two_needs_fanout(self):
        h = ConsumerCountHeuristic(threshold=2)
        h.on_retire(rec(0, Op.LOAD, pc=0x300, level=Level.L2, dst=1))
        h.on_retire(rec(1, Op.ALU, producers=(0,)))
        assert h.flagged == 0
        h.on_retire(rec(2, Op.ALU, producers=(0,)))
        assert h.flagged == 1

    def test_flag_once_per_instance(self):
        h = ConsumerCountHeuristic(threshold=1)
        h.on_retire(rec(0, Op.LOAD, pc=0x300, level=Level.L2, dst=1))
        for i in range(1, 5):
            h.on_retire(rec(i, Op.ALU, producers=(0,)))
        assert h.flagged == 1

    def test_window_bounded(self):
        h = ConsumerCountHeuristic()
        for i in range(600):
            h.on_retire(rec(i, Op.LOAD, pc=0x300 + i, level=Level.L2, dst=1))
        assert len(h._inflight) <= h.WINDOW


class TestBranchFeeder:
    def test_load_feeding_mispredict_flagged(self):
        h = BranchFeederHeuristic()
        h.on_retire(rec(0, Op.LOAD, pc=0x400, level=Level.L2, dst=3))
        h.on_retire(rec(1, Op.BRANCH, srcs=(3,), mispredicted=True))
        assert 0x400 in h.critical_pc_counts

    def test_correct_branch_not_flagged(self):
        h = BranchFeederHeuristic()
        h.on_retire(rec(0, Op.LOAD, pc=0x400, level=Level.L2, dst=3))
        h.on_retire(rec(1, Op.BRANCH, srcs=(3,), mispredicted=False))
        assert h.flagged == 0

    def test_transitive_propagation(self):
        h = BranchFeederHeuristic()
        h.on_retire(rec(0, Op.LOAD, pc=0x400, level=Level.LLC, dst=3))
        h.on_retire(rec(1, Op.ALU, srcs=(3,), dst=5))
        h.on_retire(rec(2, Op.BRANCH, srcs=(5,), mispredicted=True))
        assert 0x400 in h.critical_pc_counts


class TestFactoryAndInterface:
    @pytest.mark.parametrize(
        "name", ["oldest_in_rob", "consumer_count", "branch_feeder"]
    )
    def test_factory(self, name):
        h = make_heuristic(name)
        assert not h.is_critical(0x123)
        assert h.top_critical_pcs(4) == []

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown heuristic"):
            make_heuristic("token_passing")

    def test_only_outer_level_hits_enter_table(self):
        h = ConsumerCountHeuristic(threshold=1)
        for i in range(0, 20, 2):
            h.on_retire(rec(i, Op.LOAD, pc=0x500, level=Level.L1, dst=1))
            h.on_retire(rec(i + 1, Op.ALU, producers=(i,)))
        assert h.flagged == 10
        assert h.table.resident_count() == 0  # L1 hits never recorded

    def test_drives_catch_engine(self):
        from repro.core.catch_engine import CatchConfig, CatchEngine
        from repro.cpu.core import OOOCore
        from repro.sim.config import skylake_server
        from repro.sim.simulator import Simulator
        from repro.workloads.generator import hot_loop

        trace = hot_loop("t", "ISPEC", 20_000, ws_bytes=48 << 10, chain_loads=3)
        engine = CatchEngine(CatchConfig(detector="oldest_in_rob"))
        sim = Simulator(skylake_server())
        core = OOOCore(0, sim.build_hierarchy(1), skylake_server().core, engine)
        core.run(trace)
        core.run(trace)
        assert engine.detector.flagged > 0
        assert engine.tact.stats.issued > 0


class TestLFUTablePolicy:
    def test_invalid_policy(self):
        with pytest.raises(ValueError, match="table policy"):
            CriticalLoadTable(policy="mru")

    def test_lfu_protects_frequent_entries(self):
        t = CriticalLoadTable(entries=8, ways=8, policy="lfu")
        hot = [0x1000 + i * 4 for i in range(8)]
        for _ in range(3):
            for pc in hot:
                t.observe_critical(pc)
        # A storm of one-off PCs must not displace the established set.
        for i in range(100):
            t.observe_critical(0x9000 + i * 4)
        assert all(t.is_critical(pc) for pc in hot)

    def test_lru_thrashes_where_lfu_holds(self):
        pcs = [0x1000 + i * 48 for i in range(96)]
        results = {}
        for policy in ("lru", "lfu"):
            t = CriticalLoadTable(entries=32, ways=8, policy=policy)
            for _ in range(20):
                for pc in pcs:
                    t.observe_critical(pc)
            results[policy] = t.critical_count()
        assert results["lfu"] > results["lru"]
        assert results["lfu"] >= 16  # a stable majority of the table

    def test_lfu_frequency_decays_each_epoch(self):
        t = CriticalLoadTable(entries=8, ways=8, policy="lfu",
                              epoch_instructions=10)
        for _ in range(8):
            t.observe_critical(0x1000)
        before = next(iter(t._sets[0].values())).hits
        t.tick_retire(10)
        after = next(iter(t._sets[0].values())).hits
        assert after < before
