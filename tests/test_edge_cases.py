"""Edge cases and failure-mode tests across the stack."""

import pytest

from repro.caches.cache import Cache
from repro.caches.hierarchy import CacheHierarchy, Level, LevelSpec
from repro.core.catch_engine import CatchEngine
from repro.cpu.core import CoreParams, OOOCore
from repro.memory.controller import MemoryController
from repro.sim.config import skylake_server
from repro.sim.simulator import Simulator
from repro.workloads.trace import Instr, Op, Trace


def tiny_hierarchy(**kw):
    defaults = dict(
        l1i=LevelSpec(1, 2, 5),
        l1d=LevelSpec(1, 2, 5),
        l2=LevelSpec(4, 4, 15),
        llc=LevelSpec(16, 4, 40),
        memory=MemoryController(fixed_latency=100),
    )
    defaults.update(kw)
    return CacheHierarchy(1, **defaults)


class TestDegenerateTraces:
    def test_empty_trace(self):
        core = OOOCore(0, tiny_hierarchy())
        result = core.run(Trace("empty", "ISPEC", []))
        assert result.instructions == 0
        assert result.ipc == 0.0

    def test_single_instruction(self):
        core = OOOCore(0, tiny_hierarchy())
        result = core.run(Trace("one", "ISPEC", [Instr(0, Op.ALU)]))
        assert result.instructions == 1
        assert result.cycles > 0

    def test_stores_only(self):
        instrs = [Instr(0, Op.STORE, srcs=(1,), addr=i * 64) for i in range(50)]
        core = OOOCore(0, tiny_hierarchy())
        result = core.run(Trace("st", "ISPEC", instrs))
        assert result.cycles > 0

    def test_branches_only(self):
        instrs = [
            Instr(0, Op.BRANCH, taken=bool(i % 2), target=0) for i in range(50)
        ]
        core = OOOCore(0, tiny_hierarchy())
        result = core.run(Trace("br", "ISPEC", instrs))
        assert result.branch_mispredicts >= 1

    def test_same_address_repeated(self):
        # Chained so each load executes after the fill completed: everything
        # past the first miss is a true L1 hit.
        instrs = [Instr(0, Op.LOAD, srcs=(1,), dst=1, addr=0x100) for _ in range(100)]
        core = OOOCore(0, tiny_hierarchy())
        result = core.run(Trace("rep", "ISPEC", instrs))
        assert result.load_levels[Level.L1] >= 98

    def test_catch_on_empty_trace(self):
        engine = CatchEngine()
        core = OOOCore(0, tiny_hierarchy(), CoreParams(), engine)
        core.run(Trace("empty", "ISPEC", []))
        assert engine.detector is not None


class TestDegenerateHierarchies:
    def test_no_llc_at_all(self):
        h = tiny_hierarchy(llc=None)
        r = h.load(0, 0x400, 123, 0.0)
        assert r.level is Level.MEM
        assert r.latency == 100

    def test_no_l2_no_llc(self):
        h = tiny_hierarchy(l2=None, llc=None)
        r = h.load(0, 0x400, 123, 0.0)
        assert r.level is Level.MEM
        # dirty victims go straight to memory
        for i in range(64):
            h.store(0, 0x400, i, 100.0 * i)
        assert h.memory.traffic.write_lines > 0

    def test_single_set_cache(self):
        c = Cache("tiny", 2 * 64, 2, 1)
        assert c.num_sets == 1
        c.fill(1, 0.0)
        c.fill(2, 0.0)
        c.fill(3, 0.0)
        assert c.occupancy() == 2

    def test_direct_mapped(self):
        c = Cache("dm", 64 * 64, 1, 1)
        c.fill(0, 0.0)
        c.fill(c.num_sets, 0.0)  # same set, assoc 1 -> conflict
        assert not c.contains(0)

    def test_capacity_scale_one_paper_machine(self):
        import dataclasses

        cfg = dataclasses.replace(skylake_server(), capacity_scale=1)
        h = Simulator(cfg).build_hierarchy(1)
        assert h.l2[0].size_bytes == 1024 * 1024
        assert h.llc.size_bytes == 5632 * 1024

    def test_multi_core_private_caches_isolated(self):
        h = CacheHierarchy(
            2,
            l1i=LevelSpec(1, 2, 5),
            l1d=LevelSpec(1, 2, 5),
            l2=LevelSpec(4, 4, 15),
            llc=LevelSpec(16, 4, 40),
            memory=MemoryController(fixed_latency=100),
        )
        h.load(0, 0x400, 99, 0.0)
        assert h.l1d[0].contains(99)
        assert not h.l1d[1].contains(99)

    def test_inclusive_back_invalidation_hits_all_cores(self):
        h = CacheHierarchy(
            2,
            l1i=LevelSpec(1, 2, 5),
            l1d=LevelSpec(1, 2, 5),
            l2=LevelSpec(4, 4, 15),
            llc=LevelSpec(16, 4, 40),
            llc_policy="inclusive",
            memory=MemoryController(fixed_latency=100),
        )
        h.load(0, 0x400, 77, 0.0)
        h.load(1, 0x400, 77, 10.0)  # both cores cache line 77
        conflicts = [
            line
            for line in range(78, 40_000)
            if h.llc.set_index(line) == h.llc.set_index(77)
        ][: h.llc.assoc + 1]
        for j, line in enumerate(conflicts):
            h.load(0, 0x400, line, 100.0 + 300 * j)
        assert not h.llc.contains(77)
        assert not h.l1d[0].contains(77)
        assert not h.l1d[1].contains(77)


class TestPrefetchRobustness:
    def test_prefetch_while_congested_dropped(self):
        h = CacheHierarchy(
            1,
            l1i=LevelSpec(1, 2, 5),
            l1d=LevelSpec(1, 2, 5),
            l2=LevelSpec(4, 4, 15),
            llc=LevelSpec(16, 4, 40),
            memory=MemoryController(),  # real DRAM
        )
        # Saturate DRAM with demand reads issued at t=0.
        for i in range(200):
            h.memory.read(i * 313, 0.0)
        assert h.memory.backlog(0.0) > 200
        outcome = h.prefetch_l1(0, 999_999, 0.0)
        assert outcome is None  # dropped, not queued

    def test_prefetch_of_on_die_line_survives_congestion(self):
        h = tiny_hierarchy()
        h.load(0, 0x400, 50, 0.0)
        h.l1d[0].invalidate(50)
        # fixed-latency controller reports no backlog -> always issues;
        # but also: on-die lines never consult the backlog.
        assert h.prefetch_l1(0, 50, 1.0) is not None

    def test_double_prefetch_same_line_noop(self):
        h = tiny_hierarchy()
        first = h.prefetch_l1(0, 123, 0.0)
        second = h.prefetch_l1(0, 123, 1.0)
        assert first is not None
        assert second is None


class TestSimulatorRobustness:
    def test_zero_warmup_runs(self):
        trace = Trace("t", "ISPEC", [Instr(0, Op.ALU) for _ in range(10)])
        r = Simulator(skylake_server()).run(trace, warmup=False)
        assert r.instructions == 10

    def test_latency_policy_sees_only_selected_level(self):
        seen = []

        def policy(pc, level, lat):
            seen.append(level)
            return lat

        trace = Trace(
            "t", "ISPEC",
            [Instr(0, Op.LOAD, dst=1, addr=i * 64) for i in range(32)],
        )
        Simulator(skylake_server()).run(trace, warmup=False, latency_policy=policy)
        assert seen  # policy consulted on every demand load
