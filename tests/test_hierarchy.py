"""Integration tests for the multi-level cache hierarchy."""

import pytest

from repro.caches.hierarchy import CacheHierarchy, Level, LevelSpec
from repro.memory.controller import MemoryController


def make_hierarchy(
    l2=True,
    llc=True,
    policy="exclusive",
    n_cores=1,
    mem_latency=160,
    extra=None,
):
    return CacheHierarchy(
        n_cores,
        l1i=LevelSpec(1, 2, 5),
        l1d=LevelSpec(1, 2, 5),
        l2=LevelSpec(8, 4, 15) if l2 else None,
        llc=LevelSpec(32, 4, 40) if llc else None,
        llc_policy=policy,
        memory=MemoryController(fixed_latency=mem_latency),
        extra_latency=extra,
    )


class TestBasicPaths:
    def test_cold_load_from_memory(self):
        h = make_hierarchy()
        r = h.load(0, pc=0x400, line_addr=100, now=0.0)
        assert r.level is Level.MEM
        assert r.latency == 40 + 160

    def test_second_load_hits_l1(self):
        h = make_hierarchy()
        h.load(0, 0x400, 100, 0.0)
        r = h.load(0, 0x400, 100, 1000.0)
        assert r.level is Level.L1
        assert r.latency == 5

    def test_inflight_hit_attributed_to_source(self):
        h = make_hierarchy()
        h.load(0, 0x400, 100, 0.0)  # fill completes at t=200
        r = h.load(0, 0x400, 100, 10.0)
        assert r.inflight
        assert r.level is Level.MEM
        assert r.latency == pytest.approx(190.0)

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy()
        h.load(0, 0x400, 100, 0.0)
        # Thrash the 16-line L1 so line 100 is evicted but stays in L2.
        for i in range(1000, 1064):
            h.load(0, 0x400, i, 500.0 + i)
        r = h.load(0, 0x400, 100, 10_000.0)
        assert r.level in (Level.L2, Level.LLC)

    def test_code_fetch_separate_from_data(self):
        h = make_hierarchy()
        h.code_fetch(0, 100, 0.0)
        r = h.load(0, 0x400, 100, 1000.0)
        # Data L1 does not contain the line, but the L2 does.
        assert r.level is Level.L2

    def test_extra_latency_applied(self):
        h = make_hierarchy(extra={Level.L1: 3})
        h.load(0, 0x400, 100, 0.0)
        r = h.load(0, 0x400, 100, 1000.0)
        assert r.latency == 8


class TestExclusiveLLC:
    def test_llc_hit_moves_line_to_l2(self):
        h = make_hierarchy(policy="exclusive")
        h.load(0, 0x400, 100, 0.0)
        # Evict line 100 from L1 and L2 (L2 has 128 lines).
        for i in range(1000, 1200):
            h.load(0, 0x400, i, 1000.0 + i * 10)
        assert h.llc.contains(100)
        assert not h.l2[0].contains(100)
        r = h.load(0, 0x400, 100, 100_000.0)
        assert r.level is Level.LLC
        assert not h.llc.contains(100)  # exclusive: deallocated on hit
        assert h.l2[0].contains(100)

    def test_memory_fill_bypasses_llc(self):
        h = make_hierarchy(policy="exclusive")
        h.load(0, 0x400, 100, 0.0)
        assert not h.llc.contains(100)
        assert h.l2[0].contains(100)

    def test_no_l2_llc_duplication(self):
        h = make_hierarchy(policy="exclusive")
        for i in range(400):
            h.load(0, 0x400, i, float(i) * 300)
        assert h.check_inclusion() == []


class TestInclusiveLLC:
    def test_memory_fill_allocates_llc(self):
        h = make_hierarchy(policy="inclusive")
        h.load(0, 0x400, 100, 0.0)
        assert h.llc.contains(100)
        assert h.l2[0].contains(100)

    def test_llc_hit_keeps_copy(self):
        h = make_hierarchy(policy="inclusive")
        h.load(0, 0x400, 100, 0.0)
        for i in range(1000, 1200):  # push out of L1/L2
            h.load(0, 0x400, i, 1000.0 + i * 10)
        if h.llc.contains(100):
            h.load(0, 0x400, 100, 100_000.0)
            assert h.llc.contains(100)

    def test_back_invalidation(self):
        h = make_hierarchy(policy="inclusive")
        h.load(0, 0x400, 100, 0.0)
        assert h.l2[0].contains(100)
        # Fill conflicting LLC lines (LLC: 128 sets... 32KB/4way = 128 sets)
        sets = h.llc.num_sets
        conflicts = [
            line for line in range(100 + 1, 100 + 40000)
            if h.llc.set_index(line) == h.llc.set_index(100)
        ][: h.llc.assoc + 1]
        for j, line in enumerate(conflicts):
            h.load(0, 0x400, line, 1000.0 + j * 300)
        assert not h.llc.contains(100)
        assert not h.l2[0].contains(100)  # back-invalidated
        assert not h.l1d[0].contains(100)

    def test_inclusion_invariant_holds(self):
        h = make_hierarchy(policy="inclusive")
        for i in range(600):
            h.load(0, 0x400, i * 7 % 500, float(i) * 250)
        assert h.check_inclusion() == []


class TestStores:
    def test_store_allocates_dirty(self):
        h = make_hierarchy()
        h.store(0, 0x400, 100, 0.0)
        assert h.l1d[0].peek(100).dirty

    def test_dirty_writeback_reaches_l2(self):
        h = make_hierarchy()
        h.store(0, 0x400, 100, 0.0)
        for i in range(1000, 1064):  # evict from L1
            h.load(0, 0x400, i, 1000.0 + i)
        line = h.l2[0].peek(100)
        assert line is not None and line.dirty

    def test_dirty_writeback_no_l2_reaches_llc(self):
        h = make_hierarchy(l2=False)
        h.store(0, 0x400, 100, 0.0)
        for i in range(1000, 1064):
            h.load(0, 0x400, i, 1000.0 + i)
        line = h.llc.peek(100)
        assert line is not None and line.dirty


class TestTwoLevel:
    def test_memory_fill_allocates_llc(self):
        h = make_hierarchy(l2=False)
        h.load(0, 0x400, 100, 0.0)
        assert h.llc.contains(100)

    def test_llc_hit_latency(self):
        h = make_hierarchy(l2=False)
        h.load(0, 0x400, 100, 0.0)
        for i in range(1000, 1064):
            h.load(0, 0x400, i, 1000.0 + i)
        r = h.load(0, 0x400, 100, 100_000.0)
        assert r.level is Level.LLC
        assert r.latency == 40


class TestPrefetch:
    def test_prefetch_l1_noop_when_resident(self):
        h = make_hierarchy()
        h.load(0, 0x400, 100, 0.0)
        assert h.prefetch_l1(0, 100, 1000.0) is None

    def test_prefetch_l1_reports_source(self):
        h = make_hierarchy()
        h.load(0, 0x400, 100, 0.0)
        for i in range(1000, 1064):
            h.load(0, 0x400, i, 1000.0 + i)
        outcome = h.prefetch_l1(0, 100, 100_000.0)
        assert outcome is not None
        level, latency = outcome
        assert level in (Level.L2, Level.LLC)
        assert latency in (15, 40)

    def test_prefetched_line_hits_later(self):
        h = make_hierarchy()
        h.load(0, 0x400, 200, 0.0)
        h.l1d[0].invalidate(200)
        h.prefetch_l1(0, 200, 1000.0)
        r = h.load(0, 0x400, 200, 2000.0)
        assert r.level is Level.L1

    def test_prefetch_l2_fills_l2(self):
        h = make_hierarchy()
        h.prefetch_l2(0, 300, 0.0)
        assert h.l2[0].contains(300)
        assert not h.l1d[0].contains(300)

    def test_prefetch_l2_two_level_fills_llc(self):
        h = make_hierarchy(l2=False)
        h.prefetch_l2(0, 300, 0.0)
        assert h.llc.contains(300)


class TestLatencyPolicy:
    def test_policy_can_demote_l2_hits(self):
        h = make_hierarchy()
        h.load(0, 0x400, 100, 0.0)
        h.l1d[0].invalidate(100)
        h.latency_policy = lambda pc, level, lat: 40.0 if level is Level.L2 else lat
        r = h.load(0, 0x400, 100, 1000.0)
        assert r.level is Level.L2
        assert r.latency == 40.0


class TestWhereAndServeLatency:
    def test_where_l1(self):
        h = make_hierarchy()
        h.load(0, 0x400, 100, 0.0)
        assert h.where(0, 100) is Level.L1

    def test_where_absent(self):
        h = make_hierarchy()
        assert h.where(0, 100) is None

    def test_serve_latency_levels(self):
        h = make_hierarchy()
        h.load(0, 0x400, 100, 0.0)
        assert h.serve_latency(0, 100) == 5

    def test_reset_stats_keeps_state(self):
        h = make_hierarchy()
        h.load(0, 0x400, 100, 0.0)
        h.reset_stats()
        assert h.stats[0].loads == 0
        assert h.l1d[0].contains(100)


def test_invalid_policy_rejected():
    with pytest.raises(ValueError, match="llc_policy"):
        make_hierarchy(policy="weird")
