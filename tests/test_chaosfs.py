"""Tests for the storage chaos engine (repro.service.chaos).

ChaosFS is the adversarial I/O backend: deterministic fault plans (torn
writes, ENOSPC, fsync EIO, rename failure) plus a syscall-boundary op log
whose every prefix replays to the exact on-disk state of a process killed
at that instant.  These tests pin the shim's contract; the crash harness
(test_service_crash_harness.py) uses it to prove the service's
exactly-once story.
"""

import errno

import pytest

from repro.ioutil import atomic_write_text, io_backend
from repro.service.chaos import (
    FAULT_KINDS,
    ChaosFS,
    FaultRule,
    PowerCut,
    cut_points,
    replay_prefix,
)
from repro.service.journal import Journal


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos fault kind"):
            FaultRule("disk-on-fire")

    def test_from_spec_round_trip(self):
        rule = FaultRule.from_spec(
            "eio-fsync:path=journal.wal:after_ops=40:times=2:keep_bytes=7"
        )
        assert rule.kind == "eio-fsync"
        assert rule.path_substr == "journal.wal"
        assert rule.after_ops == 40
        assert rule.times == 2
        assert rule.keep_bytes == 7

    def test_from_spec_bare_kind(self):
        rule = FaultRule.from_spec("enospc-write")
        assert rule.kind == "enospc-write"
        assert rule.path_substr is None
        assert rule.times == 1

    @pytest.mark.parametrize("spec", ["torn-write:whoops", "torn-write:nope=1"])
    def test_from_spec_bad_segment_rejected(self, spec):
        with pytest.raises(ValueError, match="chaos spec"):
            FaultRule.from_spec(spec)

    def test_every_kind_parses(self):
        for kind in FAULT_KINDS:
            assert FaultRule.from_spec(kind).kind == kind

    def test_matching_honours_path_budget_and_threshold(self):
        rule = FaultRule("eio-fsync", path_substr="wal", after_ops=3, times=1)
        assert not rule.matches(2, "journal.wal")   # before threshold
        assert not rule.matches(5, "ckpt.json")     # wrong path
        assert rule.matches(5, "journal.wal")
        rule.fired = 1
        assert not rule.matches(6, "journal.wal")   # budget spent


class TestInstall:
    def test_install_scopes_the_backend(self, tmp_path):
        chaos = ChaosFS(root=tmp_path)
        before = io_backend()
        with chaos.install():
            assert io_backend() is chaos
        assert io_backend() is before

    def test_paths_are_recorded_relative_to_root(self, tmp_path):
        chaos = ChaosFS(root=tmp_path)
        (tmp_path / "sub").mkdir()
        with chaos.install():
            atomic_write_text(tmp_path / "sub" / "x.txt", "hi")
        assert all("/" not in e["path"] or not e["path"].startswith("/")
                   for e in chaos.ops)
        assert any(e["path"] == "sub/x.txt" for e in chaos.ops)


class TestFaultKinds:
    def test_enospc_write_lands_no_bytes(self, tmp_path):
        chaos = ChaosFS(["enospc-write"], root=tmp_path)
        with chaos.install():
            with pytest.raises(OSError) as info:
                atomic_write_text(tmp_path / "x.txt", "payload")
        assert info.value.errno == errno.ENOSPC
        # The atomic-write contract held: no target, no tmp residue.
        assert list(tmp_path.iterdir()) == []
        assert chaos.faults[0]["kind"] == "enospc-write"

    def test_short_write_lands_a_prefix_then_errors(self, tmp_path):
        chaos = ChaosFS([FaultRule("short-write", keep_bytes=3)], root=tmp_path)
        with chaos.install():
            fh = chaos.open(tmp_path / "x.bin", "wb")
            with pytest.raises(OSError) as info:
                fh.write(b"abcdef")
            fh.close()
        assert info.value.errno == errno.ENOSPC
        assert (tmp_path / "x.bin").read_bytes() == b"abc"

    def test_torn_write_raises_powercut_past_exception_handlers(self, tmp_path):
        chaos = ChaosFS([FaultRule("torn-write", keep_bytes=2)], root=tmp_path)
        with chaos.install():
            fh = chaos.open(tmp_path / "x.bin", "wb")
            with pytest.raises(PowerCut):
                try:
                    fh.write(b"abcdef")
                except Exception:  # containment must NOT absorb a power cut
                    pytest.fail("PowerCut was caught by `except Exception`")
        assert (tmp_path / "x.bin").read_bytes() == b"ab"

    def test_eio_fsync_fails_before_durability(self, tmp_path):
        chaos = ChaosFS(["eio-fsync"], root=tmp_path)
        journal = Journal(tmp_path / "j.wal")
        with chaos.install():
            with pytest.raises(OSError) as info:
                journal.append({"op": "a"})
            # No fsync marker for the failed sync: the record's durability
            # is unknown, so an acking caller would be lying.
            assert not any(e["op"] == "fsync" for e in chaos.ops)
            journal.close()
        assert info.value.errno == errno.EIO

    def test_erename_keeps_old_target_contents(self, tmp_path):
        target = tmp_path / "x.txt"
        target.write_text("old")
        chaos = ChaosFS([FaultRule("erename", path_substr="x.txt")],
                        root=tmp_path)
        with chaos.install():
            with pytest.raises(OSError) as info:
                atomic_write_text(target, "new")
        assert info.value.errno == errno.EIO
        assert target.read_text() == "old"

    def test_eio_fsync_dir_reports_failure(self, tmp_path):
        from repro.ioutil import fsync_dir

        chaos = ChaosFS(["eio-fsync-dir"], root=tmp_path)
        with chaos.install():
            assert fsync_dir(tmp_path) is False
            assert fsync_dir(tmp_path) is True  # budget of 1 spent

    def test_fault_budget_and_after_ops(self, tmp_path):
        rule = FaultRule("eio-fsync", after_ops=2, times=1)
        chaos = ChaosFS([rule], root=tmp_path)
        journal = Journal(tmp_path / "j.wal")
        with chaos.install():
            journal.append({"op": "a"})       # ops 0.. pass (below threshold)
            with pytest.raises(OSError):
                journal.append({"op": "b"})   # first fsync past after_ops=2
            journal.append({"op": "c"})       # budget spent: clean again
            journal.close()
        assert rule.fired == 1


class TestOpLogAndReplay:
    def test_atomic_write_op_sequence(self, tmp_path):
        chaos = ChaosFS(root=tmp_path)
        with chaos.install():
            atomic_write_text(tmp_path / "x.txt", "hello")
        kinds = [e["op"] for e in chaos.ops]
        assert kinds == ["create", "write", "fsync", "replace", "fsync_dir"]
        assert chaos.ops[1]["data"] == b"hello"
        assert chaos.ops[3]["src"].endswith(".tmp")

    def test_full_replay_reproduces_final_state(self, tmp_path):
        work, mirror = tmp_path / "work", tmp_path / "mirror"
        work.mkdir()
        chaos = ChaosFS(root=work)
        with chaos.install():
            atomic_write_text(work / "a.txt", "one")
            atomic_write_text(work / "a.txt", "two")  # overwrite
            with Journal(work / "j.wal") as journal:
                journal.append({"op": "x"})
        replay_prefix(chaos.ops, mirror)
        assert (mirror / "a.txt").read_text() == "two"
        assert (mirror / "j.wal").read_bytes() == (work / "j.wal").read_bytes()
        assert not (mirror / "a.txt.tmp").exists()

    def test_every_prefix_is_a_consistent_snapshot(self, tmp_path):
        """Cut an atomic overwrite at each op: the target is always either
        the complete old or the complete new contents — never a hybrid."""
        work = tmp_path / "work"
        work.mkdir()
        chaos = ChaosFS(root=work)
        with chaos.install():
            atomic_write_text(work / "a.txt", "old-contents")
            atomic_write_text(work / "a.txt", "new-contents")
        for cut in range(len(chaos.ops) + 1):
            mirror = tmp_path / f"cut-{cut}"
            replay_prefix(chaos.ops, mirror, cut)
            target = mirror / "a.txt"
            if target.exists():
                assert target.read_text() in ("old-contents", "new-contents")

    def test_partial_bytes_tears_the_cut_write(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        chaos = ChaosFS(root=work)
        with chaos.install():
            fh = chaos.open(work / "x.bin", "wb")
            fh.write(b"abcdef")
            fh.close()
        write_index = next(
            i for i, e in enumerate(chaos.ops) if e["op"] == "write"
        )
        mirror = replay_prefix(
            chaos.ops, tmp_path / "m", write_index, partial_bytes=4
        )
        assert (mirror / "x.bin").read_bytes() == b"abcd"

    def test_unlink_and_truncate_replay(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        chaos = ChaosFS(root=work)
        with chaos.install():
            fh = chaos.open(work / "x.bin", "wb")
            fh.write(b"abcdef")
            fh.truncate(2)
            fh.close()
            chaos.open(work / "gone.bin", "wb").close()
            chaos.unlink(work / "gone.bin")
        mirror = replay_prefix(chaos.ops, tmp_path / "m")
        assert (mirror / "x.bin").read_bytes() == b"ab"
        assert not (mirror / "gone.bin").exists()

    def test_append_mode_offsets_continue_from_size(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        chaos = ChaosFS(root=work)
        (work / "x.bin").write_bytes(b"seed")
        with chaos.install():
            fh = chaos.open(work / "x.bin", "ab")
            fh.write(b"-more")
            fh.close()
        write = next(e for e in chaos.ops if e["op"] == "write")
        assert write["offset"] == 4


class TestCutPoints:
    def test_count_determinism_and_boundaries(self):
        ops = [
            {"op": "write", "path": "x", "offset": 0, "data": b"abcdef"},
            {"op": "fsync", "path": "x"},
            {"op": "write", "path": "x", "offset": 6, "data": b"ghi"},
        ]
        cuts = cut_points(ops, 50, seed=3)
        assert len(cuts) == 50
        assert (0, None) in cuts and (len(ops), None) in cuts
        assert cuts == cut_points(ops, 50, seed=3)
        assert cuts != cut_points(ops, 50, seed=4)
        for index, partial in cuts:
            assert 0 <= index <= len(ops)
            if partial is not None:
                assert ops[index]["op"] == "write"
                assert 0 <= partial < len(ops[index]["data"])
