"""Tests for the campaign daemon: execution parity with the serial runner,
degraded-mode provenance, the crash circuit breaker, graceful restart —
and the headline robustness contract, exercised against a real daemon
subprocess: ``kill -9`` mid-campaign loses no acknowledged job and every
result is byte-identical to a serial run."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.errors import CircuitOpen, RunFailure
from repro.runner import ExperimentRunner, FailureRecord, ResultStore
from repro.service import DONE, FAILED, build_service
from repro.service.http import preset_configs
from repro.sim.serialization import config_to_dict, result_to_dict

N = 2000


def make_service(tmp_path, **kwargs):
    queue_kwargs = kwargs.pop("queue_kwargs", {})
    return build_service(
        tmp_path / "journal.wal", tmp_path / "ckpt", fsync=False,
        queue_kwargs=queue_kwargs, **kwargs,
    )


def submit_preset(service, preset="baseline_server", workload="hmmer_like",
                  n=N, **kwargs):
    payload = config_to_dict(preset_configs()[preset])
    job, _ = service.submit_config(payload, workload, n, **kwargs)
    return job


def wait_for(predicate, timeout=30.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return predicate()


class TestExecution:
    def test_result_matches_serial_runner_byte_for_byte(self, tmp_path):
        service = make_service(tmp_path / "svc")
        job = submit_preset(service)
        service.start()
        try:
            assert service.wait_idle(timeout=30)
        finally:
            service.stop()
        done = service.queue.get(job.job_id)
        assert done.state == DONE
        assert done.summary["ipc"] > 0
        assert done.summary["degraded"] is False

        serial_dir = tmp_path / "serial"
        serial = ExperimentRunner(store=ResultStore(serial_dir))
        expected = serial.run(
            preset_configs()["baseline_server"], "hmmer_like", N
        )
        assert service.result_payload(done) == result_to_dict(expected)
        # The checkpoints themselves are byte-identical across runners.
        (serial_file,) = serial_dir.glob("*.json")
        service_file = tmp_path / "svc" / "ckpt" / serial_file.name
        assert service_file.read_bytes() == serial_file.read_bytes()

    def test_shed_job_runs_degraded_with_provenance(self, tmp_path):
        service = make_service(
            tmp_path,
            queue_kwargs={
                "max_depth": 4, "shed_watermark": 0.5, "shed_n_instrs": 1000,
            },
        )
        submit_preset(service, "baseline_server", "hmmer_like")
        submit_preset(service, "baseline_client", "hmmer_like")
        shed = submit_preset(
            service, "baseline_server", "mcf_like", n=50_000, priority="low"
        )
        assert shed.degraded and shed.n_instrs == 1000
        service.start()
        try:
            assert service.wait_idle(timeout=60)
        finally:
            service.stop()
        done = service.queue.get(shed.job_id)
        assert done.state == DONE
        assert done.summary["degraded"] is True
        assert done.requested_n_instrs == 50_000
        payload = service.result_payload(done)
        assert payload["instructions"] < 50_000  # the quick estimate ran

    def test_cancelled_pending_job_never_executes(self, tmp_path):
        service = make_service(tmp_path)
        job = submit_preset(service)
        service.queue.cancel(job.job_id)
        service.start()
        try:
            assert service.wait_idle(timeout=10)
        finally:
            service.stop()
        assert service.queue.get(job.job_id).state == "cancelled"
        assert list((tmp_path / "ckpt").glob("*.json")) == []

    def test_graceful_stop_then_restart_serves_done_work(self, tmp_path):
        service = make_service(tmp_path)
        job = submit_preset(service)
        service.start()
        assert service.wait_idle(timeout=30)
        service.stop()

        reopened = make_service(tmp_path)
        recovered = reopened.queue.get(job.job_id)
        assert recovered.state == DONE
        assert reopened.result_payload(recovered) is not None
        # Resubmission of the completed point dedups instead of re-running.
        again, deduped = reopened.submit_config(
            config_to_dict(preset_configs()["baseline_server"]),
            "hmmer_like", N,
        )
        assert deduped and again.job_id == job.job_id
        reopened.queue.journal.close()


class CrashingRunner:
    """Stands in for a fleet whose worker dies on this config every time."""

    def run(self, config, workload, n_instrs):
        self.failures.append(FailureRecord(
            config_name=config.name, workload=workload, n_instrs=n_instrs,
            error_type="WorkerCrashError", message="simulated worker death",
            elapsed_s=0.0, attempts=1,
        ))
        raise RunFailure(
            f"worker crashed on {config.name}",
            config_name=config.name, workload=workload, n_instrs=n_instrs,
            attempts=1, elapsed_s=0.0,
        )

    def __init__(self):
        self.failures = []


class TestCircuitBreaker:
    def test_repeated_worker_crashes_quarantine_the_config(self, tmp_path):
        service = make_service(
            tmp_path,
            queue_kwargs={"breaker_threshold": 2, "max_attempts": 10},
            runner_factory=CrashingRunner,
            poll_s=0.01,
        )
        job = submit_preset(service)
        service.start()
        try:
            assert wait_for(
                lambda: service.queue.get(job.job_id).state == FAILED
            )
        finally:
            service.stop()
        failed = service.queue.get(job.job_id)
        assert failed.error["error_type"] == "WorkerCrashError"
        with pytest.raises(CircuitOpen):
            submit_preset(service, "baseline_server", "mcf_like")


@pytest.mark.slow
class TestKillDashNine:
    """The ISSUE's robustness gate, against a real ``python -m repro.service``
    daemon: SIGKILL mid-campaign, restart, and every acknowledged job must
    complete exactly once with results byte-identical to a serial run."""

    N_INSTRS = 24_000
    POINTS = [
        ("baseline_server", "hmmer_like"),
        ("baseline_server", "mcf_like"),
        ("baseline_client", "hmmer_like"),
        ("baseline_client", "mcf_like"),
    ]

    def _spawn(self, state_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        return subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve", str(state_dir),
             "--workers", "1", "--lease-s", "10"],
            env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

    def _wait_ready(self, state_dir, timeout=30.0):
        ready = state_dir / "service.json"
        assert wait_for(ready.exists, timeout=timeout), "daemon never bound"
        return json.loads(ready.read_text())["url"]

    def _request(self, url, method="GET", payload=None):
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        with urllib.request.urlopen(req, timeout=15) as resp:
            return resp.status, json.loads(resp.read())

    def _stats(self, url):
        return self._request(f"{url}/api/v1/stats")[1]

    def test_sigkill_mid_campaign_loses_nothing(self, tmp_path):
        state_dir = tmp_path / "state"
        proc = self._spawn(state_dir)
        try:
            url = self._wait_ready(state_dir)
            acked = []
            for preset, workload in self.POINTS:
                status, body = self._request(
                    f"{url}/api/v1/jobs", "POST",
                    {"preset": preset, "workload": workload,
                     "n_instrs": self.N_INSTRS},
                )
                assert status == 202
                acked.append(body["job_id"])

            # Kill -9 in the window where work is demonstrably mid-flight:
            # at least one job done, at least one still pending or leased.
            def mid_campaign():
                states = self._stats(url)["states"]
                return states["done"] >= 1 and (
                    states["pending"] + states["leased"] >= 1
                )

            assert wait_for(mid_campaign, timeout=60), (
                "never observed a mid-campaign window to kill in"
            )
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        # Same command again: replay the journal, reclaim the dead lease,
        # finish the campaign.
        (state_dir / "service.json").unlink()  # stale ready file (kill -9)
        proc = self._spawn(state_dir)
        try:
            url = self._wait_ready(state_dir)

            def all_done():
                states = self._stats(url)["states"]
                return states["done"] == len(self.POINTS)

            assert wait_for(all_done, timeout=120), (
                f"campaign did not finish: {self._stats(url)['states']}"
            )
            stats = self._stats(url)
            assert stats["journal_replay"]["records"] > 0
            # Exactly once, per job identity: every acked id is done, no
            # duplicate rows were minted for the same work.
            _, listing = self._request(f"{url}/api/v1/jobs")
            by_id = {job["job_id"]: job for job in listing["jobs"]}
            assert sorted(by_id) == sorted(acked)
            assert all(job["state"] == "done" for job in by_id.values())

            results = {}
            for job_id in acked:
                status, body = self._request(
                    f"{url}/api/v1/jobs/{job_id}/result"
                )
                assert status == 200
                key = (by_id[job_id]["config_name"], by_id[job_id]["workload"])
                results[key] = body["result"]
        finally:
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0

        # Byte-identical to a from-scratch serial run of the same points.
        serial_dir = tmp_path / "serial"
        serial = ExperimentRunner(store=ResultStore(serial_dir))
        presets = preset_configs()
        for preset, workload in self.POINTS:
            expected = serial.run(presets[preset], workload, self.N_INSTRS)
            assert results[(preset, workload)] == result_to_dict(expected)
        for serial_file in sorted(serial_dir.glob("*.json")):
            service_file = state_dir / "ckpt" / serial_file.name
            assert service_file.read_bytes() == serial_file.read_bytes()
