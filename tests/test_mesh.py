"""Tests for the 2D mesh interconnect and the scaling experiment."""

import pytest

from repro.interconnect.mesh import MeshInterconnect
from repro.interconnect.ring import RingInterconnect


class TestTopology:
    def test_square_side(self):
        assert MeshInterconnect(8).side == 4   # 16 stops -> 4x4
        assert MeshInterconnect(4).side == 3   # 8 stops -> 3x3 (rounded up)

    def test_manhattan_distance(self):
        mesh = MeshInterconnect(8)  # 4x4 grid
        # core 0 at (0,0); slice 7 is stop 15 at (3,3)
        assert mesh.hops(0, 7) == 6

    def test_hops_nonnegative_and_bounded(self):
        mesh = MeshInterconnect(16)
        for c in range(16):
            for s in range(16):
                h = mesh.hops(c, s)
                assert 0 <= h <= 2 * (mesh.side - 1)

    def test_mean_hops_grows_with_cores(self):
        small = MeshInterconnect(4).mean_hops()
        large = MeshInterconnect(64).mean_hops()
        assert large > 2 * small

    def test_mesh_beats_ring_at_scale(self):
        """At high core counts the mesh's sqrt scaling beats the ring's
        linear scaling — the reason big parts use meshes at all."""
        ring64 = RingInterconnect(64)
        mesh64 = MeshInterconnect(64)
        ring_mean = sum(
            ring64.hops(c, s) for c in range(64) for s in range(64)
        ) / (64 * 64)
        assert mesh64.mean_hops() < ring_mean


class TestTraffic:
    def test_data_counts_flits(self):
        mesh = MeshInterconnect(8)
        lat = mesh.data(0, 7)
        assert lat == mesh.hops(0, mesh.slice_for(7)) * mesh.hop_cycles
        assert mesh.stats.flit_hops == mesh.hops(0, mesh.slice_for(7)) * 4

    def test_round_trip(self):
        mesh = MeshInterconnect(8)
        lat = mesh.round_trip(1, 3)
        assert lat == 2 * mesh.hops(1, mesh.slice_for(3)) * mesh.hop_cycles
        assert mesh.stats.messages == 2

    def test_api_compatible_with_ring(self):
        """Either interconnect can back a hierarchy."""
        from repro.caches.hierarchy import CacheHierarchy, LevelSpec
        from repro.memory.controller import MemoryController

        h = CacheHierarchy(
            1,
            l1i=LevelSpec(1, 2, 5),
            l1d=LevelSpec(1, 2, 5),
            l2=LevelSpec(4, 4, 15),
            llc=LevelSpec(16, 4, 40),
            memory=MemoryController(fixed_latency=100),
            ring=MeshInterconnect(4),
        )
        h.load(0, 0x400, 123, 0.0)
        assert h.ring.stats.messages > 0


@pytest.mark.slow
def test_interconnect_scaling_monotone():
    """The two-level interconnect premium must grow with core count."""
    from repro.experiments import interconnect_scaling

    data = interconnect_scaling.run(quick=True, n_instrs=6000)
    premiums = [row["interconnect_premium"] for row in data["rows"].values()]
    assert premiums == sorted(premiums)
    assert premiums[-1] > premiums[0] * 2
