"""Tests for trace serialization, the workload CLI, and prefetch metrics."""

import io
import sys

import pytest

from repro.caches.cache import Cache
from repro.sim.prefetch_metrics import PrefetchQuality, l1_prefetch_quality
from repro.workloads.serialization import (
    describe_trace,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.workloads.suites import build_trace


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        original = build_trace("mcf_like", 3000)
        path = tmp_path / "mcf.trace.gz"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.name == original.name
        assert loaded.category == original.category
        assert len(loaded) == len(original)
        assert loaded.memory_image == original.memory_image
        for a, b in zip(original.instrs, loaded.instrs):
            assert (a.pc, a.op, a.srcs, a.dst, a.addr, a.data, a.taken,
                    a.target) == (b.pc, b.op, b.srcs, b.dst, b.addr, b.data,
                                  b.taken, b.target)

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.sim.config import skylake_server
        from repro.sim.simulator import Simulator

        original = build_trace("hmmer_like", 4000)
        path = tmp_path / "h.trace.gz"
        save_trace(original, path)
        loaded = load_trace(path)
        a = Simulator(skylake_server()).run(original, warmup=False)
        b = Simulator(skylake_server()).run(loaded, warmup=False)
        assert a.cycles == b.cycles

    def test_bad_version_rejected(self):
        payload = trace_to_dict(build_trace("hmmer_like", 500))
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            trace_from_dict(payload)

    def test_corrupt_columns_rejected(self):
        payload = trace_to_dict(build_trace("hmmer_like", 500))
        payload["pc"] = payload["pc"][:-1]
        with pytest.raises(ValueError, match="column lengths"):
            trace_from_dict(payload)

    def test_describe(self):
        summary = describe_trace(build_trace("tpcc_like", 4000))
        assert summary["instructions"] >= 4000
        assert "LOAD" in summary["op_mix"]
        assert summary["memory_image_entries"] == 0


class TestWorkloadCLI:
    def _run(self, argv):
        from repro.workloads.__main__ import main

        out = io.StringIO()
        old = sys.stdout
        sys.stdout = out
        try:
            code = main(argv)
        finally:
            sys.stdout = old
        return code, out.getvalue()

    def test_list(self):
        code, out = self._run(["list"])
        assert code == 0
        assert "mcf_like" in out and "tpcc_like" in out

    def test_dump_and_info(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        code, out = self._run(["dump", "hmmer_like", "--n", "2000", "--out", path])
        assert code == 0 and "wrote" in out
        code, out = self._run(["info", path])
        assert code == 0
        assert "instructions" in out


class TestPrefetchQuality:
    def test_accuracy_useful_over_resolved(self):
        q = PrefetchQuality(fills=10, useful=6, unused=2, demand_misses=20,
                            demand_accesses=100)
        assert q.accuracy == pytest.approx(6 / 8)

    def test_coverage(self):
        q = PrefetchQuality(fills=10, useful=5, unused=0, demand_misses=15,
                            demand_accesses=100)
        assert q.coverage == pytest.approx(5 / 20)

    def test_pollution(self):
        q = PrefetchQuality(fills=10, useful=0, unused=4, demand_misses=0,
                            demand_accesses=100)
        assert q.pollution == pytest.approx(0.04)

    def test_zero_division_safe(self):
        q = PrefetchQuality(0, 0, 0, 0, 0)
        assert q.accuracy == q.coverage == q.pollution == 0.0

    def test_from_live_cache(self):
        c = Cache("T", 8 * 1024, 4, 5)
        c.fill(1, 0.0, prefetched=True)
        c.fill(2, 0.0, prefetched=True)
        c.access(1, 1.0)     # useful
        c.access(3, 1.0)     # demand miss
        q = l1_prefetch_quality(c)
        assert q.useful == 1
        assert q.fills == 2
        assert 0 <= q.accuracy <= 1

    def test_tact_is_accurate_on_hot_loop(self):
        """End to end: TACT's prefetches on the hmmer-class workload must be
        overwhelmingly useful (the paper's L1-pollution discipline)."""
        from repro.core.catch_engine import CatchEngine
        from repro.cpu.core import OOOCore
        from repro.sim.config import no_l2, skylake_server, with_catch
        from repro.sim.simulator import Simulator
        from repro.workloads.generator import hot_loop

        cfg = with_catch(no_l2(skylake_server(), 6.5))
        sim = Simulator(cfg)
        h = sim.build_hierarchy(1)
        trace = hot_loop("t", "ISPEC", 30_000, ws_bytes=48 << 10, chain_loads=3)
        engine = CatchEngine(cfg.catch)
        core = OOOCore(0, h, cfg.core, engine)
        core.run(trace)
        core.run(trace)
        q = l1_prefetch_quality(h.l1d[0])
        assert q.fills > 100
        assert q.accuracy > 0.7
