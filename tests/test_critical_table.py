"""Tests for the 32-entry critical load table."""

import pytest

from repro.core.critical_table import (
    CONFIDENCE_MAX,
    CriticalLoadTable,
    hash_pc,
    table_area_bytes,
)


class TestHash:
    def test_ten_bits(self):
        for pc in (0, 0x400000, 0xFFFFFFFF, 12345):
            assert 0 <= hash_pc(pc) < 1024

    def test_deterministic(self):
        assert hash_pc(0x400123) == hash_pc(0x400123)


class TestConfidence:
    def test_not_critical_until_saturated(self):
        t = CriticalLoadTable()
        t.observe_critical(0x400)
        assert not t.is_critical(0x400)
        t.observe_critical(0x400)
        assert not t.is_critical(0x400)
        t.observe_critical(0x400)
        assert t.is_critical(0x400)

    def test_tracked_immediately(self):
        t = CriticalLoadTable()
        t.observe_critical(0x400)
        assert t.is_tracked(0x400)

    def test_unknown_pc_not_critical(self):
        t = CriticalLoadTable()
        assert not t.is_critical(0x999)
        assert not t.is_tracked(0x999)

    def test_promotion_counted(self):
        t = CriticalLoadTable()
        for _ in range(CONFIDENCE_MAX):
            t.observe_critical(0x400)
        assert t.stats.promotions == 1


class TestCapacity:
    def test_entries_divisible_by_ways(self):
        with pytest.raises(ValueError):
            CriticalLoadTable(entries=30, ways=8)

    def test_lru_eviction_within_set(self):
        t = CriticalLoadTable(entries=8, ways=8)  # one set
        pcs = [0x1000 + i * 4 for i in range(9)]
        for pc in pcs:
            t.observe_critical(pc)
        assert t.resident_count() <= 8
        assert t.stats.evictions >= 1

    def test_reobservation_refreshes_lru(self):
        t = CriticalLoadTable(entries=8, ways=8)
        pcs = [0x1000 + i * 4 for i in range(8)]
        for pc in pcs:
            t.observe_critical(pc)
        t.observe_critical(pcs[0])  # refresh the oldest
        t.observe_critical(0x9000)  # evicts pcs[1], not pcs[0]
        assert t.is_tracked(pcs[0])

    def test_thrash_with_many_pcs(self):
        """The povray pathology: far more critical PCs than entries means
        none reaches saturated confidence."""
        t = CriticalLoadTable(entries=32, ways=8)
        for round_ in range(20):
            for i in range(96):
                t.observe_critical(0x1000 + i * 48)
        assert t.critical_count() <= 4  # essentially nothing saturates


class TestEpoch:
    def test_unsaturated_reset_after_epoch(self):
        t = CriticalLoadTable(epoch_instructions=100)
        t.observe_critical(0x400)  # confidence 1
        t.tick_retire(100)
        t.observe_critical(0x400)  # was reset to 0, now 1
        t.observe_critical(0x400)  # 2
        assert not t.is_critical(0x400)

    def test_saturated_survive_epoch(self):
        t = CriticalLoadTable(epoch_instructions=100)
        for _ in range(3):
            t.observe_critical(0x400)
        t.tick_retire(100)
        assert t.is_critical(0x400)
        assert t.stats.epoch_resets == 1

    def test_partial_ticks_accumulate(self):
        t = CriticalLoadTable(epoch_instructions=100)
        for _ in range(99):
            t.tick_retire(1)
        assert t.stats.epoch_resets == 0
        t.tick_retire(1)
        assert t.stats.epoch_resets == 1


def test_area_small():
    assert table_area_bytes(32) < 100  # a few dozen bytes


class TestTableArea:
    def test_table1_shipping_point(self):
        """Table I: 32 entries x (10 b hash + 2 b conf + 3 b LRU) = 60 B."""
        assert table_area_bytes(32) == 60.0
        assert table_area_bytes(32, ways=8) == 60.0

    def test_lru_bits_follow_way_count(self):
        # ceil(log2(ways)) bits of LRU state per entry, not a constant 3.
        assert table_area_bytes(32, ways=4) == 32 * (10 + 2 + 2) / 8
        assert table_area_bytes(32, ways=2) == 32 * (10 + 2 + 1) / 8
        assert table_area_bytes(32, ways=1) == 32 * (10 + 2) / 8  # direct-mapped
        assert table_area_bytes(64, ways=16) == 64 * (10 + 2 + 4) / 8

    def test_default_ways_match_detector_construction(self):
        # CriticalityDetector builds the table with ways=min(8, entries);
        # small sensitivity-study capacities become fully associative.
        assert table_area_bytes(4) == table_area_bytes(4, ways=4)
        assert table_area_bytes(8) == table_area_bytes(8, ways=8)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            table_area_bytes(32, ways=5)
        with pytest.raises(ValueError):
            table_area_bytes(32, ways=0)
