"""Golden-parity differential harness (tier-1 gate for the fast kernel).

The optimized span kernel must produce *byte-identical* ``RunResult`` JSON
to the seed-equivalent per-instruction reference loop on every pair of the
fig10 differential matrix — the contract documented in README.md's
Performance section.  These tests run a reduced matrix (every config, two
workloads, short traces); ``benchmarks/bench_kernel.py`` runs the full one.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import RunTimeoutError
from repro.runner.runner import DEADLINE_CHECK_INTERVAL, Deadline
from repro.runner.store import ResultStore
from repro.sim.config import skylake_server
from repro.sim.parity import (
    canonical_result_json,
    compare_kernels,
    differential_matrix,
)
from repro.sim.simulator import KERNELS, Simulator

SMOKE_WORKLOADS = ("mcf_like", "tpcc_like")
SMOKE_PAIRS = [
    (config, workload)
    for config, workload in differential_matrix(quick=True)
    if workload in SMOKE_WORKLOADS
]


def _first_diff(a: str, b: str) -> str:
    for i, (ca, cb) in enumerate(zip(a, b)):
        if ca != cb:
            return f"first diff at char {i}: ...{a[i:i + 60]!r} vs ...{b[i:i + 60]!r}"
    return f"length mismatch: {len(a)} vs {len(b)}"


class TestMatrixParity:
    @pytest.mark.parametrize(
        "config, workload",
        SMOKE_PAIRS,
        ids=[f"{c.name}-{w}" for c, w in SMOKE_PAIRS],
    )
    def test_byte_identical_across_matrix(self, config, workload):
        cmp = compare_kernels(config, workload, 4000)
        assert cmp.match, (
            f"{config.name}/{workload}: kernel divergence — "
            + _first_diff(cmp.reference_json, cmp.fast_json)
        )

    def test_parity_without_warmup(self):
        cmp = compare_kernels(skylake_server(), "hmmer_like", 3000, warmup=False)
        assert cmp.match, _first_diff(cmp.reference_json, cmp.fast_json)

    def test_parity_with_latency_policy(self):
        """The hierarchy's latency_policy hook runs inside the inlined hit
        path; parity must hold with it installed."""

        def tax(pc, level, latency):
            return latency + 2.0

        results = {}
        for kernel in KERNELS:
            sim = Simulator(skylake_server())
            results[kernel] = sim.run(
                "mcf_like", 3000, latency_policy=tax, kernel=kernel
            )
        ref = canonical_result_json(results["reference"])
        fast = canonical_result_json(results["fast"])
        assert ref == fast, _first_diff(ref, fast)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            Simulator(skylake_server()).run("mcf_like", 1000, kernel="turbo")


class TestHookSemantics:
    """The fast kernel must keep the per-instruction hook contract."""

    def test_on_instruction_counts_match(self):
        counts = {}
        for kernel in KERNELS:
            seen = []
            Simulator(skylake_server()).run(
                "hmmer_like", 1500, on_instruction=seen.append, kernel=kernel
            )
            counts[kernel] = seen
        assert counts["fast"] == counts["reference"]
        assert counts["fast"][0] == 1  # called after every instruction, from 1
        assert counts["fast"] == list(range(1, len(counts["fast"]) + 1))

    def test_on_instruction_aborts_at_exact_index(self):
        class Boom(Exception):
            pass

        for kernel in KERNELS:
            seen = []

            def hook(idx):
                seen.append(idx)
                if idx == 100:
                    raise Boom

            with pytest.raises(Boom):
                Simulator(skylake_server()).run(
                    "hmmer_like", 1500, on_instruction=hook, kernel=kernel
                )
            assert seen[-1] == 100 and len(seen) == 100, kernel

    def test_fast_kernel_polls_deadline_on_stride(self):
        seen = []
        Simulator(skylake_server()).run(
            "hmmer_like", 1500, warmup=False, deadline=seen.append,
            kernel="fast",
        )
        assert 0 in seen  # phase boundaries always notify
        nonzero = [i for i in seen if i]
        assert nonzero, "deadline never polled mid-span"
        assert all(i % DEADLINE_CHECK_INTERVAL == 0 for i in nonzero)

    def test_reference_kernel_polls_deadline_every_instruction(self):
        seen = []
        Simulator(skylake_server()).run(
            "hmmer_like", 1500, warmup=False, deadline=seen.append,
            kernel="reference",
        )
        nonzero = [i for i in seen if i]
        assert len(nonzero) >= 1500  # one call per stepped instruction

    def test_runner_deadline_fires_under_fast_kernel(self):
        """A wall-clock ``Deadline`` must still abort a fast-kernel run
        mid-span, not merely at phase boundaries."""
        t = 0.0

        def fake_clock():
            nonlocal t
            t += 0.3
            return t

        deadline = Deadline(1.0, fake_clock)
        with pytest.raises(RunTimeoutError):
            Simulator(skylake_server()).run(
                "hmmer_like", 2000, warmup=False, deadline=deadline,
                kernel="fast",
            )


class TestCheckpointTelemetryParity:
    """Satellite: telemetry-carrying and telemetry-free checkpoints must
    round-trip through ``ResultStore`` and compare equal under the parity
    comparator (telemetry is presentation, never measurement)."""

    def test_round_trip_compares_equal(self, tmp_path):
        cfg = skylake_server()
        with obs.use_metrics():
            with_telemetry = Simulator(cfg).run("hmmer_like", 1500)
        plain = Simulator(cfg).run("hmmer_like", 1500)
        assert with_telemetry.telemetry is not None
        assert plain.telemetry is None

        restored = {}
        for label, result in (("t", with_telemetry), ("p", plain)):
            store = ResultStore(tmp_path / label)
            store.put(cfg, "hmmer_like", 1500, result)
            reader = ResultStore(tmp_path / label, resume=True)
            restored[label] = reader.get(cfg, "hmmer_like", 1500)
        assert restored["t"] is not None and restored["p"] is not None

        # Telemetry survives its own round trip...
        assert restored["t"].telemetry == with_telemetry.telemetry
        # ...but the comparator sees both checkpoints as the same run.
        jsons = {
            canonical_result_json(restored["t"]),
            canonical_result_json(restored["p"]),
            canonical_result_json(with_telemetry),
            canonical_result_json(plain),
        }
        assert len(jsons) == 1, jsons

    def test_comparator_distinguishes_telemetry_when_asked(self, tmp_path):
        cfg = skylake_server()
        with obs.use_metrics():
            with_telemetry = Simulator(cfg).run("hmmer_like", 1500)
        plain = Simulator(cfg).run("hmmer_like", 1500)
        assert canonical_result_json(
            with_telemetry, include_telemetry=True
        ) != canonical_result_json(plain, include_telemetry=True)
