"""Tests for the plugin registry layer (:mod:`repro.plugins`).

Covers the generic :class:`Registry` semantics (duplicate registration,
unknown-name errors with did-you-mean, canonical naming), the concrete
registries' contents, ``$REPRO_PLUGINS`` external loading, the
``SimConfig.validate`` component checks, :class:`Selection` composition
semantics, kernel parity for registry-composed machines, serialization
round-trips of the new fields, and the CLI surface
(``repro.sim plugins`` / ``--prefetchers`` / ``--detector`` /
``--topology``).
"""

from __future__ import annotations

import textwrap
from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.plugins import (
    DETECTORS,
    PREFETCHERS,
    POLICIES,
    Selection,
    TOPOLOGIES,
    all_registries,
    apply_selection,
    canonical_name,
    use_selection,
)
from repro.plugins.registry import Registry
from repro.sim.config import no_l2, skylake_server, with_catch
from repro.sim.parity import canonical_result_json, compare_kernels
from repro.sim.serialization import config_from_dict, config_to_dict
from repro.sim.simulator import Simulator

N = 2000


# ------------------------------------------------------- generic semantics


class TestRegistry:
    def test_canonical_name(self):
        assert canonical_name("  IP_Stride ") == "ip-stride"

    def test_get_normalizes(self):
        reg = Registry("widget")
        reg.register("ip-stride", object(), summary="s")
        assert reg.get("IP_Stride") is reg.get("ip-stride")

    def test_duplicate_registration_raises(self):
        reg = Registry("widget")
        reg.register("a", 1, summary="first")
        with pytest.raises(ValueError, match="duplicate widget registration"):
            reg.register("A", 2, summary="second")
        assert reg.get("a") == 1  # original binding untouched

    def test_unknown_name_is_config_error_with_suggestion(self):
        reg = Registry("widget")
        reg.register("ip-stride", 1, summary="s")
        reg.register("stream", 2, summary="s")
        with pytest.raises(ConfigError) as err:
            reg.get("ip-strid")
        message = str(err.value)
        assert "unknown widget 'ip-strid'" in message
        assert "['ip-stride', 'stream']" in message
        assert "did you mean 'ip-stride'?" in message

    def test_unknown_name_without_close_match(self):
        reg = Registry("widget")
        reg.register("alpha", 1, summary="s")
        with pytest.raises(ConfigError) as err:
            reg.get("zzzz")
        assert "did you mean" not in str(err.value)

    def test_introspection(self):
        reg = Registry("widget")
        reg.register("b", 2, summary="bee")
        reg.register("a", 1, summary="ay")
        assert reg.names() == ("a", "b")
        assert reg.describe() == {"a": "ay", "b": "bee"}
        assert "a" in reg and "A" in reg and "c" not in reg
        assert len(reg) == 2 and sorted(reg) == ["a", "b"]

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("a", 1, summary="s")
        reg.unregister("a")
        assert "a" not in reg
        reg.register("a", 3, summary="s")  # name is reusable afterwards
        assert reg.get("a") == 3


class TestGlobalRegistries:
    def test_families(self):
        assert set(all_registries()) == {
            "prefetchers", "detectors", "topologies", "replacement-policies",
            "workloads",
        }

    def test_expected_entries(self):
        assert {"ip-stride", "stream", "next-line", "tact-cross",
                "tact-deep-self", "tact-feeder", "tact-code"} <= set(
            PREFETCHERS.names()
        )
        assert {"ddg", "oracle", "none", "load-miss-pc",
                "oldest-in-rob"} <= set(DETECTORS.names())
        assert {"baseline", "no-l2", "no-l2-catch"} <= set(TOPOLOGIES.names())
        assert {"lru", "lip", "random", "srrip", "nru"} <= set(
            POLICIES.names()
        )

    def test_make_policy_error_carries_suggestion(self):
        from repro.caches.replacement import make_policy

        with pytest.raises(ConfigError, match="unknown replacement policy"):
            make_policy("belady")
        with pytest.raises(ConfigError, match=r"did you mean 'lru'\?"):
            make_policy("lruu")
        assert type(make_policy("LRU")).__name__ == "LRUPolicy"

    def test_policy_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate replacement policy"):
            POLICIES.register("lru", object, summary="again")


# ----------------------------------------------------- external plugins


def _write_plugin(tmp_path, name, body):
    (tmp_path / f"{name}.py").write_text(textwrap.dedent(body))
    return name


class TestExternalPlugins:
    def test_env_module_registers(self, tmp_path, monkeypatch):
        mod = _write_plugin(
            tmp_path, "extra_pf", """
            from repro.caches.prefetchers import NextLinePrefetcher
            from repro.plugins import register_prefetcher

            class DoubleNextLine(NextLinePrefetcher):
                pass

            register_prefetcher(
                "double-next-line", DoubleNextLine,
                summary="test-only next-line clone",
            )
            """,
        )
        monkeypatch.syspath_prepend(tmp_path)
        monkeypatch.setenv("REPRO_PLUGINS", mod)
        try:
            spec = PREFETCHERS.get("double-next-line")
            assert spec.scope == "core"
            cfg = replace(
                skylake_server(), name="ext", prefetchers=("double-next-line",)
            )
            result = Simulator(cfg).run("mcf_like", N)
            assert result.ipc > 0
        finally:
            if "double-next-line" in PREFETCHERS:
                PREFETCHERS.unregister("double-next-line")

    def test_broken_env_module_is_config_error(self, tmp_path, monkeypatch):
        mod = _write_plugin(
            tmp_path, "broken_plugin_mod", "raise ImportError('kaboom')\n"
        )
        monkeypatch.syspath_prepend(tmp_path)
        monkeypatch.setenv("REPRO_PLUGINS", mod)
        with pytest.raises(ConfigError, match="broken_plugin_mod"):
            PREFETCHERS.get("ip-stride")
        # With the variable cleared the registry works again.
        monkeypatch.delenv("REPRO_PLUGINS")
        assert PREFETCHERS.get("ip-stride").scope == "core"


_CRASHING_PLUGIN = """
from repro.plugins import register_prefetcher

def exploding_factory(core_id, hierarchy):
    raise RuntimeError("plugin construction exploded")

register_prefetcher(
    "exploding", exploding_factory, summary="always fails to build",
)
"""


class TestPluginFaultIsolation:
    """A plugin that fails to *construct* becomes a FailureRecord, not a
    crash of the process (serial) or the worker pool (parallel)."""

    @pytest.fixture
    def exploding_env(self, tmp_path, monkeypatch, request):
        # Module name is unique per test: the loader (and sys.modules) caches
        # imported plugin modules per process, so re-registering after a
        # previous test's teardown unregistered requires a fresh module.
        unique = request.node.name.strip("_[]").replace("[", "_")
        mod = _write_plugin(tmp_path, f"exploding_plugin_{unique}",
                            _CRASHING_PLUGIN)
        monkeypatch.syspath_prepend(tmp_path)
        monkeypatch.setenv("REPRO_PLUGINS", mod)
        yield replace(
            skylake_server(), name="exploding_cfg", prefetchers=("exploding",)
        )
        if "exploding" in PREFETCHERS:
            PREFETCHERS.unregister("exploding")

    def test_serial_runner_records_failure(self, exploding_env):
        from repro.errors import RunFailure
        from repro.runner import ExperimentRunner

        runner = ExperimentRunner()
        with pytest.raises(RunFailure, match="plugin construction exploded"):
            runner.run(exploding_env, "mcf_like", N)
        (record,) = runner.failures
        assert record.error_type == "RuntimeError"
        assert "plugin construction exploded" in record.message
        assert runner.stats.failures == 1

    def test_fleet_contains_failure_and_finishes_sweep(self, exploding_env):
        from repro.errors import RunFailure
        from repro.runner import FleetRunner

        fleet = FleetRunner(jobs=2)
        with pytest.raises(RunFailure, match="1 of 2 jobs failed"):
            fleet.sweep(
                [exploding_env, skylake_server()], ["mcf_like"], N
            )
        (record,) = fleet.failures
        assert record.config_name == "exploding_cfg"
        assert "plugin construction exploded" in record.message
        assert fleet.fleet_stats.workers_crashed == 0  # fault, not a crash
        assert fleet.stats.completed == 1  # the healthy config still ran


# ------------------------------------------------------- validation (S6)


class TestComponentValidation:
    def test_tact_prefetcher_needs_detector(self):
        cfg = replace(skylake_server(), prefetchers=("tact-cross",))
        with pytest.raises(ConfigError) as err:
            cfg.validate()
        message = str(err.value)
        assert "tact-cross" in message
        assert "conflicting fields" in message and "prefetchers" in message

    def test_detector_none_conflicts_with_catch_engine(self):
        cfg = with_catch(skylake_server())
        cfg = replace(cfg, catch=replace(cfg.catch, detector="none"))
        with pytest.raises(ConfigError, match="catch.detector='none'"):
            cfg.validate()

    def test_unknown_prefetcher_name(self):
        cfg = replace(skylake_server(), prefetchers=("ip-strid",))
        with pytest.raises(
            ConfigError, match=r"prefetchers:.*did you mean 'ip-stride'"
        ):
            cfg.validate()

    def test_unknown_detector_name(self):
        cfg = with_catch(skylake_server())
        cfg = replace(cfg, catch=replace(cfg.catch, detector="dgd"))
        with pytest.raises(
            ConfigError, match=r"catch\.detector:.*did you mean 'ddg'"
        ):
            cfg.validate()

    def test_unknown_replacement_name(self):
        cfg = skylake_server()
        cfg = replace(cfg, llc=replace(cfg.llc, replacement="lruu"))
        with pytest.raises(
            ConfigError, match=r"did you mean 'lru'"
        ):
            cfg.validate()

    def test_valid_compositions_pass(self):
        replace(skylake_server(), prefetchers=()).validate()
        replace(skylake_server(), prefetchers=("next-line",)).validate()
        with_catch(skylake_server()).validate()


# ------------------------------------------------------------- Selection


class TestSelection:
    def test_empty_selection_is_identity(self):
        cfg = skylake_server()
        assert apply_selection(cfg, Selection()) is cfg

    def test_topology_transform(self):
        cfg = apply_selection(skylake_server(), Selection(topology="no-l2"))
        assert cfg.l2 is None
        assert cfg.name == "noL2_6.5MB"

    def test_prefetchers_exhaustive_core_only(self):
        cfg = apply_selection(
            skylake_server(), Selection(prefetchers=("next-line",))
        )
        assert cfg.prefetchers == ("next-line",)
        assert cfg.catch is None
        assert cfg.name == "baseline_server[pf=next-line]"

    def test_tact_prefetchers_create_catch_config(self):
        cfg = apply_selection(
            skylake_server(),
            Selection(prefetchers=("ip-stride", "tact-cross")),
        )
        assert cfg.prefetchers == ("ip-stride",)
        assert cfg.catch is not None and not cfg.catch.detector_only
        assert cfg.catch.tact.components() == ("cross",)
        cfg.validate()

    def test_no_tact_entries_on_catch_config_goes_detector_only(self):
        cfg = apply_selection(
            with_catch(skylake_server()),
            Selection(prefetchers=("ip-stride", "stream")),
        )
        assert cfg.catch.detector_only

    def test_detector_none_strips_catch(self):
        cfg = apply_selection(
            with_catch(skylake_server()), Selection(detector="none")
        )
        assert cfg.catch is None

    def test_detector_swap_and_creation(self):
        swapped = apply_selection(
            with_catch(skylake_server()), Selection(detector="oldest-in-rob")
        )
        assert swapped.catch.detector == "oldest-in-rob"
        created = apply_selection(
            skylake_server(), Selection(detector="load-miss-pc")
        )
        assert created.catch.detector_only
        assert created.catch.detector == "load-miss-pc"

    def test_tact_with_detector_none_conflicts(self):
        with pytest.raises(ConfigError, match="conflicting fields"):
            apply_selection(
                skylake_server(),
                Selection(prefetchers=("tact-cross",), detector="none"),
            )

    def test_idempotent(self):
        sel = Selection(prefetchers=("next-line",), detector="ddg")
        once = apply_selection(skylake_server(), sel)
        assert apply_selection(once, sel) == once

    def test_selection_from_args(self):
        import argparse

        from repro.plugins import add_selection_args, selection_from_args

        parser = argparse.ArgumentParser()
        add_selection_args(parser)
        args = parser.parse_args(
            ["--prefetchers", "ip-stride,stream", "tact-cross",
             "--detector", "ddg", "--topology", "no-l2"]
        )
        sel = selection_from_args(args)
        assert sel.prefetchers == ("ip-stride", "stream", "tact-cross")
        assert sel.detector == "ddg" and sel.topology == "no-l2"
        none = selection_from_args(parser.parse_args(["--prefetchers", "none"]))
        assert none.prefetchers == ()
        assert not selection_from_args(parser.parse_args([]))

    def test_use_selection_scopes_the_override(self):
        from repro.plugins.compose import apply_active_selection

        cfg = skylake_server()
        with use_selection(Selection(detector="load-miss-pc")):
            inside = apply_active_selection(cfg)
            assert inside.catch is not None
        assert apply_active_selection(cfg) is cfg


# ---------------------------------------------------- composition parity


class TestComposition:
    def test_explicit_default_prefetchers_byte_identical(self):
        base = skylake_server()
        explicit = replace(base, prefetchers=("ip-stride", "stream"))
        a = canonical_result_json(Simulator(base).run("mcf_like", N))
        b = canonical_result_json(Simulator(explicit).run("mcf_like", N))
        assert a == b

    def test_next_line_kernel_parity(self):
        cfg = replace(
            skylake_server(), name="nextline", prefetchers=("next-line",)
        )
        comparison = compare_kernels(cfg, "mcf_like", N)
        assert comparison.match

    def test_no_prefetchers_differs_from_default(self):
        base = skylake_server()
        none = replace(base, prefetchers=())
        a = Simulator(base).run("gcc_like", N)
        b = Simulator(none).run("gcc_like", N)
        assert a.cycles != b.cycles  # prefetchers genuinely disabled


# --------------------------------------------------------- serialization


class TestSerialization:
    def test_prefetchers_round_trip(self):
        cfg = replace(skylake_server(), prefetchers=("next-line",))
        restored = config_from_dict(config_to_dict(cfg))
        assert restored.prefetchers == ("next-line",)
        assert restored == cfg

    def test_prefetchers_none_round_trip(self):
        cfg = skylake_server()
        restored = config_from_dict(config_to_dict(cfg))
        assert restored.prefetchers is None

    def test_oracle_pcs_round_trip(self):
        cfg = with_catch(skylake_server())
        cfg = replace(
            cfg,
            catch=replace(cfg.catch, detector="oracle", oracle_pcs=(4, 8)),
        )
        restored = config_from_dict(config_to_dict(cfg))
        assert restored.catch.oracle_pcs == (4, 8)
        assert restored == cfg


# ------------------------------------------------------------------- CLI


class TestCLI:
    def test_plugins_subcommand(self, capsys):
        from repro.sim.__main__ import main

        assert main(["plugins"]) == 0
        out = capsys.readouterr().out
        for family in ("prefetchers:", "detectors:", "topologies:",
                       "replacement-policies:"):
            assert family in out
        assert "ip-stride" in out and "ddg" in out and "no-l2" in out

    def test_plugins_family_filter(self, capsys):
        from repro.sim.__main__ import main

        assert main(["plugins", "--family", "detectors"]) == 0
        out = capsys.readouterr().out
        assert "detectors:" in out and "prefetchers:" not in out
        with pytest.raises(SystemExit, match="unknown registry family"):
            main(["plugins", "--family", "wombats"])

    def test_run_with_selection_flags(self, capsys):
        from repro.sim.__main__ import main

        assert main(
            ["run", "baseline_server", "mcf_like", "--n", str(N),
             "--prefetchers", "ip-stride", "--detector", "none"]
        ) == 0
        out = capsys.readouterr().out
        assert "baseline_server[pf=ip-stride,det=none]" in out

    def test_run_with_topology(self, capsys):
        from repro.sim.__main__ import main

        assert main(
            ["run", "baseline_server", "mcf_like", "--n", str(N),
             "--topology", "no-l2"]
        ) == 0
        assert "noL2_6.5MB" in capsys.readouterr().out

    def test_run_rejects_invalid_combo(self):
        from repro.sim.__main__ import main

        with pytest.raises(SystemExit, match="invalid configuration"):
            main(
                ["run", "baseline_server", "mcf_like", "--n", str(N),
                 "--prefetchers", "tact-cross", "--detector", "none"]
            )

    def test_experiments_parser_accepts_selection_flags(self):
        from repro.experiments.registry import build_parser

        args = build_parser().parse_args(
            ["fig13", "--quick", "--detector", "oldest-in-rob",
             "--topology", "no-l2"]
        )
        assert args.detector == "oldest-in-rob"
        assert args.topology == "no-l2"
