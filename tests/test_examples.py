"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken example is a broken repo.
Each is executed in-process with a tiny workload budget where possible.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "criticality_analysis.py", "design_space.py",
            "multiprogrammed.py"} <= names


@pytest.mark.slow
@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=1200,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()
