"""Unit tests for the individual TACT prefetcher mechanisms."""

import pytest

from repro.core.tact.cross import (
    DELTA_CONFIDENCE_MAX,
    INSTANCES_PER_CANDIDATE,
    MAX_WRAPS,
    CrossState,
)
from repro.core.tact.deep_self import LENGTH_CAP, MAX_DISTANCE, DeepSelfState
from repro.core.tact.feeder import SCALES, FeederState, RegisterLoadTracker
from repro.core.tact.trigger_cache import TriggerCache


class TestTriggerCache:
    def test_first_four_pcs_tracked(self):
        tc = TriggerCache()
        for pc in (0x10, 0x20, 0x30, 0x40, 0x50):
            tc.observe(pc, 0x1000)
        assert tc.candidates(0x1000) == [0x10, 0x20, 0x30, 0x40]

    def test_duplicate_pc_not_repeated(self):
        tc = TriggerCache()
        tc.observe(0x10, 0x1000)
        tc.observe(0x10, 0x1040)
        assert tc.candidates(0x1000) == [0x10]

    def test_distinct_pages(self):
        tc = TriggerCache()
        tc.observe(0x10, 0x1000)
        tc.observe(0x20, 0x2000)
        assert tc.candidates(0x1000) == [0x10]
        assert tc.candidates(0x2000) == [0x20]

    def test_lru_page_eviction(self):
        tc = TriggerCache(sets=1, ways=2)
        tc.observe(0x10, 0x1000)
        tc.observe(0x20, 0x2000)
        tc.observe(0x30, 0x3000)  # evicts page 0x1000
        assert tc.candidates(0x1000) == []

    def test_unknown_page_empty(self):
        assert TriggerCache().candidates(0x9000) == []


class TestDeepSelf:
    def test_no_prefetch_before_confidence(self):
        s = DeepSelfState()
        assert not s.observe(0x1000)
        assert not s.observe(0x1040)

    def test_distance_one_after_stride_learned(self):
        s = DeepSelfState()
        addr = 0x1000
        for _ in range(4):
            out = s.observe(addr)
            addr += 64
        assert addr - 64 + 64 in out  # distance-1 prefetch present

    def test_deep_prefetch_after_safe_confidence(self):
        s = DeepSelfState()
        addr = 0x1000
        out = []
        for _ in range(200):  # long stream: wraparound builds safe length
            out = s.observe(addr)
            addr += 64
        last = addr - 64
        assert last + 64 in out
        assert last + 64 * MAX_DISTANCE in out

    def test_random_addresses_never_prefetch(self):
        import random

        rng = random.Random(5)
        s = DeepSelfState()
        for _ in range(100):
            assert not s.observe(rng.randrange(1 << 20) * 64)

    def test_stride_break_restarts_run_at_one(self):
        """The interval that establishes the new stride is the first interval
        of the new run (the old accounting restarted at 0, under-counting
        every run by one and teaching the safe window one short)."""
        s = DeepSelfState()
        addr = 0x1000
        for _ in range(10):
            s.observe(addr)
            addr += 64
        s.observe(0x900000)  # break: one interval of the new (huge) stride
        assert s.run_length == 1

    def test_zero_delta_establishes_no_interval(self):
        s = DeepSelfState()
        s.observe(0x1000)
        s.observe(0x1040)
        assert s.run_length == 1
        s.observe(0x1040)  # same address: no stride, no interval
        assert s.run_length == 0

    def test_break_folds_true_interval_count_into_safe_length(self):
        """Runs of K accesses have K-1 same-stride intervals; the fold must
        see that true count (the old accounting under-counted by one, and
        the segment-boundary jump used to fold as a bogus run of one that
        reset the learning every segment)."""
        s = DeepSelfState()
        for rep in range(40):
            base = rep * (1 << 20)
            for k in range(6):  # 5 intra-run intervals per segment
                s.observe(base + k * 64)
        # The ratchet in _update_safe_length settles one beyond the observed
        # run (probing for longer runs): 5 true intervals -> safe length 6.
        assert s.safe_length == 6
        assert s.safe_conf == 3

    def test_run_accounting_across_break_and_relearn(self):
        s = DeepSelfState()
        addr = 0x1000
        for _ in range(10):
            s.observe(addr)
            addr += 64
        s.observe(0x900000)          # break; run restarts at 1
        assert s.run_length == 1 and s.stride_conf == 0
        out = s.observe(0x900000 + 64)   # new stride's first repeat
        assert s.run_length == 1 and not out  # conf 0 -> no prefetch yet
        s.observe(0x900000 + 128)
        out = s.observe(0x900000 + 192)
        assert s.run_length == 3
        assert 0x900000 + 256 in out  # distance-1 resumes once conf >= 2

    def test_length_cap_wraparound_restarts_at_one(self):
        """A capped run folds into the safe length and restarts its counter
        at 1 — the same accounting as a stride break."""
        s = DeepSelfState()
        addr = 0
        for i in range(LENGTH_CAP + 1):  # run_length reaches the cap
            s.observe(addr)
            addr += 64
        assert s.run_length == LENGTH_CAP
        s.observe(addr)  # wraparound: fold + restart
        assert s.run_length == 1
        assert s.safe_length == LENGTH_CAP
        assert s.safe_conf == 1
        s.observe(addr + 64)
        assert s.run_length == 2

    def test_safe_length_capped(self):
        s = DeepSelfState()
        addr = 0
        for _ in range(500):
            s.observe(addr)
            addr += 64
        assert s.safe_length <= LENGTH_CAP

    def test_short_runs_limit_deep_distance(self):
        """A PC whose stride breaks every 4 accesses must not issue
        distance-16 prefetches."""
        s = DeepSelfState()
        base = 0
        for rep in range(60):
            addr = rep * (1 << 20)
            for k in range(4):
                out = s.observe(addr + k * 64)
        deep = [a for a in out if a > (out[0] if out else 0)]
        for a in out:
            assert a <= addr + 3 * 64 + 64 * 8  # nothing at full depth


class TestCross:
    def _learn(self, state, trigger_addr=0x1000, delta=64, rounds=4):
        for i in range(rounds):
            t = trigger_addr + i * 128
            state.observe_target(t + delta, t)
        return state

    def test_learns_stable_delta(self):
        s = CrossState()
        s.refresh_candidates([0x111], self_pc=0x222)
        self._learn(s)
        assert s.learned
        assert s.delta == 64
        assert s.trigger_pc == 0x111

    def test_prefetch_address(self):
        s = CrossState()
        s.refresh_candidates([0x111], 0x222)
        self._learn(s)
        assert s.prefetch_for_trigger(0x5000) == 0x5000 + 64

    def test_no_prefetch_before_learning(self):
        s = CrossState()
        assert s.prefetch_for_trigger(0x5000) is None

    def test_self_excluded_from_candidates(self):
        s = CrossState()
        s.refresh_candidates([0x222], self_pc=0x222)
        assert s.current_candidate() == -1

    def test_candidate_rotation_after_instances(self):
        s = CrossState()
        s.refresh_candidates([0x111, 0x333], 0x222)
        import random

        rng = random.Random(9)
        for _ in range(INSTANCES_PER_CANDIDATE):
            s.observe_target(rng.randrange(1 << 20), rng.randrange(1 << 20))
        assert s.current_candidate() == 0x333

    def test_gives_up_after_wraps(self):
        s = CrossState()
        s.refresh_candidates([0x111], 0x222)
        import random

        rng = random.Random(9)
        for _ in range(INSTANCES_PER_CANDIDATE * MAX_WRAPS + 1):
            s.observe_target(rng.randrange(1 << 30), rng.randrange(1 << 30))
        assert s.gave_up
        assert not s.learned


class TestRegisterTracker:
    def test_load_sets_register(self):
        t = RegisterLoadTracker()
        t.on_load(0x100, idx=5, dst=3)
        assert t.feeder_for((3,), exclude_idx=99) == 0x100

    def test_propagation_through_alu(self):
        t = RegisterLoadTracker()
        t.on_load(0x100, idx=5, dst=3)
        t.on_other(idx=6, srcs=(3,), dst=7)  # alu moves load's PC to r7
        assert t.feeder_for((7,), exclude_idx=99) == 0x100

    def test_youngest_wins(self):
        t = RegisterLoadTracker()
        t.on_load(0x100, idx=5, dst=3)
        t.on_load(0x200, idx=8, dst=4)
        assert t.feeder_for((3, 4), exclude_idx=99) == 0x200

    def test_exclusion_of_own_index(self):
        t = RegisterLoadTracker()
        t.on_load(0x100, idx=5, dst=3)
        assert t.feeder_for((3,), exclude_idx=5) == -1

    def test_untracked_register(self):
        assert RegisterLoadTracker().feeder_for((0,), exclude_idx=1) == -1


class TestFeeder:
    def _confirm(self, s, feeder_pc=0x100):
        # First observation installs the candidate; three more saturate the
        # 2-bit confidence.
        for _ in range(4):
            s.observe_feeder_candidate(feeder_pc)

    def test_feeder_confirmation(self):
        s = FeederState()
        self._confirm(s)
        assert s.confirmed

    def test_unstable_feeder_not_confirmed(self):
        s = FeederState()
        s.observe_feeder_candidate(0x100)
        s.observe_feeder_candidate(0x200)
        s.observe_feeder_candidate(0x100)
        assert not s.confirmed

    @pytest.mark.parametrize("scale", SCALES)
    def test_learns_each_scale(self, scale):
        s = FeederState()
        self._confirm(s)
        base = 0x7000
        for data in (10, 20, 30, 40):
            s.observe_relation(scale * data + base, data)
        assert s.learned
        assert s.scale == scale
        assert s.predict(50) == scale * 50 + base

    def test_non_hardware_scale_rejected(self):
        """Scale 64 is not in {1,2,4,8}: the hardware cannot learn it."""
        s = FeederState()
        self._confirm(s)
        for data in (10, 20, 30, 40, 50):
            s.observe_relation(64 * data + 0x7000, data)
        assert not s.learned

    def test_no_prediction_before_learning(self):
        s = FeederState()
        assert s.predict(42) is None

    def test_random_relation_not_learned(self):
        import random

        rng = random.Random(2)
        s = FeederState()
        self._confirm(s)
        for _ in range(50):
            s.observe_relation(rng.randrange(1 << 30), rng.randrange(1 << 16))
        assert not s.learned
