"""Tests for the front end, baseline prefetchers and TACT coordinator glue."""

import pytest

from repro.caches.hierarchy import CacheHierarchy, Level, LevelSpec
from repro.caches.prefetchers import (
    L1StridePrefetcher,
    L2StreamPrefetcher,
    NextLinePrefetcher,
)
from repro.core.catch_engine import CatchEngine
from repro.core.tact.coordinator import TACTConfig, TACTCoordinator
from repro.cpu.core import CoreParams, OOOCore
from repro.cpu.frontend import FrontEnd
from repro.memory.controller import MemoryController
from repro.workloads.generator import cross_gather, indexed_gather, server_app
from repro.workloads.trace import Instr, Op, Trace


def make_hierarchy(**kw):
    defaults = dict(
        l1i=LevelSpec(1, 2, 5),
        l1d=LevelSpec(1, 2, 5),
        l2=LevelSpec(16, 4, 15),
        llc=LevelSpec(64, 4, 40),
        memory=MemoryController(fixed_latency=100),
    )
    defaults.update(kw)
    return CacheHierarchy(1, **defaults)


class TestFrontEnd:
    def test_first_fetch_misses(self):
        h = make_hierarchy()
        fe = FrontEnd(0, h)
        t = fe.fetch_time(0, Instr(0x400000, Op.ALU), 0.0)
        assert t > 0
        assert fe.code_misses == 1

    def test_same_line_free(self):
        h = make_hierarchy()
        fe = FrontEnd(0, h)
        t0 = fe.fetch_time(0, Instr(0x400000, Op.ALU), 0.0)
        t1 = fe.fetch_time(1, Instr(0x400004, Op.ALU), t0)
        assert t1 == t0

    def test_next_line_prefetch_reduces_stall(self):
        h = make_hierarchy()
        fe = FrontEnd(0, h)
        t0 = fe.fetch_time(0, Instr(0x400000, Op.ALU), 0.0)
        # Next line was prefetched at t0; a later fetch pays at most residual.
        t1 = fe.fetch_time(1, Instr(0x400040, Op.ALU), t0 + 1000.0)
        assert t1 - (t0 + 1000.0) < 155  # less than a fresh memory miss

    def test_redirect_delays_fetch(self):
        h = make_hierarchy()
        fe = FrontEnd(0, h)
        fe.fetch_time(0, Instr(0x400000, Op.ALU), 0.0)
        fe.redirect(5000.0)
        t = fe.fetch_time(1, Instr(0x400004, Op.ALU), 0.0)
        assert t >= 5000.0

    def test_on_code_miss_hook_fires(self):
        h = make_hierarchy()
        fe = FrontEnd(0, h)
        calls = []
        fe.on_code_miss = lambda idx, now, stall: calls.append((idx, stall))
        fe.fetch_time(7, Instr(0x500000, Op.ALU), 0.0)
        assert calls and calls[0][0] == 7 and calls[0][1] > 0


class TestL1StridePrefetcher:
    def test_prefetches_after_stable_stride(self):
        h = make_hierarchy()
        pf = L1StridePrefetcher(0, h)
        for i in range(6):
            pf.train(0x400, 0x10000 + i * 128, float(i))
        assert pf.issued > 0
        assert h.l1d[0].contains((0x10000 + 6 * 128) >> 6)

    def test_no_prefetch_for_random(self):
        import random

        rng = random.Random(0)
        h = make_hierarchy()
        pf = L1StridePrefetcher(0, h)
        for i in range(30):
            pf.train(0x400, rng.randrange(1 << 24), float(i))
        assert pf.issued == 0

    def test_sub_line_stride_prefetches_only_at_boundaries(self):
        h = make_hierarchy()
        pf = L1StridePrefetcher(0, h)
        for i in range(8):
            pf.train(0x400, 0x10000 + i * 8, float(i))  # 8B stride in a line
        # Only the access approaching the line boundary prefetches ahead.
        assert pf.issued <= 1

    def test_table_capacity(self):
        h = make_hierarchy()
        pf = L1StridePrefetcher(0, h, table_size=4)
        for pc in range(16):
            pf.train(0x400 + pc * 4, pc * 1 << 12, 0.0)
        assert len(pf._table) <= 4


class TestNextLinePrefetcher:
    def test_prefetches_next_line_on_new_line(self):
        h = make_hierarchy()
        pf = NextLinePrefetcher(0, h)
        pf.train(0x400, 0x10000, 0.0)
        assert pf.issued == 1
        assert h.l1d[0].contains((0x10000 >> 6) + 1)

    def test_same_line_accesses_do_not_reissue(self):
        h = make_hierarchy()
        pf = NextLinePrefetcher(0, h)
        for offset in (0, 8, 16, 56):
            pf.train(0x400, 0x10000 + offset, float(offset))
        assert pf.issued == 1

    def test_follows_any_access_pattern(self):
        # Criticality- and stride-blind: even a random walk issues one
        # prefetch per distinct line touched.
        import random

        rng = random.Random(1)
        h = make_hierarchy()
        pf = NextLinePrefetcher(0, h)
        lines = [rng.randrange(1 << 18) << 6 for _ in range(10)]
        for i, addr in enumerate(lines):
            pf.train(0x400, addr, float(i))
        assert pf.issued == len(lines)

    def test_trains_on_loads_not_misses(self):
        assert NextLinePrefetcher.TRAIN_ON == "load"
        assert L1StridePrefetcher.TRAIN_ON == "load"
        assert L2StreamPrefetcher.TRAIN_ON == "miss"


class TestL2StreamPrefetcher:
    def test_sequential_stream_prefetches(self):
        h = make_hierarchy()
        pf = L2StreamPrefetcher(0, h)
        base = 0x40000 >> 6
        for i in range(6):
            pf.train(base + i, float(i))
        assert pf.issued > 0

    def test_non_unit_stride_ignored(self):
        h = make_hierarchy()
        pf = L2StreamPrefetcher(0, h)
        base = 0x40000 >> 6
        for i in range(10):
            pf.train(base + i * 8, float(i))
        assert pf.issued == 0

    def test_descending_stream(self):
        h = make_hierarchy()
        pf = L2StreamPrefetcher(0, h)
        base = (0x40000 >> 6) + 32
        for i in range(6):
            pf.train(base - i, float(i))
        assert pf.issued > 0

    def test_prefetch_lands_in_l2_not_l1(self):
        h = make_hierarchy()
        pf = L2StreamPrefetcher(0, h, degree=1)
        base = 0x80000 >> 6
        for i in range(6):
            pf.train(base + i, float(i))
        assert h.l2[0].contains(base + 6) or h.l2[0].contains(base + 5)
        assert not h.l1d[0].contains(base + 6)


def run_catch(trace, n=2):
    engine = CatchEngine()
    h = CacheHierarchy(
        1,
        l1i=LevelSpec(8, 8, 5),
        l1d=LevelSpec(8, 8, 5),
        l2=LevelSpec(128, 8, 15),
        llc=LevelSpec(512, 8, 40),
        memory=MemoryController(fixed_latency=160),
    )
    core = OOOCore(0, h, CoreParams(), engine)
    for _ in range(n):
        core.run(trace)
    return engine


class TestTACTIntegration:
    def test_feeder_fires_on_gather(self):
        trace = indexed_gather("g", "ISPEC", 30_000, data_ws_bytes=96 << 10)
        engine = run_catch(trace)
        assert engine.tact.stats.feeder_prefetches > 50

    def test_cross_fires_on_cross_gather(self):
        trace = cross_gather("c", "ISPEC", 30_000, data_ws_bytes=96 << 10)
        engine = run_catch(trace)
        assert engine.tact.stats.cross_prefetches > 50

    def test_code_runahead_on_server(self):
        trace = server_app("s", "server", 30_000, code_kb=48)
        engine = run_catch(trace)
        assert engine.tact.code.stats.activations > 0
        assert engine.tact.code.stats.lines_prefetched > 0

    def test_timeliness_stats_populated(self):
        from repro.workloads.generator import hot_loop

        trace = hot_loop("h", "ISPEC", 30_000, ws_bytes=48 << 10, chain_loads=3)
        engine = run_catch(trace)
        ts = engine.tact.stats
        assert ts.demand_covered > 0
        frac = ts.timeliness_fractions()
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_disabled_components_stay_quiet(self):
        trace = indexed_gather("g", "ISPEC", 20_000, data_ws_bytes=96 << 10)
        from repro.core.catch_engine import CatchConfig

        engine = CatchEngine(
            CatchConfig(tact=TACTConfig(enable_feeder=False, enable_cross=False,
                                        enable_deep_self=False))
        )
        h = make_hierarchy(
            l1i=LevelSpec(8, 8, 5), l1d=LevelSpec(8, 8, 5),
            l2=LevelSpec(128, 8, 15), llc=LevelSpec(512, 8, 40),
        )
        core = OOOCore(0, h, CoreParams(), engine)
        core.run(trace)
        core.run(trace)
        ts = engine.tact.stats
        assert ts.feeder_prefetches == 0
        assert ts.cross_prefetches == 0
        assert ts.deep_prefetches == 0

    def test_target_table_capped(self):
        from repro.workloads.generator import many_critical_pcs

        trace = many_critical_pcs("m", "FSPEC", 30_000, n_load_pcs=96,
                                  ws_bytes=96 << 10)
        engine = run_catch(trace)
        assert len(engine.tact._targets) <= engine.tact.config.max_targets

    def test_area_budget(self):
        total = sum(TACTCoordinator.area_bytes().values())
        assert total <= 1.3 * 1024  # the paper's ~1.2 KB
