"""Tests for disk-fault safe mode (repro.service.daemon).

On ENOSPC/EIO evidence from any durable write the daemon stops admitting
work (503 + Retry-After at the HTTP layer), recovers the victim's lease
without journaling (the journal may share the failing disk), and probes the
filesystem until it heals — at which point it resumes and the job re-runs
to the identical result.  The headline property: an injected storage fault
never loses an acknowledged job.
"""

import errno
import time

import pytest

from repro.errors import SafeModeActive
from repro.runner import ResultStore
from repro.service import DONE, PENDING, build_service
from repro.service.chaos import ChaosFS, FaultRule
from repro.service.fsck import check_state_dir
from repro.service.http import preset_configs
from repro.service.journal import scan_journal
from repro.sim.serialization import config_to_dict

N = 2000


def make_service(state, *, fsync=False, **kwargs):
    kwargs.setdefault("poll_s", 0.01)
    kwargs.setdefault("safe_mode_probe_s", 0.05)
    return build_service(
        state / "journal.wal", state / "ckpt", fsync=fsync, **kwargs
    )


def submit_preset(service, preset="baseline_server", n=N, **kwargs):
    payload = config_to_dict(preset_configs()[preset])
    job, _ = service.submit_config(payload, "hmmer_like", n, **kwargs)
    return job


def wait_for(predicate, timeout=30.0, poll=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return predicate()


class TestStateMachine:
    def test_enter_sets_state_and_blocks_submission(self, tmp_path):
        service = make_service(tmp_path)
        service.enter_safe_mode("ENOSPC: disk full")
        assert service.safe_mode
        status = service.safe_mode_status()
        assert status["active"] is True
        assert "ENOSPC" in status["reason"]
        assert status["entries"] == 1
        with pytest.raises(SafeModeActive) as info:
            submit_preset(service)
        assert info.value.retry_after_s >= 1.0
        service.queue.journal.close()

    def test_reentry_is_idempotent(self, tmp_path):
        service = make_service(tmp_path)
        service.enter_safe_mode("first")
        service.enter_safe_mode("second")
        status = service.safe_mode_status()
        assert status["entries"] == 1
        assert status["reason"] == "first"
        service.queue.journal.close()

    def test_exit_readmits_submissions(self, tmp_path):
        service = make_service(tmp_path)
        service.enter_safe_mode("EIO: oops")
        service.exit_safe_mode()
        assert not service.safe_mode
        job = submit_preset(service)
        assert job.state == PENDING
        service.queue.journal.close()

    def test_transitions_are_journaled_for_audit(self, tmp_path):
        service = make_service(tmp_path)
        service.enter_safe_mode("ENOSPC: x")
        service.exit_safe_mode()
        service.queue.journal.close()
        records, _ = scan_journal(tmp_path / "journal.wal")
        modes = [r for r in records if r["op"] == "safe_mode"]
        assert [r["active"] for r in modes] == [True, False]
        assert modes[0]["reason"] == "ENOSPC: x"

    def test_exit_requires_a_durable_append(self, tmp_path):
        """A still-sick journal keeps the daemon in safe mode."""
        service = make_service(tmp_path, fsync=True)
        service.enter_safe_mode("EIO: journal")
        # Reopen the journal so its handle routes through the chaos shim.
        service.queue.journal.close()
        chaos = ChaosFS(
            [FaultRule("eio-fsync", path_substr="journal.wal", times=100)],
            root=tmp_path,
        )
        with chaos.install():
            service.exit_safe_mode()
            assert service.safe_mode  # the exit write failed: stay safe
        service.exit_safe_mode()       # healthy disk: out
        assert not service.safe_mode
        service.queue.journal.close()

    def test_probe_exits_when_disk_heals(self, tmp_path):
        service = make_service(tmp_path, fsync=True, safe_mode_probe_s=0.0)
        service.enter_safe_mode("ENOSPC: y")
        chaos = ChaosFS(
            [FaultRule("enospc-write", path_substr=".probe", times=1)],
            root=tmp_path,
        )
        with chaos.install():
            service._maybe_probe_safe_mode()
            assert service.safe_mode   # probe hit the fault: still safe
            service._maybe_probe_safe_mode()
            assert not service.safe_mode  # fault budget spent: healed
        service.queue.journal.close()

    def test_probe_is_rate_limited(self, tmp_path):
        service = make_service(tmp_path, safe_mode_probe_s=3600.0)
        service.enter_safe_mode("ENOSPC: z")
        # First probe fails (disk still sick) and consumes the rate slot.
        sick = ChaosFS(
            [FaultRule("enospc-write", path_substr=".probe", times=1)],
            root=tmp_path,
        )
        with sick.install():
            service._maybe_probe_safe_mode()
        assert service.safe_mode
        # Within the rate window the healthy disk is not even probed.
        watcher = ChaosFS(root=tmp_path)
        with watcher.install():
            service._maybe_probe_safe_mode()
            assert not any(".probe" in e["path"] for e in watcher.ops)
        assert service.safe_mode
        service.queue.journal.close()

    def test_status_surfaces_in_service_stats(self, tmp_path):
        service = make_service(tmp_path)
        service.enter_safe_mode("ENOSPC: stats")
        stats = service.service_stats()
        assert stats["safe_mode"]["active"] is True
        assert "dir_fsync_failures" in stats
        service.queue.journal.close()


class TestStoreNoPhantomCache:
    def test_failed_checkpoint_write_leaves_no_cache_entry(self, tmp_path):
        """A put() that hit ENOSPC must not populate the memory cache —
        else the retry is a phantom hit and the checkpoint never lands."""
        from repro.runner import ExperimentRunner

        store = ResultStore(tmp_path / "ckpt", resume=True)
        runner = ExperimentRunner(store=store)
        config = preset_configs()["baseline_server"]
        result = runner.run(config, "hmmer_like", N)

        chaos = ChaosFS(
            [FaultRule("enospc-write", path_substr="ckpt")], root=tmp_path
        )
        fresh = ResultStore(tmp_path / "ckpt2", resume=True)
        with chaos.install():
            with pytest.raises(OSError) as info:
                fresh.put(config, "hmmer_like", N, result)
        assert info.value.errno == errno.ENOSPC
        assert fresh.get(config, "hmmer_like", N) is None
        # The healthy retry writes the checkpoint for real.
        fresh.put(config, "hmmer_like", N, result)
        assert fresh.get(config, "hmmer_like", N) is not None
        assert list((tmp_path / "ckpt2").glob("*.json"))


class TestEndToEnd:
    def test_enospc_on_checkpoint_loses_no_job(self, tmp_path):
        """The acceptance path: ENOSPC mid-campaign -> safe mode -> heal ->
        the job still completes with a valid checkpoint and fsck is clean."""
        state = tmp_path / "state"
        state.mkdir()
        chaos = ChaosFS(
            [FaultRule("enospc-write", path_substr="ckpt", times=1)],
            root=state,
        )
        with chaos.install():
            service = make_service(state, fsync=True)
            job = submit_preset(service)
            service.start()
            try:
                # The fault fires on the first checkpoint write.
                assert wait_for(lambda: service.safe_mode_entries >= 1)
                # ...and the disk "heals" (budget spent): the job re-runs,
                # completes, and the probe lifts safe mode.
                assert wait_for(
                    lambda: service.queue.get(job.job_id).state == DONE,
                    timeout=60,
                )
                assert wait_for(lambda: not service.safe_mode)
            finally:
                service.stop()
                service.queue.journal.close()

        assert chaos.faults and chaos.faults[0]["kind"] == "enospc-write"
        assert service.queue.counters.leases_recovered >= 1
        # No acked job lost, checkpoint durable, invariants intact.
        report = check_state_dir(state)
        assert report.ok, [f.message for f in report.findings]
        assert report.checked["done_jobs"] == 1

    def test_storage_fault_refunds_the_attempt(self, tmp_path):
        """Disk failures are not the job's fault: containment must not
        burn the job's retry budget."""
        state = tmp_path / "state"
        state.mkdir()
        chaos = ChaosFS(
            [FaultRule("enospc-write", path_substr="ckpt", times=2)],
            root=state,
        )
        with chaos.install():
            service = make_service(
                state, fsync=True, queue_kwargs={"max_attempts": 1},
            )
            job = submit_preset(service)
            service.start()
            try:
                assert wait_for(
                    lambda: service.queue.get(job.job_id).state == DONE,
                    timeout=60,
                )
            finally:
                service.stop()
                service.queue.journal.close()
        # Two faults absorbed with max_attempts=1: only possible because
        # recover_lease refunded each attempt.
        assert len(chaos.faults) == 2
        assert service.queue.get(job.job_id).state == DONE
