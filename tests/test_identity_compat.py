"""Fingerprint-keyed stores: MP results, collisions, and legacy compat.

The identity refactor keys checkpoints, cache entries and service dedup by
``workload_fingerprint`` instead of display name.  These tests pin the
three load-bearing consequences: multi-programmed results round-trip like
any ``RunResult``, sanitisation collisions can no longer alias entries,
and pre-fingerprint (name-keyed) files still serve exact hits.
"""

import json

import pytest

from repro.cache import ResultCache
from repro.runner.store import ResultStore, config_fingerprint
from repro.service.queue import Job
from repro.sim.config import skylake_server
from repro.sim.metrics import MPRunResult, RunResult
from repro.sim.serialization import result_from_dict, result_to_dict


def _mp_result(config_name="baseline_server"):
    return MPRunResult(
        workload="hmmer_like+mcf_like+tpcc_like+bwaves_like",
        category="MP",
        config_name=config_name,
        instructions=4000,
        cycles=2500.0,
        avg_load_latency=9.5,
        mispredicts=17,
        mix=("hmmer_like", "mcf_like", "tpcc_like", "bwaves_like"),
        per_core_ipc={0: 1.5, 1: 0.7, 2: 1.1, 3: 0.4},
        per_core_cycles={0: 600.0, 1: 1400.0, 2: 900.0, 3: 2500.0},
        per_core_instructions={0: 1000, 1: 1000, 2: 1000, 3: 1000},
        per_core_stats={0: {"workload": "hmmer_like", "mispredicts": 3}},
    )


def _st_result(workload, instructions=1000):
    return RunResult(
        workload=workload,
        category="server",
        config_name="baseline_server",
        instructions=instructions,
        cycles=1000.0,
    )


class TestMPResultSerialization:
    def test_dict_roundtrip(self):
        res = _mp_result()
        back = result_from_dict(result_to_dict(res))
        assert isinstance(back, MPRunResult)
        assert back == res
        assert back.per_core_ipc[3] == pytest.approx(0.4)

    def test_json_roundtrip_restores_int_core_keys(self):
        payload = json.loads(json.dumps(result_to_dict(_mp_result())))
        back = result_from_dict(payload)
        assert set(back.per_core_ipc) == {0, 1, 2, 3}
        assert back.mix == ("hmmer_like", "mcf_like", "tpcc_like", "bwaves_like")

    def test_plain_result_payload_unchanged(self):
        # The MP extension must not leak keys into single-core payloads —
        # the golden-parity (byte-identical checkpoint) contract.
        payload = result_to_dict(_st_result("tpcc_like"))
        assert "kind" not in payload
        assert "per_core_ipc" not in payload

    def test_store_roundtrip(self, tmp_path):
        config = skylake_server()
        res = _mp_result(config.name)
        store = ResultStore(tmp_path, resume=True)
        store.put(config, res.workload, 4000, res)
        fresh = ResultStore(tmp_path, resume=True)
        back = fresh.get(config, res.workload, 4000)
        assert isinstance(back, MPRunResult)
        assert back == res


class TestSanitisationCollision:
    # "wl a" and "wl?a" both sanitise to the stem segment "wl_a"; keyed by
    # name alone they collide on one path.
    NAMES = ("wl a", "wl?a")

    def test_store_keeps_both(self, tmp_path):
        config = skylake_server()
        store = ResultStore(tmp_path, resume=True)
        for i, name in enumerate(self.NAMES):
            store.put(config, name, 500, _st_result(name, instructions=100 + i))
        fresh = ResultStore(tmp_path, resume=True)
        for i, name in enumerate(self.NAMES):
            got = fresh.get(config, name, 500)
            assert got is not None and got.workload == name
            assert got.instructions == 100 + i

    def test_cache_keeps_both(self, tmp_path):
        config = skylake_server()
        cache = ResultCache(tmp_path)
        for i, name in enumerate(self.NAMES):
            assert cache.put(config, name, 500, _st_result(name, 100 + i))
        for i, name in enumerate(self.NAMES):
            hit = cache.lookup(config, name, 500)
            assert hit is not None and not hit.near
            assert hit.result.workload == name
            assert hit.result.instructions == 100 + i


class TestLegacyCompat:
    def test_store_reads_legacy_stem(self, tmp_path):
        config = skylake_server()
        store = ResultStore(tmp_path, resume=True)
        res = _st_result("tpcc_like")
        store.put(config, "tpcc_like", 500, res)
        new_path = store._path(config, "tpcc_like", 500)
        legacy_path = store._legacy_path(config, "tpcc_like", 500)
        new_path.rename(legacy_path)
        fresh = ResultStore(tmp_path, resume=True)
        assert fresh.get(config, "tpcc_like", 500) == res

    def test_store_legacy_rejects_foreign_fingerprint(self, tmp_path):
        # A legacy-stem file recorded under a *different* workload
        # fingerprint belongs to a different workload that shares the name.
        config = skylake_server()
        store = ResultStore(tmp_path, resume=True)
        store.put(config, "tpcc_like", 500, _st_result("tpcc_like"))
        new_path = store._path(config, "tpcc_like", 500)
        legacy_path = store._legacy_path(config, "tpcc_like", 500)
        payload = json.loads(new_path.read_text())
        payload["workload_fingerprint"] = "f" * 64
        legacy_path.write_text(json.dumps(payload))
        new_path.unlink()
        fresh = ResultStore(tmp_path, resume=True)
        assert fresh.get(config, "tpcc_like", 500) is None

    def test_cache_reads_legacy_stem(self, tmp_path):
        config = skylake_server()
        cache = ResultCache(tmp_path)
        res = _st_result("tpcc_like")
        cache.put(config, "tpcc_like", 500, res)
        fp = config_fingerprint(config)
        cache._path(fp, "tpcc_like", 500).rename(
            cache._legacy_path(fp, "tpcc_like", 500)
        )
        hit = ResultCache(tmp_path).lookup(config, "tpcc_like", 500)
        assert hit is not None and not hit.near
        assert hit.result == res

    def test_cache_legacy_excluded_from_near(self, tmp_path):
        config = skylake_server()
        cache = ResultCache(tmp_path, near=True)
        cache.put(config, "tpcc_like", 500, _st_result("tpcc_like"))
        fp = config_fingerprint(config)
        cache._path(fp, "tpcc_like", 500).rename(
            cache._legacy_path(fp, "tpcc_like", 500)
        )
        fresh = ResultCache(tmp_path, near=True)
        # Exact (legacy) still hits at the stored length...
        assert fresh.lookup(config, "tpcc_like", 500) is not None
        # ...but the legacy entry cannot answer a longer request as "near".
        assert fresh.lookup(config, "tpcc_like", 800) is None


class TestJobDedupKey:
    def _job(self, **kw):
        defaults = dict(
            job_id="j1", seq=1, fingerprint="cfgfp", config_name="c",
            config={}, workload="tpcc_like", n_instrs=500,
        )
        defaults.update(kw)
        return Job(**defaults)

    def test_key_uses_workload_fingerprint(self):
        job = self._job(workload_fingerprint="abc123")
        assert job.key == ("cfgfp", "abc123", 500)

    def test_legacy_job_keys_by_name(self):
        # Journals written before the field existed replay with "" and fall
        # back to name-keyed dedup.
        job = self._job()
        assert job.key == ("cfgfp", "tpcc_like", 500)

    def test_from_dict_accepts_legacy_payload(self):
        payload = self._job().to_dict()
        del payload["workload_fingerprint"]
        job = Job.from_dict(payload)
        assert job.workload_fingerprint == ""
        assert job.key == ("cfgfp", "tpcc_like", 500)
