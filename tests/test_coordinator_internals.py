"""White-box tests for TACT coordinator bookkeeping and MP code sharing."""

from repro.caches.hierarchy import CacheHierarchy, Level, LevelSpec
from repro.core.catch_engine import CatchEngine
from repro.core.criticality import CriticalityDetector
from repro.core.tact.coordinator import TACTConfig, TACTCoordinator
from repro.cpu.branch import GshareBranchPredictor
from repro.cpu.core import CoreParams, OOOCore
from repro.memory.controller import MemoryController
from repro.sim.config import skylake_server
from repro.sim.multicore import MultiCoreSimulator, relocate_trace
from repro.workloads.suites import build_trace
from repro.workloads.trace import Instr, Op


def make_coordinator(max_targets=4):
    h = CacheHierarchy(
        1,
        l1i=LevelSpec(1, 2, 5),
        l1d=LevelSpec(1, 2, 5),
        l2=LevelSpec(16, 4, 15),
        llc=LevelSpec(64, 4, 40),
        memory=MemoryController(fixed_latency=100),
    )
    det = CriticalityDetector(rob_size=16)
    return TACTCoordinator(
        0, h, det, GshareBranchPredictor(), TACTConfig(max_targets=max_targets)
    ), det


class TestTargetTable:
    def test_capacity_eviction(self):
        coord, det = make_coordinator(max_targets=2)
        for pc in (0x10, 0x20, 0x30):
            coord._target(pc)
        assert len(coord._targets) == 2
        assert 0x10 not in coord._targets  # LRU dropped

    def test_drop_target_cleans_trigger_maps(self):
        coord, det = make_coordinator(max_targets=2)
        coord._target(0x10)
        coord._cross_triggers.setdefault(0x99, set()).add(0x10)
        coord._feeders.setdefault(0x88, set()).add(0x10)
        coord._drop_target(0x10)
        assert 0x10 not in coord._cross_triggers[0x99]
        assert 0x10 not in coord._feeders[0x88]

    def test_lru_refresh_on_reuse(self):
        coord, det = make_coordinator(max_targets=2)
        # The clock normally advances per executed load; tick it manually.
        coord._clock = 1
        coord._target(0x10)
        coord._clock = 2
        coord._target(0x20)
        coord._clock = 3
        coord._target(0x10)  # refresh
        coord._clock = 4
        coord._target(0x30)  # evicts 0x20
        assert 0x10 in coord._targets and 0x20 not in coord._targets

    def test_deep_distance_config_applied(self):
        coord, det = make_coordinator()
        coord.config = TACTConfig(deep_max_distance=4)
        state = coord._target(0x10)
        assert state.deep.max_distance == 4


class TestInflightCap:
    def test_inflight_bounded(self):
        coord, det = make_coordinator()
        coord.MAX_INFLIGHT = 8
        for i in range(50):
            coord._issue(i * 64 * 7 + (1 << 20), 0.0, "deep_prefetches")
        assert len(coord._inflight) <= 8

    def test_pc_history_bounded(self):
        coord, det = make_coordinator()
        coord.MAX_PC_HISTORY = 16
        for pc in range(100):
            coord._history(pc)
        assert len(coord._pc_hist) <= 16


class TestCodeStatsPlumbing:
    def test_code_prefetch_count_copied(self):
        from repro.workloads.generator import server_app

        trace = server_app("s", "server", 20_000, code_kb=48)
        engine = CatchEngine()
        cfg = skylake_server()
        from repro.sim.simulator import Simulator

        sim = Simulator(cfg)
        core = OOOCore(0, sim.build_hierarchy(1), cfg.core, engine)
        core.run(trace)
        core.run(trace)
        assert engine.tact.stats.code_prefetches == (
            engine.tact.code.stats.lines_prefetched
        )


class TestMPCodeSharing:
    def test_rate4_shares_code_lines(self):
        """RATE-4 copies share code: the LLC holds one copy of each code
        line, not four (relocate_trace only shifts data)."""
        cfg = skylake_server()
        mc = MultiCoreSimulator(cfg)
        from repro.sim.simulator import Simulator

        sim = Simulator(mc.config)
        hierarchy = sim.build_hierarchy()
        base_trace = build_trace("tpcc_like", 8000)
        traces = [relocate_trace(base_trace, c) for c in range(4)]
        cores = [OOOCore(c, hierarchy, cfg.core) for c in range(4)]
        for core, trace in zip(cores, traces):
            core.start(trace)
        for pos in range(2000):
            for c in range(4):
                cores[c].step(pos, traces[c].instrs[pos])
        code_lines = {i.code_line for i in base_trace.instrs[:2000]}
        resident_everywhere = set(hierarchy.llc.resident_lines())
        for c in range(4):
            resident_everywhere |= set(hierarchy.l1i[c].resident_lines())
            resident_everywhere |= set(hierarchy.l2[c].resident_lines())
        # Each code line occurs once per private cache at most, but the data
        # regions are fully disjoint:
        data_lines = [
            {i.line for i in t.instrs[:2000] if i.is_mem} for t in traces
        ]
        for a in range(4):
            for b in range(a + 1, 4):
                assert not (data_lines[a] & data_lines[b])
        assert code_lines & resident_everywhere  # shared code is cached


class TestTimelinessEdge:
    def test_demand_before_fill_counts_partial(self):
        coord, det = make_coordinator()
        line = 1 << 14
        coord._issue(line << 6, 0.0, "deep_prefetches")
        assert coord._inflight
        # Demand arrives immediately: nearly none of the latency was hidden.
        from repro.caches.hierarchy import AccessResult

        instr = Instr(0x400, Op.LOAD, dst=1, addr=line << 6)
        result = coord.hierarchy.load(0, 0x400, line, 1.0)
        coord._record_timeliness(instr, result)
        assert coord.stats.demand_covered == 1
        assert coord.stats.saved_under_10 == 1

    def test_demand_long_after_fill_counts_full(self):
        coord, det = make_coordinator()
        line = 1 << 14
        coord._issue(line << 6, 0.0, "deep_prefetches")
        from repro.caches.hierarchy import AccessResult

        instr = Instr(0x400, Op.LOAD, dst=1, addr=line << 6)
        result = coord.hierarchy.load(0, 0x400, line, 10_000.0)
        coord._record_timeliness(instr, result)
        assert coord.stats.saved_over_80 == 1
