"""Tests for the buffered DDG and incremental critical-path enumeration.

Includes a reconstruction of the paper's Figure 2/6 example graphs: the
critical path must run through the long-latency (LLC-miss) load, not the
short L2 hits.
"""

import pytest

from repro.caches.hierarchy import Level
from repro.core.ddg import (
    BufferedDDG,
    CriticalLoad,
    dequantize,
    graph_area_bytes,
    quantize_latency,
)
from repro.cpu.engine import RetireRecord
from repro.workloads.trace import Instr, Op


def record(idx, op=Op.ALU, lat=1.0, producers=(), level=None, mispredicted=False,
           pc=None):
    return RetireRecord(
        idx=idx,
        instr=Instr(pc if pc is not None else 0x400000 + 4 * idx, op,
                    addr=idx * 64 if op in (Op.LOAD, Op.STORE) else -1),
        exec_lat=lat,
        producers=tuple(producers),
        level=level,
        mispredicted=mispredicted,
        e_time=0.0,
    )


class TestQuantization:
    def test_small_latencies_collapse(self):
        assert quantize_latency(5) == 0
        assert quantize_latency(7) == 0

    def test_eight_cycle_units(self):
        assert quantize_latency(16) == 2
        assert dequantize(quantize_latency(16)) == 16

    def test_saturation_at_5_bits(self):
        assert quantize_latency(10_000) == 31

    def test_memory_latency_representable(self):
        assert dequantize(quantize_latency(200)) == 200 - 200 % 8


class TestIncrementalCosts:
    def test_single_instruction(self):
        g = BufferedDDG(rob_size=8)
        g.add(record(0, lat=20))
        node = g._buffer[0]
        assert node.d_cost == 0
        assert node.e_cost == 1  # rename latency
        assert node.c_cost == 1 + dequantize(quantize_latency(20))

    def test_dependence_chain_accumulates(self):
        g = BufferedDDG(rob_size=64)
        g.add(record(0, op=Op.LOAD, lat=40, level=Level.LLC))
        g.add(record(1, lat=1, producers=(0,)))
        consumer = g._buffer[1]
        producer = g._buffer[0]
        assert consumer.e_cost == producer.e_cost + dequantize(quantize_latency(40))

    def test_independent_instruction_not_chained(self):
        g = BufferedDDG(rob_size=64)
        g.add(record(0, op=Op.LOAD, lat=40, level=Level.LLC))
        g.add(record(1, lat=1))  # no producers
        assert g._buffer[1].e_cost == g._buffer[1].d_cost + 1

    def test_cc_edge_orders_commit(self):
        g = BufferedDDG(rob_size=64)
        g.add(record(0, op=Op.LOAD, lat=200, level=Level.MEM))
        g.add(record(1, lat=1))
        assert g._buffer[1].c_cost >= g._buffer[0].c_cost

    def test_cd_edge_rob_pressure(self):
        g = BufferedDDG(rob_size=2)
        g.add(record(0, op=Op.LOAD, lat=200, level=Level.MEM))
        g.add(record(1, lat=1))
        g.add(record(2, lat=1))  # D constrained by C of instr 0
        assert g._buffer[2].d_cost >= g._buffer[0].c_cost

    def test_espec_edge_after_mispredict(self):
        g = BufferedDDG(rob_size=64)
        g.add(record(0, op=Op.BRANCH, lat=8, mispredicted=True))
        g.add(record(1, lat=1))
        b = g._buffer[0]
        assert g._buffer[1].d_cost == b.e_cost + dequantize(quantize_latency(8))


class TestWalk:
    def test_walk_finds_critical_load(self):
        """Figure 2 shape: the chain through the slow load is critical."""
        g = BufferedDDG(rob_size=8)
        g.add(record(0, op=Op.LOAD, lat=200, level=Level.MEM, pc=0x100))  # slow
        g.add(record(1, op=Op.LOAD, lat=16, level=Level.L2, pc=0x200))   # off-path
        g.add(record(2, lat=1, producers=(0,)))
        g.add(record(3, lat=1, producers=(2,)))
        found = g.walk()
        pcs = {f.pc for f in found}
        assert 0x100 in pcs
        assert 0x200 not in pcs

    def test_critical_l2_load_on_chain(self):
        """A chain of L2 hits longer than anything else becomes critical."""
        g = BufferedDDG(rob_size=32)
        for i in range(6):
            g.add(
                record(
                    i, op=Op.LOAD, lat=16, level=Level.L2, pc=0x500 + 4 * i,
                    producers=(i - 1,) if i else (),
                )
            )
        found = g.walk()
        assert len(found) >= 4  # most of the chain is on the path

    def test_walk_levels_reported(self):
        g = BufferedDDG(rob_size=8)
        g.add(record(0, op=Op.LOAD, lat=40, level=Level.LLC, pc=0xAA))
        g.add(record(1, lat=1, producers=(0,)))
        found = g.walk()
        assert any(f.level == int(Level.LLC) for f in found)

    def test_walk_on_empty_graph(self):
        assert BufferedDDG().walk() == []

    def test_automatic_walk_at_window(self):
        calls = []
        g = BufferedDDG(rob_size=4, on_walk=calls.append)
        for i in range(2 * 4):
            g.add(record(i, lat=1, producers=(i - 1,) if i else ()))
        assert len(calls) == 1
        assert g.buffered == 0  # flushed after the walk

    def test_multiple_windows(self):
        g = BufferedDDG(rob_size=4)
        for i in range(33):
            g.add(record(i, lat=1))
        assert g.stats.walks == 4

    def test_producers_outside_window_ignored(self):
        g = BufferedDDG(rob_size=4)
        for i in range(8):
            g.add(record(i, lat=1))
        # window flushed; producer idx 3 is gone
        g.add(record(8, lat=1, producers=(3,)))
        assert g._buffer[0].e_cost == g._buffer[0].d_cost + 1

    def test_occupancy_never_exceeds_walk_window(self):
        """The model walks instantaneously at ``walk_window``, so the 2.5x
        hardware headroom (:attr:`BufferedDDG.capacity`) is area accounting
        only — there is no reachable overflow path."""
        g = BufferedDDG(rob_size=4)
        assert g.capacity > g.walk_window  # headroom exists on paper...
        peak = 0
        for i in range(5 * g.walk_window + 3):
            g.add(record(i, lat=1))
            peak = max(peak, g.buffered)
        assert peak == g.walk_window - 1  # ...but occupancy never uses it
        assert g.stats.walks == 5
        assert not hasattr(g.stats, "overflows")  # dead counter removed


class TestArea:
    def test_matches_paper_scale(self):
        area = graph_area_bytes(224)
        assert area["entries"] == 560
        # Paper: ~2.3-2.9 KB graph + ~1 KB PCs = "about 3 KB" total.
        assert 2.0 * 1024 <= area["graph_bytes"] <= 3.2 * 1024
        assert area["total_bytes"] <= 4.0 * 1024

    def test_scales_with_rob(self):
        small = graph_area_bytes(64)["total_bytes"]
        large = graph_area_bytes(256)["total_bytes"]
        assert large == pytest.approx(4 * small)
