"""Tests for the ASCII figure renderer."""

from repro.experiments.render import _bar, render_grouped, render_pct_bars, render_scurve


class TestBar:
    def test_positive_grows_right(self):
        bar = _bar(0.5, 0.0, 1.0, width=10)
        axis = bar.index("|")
        assert "#" in bar[axis + 1 :]
        assert "#" not in bar[:axis]

    def test_negative_grows_left(self):
        bar = _bar(-0.5, -1.0, 0.0, width=10)
        axis = bar.index("|")
        assert "#" in bar[:axis]
        assert "#" not in bar[axis + 1 :]

    def test_zero_span_blank(self):
        assert _bar(0.0, 0.0, 0.0, width=8).strip() == ""

    def test_clipped_to_width(self):
        assert len(_bar(5.0, -1.0, 1.0, width=10)) == 11


class TestPctBars:
    def test_contains_labels_and_values(self):
        out = render_pct_bars({"noL2": -0.078, "CATCH": 0.084}, title="t")
        assert "t" in out
        assert "noL2" in out and "-7.8" in out
        assert "CATCH" in out and "+8.4" in out

    def test_empty(self):
        assert "(no data)" in render_pct_bars({}, title="t")

    def test_alignment(self):
        out = render_pct_bars({"a": 0.1, "longer_name": -0.1})
        lines = out.splitlines()
        assert lines[0].index("+") == lines[1].index("-")


class TestGrouped:
    def test_each_config_rendered(self):
        out = render_grouped({"cfg1": {"X": 0.1}, "cfg2": {"X": -0.1}})
        assert "cfg1" in out and "cfg2" in out


class TestSCurve:
    def test_monotone_curve_renders(self):
        out = render_scurve({f"w{i}": 0.5 + i * 0.1 for i in range(10)}, "s")
        assert out.count("*") == 10
        assert "1.0" in out or "-" in out

    def test_empty(self):
        assert "(no data)" in render_scurve({}, "s")

    def test_flat_curve(self):
        out = render_scurve({"a": 1.0, "b": 1.0}, "flat")
        assert out.count("*") == 2


def test_registry_render_flag_smoke(capsys):
    from repro.experiments.registry import main

    code = main(["table1", "--render"])
    assert code == 0
    assert "Table I" in capsys.readouterr().out
