"""Tests for the oracle studies (Figures 4 and 5 machinery)."""

import pytest

from repro.caches.hierarchy import Level
from repro.core.oracle import (
    OraclePrefetchEngine,
    make_latency_policy,
    profile_critical_pcs,
)
from repro.cpu.core import CoreParams
from repro.sim.config import skylake_server
from repro.sim.simulator import Simulator
from repro.workloads.generator import hot_loop

NO_PF = CoreParams(enable_l1_stride=False, enable_l2_stream=False)


@pytest.fixture(scope="module")
def l2_chain_trace():
    # chain of 4 L2 loads (~68 cycles) exceeds the 56-cycle OOO window,
    # so the loads are genuinely critical and the oracle has headroom.
    return hot_loop("oracle_t", "ISPEC", 24_000, ws_bytes=24 << 10, chain_loads=4,
                    alu_between=2)


@pytest.fixture(scope="module")
def sim():
    import dataclasses

    return Simulator(dataclasses.replace(skylake_server(), core=NO_PF))


class TestProfiling:
    def test_returns_ranked_pcs(self, l2_chain_trace, sim):
        pcs = profile_critical_pcs(
            l2_chain_trace, lambda: sim.build_hierarchy(1), NO_PF
        )
        assert pcs
        load_pcs = {
            i.pc for i in l2_chain_trace.instrs if i.addr >= 0 and i.dst >= 0
        }
        assert set(pcs) <= load_pcs

    def test_top_n_truncates(self, l2_chain_trace, sim):
        all_pcs = profile_critical_pcs(
            l2_chain_trace, lambda: sim.build_hierarchy(1), NO_PF
        )
        top1 = profile_critical_pcs(
            l2_chain_trace, lambda: sim.build_hierarchy(1), NO_PF, top_n=1
        )
        assert len(top1) == 1
        assert top1[0] == all_pcs[0]


class TestOraclePrefetchEngine:
    def test_oracle_converts_and_speeds_up(self, l2_chain_trace, sim):
        baseline = sim.run(l2_chain_trace)
        pcs = profile_critical_pcs(
            l2_chain_trace, lambda: sim.build_hierarchy(1), NO_PF
        )
        engine = OraclePrefetchEngine(set(pcs[:32]))
        oracle = sim.run(l2_chain_trace, engine=engine)
        assert engine.stats.converted_loads > 0
        assert oracle.ipc > baseline.ipc

    def test_all_pcs_at_least_as_good(self, l2_chain_trace, sim):
        pcs = profile_critical_pcs(
            l2_chain_trace, lambda: sim.build_hierarchy(1), NO_PF
        )
        some = sim.run(l2_chain_trace, engine=OraclePrefetchEngine(set(pcs[:2])))
        everything = sim.run(l2_chain_trace, engine=OraclePrefetchEngine(all_pcs=True))
        assert everything.ipc >= some.ipc * 0.98

    def test_perfect_code_flag(self, l2_chain_trace, sim):
        from repro.cpu.core import OOOCore

        engine = OraclePrefetchEngine(set(), perfect_code=True)
        core = OOOCore(0, sim.build_hierarchy(1), NO_PF, engine)
        core.run(l2_chain_trace)
        assert core.frontend.code_stall_cycles == 0


class TestLatencyPolicy:
    def test_all_mode_demotes_everything(self):
        policy = make_latency_policy("all", set(), Level.L2, 40.0)
        assert policy(0x400, Level.L2, 15.0) == 40.0
        assert policy.counts == {"converted": 1, "total": 1}

    def test_noncritical_spares_critical_pcs(self):
        policy = make_latency_policy("noncritical", {0x400}, Level.L2, 40.0)
        assert policy(0x400, Level.L2, 15.0) == 15.0
        assert policy(0x999, Level.L2, 15.0) == 40.0
        assert policy.counts == {"converted": 1, "total": 2}

    def test_other_levels_untouched(self):
        policy = make_latency_policy("all", set(), Level.L2, 40.0)
        assert policy(0x400, Level.L1, 5.0) == 5.0
        assert policy.counts["total"] == 0

    def test_never_reduces_latency(self):
        policy = make_latency_policy("all", set(), Level.L2, 10.0)
        assert policy(0x400, Level.L2, 15.0) == 15.0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            make_latency_policy("sometimes", set(), Level.L2, 40.0)

    def test_demotion_slows_simulation(self, l2_chain_trace, sim):
        baseline = sim.run(l2_chain_trace)
        policy = make_latency_policy("all", set(), Level.L2, 40.0)
        demoted = sim.run(l2_chain_trace, latency_policy=policy)
        assert demoted.ipc < baseline.ipc
        assert policy.counts["converted"] > 0
