"""Tests for the shared durable-write primitives (repro.ioutil)."""

import json
import os

import pytest

from repro import ioutil
from repro.ioutil import atomic_write_json, atomic_write_text, fsync_dir


class TestAtomicWriteJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": 1, "b": [2, 3]})
        assert json.loads(path.read_text()) == {"a": 1, "b": [2, 3]}
        assert path.read_text().endswith("\n")

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}

    def test_no_temp_residue(self, tmp_path):
        atomic_write_json(tmp_path / "out.json", {"v": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_data_fsynced_before_rename(self, tmp_path, monkeypatch):
        """The temp file's bytes hit stable storage before os.replace runs."""
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))
        )
        monkeypatch.setattr(
            os, "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b)),
        )
        atomic_write_json(tmp_path / "out.json", {"v": 1})
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace")

    def test_directory_fsynced_after_rename(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(
            ioutil, "fsync_dir", lambda path: synced.append(path) or True
        )
        atomic_write_json(tmp_path / "out.json", {"v": 1})
        assert synced == [tmp_path]

    def test_failed_write_cleans_temp_and_keeps_old(self, tmp_path, monkeypatch):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"v": 1})

        def boom(fd):
            raise OSError("disk full")

        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(path, "new contents")
        assert json.loads(path.read_text()) == {"v": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class TestFsyncDir:
    def test_syncs_a_real_directory(self, tmp_path):
        assert fsync_dir(tmp_path) is True

    def test_missing_directory_degrades_to_false(self, tmp_path):
        assert fsync_dir(tmp_path / "nope") is False

    def test_unsupported_fsync_degrades_to_false(self, tmp_path, monkeypatch):
        def refuse(fd):
            raise OSError("EINVAL")

        monkeypatch.setattr(os, "fsync", refuse)
        assert fsync_dir(tmp_path) is False


class TestDirFsyncHealth:
    """Directory-fsync failures are never fatal, but never silent either:
    counted for the ``service.dir_fsync_failures`` gauge and WARNed once."""

    @pytest.fixture(autouse=True)
    def _fresh_stats(self):
        ioutil.reset_dir_fsync_stats()
        yield
        ioutil.reset_dir_fsync_stats()

    def test_failures_are_counted(self, tmp_path):
        assert ioutil.dir_fsync_failures() == 0
        fsync_dir(tmp_path / "nope")
        fsync_dir(tmp_path / "nope")
        assert ioutil.dir_fsync_failures() == 2

    def test_success_does_not_count(self, tmp_path):
        fsync_dir(tmp_path)
        assert ioutil.dir_fsync_failures() == 0

    def test_first_failure_warns_once(self, tmp_path, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.ioutil"):
            fsync_dir(tmp_path / "nope")
            fsync_dir(tmp_path / "nope")
        warnings = [
            r for r in caplog.records
            if "directory fsync unsupported" in r.getMessage()
        ]
        assert len(warnings) == 1

    def test_reset_rearms_the_warning(self, tmp_path, caplog):
        import logging

        fsync_dir(tmp_path / "nope")
        ioutil.reset_dir_fsync_stats()
        assert ioutil.dir_fsync_failures() == 0
        with caplog.at_level(logging.WARNING, logger="repro.ioutil"):
            fsync_dir(tmp_path / "nope")
        assert any(
            "directory fsync unsupported" in r.getMessage()
            for r in caplog.records
        )


class TestBackendSeam:
    def test_default_backend_is_os(self):
        assert ioutil.io_backend().name == "os"

    def test_set_backend_returns_previous(self):
        sentinel = ioutil.OsIO()
        previous = ioutil.set_io_backend(sentinel)
        try:
            assert ioutil.io_backend() is sentinel
        finally:
            ioutil.set_io_backend(previous)

    def test_none_restores_the_default(self):
        ioutil.set_io_backend(ioutil.OsIO())
        ioutil.set_io_backend(None)
        assert ioutil.io_backend() is ioutil.io_backend()
        assert ioutil.io_backend().name == "os"

    def test_use_backend_scopes_and_restores_on_error(self):
        sentinel = ioutil.OsIO()
        with pytest.raises(RuntimeError):
            with ioutil.use_io_backend(sentinel):
                assert ioutil.io_backend() is sentinel
                raise RuntimeError("boom")
        assert ioutil.io_backend() is not sentinel

    def test_atomic_write_routes_through_the_backend(self, tmp_path):
        class Spy(ioutil.OsIO):
            calls: list = []

            def replace(self, src, dst):
                self.calls.append("replace")
                super().replace(src, dst)

        with ioutil.use_io_backend(Spy()):
            atomic_write_text(tmp_path / "x.txt", "hi")
        assert "replace" in Spy.calls


class TestStorageFaultClassifier:
    def test_storage_errnos_are_faults(self):
        import errno

        for code in (errno.ENOSPC, errno.EIO, errno.EDQUOT, errno.EROFS):
            assert ioutil.is_storage_fault(OSError(code, "x"))

    def test_other_errors_are_not(self):
        import errno

        assert not ioutil.is_storage_fault(OSError(errno.ENOENT, "x"))
        assert not ioutil.is_storage_fault(ValueError("x"))
        assert not ioutil.is_storage_fault(OSError("no errno"))
