"""Tests for the shared durable-write primitives (repro.ioutil)."""

import json
import os

import pytest

from repro import ioutil
from repro.ioutil import atomic_write_json, atomic_write_text, fsync_dir


class TestAtomicWriteJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": 1, "b": [2, 3]})
        assert json.loads(path.read_text()) == {"a": 1, "b": [2, 3]}
        assert path.read_text().endswith("\n")

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}

    def test_no_temp_residue(self, tmp_path):
        atomic_write_json(tmp_path / "out.json", {"v": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_data_fsynced_before_rename(self, tmp_path, monkeypatch):
        """The temp file's bytes hit stable storage before os.replace runs."""
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))
        )
        monkeypatch.setattr(
            os, "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b)),
        )
        atomic_write_json(tmp_path / "out.json", {"v": 1})
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace")

    def test_directory_fsynced_after_rename(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(
            ioutil, "fsync_dir", lambda path: synced.append(path) or True
        )
        atomic_write_json(tmp_path / "out.json", {"v": 1})
        assert synced == [tmp_path]

    def test_failed_write_cleans_temp_and_keeps_old(self, tmp_path, monkeypatch):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"v": 1})

        def boom(fd):
            raise OSError("disk full")

        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(path, "new contents")
        assert json.loads(path.read_text()) == {"v": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class TestFsyncDir:
    def test_syncs_a_real_directory(self, tmp_path):
        assert fsync_dir(tmp_path) is True

    def test_missing_directory_degrades_to_false(self, tmp_path):
        assert fsync_dir(tmp_path / "nope") is False

    def test_unsupported_fsync_degrades_to_false(self, tmp_path, monkeypatch):
        def refuse(fd):
            raise OSError("EINVAL")

        monkeypatch.setattr(os, "fsync", refuse)
        assert fsync_dir(tmp_path) is False
