"""Tests for SimConfig JSON round-tripping and the sim CLI."""

import io
import sys

import pytest

from repro.caches.hierarchy import Level
from repro.sim.config import (
    no_l2,
    skylake_client,
    skylake_server,
    with_catch,
    with_extra_latency,
)
from repro.sim.serialization import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)


CONFIGS = [
    skylake_server(),
    skylake_client(),
    no_l2(skylake_server(), 9.5),
    with_catch(skylake_server()),
    with_extra_latency(skylake_server(), Level.LLC, 6),
]


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.name)
def test_round_trip_equality(cfg):
    assert config_from_dict(config_to_dict(cfg)) == cfg


def test_round_trip_through_file(tmp_path):
    cfg = with_catch(no_l2(skylake_server(), 6.5))
    path = tmp_path / "cfg.json"
    save_config(cfg, path)
    assert load_config(path) == cfg


def test_round_trip_preserves_detector_options(tmp_path):
    import dataclasses

    cfg = with_catch(skylake_server())
    cfg = dataclasses.replace(
        cfg,
        catch=dataclasses.replace(
            cfg.catch, detector="oldest_in_rob", table_policy="lfu"
        ),
    )
    restored = config_from_dict(config_to_dict(cfg))
    assert restored.catch.detector == "oldest_in_rob"
    assert restored.catch.table_policy == "lfu"


def test_loaded_config_simulates_identically(tmp_path):
    from repro.sim.simulator import Simulator

    cfg = skylake_server()
    path = tmp_path / "cfg.json"
    save_config(cfg, path)
    a = Simulator(cfg).run("hplinpack_like", 6000)
    b = Simulator(load_config(path)).run("hplinpack_like", 6000)
    assert a.cycles == b.cycles


class TestSimCLI:
    def _run(self, argv):
        from repro.sim.__main__ import main

        out = io.StringIO()
        old = sys.stdout
        sys.stdout = out
        try:
            code = main(argv)
        finally:
            sys.stdout = old
        return code, out.getvalue()

    def test_list(self):
        code, out = self._run(["list"])
        assert code == 0
        assert "baseline_server" in out and "CATCH" in out

    def test_describe_and_export(self, tmp_path):
        path = str(tmp_path / "c.json")
        code, out = self._run(["describe", "CATCH", "--out", path])
        assert code == 0 and "CATCH" in out
        restored = load_config(path)
        assert restored.is_catch

    def test_run_named(self):
        code, out = self._run(["run", "baseline_server", "hplinpack_like",
                               "--n", "4000"])
        assert code == 0
        assert "IPC" in out

    def test_run_from_file(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_config(skylake_server(), path)
        code, out = self._run(["run", path, "hplinpack_like", "--n", "4000"])
        assert code == 0

    def test_unknown_config(self):
        with pytest.raises(SystemExit, match="unknown config"):
            self._run(["describe", "pentium4"])
