"""Tests for the process-isolated parallel executor (:mod:`repro.runner.fleet`).

The acceptance flow of the fleet — a parallel sweep with an injected worker
crash and an injected hang, both contained as failure records, followed by a
``--resume`` that re-runs only the casualties — lives here, alongside the
determinism guarantee (parallel result payloads byte-identical to serial)
and the graceful-interrupt flow (driver subprocess, SIGINT mid-sweep,
resume manifest).

Everything here spawns real worker processes, so the trace lengths are kept
tiny; the suite still costs a few seconds of wall clock by nature.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro import obs
from repro.errors import RunFailure
from repro.runner import ExperimentRunner, FleetRunner, ResultStore
from repro.runner.fleet import MANIFEST_NAME, hard_deadline_s
from repro.sim.config import no_l2, skylake_server
from repro.sim.serialization import result_to_dict

N = 2000
CFG = skylake_server()
CFG2 = no_l2(skylake_server(), 6.5)
WORKLOADS = ["hmmer_like", "mcf_like"]


def checkpoints(path):
    return sorted(p for p in path.glob("*.json") if p.name != MANIFEST_NAME)


class TestDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        fleet = FleetRunner(ResultStore(tmp_path / "par"), jobs=2)
        parallel = fleet.sweep([CFG, CFG2], WORKLOADS, N)
        serial = ExperimentRunner(ResultStore(tmp_path / "ser")).sweep(
            [CFG, CFG2], WORKLOADS, N
        )
        for cfg_name, per_workload in parallel.items():
            for workload, result in per_workload.items():
                assert result_to_dict(result) == result_to_dict(
                    serial[cfg_name][workload]
                )
        parallel_files = checkpoints(tmp_path / "par")
        serial_files = checkpoints(tmp_path / "ser")
        assert [p.name for p in parallel_files] == [p.name for p in serial_files]
        for par_file, ser_file in zip(parallel_files, serial_files):
            assert par_file.read_bytes() == ser_file.read_bytes()
        assert fleet.stats.completed == 4
        assert fleet.last_manifest["status"] == "complete"
        assert fleet.last_manifest["counts"] == {
            "completed": 4, "failed": 0, "pending": 0,
        }

    def test_single_run_round_trips(self):
        fleet = FleetRunner(jobs=2)
        result = fleet.run(CFG, "hmmer_like", N)
        assert result.ipc > 0
        serial = ExperimentRunner().run(CFG, "hmmer_like", N)
        assert result_to_dict(result) == result_to_dict(serial)

    def test_store_hits_skip_workers(self):
        fleet = FleetRunner(jobs=2)
        fleet.run(CFG, "hmmer_like", N)
        spawned = fleet.fleet_stats.workers_spawned
        again = fleet.run(CFG, "hmmer_like", N)
        assert again.ipc > 0
        assert fleet.stats.store_hits == 1
        assert fleet.fleet_stats.workers_spawned == spawned

    def test_duplicate_jobs_dispatch_once(self):
        fleet = FleetRunner(jobs=2)
        job = (CFG, "hmmer_like", N)
        first, second = fleet.run_many([job, job])
        assert first is second
        assert fleet.stats.executed == 1


class TestContainment:
    def test_worker_crash_contained(self, tmp_path):
        fleet = FleetRunner(
            ResultStore(tmp_path), jobs=2,
            fault_specs=["worker-crash:workload=mcf_like:at=500"],
        )
        with pytest.raises(RunFailure, match="1 of 4 jobs failed"):
            fleet.sweep([CFG, CFG2], WORKLOADS, N)
        (record,) = fleet.failures
        assert record.error_type == "WorkerCrashError"
        assert "exited with code 41" in record.message
        assert record.workload == "mcf_like"
        assert fleet.fleet_stats.workers_crashed == 1
        assert fleet.stats.completed == 3
        assert len(checkpoints(tmp_path)) == 3  # survivors all checkpointed

    def test_worker_hang_reaped_by_hard_deadline(self, tmp_path):
        fleet = FleetRunner(
            ResultStore(tmp_path), jobs=2, timeout_s=1.5,
            fault_specs=["worker-hang:workload=mcf_like:config=noL2:at=500"],
        )
        with pytest.raises(RunFailure):
            fleet.sweep([CFG, CFG2], WORKLOADS, N)
        (record,) = fleet.failures
        assert record.error_type == "RunTimeoutError"
        assert "hard deadline" in record.message
        assert record.config_name == "noL2_6.5MB"
        assert fleet.fleet_stats.hard_timeouts == 1
        assert fleet.fleet_stats.workers_killed == 1
        assert fleet.stats.timeouts == 1
        assert fleet.stats.completed == 3

    def test_worker_oom_reaped_by_rss_guard(self):
        fleet = FleetRunner(
            jobs=1, max_rss_mb=200.0,
            fault_specs=["worker-oom:workload=mcf_like:at=500"],
        )
        with pytest.raises(RunFailure):
            fleet.sweep([CFG], WORKLOADS, N)
        (record,) = fleet.failures
        assert record.error_type == "WorkerOOMError"
        assert "exceeded the 200 MiB guard" in record.message
        assert fleet.fleet_stats.rss_kills == 1
        assert fleet.stats.completed == 1

    def test_in_worker_failure_keeps_the_worker(self):
        # A plain exception is contained *inside* the worker (the serial
        # runner's own isolation): no crash, no respawn.
        fleet = FleetRunner(
            jobs=1, fault_specs=["raise:workload=mcf_like:at=500:times=99"],
        )
        with pytest.raises(RunFailure):
            fleet.sweep([CFG], WORKLOADS, N)
        (record,) = fleet.failures
        assert record.error_type == "InjectedFault"
        assert fleet.fleet_stats.workers_crashed == 0
        assert fleet.fleet_stats.workers_spawned == 1

    def test_transient_fault_retried_inside_worker(self):
        fleet = FleetRunner(
            jobs=1, retries=1,
            fault_specs=["raise:workload=hmmer_like:at=500:times=1"],
        )
        result = fleet.run(CFG, "hmmer_like", N)
        assert result.ipc > 0
        assert fleet.stats.retries == 1  # shipped back from the worker
        assert fleet.failures == []

    def test_acceptance_crash_and_hang_then_resume(self, tmp_path):
        """ISSUE acceptance: 4 jobs, one crash + one hang injected, both
        recorded; a resume re-runs exactly the two failed jobs."""
        fleet = FleetRunner(
            ResultStore(tmp_path), jobs=4, timeout_s=2.0,
            fault_specs=[
                "worker-crash:workload=hmmer_like:config=baseline:at=500",
                "worker-hang:workload=mcf_like:config=noL2:at=500",
            ],
        )
        with pytest.raises(RunFailure, match="2 of 4 jobs failed"):
            fleet.sweep([CFG, CFG2], WORKLOADS, N)
        kinds = sorted(record.error_type for record in fleet.failures)
        assert kinds == ["RunTimeoutError", "WorkerCrashError"]
        assert fleet.last_manifest["counts"] == {
            "completed": 2, "failed": 2, "pending": 0,
        }

        resumed = FleetRunner(
            ResultStore(tmp_path, resume=True), jobs=4, timeout_s=2.0,
        )
        results = resumed.sweep([CFG, CFG2], WORKLOADS, N)
        assert resumed.stats.store_hits == 2
        assert resumed.stats.executed == 2
        assert resumed.failures == []
        assert all(
            results[cfg.name][workload].ipc > 0
            for cfg in (CFG, CFG2)
            for workload in WORKLOADS
        )


class TestManifest:
    def test_manifest_rows_and_fingerprints(self, tmp_path):
        store = ResultStore(tmp_path)
        fleet = FleetRunner(store, jobs=2)
        fleet.sweep([CFG], WORKLOADS, N)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["manifest_version"] == 1
        assert manifest["status"] == "complete"
        assert manifest["total"] == 2
        rows = manifest["jobs"]
        assert [row["workload"] for row in rows] == WORKLOADS
        for row in rows:
            assert row["config"] == "baseline_server"
            assert row["n_instrs"] == N
            assert row["status"] == "completed"
            assert store.fingerprint(CFG).startswith(row["fingerprint"])

    def test_failed_jobs_marked_in_manifest(self, tmp_path):
        fleet = FleetRunner(
            ResultStore(tmp_path), jobs=2,
            fault_specs=["worker-crash:workload=mcf_like:at=500"],
        )
        with pytest.raises(RunFailure):
            fleet.sweep([CFG], WORKLOADS, N)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        statuses = {row["workload"]: row["status"] for row in manifest["jobs"]}
        assert statuses == {"hmmer_like": "completed", "mcf_like": "failed"}


DRIVER = textwrap.dedent("""
    import sys
    from repro.runner import FleetRunner, ResultStore
    from repro.sim.config import no_l2, skylake_server

    def main():
        fleet = FleetRunner(
            ResultStore(sys.argv[1]), jobs=1,
            fault_specs=["worker-hang:workload=mcf_like:config=baseline:at=500"],
        )
        cfgs = [skylake_server(), no_l2(skylake_server(), 6.5)]
        try:
            fleet.sweep(cfgs, ["hmmer_like", "mcf_like"], 2000)
        except KeyboardInterrupt:
            sys.exit(130)
        sys.exit(0)

    if __name__ == "__main__":
        main()
""")


class TestGracefulInterrupt:
    def test_sigint_flushes_results_and_writes_manifest(self, tmp_path):
        """SIGINT mid-sweep: completed runs stay checkpointed, the manifest
        records the interruption, and a resume finishes only the rest."""
        driver = tmp_path / "driver.py"
        driver.write_text(DRIVER)
        ckpt = tmp_path / "ckpt"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, str(driver), str(ckpt)],
            env=env, cwd="/root/repo",
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # With one worker, job 1 completes and job 2 hangs forever, so
            # once a checkpoint exists the campaign is provably mid-flight.
            deadline = time.monotonic() + 60
            while not (ckpt.exists() and checkpoints(ckpt)):
                assert time.monotonic() < deadline, "no checkpoint appeared"
                assert proc.poll() is None, f"driver died: {proc.returncode}"
                time.sleep(0.05)
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 130
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        completed = checkpoints(ckpt)
        assert len(completed) >= 1
        manifest = json.loads((ckpt / MANIFEST_NAME).read_text())
        assert manifest["status"] == "interrupted"
        counts = manifest["counts"]
        assert counts["completed"] == len(completed)
        assert counts["pending"] >= 1    # the hung job never finished

        resumed = FleetRunner(ResultStore(ckpt, resume=True), jobs=2)
        resumed.sweep(
            [skylake_server(), no_l2(skylake_server(), 6.5)],
            WORKLOADS, N,
        )
        assert resumed.stats.store_hits == len(completed)
        assert resumed.stats.executed == 4 - len(completed)
        assert resumed.last_manifest["counts"]["completed"] == 4


class TestObservability:
    def test_worker_telemetry_merged_into_parent_registry(self):
        with obs.use_metrics() as registry:
            fleet = FleetRunner(jobs=1)
            result = fleet.run(CFG, "hmmer_like", N)
        assert result.telemetry  # shipped across the process boundary
        snapshot = registry.snapshot()
        assert snapshot["counters"]["fleet.jobs.completed"] == 1
        phase_histograms = [
            name for name in snapshot["histograms"] if name.startswith("fleet.phase.")
        ]
        assert phase_histograms

    def test_hard_deadline_adds_slack(self):
        assert hard_deadline_s(None) is None
        assert hard_deadline_s(2.0) == 3.0          # floor: +1s
        assert hard_deadline_s(100.0) == 125.0      # +25%
