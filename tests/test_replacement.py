"""Unit tests for cache replacement policies."""

import pytest

from repro.caches.cache import CacheLine
from repro.caches.replacement import (
    LRUPolicy,
    MRUInsertLRUPolicy,
    NRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
    make_policy,
)


def _line(tag):
    return CacheLine(tag=tag)


def _fill(policy, cache_set, tag):
    line = _line(tag)
    cache_set[tag] = line
    policy.on_fill(cache_set, line)
    return line


class TestLRU:
    def test_victim_is_oldest_fill(self):
        p = LRUPolicy()
        s = {}
        _fill(p, s, 1)
        _fill(p, s, 2)
        _fill(p, s, 3)
        assert p.victim(s) == 1

    def test_hit_promotes(self):
        p = LRUPolicy()
        s = {}
        _fill(p, s, 1)
        _fill(p, s, 2)
        p.on_hit(s, s[1])
        assert p.victim(s) == 2

    def test_repeated_hits_keep_line_safe(self):
        p = LRUPolicy()
        s = {}
        for t in (1, 2, 3):
            _fill(p, s, t)
        for _ in range(5):
            p.on_hit(s, s[1])
        assert p.victim(s) != 1


class TestLIP:
    def test_insert_at_lru(self):
        p = MRUInsertLRUPolicy()
        s = {}
        _fill(p, s, 1)
        _fill(p, s, 2)  # inserted at LRU position
        assert p.victim(s) == 2

    def test_hit_promotes_to_mru(self):
        p = MRUInsertLRUPolicy()
        s = {}
        _fill(p, s, 1)
        _fill(p, s, 2)
        p.on_hit(s, s[2])
        assert p.victim(s) == 1


class TestSRRIP:
    def test_insert_long_rereference(self):
        p = SRRIPPolicy(bits=2)
        s = {}
        line = _fill(p, s, 1)
        assert line.repl == p.max_rrpv - 1

    def test_hit_promotes_to_zero(self):
        p = SRRIPPolicy()
        s = {}
        line = _fill(p, s, 1)
        p.on_hit(s, line)
        assert line.repl == 0

    def test_victim_prefers_distant(self):
        p = SRRIPPolicy()
        s = {}
        _fill(p, s, 1)
        _fill(p, s, 2)
        p.on_hit(s, s[1])
        assert p.victim(s) == 2

    def test_aging_terminates(self):
        p = SRRIPPolicy()
        s = {}
        for t in (1, 2):
            line = _fill(p, s, t)
            p.on_hit(s, line)  # both at rrpv 0
        assert p.victim(s) in (1, 2)


class TestNRU:
    def test_victim_unreferenced(self):
        p = NRUPolicy()
        s = {}
        _fill(p, s, 1)
        _fill(p, s, 2)
        s[1].repl = 0
        assert p.victim(s) == 1

    def test_all_referenced_clears(self):
        p = NRUPolicy()
        s = {}
        _fill(p, s, 1)
        _fill(p, s, 2)
        victim = p.victim(s)
        assert victim in (1, 2)
        # after clearing, remaining lines are unreferenced
        assert any(line.repl == 0 for line in s.values())


class TestRandom:
    def test_deterministic_with_seed(self):
        s = {}
        p1, p2 = RandomPolicy(seed=7), RandomPolicy(seed=7)
        for t in range(8):
            _fill(p1, s, t)
        assert [p1.victim(s) for _ in range(5)] == [p2.victim(s) for _ in range(5)]

    def test_victim_is_resident(self):
        p = RandomPolicy()
        s = {}
        for t in range(4):
            _fill(p, s, t)
        assert p.victim(s) in s


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("lru", LRUPolicy),
            ("lip", MRUInsertLRUPolicy),
            ("random", RandomPolicy),
            ("srrip", SRRIPPolicy),
            ("nru", NRUPolicy),
        ],
    )
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_policy("belady")
