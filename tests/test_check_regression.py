"""Tests for the kernel-benchmark regression gate (benchmarks/check_regression.py)."""

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def report(*, parity=True, speedup=1.36, fast_ips=50_000.0, pairs=None):
    return {
        "benchmark": "kernel",
        "aggregate": {
            "pairs": len(pairs or []),
            "parity": parity,
            "reference_ips": fast_ips / speedup,
            "fast_ips": fast_ips,
            "geomean_speedup_vs_reference": speedup,
        },
        "pairs": pairs or [],
    }


class TestCheck:
    def test_identical_reports_pass(self):
        assert check_regression.check(report(), report(), 0.05) == []

    def test_within_tolerance_passes(self):
        fresh = report(speedup=1.36 * 0.96)  # 4% down, 5% allowed
        assert check_regression.check(fresh, report(), 0.05) == []

    def test_regression_beyond_tolerance_fails(self):
        fresh = report(speedup=1.36 * 0.90)
        problems = check_regression.check(fresh, report(), 0.05)
        assert len(problems) == 1
        assert "regressed" in problems[0]

    def test_machine_speed_alone_does_not_gate(self):
        # Same ratio, half the absolute i/s (slower CI machine): passes.
        fresh = report(fast_ips=25_000.0)
        assert check_regression.check(fresh, report(), 0.05) == []

    def test_broken_parity_fails_even_when_fast(self):
        fresh = report(parity=False, speedup=2.0)
        problems = check_regression.check(fresh, report(), 0.05)
        assert any("parity" in p for p in problems)

    def test_diverged_pair_is_named(self):
        pair = {"config": "CATCH", "workload": "mcf_like", "parity": False}
        fresh = report(pairs=[pair])
        problems = check_regression.check(fresh, report(), 0.05)
        assert any("CATCH/mcf_like" in p for p in problems)

    def test_vacuous_baseline_rejected(self):
        problems = check_regression.check(report(), report(parity=False), 0.05)
        assert any("baseline" in p for p in problems)


class TestMain:
    def test_cli_pass_and_fail(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        fresh_ok = tmp_path / "ok.json"
        fresh_bad = tmp_path / "bad.json"
        base.write_text(json.dumps(report()))
        fresh_ok.write_text(json.dumps(report(speedup=1.35)))
        fresh_bad.write_text(json.dumps(report(speedup=1.0)))
        assert check_regression.main(
            [str(fresh_ok), "--baseline", str(base)]
        ) == 0
        assert "gate OK" in capsys.readouterr().out
        assert check_regression.main(
            [str(fresh_bad), "--baseline", str(base)]
        ) == 1
        assert "regressed" in capsys.readouterr().err
