"""Service-side tests for the result-cache tier and the keying bugfixes.

Covers the ``done-cached`` journal outcome (completion without a lease,
replay, counters), submit-time cache resolution through a real daemon
(byte-identical payloads across daemons, near provenance over HTTP),
the degraded-dedup leak regression, and the fsck exemptions that keep a
cached state directory clean.
"""

import json

import pytest

from repro.cache import ResultCache
from repro.errors import JobStateError
from repro.service import DONE, PENDING, build_service, make_server, serve_in_thread
from repro.service.fsck import check_state_dir
from repro.service.http import preset_configs
from repro.service.journal import Journal
from repro.service.queue import JobQueue
from repro.sim.serialization import config_to_dict

N = 2000
WL = "hmmer_like"


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def make_queue(state_dir, **kwargs):
    kwargs.setdefault("max_depth", 8)
    kwargs.setdefault("quota", 8)
    kwargs.setdefault("shed_n_instrs", 1000)
    state_dir.mkdir(parents=True, exist_ok=True)
    journal = Journal(state_dir / "journal.wal", fsync=False)
    return JobQueue(journal, clock=FakeClock(), **kwargs)


def submit(queue, *, fingerprint="fp0", workload=WL, n=50_000, **kwargs):
    kwargs.setdefault("config_name", "cfg")
    job, deduped = queue.submit(
        {"name": "cfg"}, workload, n, fingerprint=fingerprint, **kwargs
    )
    return job, deduped


def make_service(state_dir, **kwargs):
    queue_kwargs = kwargs.pop("queue_kwargs", {})
    return build_service(
        state_dir / "journal.wal", state_dir / "ckpt", fsync=False,
        queue_kwargs=queue_kwargs, **kwargs,
    )


def submit_preset(service, preset="baseline_server", workload=WL, n=N, **kw):
    payload = config_to_dict(preset_configs()[preset])
    job, deduped = service.submit_config(payload, workload, n, **kw)
    return job, deduped


def run_to_idle(service, timeout=60):
    service.start()
    try:
        assert service.wait_idle(timeout=timeout)
    finally:
        service.stop()


class TestDoneCachedJournal:
    def test_pending_to_done_without_a_lease(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        assert job.state == PENDING
        done = queue.complete_cached(
            job.job_id, summary={"ipc": 1.0, "cached": True},
            provenance={"cache_hit": True, "key": ["fp0", WL, 50_000]},
        )
        assert done.state == DONE
        assert done.cached is True
        assert done.cache_provenance["cache_hit"] is True
        assert done.lease_owner is None
        assert done.attempts == 0
        assert queue.counters.done_cached == 1
        assert queue.counters.completed == 1
        assert queue.idle()

    def test_only_pending_jobs_can_complete_cached(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        queue.lease("w0")
        with pytest.raises(JobStateError):
            queue.complete_cached(job.job_id)

    def test_replay_preserves_cached_completion(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        queue.complete_cached(
            job.job_id, summary={"ipc": 2.0},
            provenance={"near_hit": True, "source_key": ["fp0", WL, 1000]},
        )
        queue.journal.close()
        replayed = make_queue(tmp_path)
        back = replayed.get(job.job_id)
        assert back.state == DONE
        assert back.cached is True
        assert back.cache_provenance["near_hit"] is True
        assert back.summary == {"ipc": 2.0}
        replayed.journal.close()

    def test_cached_completion_does_not_feed_retry_hint(self, tmp_path):
        queue = make_queue(tmp_path)
        before = queue._retry_after()
        job, _ = submit(queue)
        queue.complete_cached(job.job_id)
        assert queue._retry_after() == before


class TestDedupLeakRegression:
    """A full-length submission must never dedup against a clamped
    quick-mode result (the degraded-dedup leak)."""

    SHED = dict(max_depth=4, shed_watermark=0.5, shed_n_instrs=1000)

    def _degraded_done(self, queue):
        """Shed one low-priority job into degraded mode and complete it."""
        submit(queue, fingerprint="fill0")
        submit(queue, fingerprint="fill1")
        shed, _ = submit(queue, fingerprint="fp0", priority="low")
        assert shed.degraded and shed.n_instrs == 1000
        assert shed.requested_n_instrs == 50_000
        while True:
            leased = queue.lease("w0")
            queue.complete(leased.job_id, "w0", {"ipc": 1.0})
            if leased.job_id == shed.job_id:
                return shed

    def test_full_length_resubmit_is_not_deduped(self, tmp_path):
        queue = make_queue(tmp_path, **self.SHED)
        shed = self._degraded_done(queue)
        fresh, deduped = submit(queue, fingerprint="fp0")
        assert deduped is False
        assert fresh.job_id != shed.job_id
        assert fresh.degraded is False
        assert fresh.n_instrs == 50_000
        # The full job takes over the key's dedup slot: a *third* identical
        # full-length submission dedups against it, not the estimate.
        again, deduped = submit(queue, fingerprint="fp0")
        assert deduped is True
        assert again.job_id == fresh.job_id

    def test_degraded_against_degraded_still_dedups(self, tmp_path):
        queue = make_queue(tmp_path, **self.SHED)
        submit(queue, fingerprint="fill0")
        submit(queue, fingerprint="fill1")
        shed, _ = submit(queue, fingerprint="fp0", priority="low")
        assert shed.degraded
        again, deduped = submit(queue, fingerprint="fp0", priority="low")
        assert deduped is True
        assert again.job_id == shed.job_id

    def test_shed_job_holds_the_requested_length_key(self, tmp_path):
        queue = make_queue(tmp_path, **self.SHED)
        submit(queue, fingerprint="fill0")
        submit(queue, fingerprint="fill1")
        shed, _ = submit(queue, fingerprint="fp0", priority="low")
        assert shed.key == ("fp0", WL, 50_000)
        # A genuine 1000-instruction request is a *different* point: it
        # must not collide with the clamp artifact.
        quick, deduped = submit(queue, fingerprint="fp0", n=1000)
        assert deduped is False
        assert quick.key == ("fp0", WL, 1000)


class TestDaemonCacheResolution:
    def test_second_daemon_serves_byte_identical_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = make_service(tmp_path / "svc1", cache=cache)
        job1, _ = submit_preset(first)
        run_to_idle(first)
        done1 = first.queue.get(job1.job_id)
        assert done1.state == DONE and done1.cached is False
        payload1 = first.result_payload(done1)
        assert cache.stats.puts == 1

        # Fresh state dir, same cache: the job completes at submit time.
        second = make_service(tmp_path / "svc2", cache=cache)
        job2, deduped = submit_preset(second)
        assert deduped is False
        assert job2.state == DONE
        assert job2.cached is True
        assert job2.cache_provenance["cache_hit"] is True
        assert job2.summary["cached"] is True
        assert second.queue.counters.done_cached == 1
        assert json.dumps(second.result_payload(job2), sort_keys=True) == (
            json.dumps(payload1, sort_keys=True)
        )
        # Zero re-simulation: the executors never had anything to lease.
        run_to_idle(second, timeout=10)
        assert second.queue.counters.done_cached == 1
        # The exact hit re-checkpoints into the new campaign's store, so
        # fsck sees a complete state dir.
        assert check_state_dir(tmp_path / "svc2").ok

    def test_near_hit_needs_opt_in_and_carries_provenance(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        warm = make_service(tmp_path / "warm", cache=cache)
        _, _ = submit_preset(warm, n=N)
        run_to_idle(warm)

        # Without --cache-near a longer request is a plain miss.
        strict = make_service(tmp_path / "strict", cache=cache)
        job, _ = submit_preset(strict, n=2 * N)
        assert job.state == PENDING

        near = make_service(tmp_path / "near", cache=cache, cache_near=True)
        est, _ = submit_preset(near, n=2 * N)
        assert est.state == DONE and est.cached is True
        prov = est.cache_provenance
        assert prov["near_hit"] is True
        assert prov["mode"] == "lower_n"
        assert prov["requested_n_instrs"] == 2 * N
        payload = near.result_payload(est)
        assert payload["telemetry"]["cache"]["near_hit"] is True
        assert payload["telemetry"]["cache"]["source_key"] == prov["source_key"]
        # Near estimates never masquerade as checkpoints of the requested
        # key — and fsck knows the exemption.
        assert list((tmp_path / "near" / "ckpt").glob("*.json")) == []
        assert check_state_dir(tmp_path / "near").ok
        strict.queue.journal.close()
        near.queue.journal.close()

    def test_near_job_result_over_http(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        warm = make_service(tmp_path / "warm", cache=cache)
        submit_preset(warm, n=N)
        run_to_idle(warm)

        service = make_service(tmp_path / "svc", cache=cache, cache_near=True)
        job, _ = submit_preset(service, n=2 * N)
        server = make_server(service)
        serve_in_thread(server)
        host, port = server.server_address
        try:
            import urllib.request

            with urllib.request.urlopen(
                f"http://{host}:{port}/api/v1/jobs/{job.job_id}/result",
                timeout=10,
            ) as resp:
                assert resp.status == 200
                body = json.loads(resp.read())
        finally:
            server.shutdown()
            server.server_close()
            service.queue.journal.close()
        assert body["cached"] is True
        assert body["cache_provenance"]["near_hit"] is True
        assert body["result"]["telemetry"]["cache"]["requested_n_instrs"] == 2 * N

    def test_service_stats_and_gauges_expose_cache_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        service = make_service(tmp_path / "svc", cache=cache)
        job1, _ = submit_preset(service)
        run_to_idle(service)
        job2, _ = submit_preset(
            service, workload="mcf_like"
        )  # different key: a miss
        stats = service.service_stats()
        assert stats["counters"]["done_cached"] == 0
        assert stats["cache"]["puts"] == 1
        assert stats["cache"]["misses"] >= 1
        assert stats["cache"]["entries"] == 1
        assert stats["cache"]["bytes"] > 0


class TestFsckCacheAwareness:
    def test_exact_cached_done_without_checkpoint_is_flagged(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        queue.complete_cached(
            job.job_id, provenance={"cache_hit": True, "key": ["fp0", WL, 50_000]}
        )
        queue.journal.close()
        report = check_state_dir(tmp_path)
        assert any(f.code == "done-no-checkpoint" for f in report.errors)

    def test_near_cached_done_without_checkpoint_is_exempt(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        queue.complete_cached(
            job.job_id,
            provenance={"near_hit": True, "source_key": ["fp0", WL, 1000]},
        )
        queue.journal.close()
        report = check_state_dir(tmp_path)
        assert not any(f.code == "done-no-checkpoint" for f in report.errors)

    def test_degraded_and_full_pair_is_not_a_dedup_duplicate(self, tmp_path):
        queue = make_queue(
            tmp_path, **TestDedupLeakRegression.SHED
        )
        helper = TestDedupLeakRegression()
        helper._degraded_done(queue)
        fresh, deduped = submit(queue, fingerprint="fp0")
        assert not deduped
        queue.complete(queue.lease("w0").job_id, "w0", {"ipc": 1.0})
        queue.journal.close()
        report = check_state_dir(tmp_path)
        assert not any(f.code == "dedup-duplicate" for f in report.findings)

    def test_two_full_jobs_on_one_key_are_still_flagged(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = submit(queue)
        clone = dict(queue.get(job.job_id).to_dict(), job_id="j999999", seq=999)
        queue.journal.append({"op": "submit", "job": clone})
        queue.journal.close()
        report = check_state_dir(tmp_path)
        assert any(f.code == "dedup-duplicate" for f in report.errors)
