"""Tests for the stdlib HTTP API over the campaign service.

Each test drives a real ThreadingHTTPServer on an OS-assigned port with
urllib — the same client path the CLI uses — so status codes, headers and
body shapes are exercised end to end.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import build_service, make_server, preset_configs, serve_in_thread


def request(url, method="GET", payload=None):
    """Return (status, headers, parsed-json-body), HTTPError-tolerant."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        return exc.code, dict(exc.headers), json.loads(body) if body else {}


@pytest.fixture
def api(tmp_path):
    """A served (but not started) service: jobs stay pending, tests are
    deterministic.  Yields (base_url, service)."""
    service = build_service(
        tmp_path / "journal.wal", tmp_path / "ckpt", fsync=False,
        queue_kwargs={"max_depth": 8, "quota": 8},
    )
    server = make_server(service)
    serve_in_thread(server)
    host, port = server.server_address
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        service.queue.journal.close()


def submit_body(preset="baseline_server", **overrides):
    body = {"preset": preset, "workload": "hmmer_like", "n_instrs": 2000}
    body.update(overrides)
    return body


class TestBasics:
    def test_healthz(self, api):
        url, _ = api
        status, _, body = request(f"{url}/api/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0.0
        from repro import __version__

        assert body["version"] == __version__

    def test_unknown_route_404(self, api):
        url, _ = api
        assert request(f"{url}/api/v1/nope")[0] == 404
        assert request(f"{url}/api/v1/nope", "POST", {})[0] == 404

    def test_stats(self, api):
        url, _ = api
        request(f"{url}/api/v1/jobs", "POST", submit_body())
        status, _, body = request(f"{url}/api/v1/stats")
        assert status == 200
        assert body["depth"] == 1
        assert body["states"]["pending"] == 1

    def test_jobs_listing(self, api):
        url, _ = api
        request(f"{url}/api/v1/jobs", "POST", submit_body())
        status, _, body = request(f"{url}/api/v1/jobs")
        assert status == 200
        assert [j["config_name"] for j in body["jobs"]] == ["baseline_server"]


class TestSubmit:
    def test_accepted_with_job_row(self, api):
        url, _ = api
        status, _, body = request(f"{url}/api/v1/jobs", "POST", submit_body())
        assert status == 202
        assert body["state"] == "pending"
        assert body["deduped"] is False
        assert body["job_id"].startswith("j")

    def test_duplicate_is_deduped(self, api):
        url, _ = api
        _, _, first = request(f"{url}/api/v1/jobs", "POST", submit_body())
        status, _, second = request(f"{url}/api/v1/jobs", "POST", submit_body())
        assert status == 202
        assert second["deduped"] is True
        assert second["job_id"] == first["job_id"]

    def test_inline_config_payload(self, api):
        url, _ = api
        from repro.sim.serialization import config_to_dict

        config = config_to_dict(preset_configs()["baseline_client"])
        status, _, body = request(
            f"{url}/api/v1/jobs", "POST",
            {"config": config, "workload": "mcf_like", "n_instrs": 2000},
        )
        assert status == 202
        assert body["config_name"] == "baseline_client"

    @pytest.mark.parametrize(
        "mutation",
        [
            {"preset": None},                       # neither config nor preset
            {"preset": "no_such_machine"},          # unknown preset
            {"workload": ""},                       # empty workload
            {"workload": None},
            {"n_instrs": 0},
            {"n_instrs": "many"},
            {"preset": "baseline_server", "config": {"name": "x"}},  # both
        ],
    )
    def test_malformed_submissions_400(self, api, mutation):
        url, _ = api
        body = submit_body()
        body.update(mutation)
        body = {k: v for k, v in body.items() if v is not None}
        status, _, response = request(f"{url}/api/v1/jobs", "POST", body)
        assert status == 400
        assert response["error"]

    def test_invalid_config_rejected_at_the_boundary(self, api):
        url, _ = api
        from repro.sim.serialization import config_to_dict

        config = config_to_dict(preset_configs()["baseline_server"])
        config["l1d"]["size_kb"] = -4
        status, _, body = request(
            f"{url}/api/v1/jobs", "POST",
            {"config": config, "workload": "mcf_like", "n_instrs": 2000},
        )
        assert status == 400

    def test_queue_full_429_with_retry_after(self, tmp_path):
        service = build_service(
            tmp_path / "j.wal", tmp_path / "ckpt", fsync=False,
            queue_kwargs={"max_depth": 1, "shed_watermark": 1.1},
        )
        server = make_server(service)
        serve_in_thread(server)
        host, port = server.server_address
        url = f"http://{host}:{port}"
        try:
            assert request(f"{url}/api/v1/jobs", "POST", submit_body())[0] == 202
            status, headers, body = request(
                f"{url}/api/v1/jobs", "POST", submit_body("baseline_client")
            )
            assert status == 429
            assert body["error_type"] == "QueueFull"
            assert int(headers["Retry-After"]) >= 1
        finally:
            server.shutdown()
            server.server_close()
            service.queue.journal.close()


class TestStatusAndResult:
    def test_status_round_trip(self, api):
        url, _ = api
        _, _, job = request(f"{url}/api/v1/jobs", "POST", submit_body())
        status, _, body = request(f"{url}/api/v1/jobs/{job['job_id']}")
        assert status == 200
        assert body["state"] == "pending"
        assert body["workload"] == "hmmer_like"

    def test_unknown_job_404(self, api):
        url, _ = api
        assert request(f"{url}/api/v1/jobs/j999999")[0] == 404
        assert request(f"{url}/api/v1/jobs/j999999/result")[0] == 404
        assert request(f"{url}/api/v1/jobs/j999999/cancel", "POST", {})[0] == 404

    def test_result_while_pending_202(self, api):
        url, _ = api
        _, _, job = request(f"{url}/api/v1/jobs", "POST", submit_body())
        status, _, body = request(f"{url}/api/v1/jobs/{job['job_id']}/result")
        assert status == 202
        assert body["state"] == "pending"

    def test_result_of_cancelled_410(self, api):
        url, _ = api
        _, _, job = request(f"{url}/api/v1/jobs", "POST", submit_body())
        request(f"{url}/api/v1/jobs/{job['job_id']}/cancel", "POST", {})
        assert request(f"{url}/api/v1/jobs/{job['job_id']}/result")[0] == 410

    def test_done_job_serves_result(self, api):
        url, service = api
        service.start()
        try:
            _, _, job = request(f"{url}/api/v1/jobs", "POST", submit_body())
            assert service.wait_idle(timeout=30)
            status, _, body = request(f"{url}/api/v1/jobs/{job['job_id']}/result")
            assert status == 200
            assert body["degraded"] is False
            result = body["result"]
            assert result["instructions"] >= 2000
            assert result["cycles"] > 0
        finally:
            service.stop()


class TestCancel:
    def test_cancel_pending(self, api):
        url, _ = api
        _, _, job = request(f"{url}/api/v1/jobs", "POST", submit_body())
        status, _, body = request(
            f"{url}/api/v1/jobs/{job['job_id']}/cancel", "POST", {}
        )
        assert status == 202
        assert body["state"] == "cancelled"

    def test_double_cancel_409(self, api):
        url, _ = api
        _, _, job = request(f"{url}/api/v1/jobs", "POST", submit_body())
        request(f"{url}/api/v1/jobs/{job['job_id']}/cancel", "POST", {})
        status, _, body = request(
            f"{url}/api/v1/jobs/{job['job_id']}/cancel", "POST", {}
        )
        assert status == 409
        assert body["error_type"] == "JobStateError"


class TestPresets:
    def test_fig10_family_present(self):
        names = set(preset_configs())
        assert {"baseline_server", "baseline_client", "CATCH"} <= names
        assert any(name.startswith("noL2") for name in names)


class TestSafeMode:
    def test_submission_503_with_retry_after(self, api):
        url, service = api
        service.enter_safe_mode("ENOSPC: disk full")
        status, headers, body = request(
            f"{url}/api/v1/jobs", "POST", submit_body()
        )
        assert status == 503
        assert body["error_type"] == "SafeModeActive"
        assert int(headers["Retry-After"]) >= 1
        service.exit_safe_mode()
        status, _, _ = request(f"{url}/api/v1/jobs", "POST", submit_body())
        assert status == 202

    def test_healthz_degrades_and_recovers(self, api):
        url, service = api
        service.enter_safe_mode("EIO: journal")
        status, _, body = request(f"{url}/api/v1/healthz")
        assert status == 200  # the daemon itself is alive and answering
        assert body["status"] == "degraded"
        assert body["safe_mode"]["active"] is True
        assert "EIO" in body["safe_mode"]["reason"]
        service.exit_safe_mode()
        _, _, body = request(f"{url}/api/v1/healthz")
        assert body["status"] == "ok"

    def test_reads_still_served_in_safe_mode(self, api):
        url, service = api
        _, _, created = request(f"{url}/api/v1/jobs", "POST", submit_body())
        service.enter_safe_mode("ENOSPC: x")
        status, _, body = request(f"{url}/api/v1/jobs/{created['job_id']}")
        assert status == 200
        assert body["state"] == "pending"


class TestInjectFault:
    def test_valid_sim_level_spec_accepted(self, api):
        url, service = api
        status, _, body = request(
            f"{url}/api/v1/jobs", "POST",
            submit_body(inject_fault="raise:at=500"),
        )
        assert status == 202
        job = service.queue.get(body["job_id"])
        assert job.inject_fault == "raise:at=500"

    def test_unknown_fault_kind_400(self, api):
        url, _ = api
        status, _, body = request(
            f"{url}/api/v1/jobs", "POST",
            submit_body(inject_fault="disk-on-fire"),
        )
        assert status == 400
        assert "unknown fault kind" in body["error"]

    def test_worker_kind_rejected_under_thread_isolation(self, api):
        url, service = api
        assert service.isolation == "thread"
        status, _, body = request(
            f"{url}/api/v1/jobs", "POST",
            submit_body(inject_fault="worker-crash:at=500"),
        )
        assert status == 400
        assert "process isolation" in body["error"]

    def test_non_string_spec_400(self, api):
        url, _ = api
        status, _, body = request(
            f"{url}/api/v1/jobs", "POST", submit_body(inject_fault=7)
        )
        assert status == 400


class TestClientHardening:
    """The CLI's request layer: jittered retries for idempotent GETs only,
    and a one-line, distinct-exit-code story for an unreachable daemon."""

    def test_get_retries_with_full_jitter(self):
        import random

        from repro.service.cli import ServiceUnreachable, _request

        sleeps = []
        with pytest.raises(ServiceUnreachable):
            _request(
                "http://127.0.0.1:9/api/v1/healthz",
                retries=3, backoff_s=0.5, rng=random.Random(42),
                sleep=sleeps.append, timeout=0.5,
            )
        assert len(sleeps) == 3  # one per retry, none after the last
        expected = [0.5 * (2 ** a) for a in range(3)]
        for got, ceiling in zip(sleeps, expected):
            assert 0.0 <= got < ceiling  # full jitter: uniform under 2^a

    def test_post_never_retries(self):
        from repro.service.cli import ServiceUnreachable, _request

        sleeps = []
        with pytest.raises(ServiceUnreachable):
            _request(
                "http://127.0.0.1:9/api/v1/jobs", method="POST",
                payload={}, retries=5, sleep=sleeps.append, timeout=0.5,
            )
        assert sleeps == []  # a POST may have side effects: no blind retry

    def test_http_error_is_a_served_response_not_a_retry(self, api):
        url, _ = api
        from repro.service.cli import _request

        sleeps = []
        status, body = _request(
            f"{url}/api/v1/nope", retries=3, sleep=sleeps.append
        )
        assert status == 404
        assert sleeps == []

    def test_unreachable_message_and_exit_code(self, capsys):
        from repro.service.cli import EXIT_UNREACHABLE, main

        code = main([
            "status", "j000001", "--url", "http://127.0.0.1:9",
            "--retries", "0", "--timeout", "0.5",
        ])
        assert code == EXIT_UNREACHABLE == 5
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one line, not a traceback
        assert "cannot reach service" in err
        assert "is the daemon running?" in err

    def test_cli_fsck_dispatch(self, tmp_path, capsys):
        from repro.service.cli import main

        service = build_service(
            tmp_path / "journal.wal", tmp_path / "ckpt", fsync=False
        )
        service.queue.journal.close()
        assert main(["fsck", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out
