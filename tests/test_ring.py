"""Unit tests for the ring interconnect model."""

from repro.interconnect.ring import RingInterconnect


class TestTopology:
    def test_stop_count(self):
        ring = RingInterconnect(4)
        assert ring.n_stops == 8

    def test_slice_hashing_in_range(self):
        ring = RingInterconnect(4)
        for line in range(100):
            assert 0 <= ring.slice_for(line) < 4

    def test_hops_shorter_direction(self):
        ring = RingInterconnect(4)
        for core in range(4):
            for s in range(4):
                h = ring.hops(core, s)
                assert 0 <= h <= ring.n_stops // 2

    def test_hops_symmetric_distance(self):
        ring = RingInterconnect(4)
        # core 0 to slice 3 (stop 7): distance min(7, 1) = 1
        assert ring.hops(0, 3) == 1


class TestTraffic:
    def test_request_counts_control(self):
        ring = RingInterconnect(4)
        ring.request(0, 123)
        assert ring.stats.control_messages == 1
        assert ring.stats.data_messages == 0

    def test_data_counts_flits(self):
        ring = RingInterconnect(4)
        ring.data(0, 0)  # slice 0 = stop 4, distance 4
        assert ring.stats.data_messages == 1
        assert ring.stats.flit_hops == ring.hops(0, 0) * ring.flits_per_data

    def test_round_trip_is_request_plus_data(self):
        ring = RingInterconnect(4)
        lat = ring.round_trip(1, 7)
        assert lat == 2 * ring.hops(1, ring.slice_for(7)) * ring.hop_cycles
        assert ring.stats.messages == 2

    def test_bytes_moved(self):
        ring = RingInterconnect(4)
        ring.request(0, 1)
        ring.data(0, 1)
        assert ring.stats.bytes_moved == 64 + 8

    def test_latency_scales_with_hop_cycles(self):
        slow = RingInterconnect(4, hop_cycles=3)
        fast = RingInterconnect(4, hop_cycles=1)
        line = 2
        assert slow.data(0, line) == 3 * fast.data(0, line)
