"""Tests for the Prometheus text exposition (repro.obs.expo) and the
histogram quantile estimator that feeds the SLO summaries.

The rendering tests pin the format properties a scraper depends on —
counter ``_total`` suffixing, cumulative buckets ending in ``+Inf``, label
escaping — and every rendered document must round-trip through
:func:`validate_exposition`, the same checker CI runs on a live scrape.
"""

import pytest

from repro.obs import MetricsRegistry, render_prometheus, validate_exposition
from repro.obs.expo import (
    CONTENT_TYPE,
    escape_label_value,
    format_value,
    main as expo_main,
    sanitize_metric_name,
)
from repro.obs.registry import Histogram


def render_valid(snapshot, **kwargs):
    """Render and assert the output passes the checker."""
    text = render_prometheus(snapshot, **kwargs)
    assert validate_exposition(text) == []
    return text


class TestHistogramQuantile:
    def test_empty_histogram_quantiles_are_nan(self):
        # "No observations yet" must stay distinguishable from a real
        # 0-latency quantile: NaN in Python, null in JSON surfaces.
        import math

        hist = Histogram("h", (1, 2, 4))
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.quantile(0.99))

    def test_empty_histogram_to_dict_emits_null_quantiles(self):
        hist = Histogram("h", (1, 2, 4))
        payload = hist.to_dict()
        assert payload["p50"] is None
        assert payload["p95"] is None
        assert payload["p99"] is None
        # The checkpointed keys keep their empty-but-numeric values.
        assert payload["count"] == 0
        assert payload["sum"] == 0.0
        import json

        json.dumps(payload)  # null is valid JSON; NaN would not be

    def test_empty_histogram_exposition_stays_valid(self):
        registry = MetricsRegistry()
        registry.histogram("empty.h", (1.0, 2.0))
        render_valid(registry.snapshot())

    def test_interpolates_within_a_bucket(self):
        hist = Histogram("h", (10.0,))
        for _ in range(4):
            hist.record(5.0)
        # 4 samples uniformly assumed across (0, 10]: the median sits at
        # the 2/4 point of the only bucket.
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(0.25) == pytest.approx(2.5)

    def test_crosses_buckets_with_lower_edge(self):
        hist = Histogram("h", (1.0, 2.0, 4.0))
        hist.record(0.5)   # bucket (0, 1]
        hist.record(1.5)   # bucket (1, 2]
        hist.record(3.0)   # bucket (2, 4]
        hist.record(3.5)   # bucket (2, 4]
        # p50 -> target 2.0 of 4: lands exactly on the 2nd sample, i.e. the
        # upper edge of the (1, 2] bucket.
        assert hist.quantile(0.5) == pytest.approx(2.0)
        # p75 -> target 3.0: halfway through the two-sample (2, 4] bucket.
        assert hist.quantile(0.75) == pytest.approx(3.0)

    def test_overflow_clamps_to_last_bound(self):
        hist = Histogram("h", (1.0, 2.0))
        hist.record(100.0)
        hist.record(200.0)
        assert hist.quantile(0.99) == 2.0

    def test_out_of_range_q_raises(self):
        hist = Histogram("h", (1.0,))
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_to_dict_keeps_old_keys_and_adds_quantiles(self):
        hist = Histogram("h", (1.0, 2.0))
        hist.record(0.5)
        payload = hist.to_dict()
        # The original checkpointed-telemetry keys survive unchanged…
        assert payload["bounds"] == [1.0, 2.0]
        assert payload["counts"] == [1, 0, 0]
        assert payload["sum"] == 0.5
        assert payload["count"] == 1
        # …and the quantile estimates ride along.
        assert set(payload) >= {"p50", "p95", "p99"}


class TestRenderPrometheus:
    def test_empty_snapshot_is_valid_and_empty(self):
        assert render_valid({}) == ""

    def test_counter_gets_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("sim.loads").inc(7)
        text = render_valid(registry.snapshot())
        assert "# TYPE repro_sim_loads_total counter\n" in text
        assert "repro_sim_loads_total 7\n" in text

    def test_gauge_renders_plain(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(3.5)
        text = render_valid(registry.snapshot())
        assert "# TYPE repro_queue_depth gauge\n" in text
        assert "repro_queue_depth 3.5\n" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("job.queue_wait_seconds", (1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 100.0):
            hist.record(value)
        text = render_valid(registry.snapshot())
        name = "repro_job_queue_wait_seconds"
        assert f"# TYPE {name} histogram\n" in text
        assert f'{name}_bucket{{le="1"}} 2\n' in text
        assert f'{name}_bucket{{le="2"}} 3\n' in text      # cumulative
        assert f'{name}_bucket{{le="4"}} 3\n' in text
        assert f'{name}_bucket{{le="+Inf"}} 4\n' in text   # overflow included
        assert f"{name}_count 4\n" in text
        assert f"{name}_sum 102.5\n" in text

    def test_provider_snapshot_flattens_to_labeled_gauges(self):
        snapshot = {
            "providers": {
                "service": {
                    "depth": 2,
                    "states": {"pending": 1, "leased": 1},
                    "note": "not a number",          # skipped
                    "healthy": True,                 # bool -> 1
                },
            },
        }
        text = render_valid(snapshot)
        assert 'repro_snapshot{provider="service",key="depth"} 2\n' in text
        assert (
            'repro_snapshot{provider="service",key="states.pending"} 1\n'
            in text
        )
        assert 'repro_snapshot{provider="service",key="healthy"} 1\n' in text
        assert "not a number" not in text

    def test_label_values_are_escaped(self):
        snapshot = {"providers": {'we"ird\\prov\nider': {"x": 1}}}
        text = render_valid(snapshot)
        assert r'provider="we\"ird\\prov\nider"' in text

    def test_metric_names_are_sanitised(self):
        assert sanitize_metric_name("job.queue-wait s") == (
            "repro_job_queue_wait_s"
        )
        assert sanitize_metric_name("9lives", namespace="") == "_9lives"

    def test_format_value_integers_have_no_decimal_point(self):
        assert format_value(3.0) == "3"
        assert format_value(3.25) == "3.25"
        assert format_value(True) == "1"

    def test_content_type_names_the_format_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestValidateExposition:
    def test_missing_trailing_newline(self):
        assert validate_exposition("repro_x 1") == [
            "exposition must end with a newline"
        ]

    def test_bad_sample_line(self):
        problems = validate_exposition("this is not a sample!!\n")
        assert any("unparsable sample" in p for p in problems)

    def test_duplicate_series_detected(self):
        text = "repro_x 1\nrepro_x 2\n"
        assert any("duplicate series" in p for p in validate_exposition(text))

    def test_non_cumulative_histogram_detected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'      # decreasing: broken renderer
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 9\n"
            "repro_h_count 5\n"
        )
        assert any(
            "not cumulative" in p for p in validate_exposition(text)
        )

    def test_histogram_missing_inf_bucket_detected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            "repro_h_sum 9\n"
            "repro_h_count 5\n"
        )
        assert any("+Inf" in p for p in validate_exposition(text))

    def test_inf_bucket_must_agree_with_count(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_sum 9\n"
            "repro_h_count 5\n"
        )
        assert any("_count" in p for p in validate_exposition(text))

    def test_ungrouped_family_detected(self):
        text = (
            "# TYPE repro_a gauge\n"
            "repro_a 1\n"
            "# TYPE repro_b gauge\n"
            "repro_b 1\n"
            'repro_a{x="1"} 2\n'               # repro_a samples split up
        )
        assert any("not grouped" in p for p in validate_exposition(text))

    def test_escaped_labels_parse(self):
        text = 'repro_x{v="a\\\\b\\"c\\nd"} 1\n'
        assert validate_exposition(text) == []


class TestCheckerCli:
    def test_check_accepts_a_real_render(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.histogram("lat", (1.0,)).record(0.5)
        path = tmp_path / "metrics.prom"
        path.write_text(render_prometheus(registry.snapshot()))
        assert expo_main(["check", str(path)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_check_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "bad.prom"
        path.write_text("repro_x 1\nrepro_x 1\n")
        assert expo_main(["check", str(path)]) == 1
        assert "duplicate series" in capsys.readouterr().err

    def test_usage_error(self, capsys):
        assert expo_main(["frobnicate"]) == 2
        assert "usage" in capsys.readouterr().err
