"""Tests for the DDG-driven OOO core timing model."""

import pytest

from repro.caches.hierarchy import CacheHierarchy, Level, LevelSpec
from repro.cpu.core import CoreParams, OOOCore
from repro.memory.controller import MemoryController
from repro.workloads.trace import Instr, Op, Trace


def make_hierarchy(n_cores=1, mem_latency=160):
    return CacheHierarchy(
        n_cores,
        l1i=LevelSpec(8, 8, 5),
        l1d=LevelSpec(8, 8, 5),
        l2=LevelSpec(64, 8, 15),
        llc=LevelSpec(256, 8, 40),
        memory=MemoryController(fixed_latency=mem_latency),
    )


def run_trace(instrs, params=None, hierarchy=None):
    core = OOOCore(0, hierarchy or make_hierarchy(), params or CoreParams())
    trace = Trace("t", "ISPEC", instrs)
    return core.run(trace), core


def alu_chain(n, pc=0x400000):
    """n serially dependent single-cycle ALU ops (one code line: backend-only
    timing, no cold code misses)."""
    return [Instr(pc, Op.ALU, srcs=(1,), dst=1) for _ in range(n)]


def independent_alus(n, pc=0x400000):
    return [Instr(pc, Op.ALU, srcs=(2,), dst=3) for _ in range(n)]


class TestDispatchWidth:
    def test_independent_ops_reach_full_width(self):
        # A one-time cold code miss (~200 cycles) offsets the ideal 4.0.
        result, _ = run_trace(independent_alus(20_000))
        assert 3.6 <= result.ipc <= 4.0

    def test_narrow_core_halves_throughput(self):
        wide, _ = run_trace(independent_alus(20_000), CoreParams(width=4))
        narrow, _ = run_trace(independent_alus(20_000), CoreParams(width=2))
        assert narrow.ipc == pytest.approx(wide.ipc / 2, rel=0.1)


class TestDependencies:
    def test_serial_chain_is_one_per_cycle(self):
        result, _ = run_trace(alu_chain(10_000))
        assert 0.95 <= result.ipc <= 1.0

    def test_mul_chain_slower(self):
        muls = [Instr(0x400000, Op.MUL, srcs=(1,), dst=1) for _ in range(5000)]
        result, _ = run_trace(muls)
        assert result.ipc == pytest.approx(1 / 3, rel=0.1)

    def test_load_latency_on_chain(self):
        # Serial chain of L1-hitting loads: one load per 5 cycles.
        instrs = []
        for i in range(5000):
            instrs.append(Instr(0x400000, Op.LOAD, srcs=(1,), dst=1, addr=0x1000))
        result, _ = run_trace(instrs)
        assert result.ipc == pytest.approx(1 / 5, rel=0.15)

    def test_store_to_load_forwarding_dependence(self):
        instrs = []
        for i in range(200):
            instrs.append(Instr(0x400000, Op.STORE, srcs=(2,), addr=0x2000))
            instrs.append(Instr(0x400004, Op.LOAD, srcs=(3,), dst=2, addr=0x2000))
        result, _ = run_trace(instrs)
        # load depends on store: the pair serialises well below width 4
        assert result.ipc < 2.0


class TestROB:
    def test_rob_limits_overlap(self):
        # Long-latency loads at line distance; a tiny ROB serialises them.
        def loads(n):
            return [
                Instr(0x400000, Op.LOAD, srcs=(2,), dst=3, addr=i * 4096)
                for i in range(n)
            ]

        big, _ = run_trace(loads(400), CoreParams(rob_size=224))
        small, _ = run_trace(loads(400), CoreParams(rob_size=16))
        assert small.ipc < big.ipc


class TestBranches:
    def test_predictable_branches_cheap(self):
        instrs = []
        for i in range(500):
            instrs.extend(independent_alus(3, pc=0x400000))
            instrs.append(Instr(0x40000C, Op.BRANCH, taken=True, target=0x400000))
        result, _ = run_trace(instrs)
        assert result.branch_mispredicts < 20

    def test_mispredicts_cost_cycles(self):
        import random

        rng = random.Random(3)
        good, bad = [], []
        for i in range(400):
            taken = rng.random() < 0.5
            body = independent_alus(3, pc=0x400000)
            good.extend(body)
            good.append(Instr(0x40000C, Op.BRANCH, taken=True, target=0x400000))
            bad.extend(body)
            bad.append(
                Instr(
                    0x40000C, Op.BRANCH, taken=taken,
                    target=0x400000 if taken else -1,
                )
            )
        good_r, _ = run_trace(good)
        bad_r, _ = run_trace(bad)
        assert bad_r.branch_mispredicts > good_r.branch_mispredicts
        assert bad_r.ipc < good_r.ipc


class TestCodePath:
    def test_large_code_footprint_stalls(self):
        # 4000 instrs over 1000 distinct code lines >> 8KB L1I
        spread = [
            Instr(0x400000 + i * 64, Op.ALU, srcs=(2,), dst=3) for i in range(4000)
        ]
        tight = independent_alus(4000)
        spread_r, spread_core = run_trace(spread)
        tight_r, _ = run_trace(tight)
        assert spread_core.frontend.code_stall_cycles > 0
        assert spread_r.ipc < tight_r.ipc


class TestResultBookkeeping:
    def test_load_levels_recorded(self):
        instrs = [
            Instr(0x400000, Op.LOAD, srcs=(2,), dst=3, addr=i * 64) for i in range(64)
        ]
        result, _ = run_trace(instrs)
        assert result.load_levels[Level.MEM] > 0

    def test_time_monotonic_across_steps(self):
        core = OOOCore(0, make_hierarchy())
        trace = Trace("t", "ISPEC", independent_alus(100))
        core.start(trace)
        last = 0.0
        for idx, ins in enumerate(trace.instrs):
            t = core.step(idx, ins)
            assert t >= last
            last = t

    def test_reset_stats_keeps_time(self):
        core = OOOCore(0, make_hierarchy())
        trace = Trace("t", "ISPEC", independent_alus(100))
        core.run(trace)
        t = core.time
        core.reset_stats()
        assert core.time == t
        assert core.mispredicts == 0

    def test_determinism(self):
        r1, _ = run_trace(alu_chain(500))
        r2, _ = run_trace(alu_chain(500))
        assert r1.cycles == r2.cycles
