"""Unit tests for the DDR4 timing model."""

import pytest

from repro.memory.controller import MemoryController
from repro.memory.dram import DRAM, DRAMConfig


class TestConfig:
    def test_cycle_ratio(self):
        cfg = DRAMConfig()
        assert cfg.cycle_ratio == pytest.approx(3.2 / 1.2)

    def test_total_banks(self):
        cfg = DRAMConfig(channels=2, ranks=2, banks=8)
        assert cfg.total_banks == 32

    def test_paper_timings(self):
        cfg = DRAMConfig()
        assert (cfg.tcas, cfg.trcd, cfg.trp, cfg.tras) == (15, 15, 15, 39)


class TestMapping:
    def test_deterministic(self):
        d = DRAM()
        assert d.map_address(1234, ) == d.map_address(1234)

    def test_channel_in_range(self):
        d = DRAM()
        for line in range(0, 10000, 37):
            ch, bank, row = d.map_address(line)
            assert 0 <= ch < d.config.channels
            assert 0 <= bank < d.config.total_banks

    def test_strided_lines_spread_channels(self):
        d = DRAM()
        channels = {d.map_address(8 * k)[0] for k in range(64)}
        assert len(channels) == d.config.channels

    def test_strided_lines_spread_banks(self):
        d = DRAM()
        banks = {d.map_address(8 * k)[1] for k in range(512)}
        assert len(banks) >= d.config.total_banks // 2


class TestReadTiming:
    def test_row_empty_latency(self):
        d = DRAM()
        lat = d.read(0, 0.0)
        cfg = d.config
        expected = (
            cfg.controller_cycles
            + (cfg.trcd + cfg.tcas + cfg.burst_cycles) * cfg.cycle_ratio
        )
        assert lat == pytest.approx(expected)
        assert d.stats.row_empty == 1

    def test_row_hit_cheaper(self):
        d = DRAM()
        first = d.read(0, 0.0)
        second = d.read(1 * d.config.channels, 10_000.0)  # same row, later
        # second access maps to the same row only if rows span several lines
        assert second <= first

    def test_row_hit_detected(self):
        d = DRAM()
        # two addresses in the same row: same (channel, bank, row)
        a = 0
        target = d.map_address(a)
        b = None
        for cand in range(1, 2000):
            if d.map_address(cand) == (target[0], target[1], target[2]):
                b = cand
                break
        if b is None:
            pytest.skip("no same-row partner found in range")
        d.read(a, 0.0)
        d.read(b, 10_000.0)
        assert d.stats.row_hits >= 1

    def test_row_conflict_slower_than_hit(self):
        d = DRAM()
        cfg = d.config
        lines_per_row = cfg.row_bytes // 64
        d.read(0, 0.0)
        # Another row on the same bank requires precharge + activate.
        conflict_lat = None
        for cand in range(lines_per_row, 500_000, lines_per_row):
            ch, bank, row = d.map_address(cand)
            ch0, bank0, row0 = d.map_address(0)
            if bank == bank0 and row != row0:
                conflict_lat = d.read(cand, 10_000.0)
                break
        assert conflict_lat is not None
        hit_like = cfg.controller_cycles + (cfg.tcas + cfg.burst_cycles) * cfg.cycle_ratio
        assert conflict_lat > hit_like
        assert d.stats.row_conflicts >= 1

    def test_back_to_back_same_bank_pipelines(self):
        """Row hits to one bank must pipeline at ~tCCD, not serialize at
        full tCAS latency (the honest-MLP property)."""
        d = DRAM()
        cfg = d.config
        target = d.map_address(0)
        partners = [0]
        for cand in range(1, 5000):
            if d.map_address(cand) == target:
                partners.append(cand)
            if len(partners) >= 4:
                break
        if len(partners) < 4:
            pytest.skip("not enough same-row partners")
        latencies = [d.read(line, 0.0) for line in partners]
        # The 4th access should NOT pay 4x the single-access latency.
        assert latencies[-1] < latencies[0] + 3 * cfg.tcas * cfg.cycle_ratio

    def test_queueing_under_burst(self):
        d = DRAM()
        lat0 = d.read(0, 0.0)
        for i in range(1, 64):
            lat = d.read(i * 999, 0.0)  # all issued at t=0
        assert lat > lat0  # later requests queue behind earlier ones


class TestWrites:
    def test_writes_queue_without_latency(self):
        d = DRAM()
        for i in range(4):
            d.write(i, 0.0)
        assert d.pending_writes() == 4

    def test_batch_drain(self):
        d = DRAM()
        for i in range(0, 2 * d.config.write_batch * d.config.channels, 1):
            d.write(i, 0.0)
        assert d.stats.write_batches >= 1

    def test_flush_writes_empties_queues(self):
        d = DRAM()
        for i in range(5):
            d.write(i, 0.0)
        d.flush_writes(100.0)
        assert d.pending_writes() == 0

    def test_backlog_grows_with_load(self):
        d = DRAM()
        assert d.backlog(0.0) == 0.0
        for i in range(128):
            d.read(i * 31, 0.0)
        assert d.backlog(0.0) > 0.0


class TestController:
    def test_fixed_latency_mode(self):
        m = MemoryController(fixed_latency=100)
        assert m.read(42, 0.0) == 100.0
        assert m.backlog(0.0) == 0.0

    def test_traffic_counted(self):
        m = MemoryController(fixed_latency=100)
        m.read(1, 0.0)
        m.write(2, 0.0)
        assert m.traffic.read_lines == 1
        assert m.traffic.write_lines == 1
        assert m.traffic.read_bytes == 64

    def test_real_mode_delegates(self):
        m = MemoryController()
        lat = m.read(0, 0.0)
        assert lat > 0
        assert m.dram.stats.reads == 1

    def test_finish_flushes(self):
        m = MemoryController()
        m.write(0, 0.0)
        m.finish(1000.0)
        assert m.dram.pending_writes() == 0
