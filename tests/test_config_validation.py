"""Tests for eager SimConfig validation and the scaled-size rounding fix."""

import dataclasses
import subprocess
import sys

import pytest

from repro.caches.hierarchy import Level, LevelSpec
from repro.errors import ConfigError, ReproError
from repro.sim.config import no_l2, skylake_client, skylake_server
from repro.sim.simulator import Simulator


def _bad(base, **overrides):
    return dataclasses.replace(base, **overrides)


class TestValidate:
    def test_paper_machines_validate(self):
        assert skylake_server().validate() is not None
        assert skylake_client().validate() is not None
        no_l2(skylake_server(), 6.5).validate()

    def test_capacity_scale_below_one(self):
        with pytest.raises(ConfigError, match="capacity_scale must be >= 1"):
            _bad(skylake_server(), capacity_scale=0).validate()

    def test_nonpositive_size(self):
        cfg = _bad(skylake_server(), l2=LevelSpec(0, 16, 15))
        with pytest.raises(ConfigError, match="l2 size must be positive"):
            cfg.validate()

    def test_nonpositive_latency(self):
        cfg = _bad(skylake_server(), llc=LevelSpec(5632, 11, 0))
        with pytest.raises(ConfigError, match="llc latency must be positive"):
            cfg.validate()

    def test_nonpositive_assoc(self):
        cfg = _bad(skylake_server(), l1d=LevelSpec(32, -2, 5))
        with pytest.raises(ConfigError, match="l1d associativity must be positive"):
            cfg.validate()

    def test_assoc_exceeding_set_count(self):
        # 1 KB, 32-way, 64 B lines: 0 sets of 32 ways fit.
        cfg = _bad(skylake_server(), l2=LevelSpec(1, 32, 15))
        with pytest.raises(
            ConfigError, match="associativity 32 exceeds the set count 0"
        ):
            cfg.validate()

    def test_exclusive_llc_smaller_than_l2(self):
        cfg = _bad(skylake_server(), llc=LevelSpec(512, 11, 40))
        with pytest.raises(ConfigError, match="exclusive LLC .* smaller than the L2"):
            cfg.validate()

    def test_inclusive_llc_smaller_than_l2_allowed(self):
        cfg = _bad(
            skylake_server(), llc=LevelSpec(512, 8, 40), llc_policy="inclusive"
        )
        cfg.validate()

    def test_unknown_llc_policy(self):
        with pytest.raises(ConfigError, match="unknown llc_policy 'victim'"):
            _bad(skylake_server(), llc_policy="victim").validate()

    def test_nonpositive_cores(self):
        with pytest.raises(ConfigError, match="n_cores must be >= 1"):
            _bad(skylake_server(), n_cores=0).validate()

    def test_negative_extra_latency(self):
        cfg = _bad(skylake_server(), extra_latency=((Level.L2, -3),))
        with pytest.raises(ConfigError, match="negative extra latency"):
            cfg.validate()

    def test_message_names_the_config(self):
        cfg = _bad(skylake_server(name="weird_machine"), capacity_scale=-1)
        with pytest.raises(ConfigError, match="weird_machine"):
            cfg.validate()

    def test_config_error_is_typed(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(ConfigError, ValueError)


class TestSimulatorEagerValidation:
    def test_simulator_rejects_bad_config_at_construction(self):
        cfg = _bad(skylake_server(), capacity_scale=0)
        with pytest.raises(ConfigError):
            Simulator(cfg)

    def test_multicore_rejects_bad_config_at_construction(self):
        from repro.sim.multicore import MultiCoreSimulator

        cfg = _bad(skylake_server(), llc_policy="victim")
        with pytest.raises(ConfigError):
            MultiCoreSimulator(cfg)


class TestNoL2Guard:
    def test_no_l2_without_llc_raises_config_error(self):
        cfg = dataclasses.replace(skylake_server(), llc=None)
        with pytest.raises(ConfigError, match="requires a configuration with an LLC"):
            no_l2(cfg, 6.5)

    def test_guard_survives_python_O(self):
        """The old bare ``assert`` vanished under ``python -O``."""
        code = (
            "import dataclasses\n"
            "from repro.errors import ConfigError\n"
            "from repro.sim.config import no_l2, skylake_server\n"
            "cfg = dataclasses.replace(skylake_server(), llc=None)\n"
            "try:\n"
            "    no_l2(cfg, 6.5)\n"
            "except ConfigError:\n"
            "    raise SystemExit(0)\n"
            "raise SystemExit(1)\n"
        )
        proc = subprocess.run([sys.executable, "-O", "-c", code])
        assert proc.returncode == 0


class TestScaledRounding:
    def test_scaled_sizes_are_integral_kb(self):
        cfg = skylake_server(capacity_scale=3)
        assert cfg.scaled(cfg.l2).size_kb == 341      # round(1024 / 3)
        assert cfg.scaled(cfg.llc).size_kb == 1877    # round(5632 / 3)
        assert isinstance(cfg.scaled(cfg.l1d).size_kb, int)

    def test_scaled_floor_is_one_kb(self):
        cfg = skylake_server(capacity_scale=1024)
        assert cfg.scaled(cfg.l1d).size_kb == 1

    def test_scale_four_paper_sizes_unchanged(self):
        cfg = skylake_server(capacity_scale=4)
        assert cfg.scaled(cfg.l2).size_kb == 256
        assert cfg.scaled(cfg.llc).size_kb == 1408
