"""Tests for metrics helpers and the power/area models."""

import pytest

from repro.caches.hierarchy import Level
from repro.power.cacti import CacheEnergyModel, snoop_filter_area_mm2
from repro.power.dram_power import DRAMEnergyModel
from repro.power.energy import ChipModel
from repro.power.orion import RingEnergyModel
from repro.sim.config import no_l2, skylake_server
from repro.sim.metrics import (
    ActivitySnapshot,
    RunResult,
    category_geomeans,
    geomean,
    weighted_speedup,
)


class TestGeomean:
    def test_identity(self):
        assert geomean([2.0, 2.0]) == pytest.approx(2.0)

    def test_mixed(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_category_geomeans(self):
        sp = {"a": 1.1, "b": 1.1, "c": 0.9}
        cats = {"a": "X", "b": "X", "c": "Y"}
        gm = category_geomeans(sp, cats)
        assert gm["X"] == pytest.approx(1.1)
        assert gm["Y"] == pytest.approx(0.9)
        assert "GeoMean" in gm

    def test_weighted_speedup(self):
        together = {"a": 1.0, "b": 2.0}
        alone = {"a": 2.0, "b": 2.0}
        assert weighted_speedup(together, alone) == pytest.approx(1.5)


class TestRunResult:
    def test_ipc(self):
        r = RunResult("w", "ISPEC", "cfg", instructions=100, cycles=50.0)
        assert r.ipc == 2.0

    def test_zero_cycles(self):
        r = RunResult("w", "ISPEC", "cfg", instructions=100, cycles=0.0)
        assert r.ipc == 0.0


class TestCacheEnergyModel:
    def test_energy_grows_with_size(self):
        small = CacheEnergyModel(32).read_energy_pj
        large = CacheEnergyModel(1024).read_energy_pj
        assert large > small

    def test_write_costs_more(self):
        m = CacheEnergyModel(256)
        assert m.write_energy_pj > m.read_energy_pj

    def test_leakage_linear(self):
        assert CacheEnergyModel(512).leakage_mw == pytest.approx(
            2 * CacheEnergyModel(256).leakage_mw
        )

    def test_area_roughly_linear(self):
        a1 = CacheEnergyModel(1024).area_mm2
        a2 = CacheEnergyModel(2048).area_mm2
        assert 1.7 < a2 / a1 < 2.1

    def test_energy_j_combines_terms(self):
        m = CacheEnergyModel(256)
        active = m.energy_j(reads=10_000, writes=5000, cycles=1e6)
        idle = m.energy_j(reads=0, writes=0, cycles=1e6)
        assert active > idle > 0


class TestOtherModels:
    def test_ring_energy_scales_with_hops(self):
        m = RingEnergyModel(8)
        assert m.energy_j(2000, 1e6) > m.energy_j(1000, 1e6)

    def test_dram_energy_scales_with_traffic(self):
        m = DRAMEnergyModel()
        assert m.energy_j(1000, 100, 500, 1e6) > m.energy_j(10, 1, 5, 1e6)

    def test_snoop_filter_scales(self):
        assert snoop_filter_area_mm2(8) > snoop_filter_area_mm2(4)


def _snapshot(**overrides):
    base = dict(
        cycles=1e6, l1_reads=100_000, l1_writes=20_000, l2_reads=10_000,
        l2_writes=8000, llc_reads=4000, llc_writes=3000, ring_messages=8000,
        ring_data_messages=4000, ring_flit_hops=40_000, dram_reads=1000,
        dram_writes=300, dram_activations=700,
    )
    base.update(overrides)
    return ActivitySnapshot(**base)


class TestChipModel:
    def test_energy_breakdown_totals(self):
        model = ChipModel(skylake_server())
        e = model.energy(_snapshot())
        assert e.total_j == pytest.approx(e.cache_j + e.ring_j + e.dram_j)
        assert e.l2_j > 0

    def test_no_l2_has_zero_l2_energy(self):
        model = ChipModel(no_l2(skylake_server(), 6.5))
        e = model.energy(_snapshot())
        assert e.l2_j == 0.0

    def test_paper_area_claim(self):
        """noL2+6.5MB should be ~30% smaller; noL2+9.5MB roughly iso-area."""
        base = ChipModel(skylake_server()).area().total_mm2
        small = ChipModel(no_l2(skylake_server(), 6.5)).area().total_mm2
        iso = ChipModel(no_l2(skylake_server(), 9.5)).area().total_mm2
        assert small / base == pytest.approx(0.70, abs=0.05)
        assert iso / base == pytest.approx(1.0, abs=0.06)

    def test_inclusive_llc_needs_no_snoop_filter(self):
        from repro.sim.config import skylake_client

        area = ChipModel(skylake_client()).area()
        assert area.snoop_filter_mm2 == 0.0

    def test_activity_capture(self):
        from repro.sim.simulator import Simulator

        sim = Simulator(skylake_server())
        r = sim.run("hmmer_like", 6000)
        a = r.activity
        assert a.cycles == r.cycles
        assert a.l1_reads > 0
        assert a.cache_accesses == a.l2_reads + a.l2_writes + a.llc_reads + a.llc_writes
