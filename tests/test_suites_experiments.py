"""Tests for the workload suites and experiment modules (quick variants)."""

import pytest

from repro.workloads.suites import (
    QUICK_SUITE_NAMES,
    ST_SUITE,
    build_trace,
    get_spec,
    mp_mixes,
    suite,
)
from repro.workloads.trace import CATEGORIES


class TestSuite:
    def test_suite_size(self):
        assert len(ST_SUITE) >= 30

    def test_all_categories_present(self):
        assert {s.category for s in ST_SUITE} == set(CATEGORIES)

    def test_names_unique(self):
        names = [s.name for s in ST_SUITE]
        assert len(names) == len(set(names))

    def test_get_spec(self):
        assert get_spec("hmmer_like").category == "ISPEC"

    def test_get_spec_unknown(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown workload"):
            get_spec("doom_like")

    def test_get_spec_did_you_mean(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="did you mean 'gobmk-like'"):
            get_spec("gobmk_lik")

    def test_suite_filter_by_category(self):
        servers = suite(categories=("server",))
        assert servers and all(s.category == "server" for s in servers)

    def test_suite_unknown_category(self):
        with pytest.raises(ValueError, match="unknown categories"):
            suite(categories=("games",))

    def test_quick_suite(self):
        q = suite(quick=True)
        assert {s.name for s in q} == set(QUICK_SUITE_NAMES)

    def test_build_trace_cached(self):
        a = build_trace("hmmer_like", 3000)
        b = build_trace("hmmer_like", 3000)
        assert a is b

    @pytest.mark.parametrize("spec", ST_SUITE, ids=lambda s: s.name)
    def test_every_workload_builds_and_validates(self, spec):
        trace = spec.build(2000)
        trace.validate()
        assert len(trace) >= 2000
        assert trace.category == spec.category

    def test_callout_workloads_exist(self):
        for name in ("hmmer_like", "mcf_like", "povray_like", "namd_like",
                     "gromacs_like"):
            assert get_spec(name)


class TestExperimentRegistry:
    def test_all_paper_artifacts_covered(self):
        from repro.experiments.registry import EXPERIMENTS

        expected = {
            "fig01", "fig03", "fig04", "fig05", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "fig16", "fig17", "table1", "table2",
            "detectors", "interconnect", "prefetchers",
        }
        assert set(EXPERIMENTS) == expected

    def test_table1_analytic(self):
        from repro.experiments import table1_area

        data = table1_area.run()
        assert 2.5 <= data["detector_total_kb"] <= 4.0
        assert 1.0 <= data["tact_total_kb"] <= 1.3

    def test_table2_rows(self):
        from repro.experiments import table2_workloads

        data = table2_workloads.run(quick=True, n_instrs=2000)
        assert len(data["rows"]) == len(ST_SUITE)
        assert all(r["loads"] > 0 for r in data["rows"])


@pytest.mark.slow
class TestExperimentSmoke:
    """Each simulation experiment runs end to end at tiny scale."""

    N = 6000

    def test_fig01(self):
        from repro.experiments import fig01_remove_l2

        data = fig01_remove_l2.run(quick=True, n_instrs=self.N)
        assert "noL2_6.5MB" in data["summary"]
        assert "GeoMean" in data["summary"]["noL2_6.5MB"]

    def test_fig03(self):
        from repro.experiments import fig03_latency_sensitivity

        data = fig03_latency_sensitivity.run(quick=True, n_instrs=self.N)
        assert len(data["summary"]) == 9

    def test_fig10(self):
        from repro.experiments import fig10_catch_exclusive

        data = fig10_catch_exclusive.run(quick=True, n_instrs=self.N)
        assert len(data["summary"]) == 5

    def test_fig11(self):
        from repro.experiments import fig11_timeliness

        data = fig11_timeliness.run(quick=True, n_instrs=self.N)
        assert "overall" in data

    def test_fig12(self):
        from repro.experiments import fig12_per_workload

        data = fig12_per_workload.run(quick=True, n_instrs=self.N)
        assert data["curves"]

    def test_fig13(self):
        from repro.experiments import fig13_tact_components

        data = fig13_tact_components.run(quick=True, n_instrs=self.N)
        assert list(data["increments"]) == ["Code", "+Cross", "+Deep", "+Feeder"]

    def test_fig15(self):
        from repro.experiments import fig15_llc_latency

        data = fig15_llc_latency.run(quick=True, n_instrs=self.N)
        assert len(data["llc_latency"]) == 6

    def test_fig16(self):
        from repro.experiments import fig16_energy

        data = fig16_energy.run(quick=True, n_instrs=self.N)
        assert "GeoMean" in data["energy_savings"]
        assert data["traffic_ratio_vs_baseline"]["interconnect"] > 1.0

    def test_fig17(self):
        from repro.experiments import fig17_inclusive

        data = fig17_inclusive.run(quick=True, n_instrs=self.N)
        assert len(data["summary"]) == 4

    def test_fig14(self):
        from repro.experiments import fig14_multiprogrammed

        data = fig14_multiprogrammed.run(quick=True, n_instrs=4000, n_mixes=2)
        assert len(data["summary"]) == 3

    def test_fig04(self):
        from repro.experiments import fig04_criticality_oracle

        data = fig04_criticality_oracle.run(quick=True, n_instrs=4000)
        assert len(data["impact"]) == 6

    def test_fig05(self):
        from repro.experiments import fig05_oracle_prefetch

        data = fig05_oracle_prefetch.run(quick=True, n_instrs=4000)
        assert "32" in data["gain_by_budget"]
        assert "noL2+2048" in data["gain_by_budget"]
