"""Unit tests for the gshare branch predictor and BTB."""

from repro.cpu.branch import GshareBranchPredictor


def run_pattern(pred, pc, pattern, target=0x5000, repeats=1):
    """Feed a taken/not-taken pattern; returns mispredicts per round."""
    results = []
    for _ in range(repeats):
        mis = 0
        for taken in pattern:
            mis += pred.predict_and_update(pc, taken, target if taken else -1)
        results.append(mis)
    return results


class TestDirection:
    def test_always_taken_learned(self):
        p = GshareBranchPredictor()
        rounds = run_pattern(p, 0x400, [True] * 8, repeats=4)
        assert rounds[-1] == 0

    def test_always_not_taken_learned(self):
        p = GshareBranchPredictor()
        rounds = run_pattern(p, 0x400, [False] * 8, repeats=4)
        assert rounds[-1] == 0

    def test_loop_pattern_learned(self):
        p = GshareBranchPredictor()
        pattern = [True] * 7 + [False]  # 8-iteration loop
        rounds = run_pattern(p, 0x400, pattern, repeats=12)
        assert rounds[-1] <= 1  # history captures the loop exit

    def test_random_pattern_mispredicts(self):
        import random

        rng = random.Random(1)
        p = GshareBranchPredictor()
        mis = 0
        total = 400
        for _ in range(total):
            mis += p.predict_and_update(0x400, rng.random() < 0.5, 0x5000)
        assert mis > total // 4  # can't learn randomness

    def test_stats_tracked(self):
        p = GshareBranchPredictor()
        run_pattern(p, 0x400, [True, False] * 4)
        assert p.stats.branches == 8
        assert 0 <= p.stats.mispredict_rate <= 1


class TestBTB:
    def test_unknown_target_is_mispredict(self):
        p = GshareBranchPredictor()
        # Saturate direction first via another alias-free training...
        run_pattern(p, 0x400, [True] * 8, target=0x5000, repeats=2)
        # New taken branch with unseen target: direction may be right but
        # the BTB entry is missing.
        mis = p.predict_and_update(0x99999, True, 0xABCD)
        assert mis  # first encounter always mispredicts somehow

    def test_target_learned(self):
        p = GshareBranchPredictor()
        # Enough rounds for the global history register to saturate.
        rounds = run_pattern(p, 0x400, [True] * 8, target=0x1234, repeats=8)
        assert rounds[-1] == 0
        assert p.btb_target(0x400) == 0x1234

    def test_target_change_mispredicts(self):
        p = GshareBranchPredictor()
        run_pattern(p, 0x400, [True] * 8, target=0x1000, repeats=2)
        assert p.predict_and_update(0x400, True, 0x2000)  # stale target

    def test_capacity_eviction(self):
        p = GshareBranchPredictor(btb_entries=4)
        for i in range(8):
            p.predict_and_update(0x400 + i * 4, True, 0x1000 + i)
        assert len(p._btb) <= 4


class TestRunaheadInterface:
    def test_peek_matches_would_predict_at_current_history(self):
        p = GshareBranchPredictor()
        run_pattern(p, 0x400, [True] * 8, repeats=2)
        assert p.peek(0x400, p.history) == p.would_predict(0x400)

    def test_fold_history(self):
        p = GshareBranchPredictor(history_bits=4)
        h = 0b0101
        assert p.fold_history(h, True) == 0b1011
        assert p.fold_history(h, False) == 0b1010

    def test_peek_does_not_mutate(self):
        p = GshareBranchPredictor()
        before = bytes(p._counters)
        p.peek(0x400, 123)
        assert bytes(p._counters) == before
