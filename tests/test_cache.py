"""Unit tests for the set-associative cache array."""

import pytest

from repro.caches.cache import Cache


def make_cache(size_kb=8, assoc=4, latency=5, **kw):
    return Cache("T", size_kb * 1024, assoc, latency, **kw)


class TestGeometry:
    def test_num_sets(self):
        c = make_cache(8, 4)
        assert c.num_sets == 8 * 1024 // (4 * 64)

    def test_non_power_of_two_sets_allowed(self):
        c = Cache("LLC", int(6.5 * 1024 * 1024), 11, 40)
        assert c.num_sets == int(6.5 * 1024 * 1024) // (11 * 64)

    def test_effective_size_rounds_down(self):
        c = Cache("odd", 1000 * 64, 3, 1)
        assert c.size_bytes == c.num_sets * 3 * 64

    def test_set_index_plain_modulo(self):
        c = make_cache()
        assert c.set_index(5) == 5 % c.num_sets

    def test_set_index_hashed_differs_from_modulo(self):
        plain = make_cache()
        hashed = make_cache(hashed_index=True)
        indices_plain = {plain.set_index(8 * k) for k in range(256)}
        indices_hashed = {hashed.set_index(8 * k) for k in range(256)}
        # Stride-8 lines hit few sets with modulo indexing, most with hashing.
        assert len(indices_hashed) > len(indices_plain)


class TestAccess:
    def test_miss_on_empty(self):
        c = make_cache()
        assert c.access(0x100, 0.0) is None
        assert c.stats.misses == 1

    def test_hit_after_fill(self):
        c = make_cache()
        c.fill(0x100, ready=0.0)
        assert c.access(0x100, 10.0) is not None
        assert c.stats.hits == 1

    def test_inflight_hit_counted(self):
        c = make_cache()
        c.fill(0x100, ready=100.0)
        line = c.access(0x100, 10.0)
        assert line is not None and line.ready == 100.0
        assert c.stats.inflight_hits == 1

    def test_write_sets_dirty(self):
        c = make_cache()
        c.fill(0x100, ready=0.0)
        c.access(0x100, 1.0, write=True)
        assert c.peek(0x100).dirty

    def test_peek_does_not_update_stats(self):
        c = make_cache()
        c.fill(0x100, ready=0.0)
        before = (c.stats.hits, c.stats.misses)
        c.peek(0x100)
        c.peek(0x999)
        assert (c.stats.hits, c.stats.misses) == before

    def test_contains(self):
        c = make_cache()
        c.fill(0x100, ready=0.0)
        assert c.contains(0x100)
        assert not c.contains(0x101)


class TestFillEvict:
    def test_fill_returns_none_when_space(self):
        c = make_cache()
        assert c.fill(0x100, 0.0) is None

    def test_eviction_when_set_full(self):
        c = make_cache(assoc=2)
        sets = c.num_sets
        c.fill(0 * sets, 0.0)
        c.fill(1 * sets, 0.0)
        victim = c.fill(2 * sets, 0.0)
        assert victim is not None
        assert victim[0] == 0  # LRU: oldest untouched line

    def test_lru_respects_access_order(self):
        c = make_cache(assoc=2)
        sets = c.num_sets
        c.fill(0 * sets, 0.0)
        c.fill(1 * sets, 0.0)
        c.access(0 * sets, 1.0)  # make line 0 MRU
        victim = c.fill(2 * sets, 0.0)
        assert victim[0] == 1 * sets

    def test_refill_refreshes_ready_earlier_only(self):
        c = make_cache()
        c.fill(0x100, ready=100.0)
        c.fill(0x100, ready=50.0)
        assert c.peek(0x100).ready == 50.0
        c.fill(0x100, ready=200.0)
        assert c.peek(0x100).ready == 50.0

    def test_refill_merges_dirty(self):
        c = make_cache()
        c.fill(0x100, ready=0.0, dirty=True)
        c.fill(0x100, ready=0.0, dirty=False)
        assert c.peek(0x100).dirty

    def test_dirty_eviction_counted(self):
        c = make_cache(assoc=1)
        sets = c.num_sets
        c.fill(0 * sets, 0.0, dirty=True)
        c.fill(1 * sets, 0.0)
        assert c.stats.dirty_evictions == 1

    def test_invalidate_removes(self):
        c = make_cache()
        c.fill(0x100, 0.0)
        line = c.invalidate(0x100)
        assert line is not None
        assert not c.contains(0x100)
        assert c.stats.invalidations == 1

    def test_invalidate_absent_returns_none(self):
        c = make_cache()
        assert c.invalidate(0x100) is None
        assert c.stats.invalidations == 0

    def test_occupancy(self):
        c = make_cache()
        for i in range(10):
            c.fill(i, 0.0)
        assert c.occupancy() == 10

    def test_occupancy_never_exceeds_capacity(self):
        c = make_cache(size_kb=1, assoc=2)
        for i in range(1000):
            c.fill(i, 0.0)
        assert c.occupancy() <= c.num_sets * c.assoc

    def test_resident_lines(self):
        c = make_cache()
        c.fill(0x100, 0.0)
        c.fill(0x200, 0.0)
        assert set(c.resident_lines()) == {0x100, 0x200}


class TestPrefetchTracking:
    def test_prefetch_fill_counted(self):
        c = make_cache()
        c.fill(0x100, 0.0, prefetched=True)
        assert c.stats.prefetch_fills == 1

    def test_prefetch_useful_on_demand_hit(self):
        c = make_cache()
        c.fill(0x100, 0.0, prefetched=True)
        c.access(0x100, 1.0)
        assert c.stats.prefetch_useful == 1
        assert not c.peek(0x100).prefetched  # counted once

    def test_prefetch_unused_on_eviction(self):
        c = make_cache(assoc=1)
        sets = c.num_sets
        c.fill(0, 0.0, prefetched=True)
        c.fill(sets, 0.0)
        assert c.stats.prefetch_unused == 1

    def test_src_level_stored(self):
        c = make_cache()
        c.fill(0x100, 0.0, src=2)
        assert c.peek(0x100).src == 2


class TestStats:
    def test_hit_rate(self):
        c = make_cache()
        c.fill(0x100, 0.0)
        c.access(0x100, 1.0)
        c.access(0x200, 1.0)
        assert c.stats.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert make_cache().stats.hit_rate == 0.0

    def test_reset(self):
        c = make_cache()
        c.fill(0x100, 0.0)
        c.access(0x100, 1.0)
        c.stats.reset()
        assert c.stats.hits == 0 and c.stats.fills == 0
        assert c.contains(0x100)  # state survives a stats reset


@pytest.mark.parametrize("policy", ["lru", "lip", "random", "srrip", "nru"])
def test_all_policies_bound_occupancy(policy):
    c = make_cache(size_kb=1, assoc=2, replacement=policy)
    for i in range(500):
        c.fill(i, 0.0)
        if i % 3 == 0:
            c.access(i, 0.0)
    assert c.occupancy() <= c.num_sets * c.assoc
