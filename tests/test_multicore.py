"""Tests for the four-core multi-programmed driver."""

import pytest

from repro.sim.config import skylake_server
from repro.sim.metrics import MPRunResult
from repro.sim.multicore import MultiCoreSimulator, alone_ipcs, relocate_trace
from repro.workloads.suites import build_trace, mp_mixes

N = 8000


class TestRelocation:
    def test_core0_unchanged(self):
        t = build_trace("hmmer_like", 2000)
        assert relocate_trace(t, 0) is t

    def test_data_addresses_shifted(self):
        t = build_trace("hmmer_like", 2000)
        r = relocate_trace(t, 1)
        originals = [i.addr for i in t.instrs if i.addr >= 0]
        shifted = [i.addr for i in r.instrs if i.addr >= 0]
        assert all(s == o + (1 << 40) for o, s in zip(originals, shifted))

    def test_code_addresses_shared(self):
        t = build_trace("hmmer_like", 2000)
        r = relocate_trace(t, 2)
        assert [i.pc for i in r.instrs] == [i.pc for i in t.instrs]

    def test_memory_image_shifted(self):
        t = build_trace("mcf_like", 2000)
        r = relocate_trace(t, 1)
        assert set(r.memory_image) == {a + (1 << 40) for a in t.memory_image}


class TestMPRuns:
    def test_rate4_mix_runs(self):
        mc = MultiCoreSimulator(skylake_server())
        res = mc.run_mix(("hplinpack_like",) * 4, N)
        assert set(res.per_core_ipc) == {0, 1, 2, 3}
        assert all(v > 0 for v in res.per_core_ipc.values())
        assert res.workload == "hplinpack_like+" * 3 + "hplinpack_like"
        assert res.category == "MP"
        assert set(res.per_core_stats) == {0, 1, 2, 3}
        assert res.ipc > 0  # aggregate RunResult surface works too

    def test_wrong_mix_size_rejected(self):
        mc = MultiCoreSimulator(skylake_server())
        with pytest.raises(ValueError, match="mix size"):
            mc.run_mix(("hmmer_like",) * 3, N)

    def test_l2_resident_rate4_near_linear(self):
        """Private-L2-resident copies barely interfere: WS ~ 4."""
        mc = MultiCoreSimulator(skylake_server())
        res = mc.run_mix(("hmmer_like",) * 4, 20_000)
        alone = alone_ipcs(skylake_server(), {"hmmer_like"}, 20_000)
        assert res.weighted_speedup(alone) == pytest.approx(4.0, abs=0.3)

    def test_memory_bound_mix_contends(self):
        """Four streaming copies share DRAM bandwidth: WS well below 4."""
        mc = MultiCoreSimulator(skylake_server())
        res = mc.run_mix(("bwaves_like",) * 4, N)
        alone = alone_ipcs(skylake_server(), {"bwaves_like"}, N)
        assert res.weighted_speedup(alone) < 3.7

    def test_heterogeneous_mix(self):
        mc = MultiCoreSimulator(skylake_server())
        mix = ("hmmer_like", "mcf_like", "excel_like", "hplinpack_like")
        res = mc.run_mix(mix, N)
        alone = alone_ipcs(skylake_server(), set(mix), N)
        ws = res.weighted_speedup(alone)
        assert 1.0 < ws <= 4.2


class TestMixes:
    def test_mix_count(self):
        assert len(mp_mixes(12)) == 12

    def test_rate4_half(self):
        mixes = mp_mixes(12)
        rate4 = [m for m in mixes if len(set(m)) == 1]
        assert len(rate4) == 6

    def test_all_four_way(self):
        assert all(len(m) == 4 for m in mp_mixes(8))

    def test_deterministic(self):
        assert mp_mixes(8, seed=5) == mp_mixes(8, seed=5)


def test_mpresult_weighted_speedup():
    res = MPRunResult(
        workload="a+b+c+d",
        category="MP",
        config_name="cfg",
        instructions=4,
        cycles=1.0,
        mix=("a", "b", "c", "d"),
        per_core_ipc={0: 1.0, 1: 1.0, 2: 2.0, 3: 2.0},
    )
    alone = {"a": 2.0, "b": 2.0, "c": 2.0, "d": 2.0}
    assert res.weighted_speedup(alone) == pytest.approx(3.0)
