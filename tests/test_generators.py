"""Tests for the synthetic workload kernels."""

import pytest

from repro.workloads import generator as g
from repro.workloads.trace import Op

N = 6000


def loads_of(trace):
    return [i for i in trace.instrs if i.op is Op.LOAD]


class TestStreaming:
    def test_length(self):
        t = g.streaming("s", "FSPEC", N, ws_bytes=1 << 20)
        assert N <= len(t) <= N + 20

    def test_strided_addresses(self):
        t = g.streaming("s", "FSPEC", N, ws_bytes=1 << 20, stride=128)
        loads = loads_of(t)
        deltas = {b.addr - a.addr for a, b in zip(loads, loads[1:])}
        assert deltas == {128}

    def test_stores_emitted(self):
        t = g.streaming("s", "FSPEC", N, store_every=2)
        assert any(i.op is Op.STORE for i in t.instrs)

    def test_validates(self):
        g.streaming("s", "FSPEC", N).validate()


class TestHotLoop:
    def test_chain_loads_per_iteration(self):
        t = g.hot_loop("h", "ISPEC", N, chain_loads=3, ws_bytes=32 << 10)
        branches = t.branch_count
        assert t.load_count == pytest.approx(3 * branches, abs=3)

    def test_loads_are_chained(self):
        t = g.hot_loop("h", "ISPEC", 100, chain_loads=2, ws_bytes=32 << 10)
        loads = loads_of(t)
        # second load of an iteration sources the first's destination
        assert loads[1].srcs[0] == loads[0].dst

    def test_l1_lanes_use_small_region(self):
        t = g.hot_loop("h", "ISPEC", N, chain_loads=3, l1_lanes=2,
                       ws_bytes=256 << 10)
        loads = loads_of(t)
        lanes = {}
        for ld in loads[: 3 * 50]:
            lanes.setdefault(ld.pc, set()).add(ld.addr)
        spans = sorted(max(a) - min(a) for a in lanes.values())
        assert spans[0] <= 4096  # L1 lanes stay within 4 KB


class TestIndexedGather:
    def test_index_is_permutation_of_pool(self):
        t = g.indexed_gather("m", "ISPEC", N, data_ws_bytes=64 << 10)
        lines = 64 << 10 >> 6
        values = sorted(t.memory_image.values())
        assert len(values) == lines
        assert values == sorted((k * 64) for k in range(lines))

    def test_gather_address_matches_index_data(self):
        t = g.indexed_gather("m", "ISPEC", 200, data_ws_bytes=64 << 10)
        loads = loads_of(t)
        idx_load, gather = loads[0], loads[1]
        assert gather.addr - idx_load.data in range(0, 1 << 40, 1)  # base offset

    def test_scale_divides_stored_values(self):
        t = g.indexed_gather("m", "ISPEC", 200, data_ws_bytes=64 << 10, scale=4)
        t.validate()


class TestPointerChase:
    def test_chain_closed_cycle(self):
        t = g.pointer_chase("p", "FSPEC", 100, nodes=64)
        # Follow the image from any node; must come back without escaping.
        start = next(iter(t.memory_image))
        cur, seen = start, set()
        for _ in range(200):
            assert cur in t.memory_image
            if cur in seen:
                break
            seen.add(cur)
            cur = t.memory_image[cur]
        assert len(seen) <= 64

    def test_load_addresses_follow_chain(self):
        t = g.pointer_chase("p", "FSPEC", 50, nodes=64)
        loads = loads_of(t)
        for a, b in zip(loads, loads[1:]):
            assert b.addr == a.data  # next address is the loaded pointer

    def test_multiple_chains_disjoint(self):
        t = g.pointer_chase("p", "FSPEC", 400, nodes=64, chains=2)
        loads = loads_of(t)
        chain0 = {l.addr for i, l in enumerate(loads) if i % 2 == 0}
        chain1 = {l.addr for i, l in enumerate(loads) if i % 2 == 1}
        assert not (chain0 & chain1)

    def test_ptr_work_on_chain(self):
        t = g.pointer_chase("p", "FSPEC", 100, nodes=64, ptr_work=4)
        ops = [i.op for i in t.instrs[:12]]
        assert ops.count(Op.ALU) >= 4


class TestStructWalk:
    def test_fields_at_fixed_offsets(self):
        t = g.struct_walk("x", "ISPEC", 200, n_structs=32, struct_bytes=256,
                          fields=3)
        loads = loads_of(t)
        base = loads[0].addr
        assert loads[1].addr == base + 64
        assert loads[2].addr == base + 128

    def test_linked_mode_follows_image(self):
        t = g.struct_walk("x", "ISPEC", 400, n_structs=32, struct_bytes=256,
                          fields=2, linked=True)
        loads = loads_of(t)
        field0s = [l for l in loads if l.dst == 0]  # R_PTR loads
        for a, b in zip(field0s, field0s[1:]):
            assert b.addr == a.data


class TestCrossGather:
    def test_trigger_target_delta(self):
        t = g.cross_gather("c", "ISPEC", 300, data_ws_bytes=64 << 10)
        loads = loads_of(t)
        # per iteration: index, trigger, target
        trigger, target = loads[1], loads[2]
        assert target.addr == trigger.addr + 64

    def test_target_behind_mul_chain(self):
        t = g.cross_gather("c", "ISPEC", 60, chain_muls=5)
        ops = [i.op for i in t.instrs[:14]]
        assert ops.count(Op.MUL) >= 5


class TestServerApp:
    def test_code_footprint_capped_by_trace_length(self):
        t = g.server_app("srv", "server", 4000, code_kb=512)
        # tour capped so the code wraps; footprint far below 512KB
        assert t.code_lines() * 64 < 128 << 10

    def test_branches_learnable_targets(self):
        """Each block's exit branch always jumps to the same successor."""
        t = g.server_app("srv", "server", 8000, code_kb=48)
        targets = {}
        for i in t.instrs:
            if i.op is Op.BRANCH and i.taken:
                targets.setdefault(i.pc, set()).add(i.target)
        assert all(len(ts) == 1 for ts in targets.values())


class TestBranchy:
    def test_mix_of_outcomes(self):
        t = g.branchy("b", "client", N, p_taken=0.5)
        taken = [i.taken for i in t.instrs if i.op is Op.BRANCH]
        frac = sum(taken) / len(taken)
        assert 0.5 < frac < 0.9  # loop-back branches are always taken

    def test_deterministic_by_seed(self):
        a = g.branchy("b", "client", 2000, seed=3)
        b = g.branchy("b", "client", 2000, seed=3)
        assert [i.addr for i in a.instrs] == [i.addr for i in b.instrs]

    def test_different_seeds_differ(self):
        a = g.branchy("b", "client", 2000, seed=3)
        b = g.branchy("b", "client", 2000, seed=4)
        assert [i.taken for i in a.instrs] != [i.taken for i in b.instrs]


class TestSkewedGather:
    def test_two_regions(self):
        t = g.skewed_gather("z", "FSPEC", N, hot_bytes=32 << 10,
                            band_bytes=128 << 10)
        addrs = [l.addr for l in loads_of(t)]
        span = max(addrs) - min(addrs)
        assert span > 32 << 10

    def test_hot_fraction_respected(self):
        t = g.skewed_gather("z", "FSPEC", N, hot_bytes=32 << 10,
                            band_bytes=128 << 10, hot_fraction=0.9)
        loads = loads_of(t)
        hot = sum(1 for l in loads if l.addr < min(x.addr for x in loads) + (32 << 10))
        assert hot / len(loads) > 0.7


class TestManyCriticalPCs:
    def test_distinct_load_pcs(self):
        t = g.many_critical_pcs("p", "FSPEC", N, n_load_pcs=48)
        pcs = {i.pc for i in t.instrs if i.op is Op.LOAD}
        assert len(pcs) == 48


class TestFpCompute:
    def test_fp_ops_present(self):
        t = g.fp_compute("f", "FSPEC", N)
        assert any(i.op is Op.FP for i in t.instrs)

    def test_two_arrays(self):
        t = g.fp_compute("f", "FSPEC", 200, ws_bytes=64 << 10)
        loads = loads_of(t)
        assert loads[1].addr - loads[0].addr >= 64 << 10  # distinct regions
