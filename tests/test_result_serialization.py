"""Tests for RunResult JSON round-tripping and the strict json_default hook."""

import json

import pytest

from repro.caches.hierarchy import Level
from repro.sim.config import no_l2, skylake_server, with_catch
from repro.sim.serialization import (
    json_default,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.sim.simulator import Simulator


@pytest.fixture(scope="module")
def catch_result():
    cfg = with_catch(no_l2(skylake_server(), 6.5))
    return Simulator(cfg).run("hmmer_like", 3000)


class TestRunResultRoundTrip:
    def test_exact_round_trip_through_json(self, catch_result):
        payload = json.loads(json.dumps(result_to_dict(catch_result)))
        back = result_from_dict(payload)
        assert back.workload == catch_result.workload
        assert back.config_name == catch_result.config_name
        assert back.cycles == catch_result.cycles
        assert back.ipc == catch_result.ipc
        assert back.load_served == catch_result.load_served
        assert back.code_served == catch_result.code_served
        assert back.activity == catch_result.activity

    def test_tact_stats_survive(self, catch_result):
        back = result_from_dict(result_to_dict(catch_result))
        orig = catch_result.tact_stats
        assert back.tact_stats.issued == orig.issued
        assert back.tact_stats.served_from == orig.served_from
        assert back.tact_stats.demand_covered == orig.demand_covered

    def test_level_keys_serialize_by_name(self, catch_result):
        payload = result_to_dict(catch_result)
        assert set(payload["load_served"]) <= {"L1", "L2", "LLC", "MEM"}

    def test_file_round_trip(self, catch_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(catch_result, path)
        assert load_result(path).cycles == catch_result.cycles

    def test_bad_version_rejected(self, catch_result):
        payload = result_to_dict(catch_result)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            result_from_dict(payload)

    def test_plain_result_without_tact(self):
        result = Simulator(skylake_server()).run("hmmer_like", 2000)
        back = result_from_dict(result_to_dict(result))
        assert back.tact_stats is None
        assert back.ipc == result.ipc


class TestJsonDefault:
    def test_run_result_payload(self, catch_result):
        text = json.dumps({"r": catch_result}, default=json_default)
        assert json.loads(text)["r"]["workload"] == "hmmer_like"

    def test_sim_config_payload(self):
        text = json.dumps(skylake_server(), default=json_default)
        assert json.loads(text)["name"] == "baseline_server"

    def test_int_enum_serializes_natively(self):
        # IntEnum is JSON-native (its value); the default hook never fires.
        assert json.loads(json.dumps(Level.LLC, default=json_default)) == 2

    def test_unknown_type_fails_loudly(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="unserializable Opaque"):
            json.dumps({"x": Opaque()}, default=json_default)

    def test_set_serialized_sorted(self):
        assert json.loads(json.dumps({3, 1, 2}, default=json_default)) == [1, 2, 3]
