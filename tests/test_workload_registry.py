"""Workload registry, content-addressed identity, ingestion and compat.

Covers the plugin-ised workload layer: registry lookup semantics,
``workload_fingerprint`` (synthetic / trace / mix / name-fallback),
trace-file ingestion in all three serialization formats, the
fingerprint-keyed ``build_trace`` memo, and the sanitisation-collision and
legacy-stem behaviour of the checkpoint store and result cache.
"""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.plugins import WORKLOADS
from repro.plugins.workloads import (
    MIX_SEPARATOR,
    is_mix,
    mix_display,
    mix_names,
    register_workload,
    workload_fingerprint,
)
from repro.workloads.ingest import (
    INGEST_PROFILES,
    TraceFileSpec,
    register_trace_workload,
    trace_content_hash,
)
from repro.workloads.serialization import (
    load_trace_any,
    load_trace_bin,
    load_trace_jsonl,
    save_trace,
    save_trace_bin,
    save_trace_jsonl,
    trace_to_dict,
)
from repro.workloads.suites import ST_SUITE, WorkloadSpec, build_trace, get_spec


def _unregister(name: str) -> None:
    WORKLOADS.unregister(name)


@pytest.fixture
def small_trace():
    return build_trace("hmmer_like", 2000)


# ----------------------------------------------------------------- registry


class TestRegistry:
    def test_builtin_suite_registered(self):
        assert len(ST_SUITE) <= len(WORKLOADS)
        assert "mcf-like" in WORKLOADS.names()

    def test_name_agnostic_lookup(self):
        assert get_spec("MCF_LIKE") is get_spec("mcf-like")

    def test_unknown_name_suggests(self):
        with pytest.raises(ConfigError, match="did you mean"):
            get_spec("mcf_lik")

    def test_mix_separator_rejected_in_names(self):
        spec = ST_SUITE[0]
        with pytest.raises(ValueError, match="reserved"):
            WORKLOADS.register("a+b", spec)

    def test_describe_has_summaries(self):
        described = WORKLOADS.describe()
        assert described["hmmer-like"]


class TestMixRefs:
    def test_is_mix(self):
        assert is_mix("a+b")
        assert not is_mix("hmmer_like")

    def test_mix_names_roundtrip(self):
        mix = ("hmmer_like", "mcf_like", "tpcc_like", "bwaves_like")
        assert mix_names(mix_display(mix)) == mix

    def test_separator_is_plus(self):
        assert MIX_SEPARATOR == "+"


# ------------------------------------------------------------- fingerprints


class TestFingerprint:
    def test_stable(self):
        assert workload_fingerprint("mcf_like") == workload_fingerprint("mcf_like")

    def test_name_form_agnostic(self):
        assert workload_fingerprint("mcf_like") == workload_fingerprint("MCF-LIKE")

    def test_distinct_across_workloads(self):
        fps = {workload_fingerprint(s.name) for s in ST_SUITE}
        assert len(fps) == len(ST_SUITE)

    def test_mix_covers_member_order(self):
        assert workload_fingerprint("hmmer_like+mcf_like") != (
            workload_fingerprint("mcf_like+hmmer_like")
        )

    def test_mix_accepts_tuple(self):
        assert workload_fingerprint(("hmmer_like", "mcf_like")) == (
            workload_fingerprint("hmmer_like+mcf_like")
        )

    def test_unregistered_name_fallback(self):
        fp = workload_fingerprint("totally_unregistered_wl")
        assert fp == workload_fingerprint("totally-unregistered-wl")
        assert fp != workload_fingerprint("mcf_like")

    def test_reregistration_changes_fingerprint(self):
        base = get_spec("hmmer_like")
        name = "fp_regen_wl"
        register_workload(dataclasses.replace(base, name=name))
        try:
            first = workload_fingerprint(name)
            assert first == workload_fingerprint("hmmer_like")
        finally:
            _unregister(name)
        other = dataclasses.replace(get_spec("mcf_like"), name=name)
        register_workload(other)
        try:
            assert workload_fingerprint(name) != first
        finally:
            _unregister(name)

    def test_registered_name_never_aliases_fallback(self):
        # The name-fallback payload must differ from any spec payload even
        # for the same string.
        name = "alias_check_wl"
        fallback = workload_fingerprint(name)
        register_workload(dataclasses.replace(get_spec("hmmer_like"), name=name))
        try:
            assert workload_fingerprint(name) != fallback
        finally:
            _unregister(name)


class TestBuildTraceMemo:
    def test_memoised(self):
        assert build_trace("hmmer_like", 2000) is build_trace("hmmer_like", 2000)

    def test_invalidated_on_reregistration(self):
        name = "memo_regen_wl"
        register_workload(dataclasses.replace(get_spec("hmmer_like"), name=name))
        try:
            first = build_trace(name, 2000)
        finally:
            _unregister(name)
        register_workload(dataclasses.replace(get_spec("mcf_like"), name=name))
        try:
            second = build_trace(name, 2000)
        finally:
            _unregister(name)
        # Keyed by name alone (the old lru_cache) this would return the
        # stale hmmer-shaped trace.
        assert first is not second
        assert [i.pc for i in first.instrs] != [i.pc for i in second.instrs]


# ---------------------------------------------------------------- ingestion


class TestSerializationFormats:
    @pytest.mark.parametrize("save,load", [
        (save_trace_jsonl, load_trace_jsonl),
        (save_trace_bin, load_trace_bin),
    ])
    def test_roundtrip(self, tmp_path, small_trace, save, load):
        path = tmp_path / "t.trace"
        save(small_trace, path)
        assert trace_to_dict(load(path)) == trace_to_dict(small_trace)

    def test_sniffing(self, tmp_path, small_trace):
        want = trace_to_dict(small_trace)
        for save in (save_trace, save_trace_jsonl, save_trace_bin):
            path = tmp_path / f"t.{save.__name__}"
            save(small_trace, path)
            assert trace_to_dict(load_trace_any(path)) == want

    def test_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "not-a-trace"}\n')
        with pytest.raises(ValueError):
            load_trace_jsonl(path)

    def test_bin_rejects_truncation(self, tmp_path, small_trace):
        path = tmp_path / "t.bin"
        save_trace_bin(small_trace, path)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(ValueError, match="corrupt"):
            load_trace_bin(path)


class TestIngestion:
    def test_register_and_build(self, tmp_path, small_trace):
        path = tmp_path / "recorded.jsonl"
        save_trace_jsonl(small_trace, path)
        spec = register_trace_workload(
            "recorded_wl", path, profile="server-app"
        )
        try:
            assert get_spec("recorded_wl") is spec
            trace = build_trace("recorded_wl", 1500)
            assert len(trace.instrs) == 1500
            assert trace.category == INGEST_PROFILES["server-app"]["category"]
        finally:
            _unregister("recorded_wl")

    def test_fingerprint_is_content_hash(self, tmp_path, small_trace):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_trace_jsonl(small_trace, a)
        save_trace_jsonl(small_trace, b)
        spec = TraceFileSpec("x", str(a))
        assert spec.fingerprint_payload() == {
            "type": "trace", "sha256": trace_content_hash(a),
        }
        assert trace_content_hash(a) == trace_content_hash(b)

    def test_identical_content_same_fingerprint(self, tmp_path, small_trace):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_trace_jsonl(small_trace, a)
        save_trace_jsonl(small_trace, b)
        register_trace_workload("rec_a", a)
        register_trace_workload("rec_b", b)
        try:
            # Same bytes, different names/paths: same identity.
            assert workload_fingerprint("rec_a") == workload_fingerprint("rec_b")
        finally:
            _unregister("rec_a")
            _unregister("rec_b")

    def test_unknown_profile_rejected(self, tmp_path, small_trace):
        path = tmp_path / "t.jsonl"
        save_trace_jsonl(small_trace, path)
        with pytest.raises(ConfigError, match="profile"):
            register_trace_workload("bad_wl", path, profile="mystery-app")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            register_trace_workload("ghost_wl", tmp_path / "missing.jsonl")

    def test_too_short_trace_rejected(self, tmp_path, small_trace):
        path = tmp_path / "t.jsonl"
        save_trace_jsonl(small_trace, path)
        register_trace_workload("short_wl", path)
        try:
            with pytest.raises(ConfigError, match="instructions"):
                build_trace("short_wl", 10_000_000)
        finally:
            _unregister("short_wl")
