"""Integration tests: instrumentation threaded through sim, runner and CLIs."""

import io
import json

import pytest

import repro.obs as obs
from repro.errors import RunFailure
from repro.obs.logs import configure_logging, reset_logging
from repro.runner import ExperimentRunner
from repro.sim.config import no_l2, skylake_server, with_catch
from repro.sim.serialization import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.sim.simulator import Simulator


@pytest.fixture
def observed_result():
    """A short CATCH run with metrics and tracing enabled."""
    cfg = with_catch(no_l2(skylake_server(), 6.5))
    with obs.use_metrics(), obs.use_tracer() as collector:
        result = Simulator(cfg).run("hmmer_like", 2000)
    return result, collector


class TestSimulatorTelemetry:
    def test_disabled_by_default(self):
        result = Simulator(skylake_server()).run("hmmer_like", 1500)
        assert result.telemetry is None

    def test_phases_recorded(self, observed_result):
        result, _ = observed_result
        phases = result.telemetry["phases"]
        assert set(phases) == {"trace_build", "warmup", "measure", "finish"}
        assert all(seconds >= 0 for seconds in phases.values())

    def test_components_registered(self, observed_result):
        result, _ = observed_result
        providers = result.telemetry["metrics"]["providers"]
        # caches, hierarchy, core, prefetchers and the CATCH engine all
        # register; the noL2 config has no L2 cache.
        assert {"cache.L1D0", "cache.L1I0", "cache.LLC", "hierarchy",
                "core.core0", "prefetch.l1stride.core0",
                "prefetch.l2stream.core0", "catch.core0"} <= set(providers)
        assert providers["cache.L1D0"]["reads"] > 0
        assert providers["core.core0"]["instructions_stepped"] > 0
        assert providers["catch.core0"]["detector"] == "ddg"

    def test_load_latency_histogram_populated(self, observed_result):
        result, _ = observed_result
        hist = result.telemetry["metrics"]["histograms"][
            "hierarchy.load_latency_cycles"
        ]
        assert hist["count"] > 0
        assert sum(hist["counts"]) == hist["count"]

    def test_spans_cover_the_run_phases(self, observed_result):
        _, collector = observed_result
        names = [event["name"] for event in collector.events]
        assert names == ["trace-build", "warmup", "measure", "finish"]
        assert obs.validate_trace_events(collector.to_payload()) == []

    def test_histogram_not_bound_when_disabled(self):
        sim = Simulator(skylake_server())
        hierarchy = sim.build_hierarchy(n_cores=1)
        assert hierarchy._load_lat_hist is None
        with obs.use_metrics():
            observed = sim.build_hierarchy(n_cores=1)
            assert observed._load_lat_hist is not None


class TestTelemetrySerialization:
    def test_round_trip_through_json(self, observed_result):
        result, _ = observed_result
        payload = json.loads(json.dumps(result_to_dict(result)))
        back = result_from_dict(payload)
        assert back.telemetry == result.telemetry
        assert back.telemetry["metrics"]["providers"]["cache.LLC"]["fills"] == (
            result.telemetry["metrics"]["providers"]["cache.LLC"]["fills"]
        )

    def test_file_round_trip(self, observed_result, tmp_path):
        result, _ = observed_result
        path = tmp_path / "run.json"
        save_result(result, path)
        assert load_result(path).telemetry == result.telemetry

    def test_missing_telemetry_key_tolerated(self):
        """Checkpoints written before the telemetry field still load."""
        result = Simulator(skylake_server()).run("hmmer_like", 1500)
        payload = result_to_dict(result)
        del payload["telemetry"]
        assert result_from_dict(payload).telemetry is None


class _AlwaysBoom(Exception):
    pass


class _FailingFactory:
    """Simulator factory whose every run raises a distinct error."""

    def __init__(self):
        self.calls = 0

    def __call__(self, config):
        factory = self

        class _Sim:
            def run(self, workload, n_instrs, on_instruction=None):
                factory.calls += 1
                raise _AlwaysBoom(f"attempt {factory.calls}")

        return _Sim()


class TestRunnerObservability:
    def teardown_method(self):
        reset_logging()

    def test_attempt_errors_recorded_per_attempt(self):
        runner = ExperimentRunner(
            retries=2, simulator_factory=_FailingFactory(), sleep=lambda s: None
        )
        with pytest.raises(RunFailure):
            runner.run(skylake_server(), "hmmer_like", 500)
        (record,) = runner.failures
        assert len(record.attempt_errors) == 3
        assert all("_AlwaysBoom" in err for err in record.attempt_errors)
        # every attempt's repr is distinct, not the final one repeated
        assert len(set(record.attempt_errors)) == 3
        assert record.to_dict()["attempt_errors"] == record.attempt_errors

    def test_retries_logged_at_warning(self):
        stream = io.StringIO()
        configure_logging("warning", json_lines=True, stream=stream)
        runner = ExperimentRunner(
            retries=1, simulator_factory=_FailingFactory(), sleep=lambda s: None
        )
        with pytest.raises(RunFailure):
            runner.run(skylake_server(), "hmmer_like", 500)
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        warnings = [e for e in events if e["level"] == "WARNING"]
        assert warnings and warnings[0]["event"] == "retrying after failure"
        assert "attempt 1" in warnings[0]["error"]
        final = [e for e in events if e["level"] == "ERROR"]
        assert final and final[0]["event"] == "run abandoned"
        assert len(final[0]["attempt_errors"]) == 2

    def test_run_span_emitted(self):
        runner = ExperimentRunner()
        with obs.use_tracer() as collector:
            runner.run(skylake_server(), "hmmer_like", 1500)
        names = [event["name"] for event in collector.events]
        assert "run:baseline_server/hmmer_like" in names


class TestCliIntegration:
    def test_sim_run_with_obs_flags(self, tmp_path, capsys):
        from repro.sim.__main__ import main

        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        log_path = tmp_path / "log.jsonl"
        rc = main([
            "run", "baseline_server", "hmmer_like", "--n", "1500",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
            "--log-json", "--log-file", str(log_path),
        ])
        assert rc == 0
        # --log-json: figure text became JSONL events, stdout is clean
        assert "IPC" not in capsys.readouterr().out
        events = [json.loads(line) for line in log_path.read_text().splitlines()]
        assert any("IPC" in e["event"] for e in events)
        payload = json.loads(trace_path.read_text())
        assert obs.validate_trace_events(payload) == []
        assert any(e["name"] == "cli:run" for e in payload["traceEvents"])
        snapshot = json.loads(metrics_path.read_text())
        assert "hierarchy" in snapshot["providers"]

    def test_sim_run_default_output_unchanged(self, capsys):
        from repro.sim.__main__ import main

        rc = main(["run", "baseline_server", "hmmer_like", "--n", "1500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("hmmer_like on baseline_server:")
        assert "IPC" in out

    def test_obs_state_restored_after_session(self, tmp_path):
        from repro.sim.__main__ import main

        main([
            "run", "baseline_server", "hmmer_like", "--n", "1500",
            "--trace-out", str(tmp_path / "t.json"), "--log-json",
        ])
        assert obs.tracer() is None
        assert obs.metrics() is obs.NULL_REGISTRY
        assert not obs.console_json_enabled()

    def test_experiments_cli_progress_and_trace(self, tmp_path, capsys, monkeypatch):
        import repro.experiments.registry as registry

        # shrink the sweep to two cheap experiments so `all` is fast
        monkeypatch.setattr(
            registry, "EXPERIMENTS",
            {k: registry.EXPERIMENTS[k] for k in ("table1", "table2")},
        )
        trace_path = tmp_path / "exp.json"
        rc = registry.main(["all", "--quick", "--trace-out", str(trace_path)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "experiments [1/2] table1" in captured.err
        assert "experiments [2/2] table2" in captured.err
        payload = json.loads(trace_path.read_text())
        names = [e["name"] for e in payload["traceEvents"]]
        assert "experiment:table1" in names
        assert obs.validate_trace_events(payload) == []
