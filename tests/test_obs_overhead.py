"""Overhead guard: disabled instrumentation must cost (almost) nothing.

The hot path promises are structural — with no active registry/tracer the
simulator binds no instruments and allocates nothing per event — plus a
benchmark comparing a short ``Simulator.run`` with instrumentation off
against the same run with it on.  The off/on comparison is the honest
version of "within a small factor of the pre-obs baseline": the disabled
path IS the pre-obs path (one ``is None`` branch), so if it ever regressed
the ratio here would blow past the bound.
"""

import time
import timeit

import repro.obs as obs
from repro.obs import NULL_REGISTRY
from repro.sim.config import skylake_server
from repro.sim.simulator import Simulator


def _best_of(fn, repeats=5):
    """Minimum wall-clock over several runs (robust to scheduler noise)."""
    return min(timeit.timeit(fn, number=1) for _ in range(repeats))


class TestDisabledStateIsStructurallyFree:
    """With obs off, nothing is bound — the hot path cannot pay for it."""

    def test_default_registry_is_the_null_singleton(self):
        assert obs.metrics() is NULL_REGISTRY
        assert not NULL_REGISTRY.enabled

    def test_run_produces_no_telemetry(self):
        result = Simulator(skylake_server()).run("hmmer_like", 1500)
        assert result.telemetry is None

    def test_hierarchy_binds_no_histogram(self):
        hierarchy = Simulator(skylake_server()).build_hierarchy(n_cores=1)
        assert hierarchy._load_lat_hist is None

    def test_null_registry_registers_nothing(self):
        Simulator(skylake_server()).build_hierarchy(n_cores=1)
        assert NULL_REGISTRY.snapshot() == {}

    def test_null_span_is_reentrant_and_cheap(self):
        # one shared span object, no per-use allocation
        first = obs.span("a")
        second = obs.span("b")
        assert first is second
        with first:
            with second:
                pass


class TestNullOpMicrobench:
    """Null-instrument operations must stay at function-call cost.

    Bound: 100k no-op calls in well under a second even on a loaded CI
    machine (~µs per op would mean 0.1 s; the real cost is tens of ns).
    """

    N = 100_000
    BUDGET_S = 1.0

    def test_null_counter_inc(self):
        counter = NULL_REGISTRY.counter("x")
        elapsed = _best_of(
            lambda: [counter.inc() for _ in range(self.N)], repeats=3
        )
        assert elapsed < self.BUDGET_S

    def test_null_histogram_record(self):
        hist = NULL_REGISTRY.histogram("h")
        elapsed = _best_of(
            lambda: [hist.record(7) for _ in range(self.N)], repeats=3
        )
        assert elapsed < self.BUDGET_S

    def test_null_span_enter_exit(self):
        def spin():
            for _ in range(self.N):
                with obs.span("noop"):
                    pass

        assert _best_of(spin, repeats=3) < self.BUDGET_S


class TestRunOverheadRatio:
    """Disabled run ≤ 1.5× an instrumented run — and in practice ≈1.0×.

    The ISSUE's guard is "disabled within a small factor of baseline".
    Comparing disabled vs *enabled* in the same process gives a stable,
    machine-independent proxy: disabled must never be slower than the
    fully instrumented run by more than the flake allowance.  (A bound of
    1.05× between two identical short runs flakes on shared CI; 1.5× still
    catches any accidental always-on instrumentation, which costs well
    over 2× when the histogram and spans run unconditionally.)
    """

    N_INSTRS = 4000

    def _run_disabled(self):
        Simulator(skylake_server()).run("hmmer_like", self.N_INSTRS)

    def _run_enabled(self):
        with obs.use_metrics(), obs.use_tracer():
            Simulator(skylake_server()).run("hmmer_like", self.N_INSTRS)

    def test_disabled_not_slower_than_enabled(self):
        # warm caches/JIT-free interpreter state once each
        self._run_disabled()
        self._run_enabled()
        disabled = _best_of(self._run_disabled)
        enabled = _best_of(self._run_enabled)
        assert disabled <= enabled * 1.5, (
            f"disabled run {disabled:.4f}s vs enabled {enabled:.4f}s — "
            "disabled instrumentation is paying real overhead"
        )

    def test_phase_timing_uses_cheap_clock(self):
        # phases are timed with perf_counter even when obs is off; make
        # sure that stayed O(phases), not O(instructions): a run's phase
        # clock is read a handful of times, so two runs differing only in
        # length shouldn't diverge in clock-call count.  Structural check:
        # the simulator module must not call perf_counter per instruction.
        import inspect

        from repro.sim import simulator

        source = inspect.getsource(simulator.Simulator.run)
        # perf_counter appears only at phase boundaries (bounded count)
        assert source.count("perf_counter") <= 2
        assert time.perf_counter  # silence unused-import linters


class TestServicePathStaysPrivate:
    """The campaign service instruments itself without enabling global obs.

    Service telemetry (SLO histograms, lifecycle spans, flight-recorder
    events) is per-*job*, so it lives in the service's own always-on
    registry.  The zero-overhead contract protects the per-*instruction*
    sim path: running a job through the daemon must leave the global null
    singletons untouched and ship no telemetry with the result.
    """

    def test_service_run_leaves_global_obs_disabled(self, tmp_path):
        from repro.service import build_service
        from repro.service.http import preset_configs
        from repro.sim.serialization import config_to_dict

        service = build_service(
            tmp_path / "journal.wal", tmp_path / "ckpt", fsync=False
        )
        job, _ = service.submit_config(
            config_to_dict(preset_configs()["baseline_server"]),
            "hmmer_like", 1500,
        )
        service.start()
        try:
            assert service.wait_idle(timeout=30)
        finally:
            service.stop()
        # The global obs surface stayed null: no registry, no tracer, no
        # telemetry attached to the simulation result.
        assert obs.metrics() is NULL_REGISTRY
        assert NULL_REGISTRY.snapshot() == {}
        assert obs.tracer() is None
        payload = service.result_payload(service.queue.get(job.job_id))
        assert payload.get("telemetry") is None
        # ...while the service's private registry did account the job.
        assert service.registry is not NULL_REGISTRY
        snapshot = service.telemetry_snapshot()
        assert snapshot["histograms"]["job.queue_wait_seconds"]["count"] >= 1
        service.queue.journal.close()
