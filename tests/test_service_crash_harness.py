"""The prefix-replay crash harness: the standing exactly-once proof.

A scripted campaign runs with :class:`repro.service.chaos.ChaosFS` recording
every syscall-boundary mutation.  An *ack ledger* notes the op-log length at
the instant each queue acknowledgement returned to its caller.  Then, for
100+ seeded random cut points — including torn final writes — the op-log
prefix is replayed into a fresh directory (the exact disk a ``kill -9`` at
that instant leaves) and the service recovers from it.  The contract under
test:

* every mutation acknowledged at or before the cut survives recovery with
  its acknowledged state (done stays done, failed stays failed, ...);
* nothing is duplicated: one live job per dedup key, ever;
* recovery itself never errors — a prefix of syscalls is always a valid
  journal prefix;
* with checkpoints in the picture (the daemon test), ``fsck`` finds no
  invariant errors at any cut and acked results are byte-identical to a
  serial run.
"""

import json

import pytest

from repro.runner import ExperimentRunner, ResultStore
from repro.service import build_service
from repro.service.chaos import ChaosFS, cut_points, replay_prefix
from repro.service.fsck import check_state_dir
from repro.service.http import preset_configs
from repro.service.journal import Journal
from repro.service.queue import CANCELLED, DONE, FAILED, LEASED, JobQueue
from repro.sim.serialization import config_to_dict, result_to_dict


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        self.t += 0.01
        return self.t


def recover(state_dir):
    """Crash-recover a queue from a replayed prefix directory."""
    return JobQueue(Journal(state_dir / "journal.wal", fsync=False),
                    clock=FakeClock())


class TestQueueExactlyOnce:
    """Queue-only harness: scripted mutations, acks pinned to op counts."""

    def run_scripted_campaign(self, root):
        """Drive a queue through every state transition under recording.

        Returns ``(ops, ledger)`` where ledger entries are
        ``(expectation, job_id, op_count_at_ack, extra)``.
        """
        chaos = ChaosFS(root=root)
        ledger = []

        def ack(kind, job, extra=None):
            ledger.append((kind, job.job_id, len(chaos.ops), extra))

        with chaos.install():
            queue = JobQueue(
                Journal(root / "journal.wal"), clock=FakeClock(),
                max_attempts=2, max_depth=16, quota=16,
            )
            jobs = []
            for i in range(6):
                job, _ = queue.submit(
                    {"name": f"cfg{i}"}, "wl", 50_000,
                    fingerprint=f"fp{i:04d}", config_name=f"cfg{i}",
                )
                jobs.append(job)
                ack("exists", job)

            # j0: clean completion.
            queue.lease("w0")
            queue.complete(jobs[0].job_id, "w0", {"ipc": 1.5})
            ack("done", jobs[0], {"ipc": 1.5})

            # j1: fail, requeue, fail again -> terminal.
            queue.lease("w0")
            queue.fail(jobs[1].job_id, "w0",
                       error_type="RunFailure", message="attempt 1")
            queue.lease("w0")
            queue.fail(jobs[1].job_id, "w0",
                       error_type="RunFailure", message="attempt 2")
            ack("failed", jobs[1])

            # j2: cancelled while pending.
            queue.cancel(jobs[2].job_id)
            ack("cancelled", jobs[2])

            # Compact mid-history: cuts landing inside the rewrite's
            # temp-write/rename window must still recover cleanly.
            queue.compact()

            # j3: completed after the compaction.
            queue.lease("w1")
            queue.complete(jobs[3].job_id, "w1", {"ipc": 0.9})
            ack("done", jobs[3], {"ipc": 0.9})

            # j4: left leased — the crash takes its worker with it.
            queue.lease("w1")

            # j5: a late submission that stays pending.
            job, _ = queue.submit(
                {"name": "late"}, "wl", 50_000,
                fingerprint="fp-late", config_name="late",
            )
            ack("exists", job)
            queue.journal.close()
        return chaos.ops, ledger

    def check_cut(self, state_dir, ledger, cut_index):
        queue = recover(state_dir)
        stats = queue.replay_stats
        # A torn-tail decode note is expected crash debris; a committed
        # record that fails to *replay* is not.
        skipped = [e for e in stats.errors if "replay skipped" in e]
        assert not skipped, f"cut {cut_index}: recovery errors {skipped}"
        for kind, job_id, acked_at, extra in ledger:
            if acked_at > cut_index:
                continue  # acked after the crash: no promise to keep
            job = queue._jobs.get(job_id)
            assert job is not None, (
                f"cut {cut_index}: acked job {job_id} lost"
            )
            if kind == "done":
                assert job.state == DONE, (
                    f"cut {cut_index}: {job_id} acked done, now {job.state}"
                )
                assert job.summary == extra
            elif kind == "failed":
                assert job.state == FAILED
            elif kind == "cancelled":
                assert job.state == CANCELLED
        # Recovery reclaims every dead lease.
        assert not any(j.state == LEASED for j in queue._jobs.values())
        # No duplicates: at most one live/done holder per dedup key.
        holders: dict = {}
        for job in queue._jobs.values():
            if job.state in (FAILED, CANCELLED):
                continue
            holders.setdefault(job.key, []).append(job.job_id)
        dupes = {k: v for k, v in holders.items() if len(v) > 1}
        assert not dupes, f"cut {cut_index}: duplicate live jobs {dupes}"
        queue.journal.close()

    def test_exactly_once_across_100_plus_cut_points(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        ops, ledger = self.run_scripted_campaign(work)
        assert len(ops) > 10
        assert any(kind == "done" for kind, *_ in ledger)

        cuts = cut_points(ops, 110, seed=7)
        assert len(cuts) >= 100
        for serial, (index, partial) in enumerate(cuts):
            state_dir = tmp_path / f"cut-{serial}"
            replay_prefix(ops, state_dir, index, partial_bytes=partial)
            self.check_cut(state_dir, ledger, index)

    def test_torn_final_write_never_loses_a_prior_ack(self, tmp_path):
        """Dedicated byte-sweep of the last journal append: every torn
        prefix of the final record keeps all earlier acks intact."""
        work = tmp_path / "work"
        work.mkdir()
        ops, ledger = self.run_scripted_campaign(work)
        last_write = max(
            i for i, e in enumerate(ops)
            if e["op"] == "write" and e["path"] == "journal.wal"
        )
        data = ops[last_write]["data"]
        for cut_bytes in range(len(data) + 1):
            state_dir = tmp_path / f"torn-{cut_bytes}"
            replay_prefix(ops, state_dir, last_write, partial_bytes=cut_bytes)
            self.check_cut(state_dir, ledger, last_write)


class TestServiceExactlyOnce:
    """Full-stack harness: real daemon, real checkpoints, fsck at each cut."""

    N = 2000

    def run_campaign(self, state_dir):
        chaos = ChaosFS(root=state_dir)
        presets = preset_configs()
        with chaos.install():
            service = build_service(
                state_dir / "journal.wal", state_dir / "ckpt",
                poll_s=0.01,
            )
            for preset in ("baseline_server", "CATCH"):
                service.submit_config(
                    config_to_dict(presets[preset]), "hmmer_like", self.N,
                )
            service.start()
            try:
                assert service.wait_idle(timeout=60)
            finally:
                service.stop()
                service.queue.journal.close()
        return chaos.ops

    def serial_results(self):
        runner = ExperimentRunner(store=ResultStore())
        presets = preset_configs()
        return {
            preset: result_to_dict(
                runner.run(presets[preset], "hmmer_like", self.N)
            )
            for preset in ("baseline_server", "CATCH")
        }

    def test_fsck_clean_and_results_serial_identical_at_every_cut(
        self, tmp_path
    ):
        state = tmp_path / "state"
        state.mkdir()
        ops = self.run_campaign(state)
        serial = self.serial_results()

        # The completed campaign itself is fsck-clean...
        report = check_state_dir(state)
        assert report.ok, [f.message for f in report.findings]
        assert report.checked["done_jobs"] == 2

        # ...and so is the recovery from every one of 40 seeded cuts.
        for serial_no, (index, partial) in enumerate(
            cut_points(ops, 40, seed=11)
        ):
            cut_dir = tmp_path / f"cut-{serial_no}"
            replay_prefix(ops, cut_dir, index, partial_bytes=partial)
            report = check_state_dir(cut_dir)
            errors = [f"{f.code}: {f.message}" for f in report.errors]
            assert report.ok, f"cut {index}: {errors}"

        # At the full prefix, every checkpointed result is byte-identical
        # to the serial runner's.
        full = tmp_path / "full"
        replay_prefix(ops, full)
        checkpoints = sorted((full / "ckpt").glob("*.json"))
        assert len(checkpoints) == 2
        by_config = {
            json.loads(p.read_text())["config"]["name"]: p
            for p in checkpoints
        }
        for preset, expected in serial.items():
            payload = json.loads(by_config[preset].read_text())
            assert payload["result"] == expected

    def test_acked_done_jobs_survive_service_recovery(self, tmp_path):
        """Recover a *service* (not just a queue) from a mid-campaign cut:
        done jobs stay done and their results serve from the store."""
        state = tmp_path / "state"
        state.mkdir()
        ops = self.run_campaign(state)
        cut_dir = tmp_path / "recovered"
        replay_prefix(ops, cut_dir)  # the post-crash full prefix
        service = build_service(
            cut_dir / "journal.wal", cut_dir / "ckpt", fsync=False,
        )
        try:
            done = [j for j in service.queue.jobs() if j.state == DONE]
            assert len(done) == 2
            for job in done:
                assert service.result_payload(job) is not None
        finally:
            service.queue.journal.close()
