"""Unit tests for the instruction/trace model."""

import pytest

from repro.workloads.trace import (
    CATEGORIES,
    EXEC_LATENCY,
    LINE_SIZE,
    NUM_ARCH_REGS,
    Instr,
    Op,
    Trace,
)


class TestInstr:
    def test_load_is_mem(self):
        ins = Instr(0x400000, Op.LOAD, srcs=(1,), dst=2, addr=0x1000)
        assert ins.is_mem

    def test_store_is_mem(self):
        ins = Instr(0x400000, Op.STORE, srcs=(1,), addr=0x1000)
        assert ins.is_mem

    @pytest.mark.parametrize("op", [Op.ALU, Op.MUL, Op.FP, Op.BRANCH, Op.NOP])
    def test_non_mem_ops(self, op):
        assert not Instr(0x400000, op).is_mem

    def test_line_address(self):
        ins = Instr(0x400000, Op.LOAD, addr=0x1234)
        assert ins.line == 0x1234 >> 6

    def test_line_for_non_mem_is_negative(self):
        assert Instr(0x400000, Op.ALU).line == -1

    def test_code_line(self):
        assert Instr(0x400040, Op.ALU).code_line == 0x400040 >> 6

    def test_same_line_for_nearby_addresses(self):
        a = Instr(0, Op.LOAD, addr=0x1000)
        b = Instr(0, Op.LOAD, addr=0x103F)
        assert a.line == b.line

    def test_adjacent_lines_differ(self):
        a = Instr(0, Op.LOAD, addr=0x1000)
        b = Instr(0, Op.LOAD, addr=0x1040)
        assert b.line == a.line + 1


class TestExecLatency:
    def test_alu_single_cycle(self):
        assert EXEC_LATENCY[Op.ALU] == 1

    def test_mul_longer_than_alu(self):
        assert EXEC_LATENCY[Op.MUL] > EXEC_LATENCY[Op.ALU]

    def test_fp_longer_than_mul(self):
        assert EXEC_LATENCY[Op.FP] > EXEC_LATENCY[Op.MUL]

    def test_all_ops_have_latency(self):
        for op in Op:
            assert op in EXEC_LATENCY


class TestTrace:
    def _trace(self, instrs):
        return Trace("t", "ISPEC", instrs)

    def test_len(self):
        t = self._trace([Instr(0, Op.ALU), Instr(4, Op.ALU)])
        assert len(t) == 2

    def test_iter(self):
        instrs = [Instr(0, Op.ALU), Instr(4, Op.NOP)]
        assert list(self._trace(instrs)) == instrs

    def test_load_count(self):
        t = self._trace(
            [Instr(0, Op.LOAD, addr=0), Instr(4, Op.ALU), Instr(8, Op.LOAD, addr=64)]
        )
        assert t.load_count == 2

    def test_branch_count(self):
        t = self._trace([Instr(0, Op.BRANCH, taken=True, target=0)])
        assert t.branch_count == 1

    def test_footprint_lines_distinct(self):
        t = self._trace(
            [
                Instr(0, Op.LOAD, addr=0),
                Instr(4, Op.LOAD, addr=32),   # same line
                Instr(8, Op.LOAD, addr=64),   # next line
            ]
        )
        assert t.footprint_lines() == 2

    def test_code_lines(self):
        t = self._trace([Instr(0, Op.ALU), Instr(64, Op.ALU), Instr(68, Op.ALU)])
        assert t.code_lines() == 2

    def test_validate_accepts_good_trace(self):
        self._trace([Instr(0, Op.LOAD, srcs=(0,), dst=1, addr=64)]).validate()

    def test_validate_rejects_mem_without_address(self):
        with pytest.raises(ValueError, match="without address"):
            self._trace([Instr(0, Op.LOAD)]).validate()

    def test_validate_rejects_bad_register(self):
        with pytest.raises(ValueError, match="register"):
            self._trace([Instr(0, Op.ALU, dst=NUM_ARCH_REGS)]).validate()

    def test_validate_rejects_bad_source_register(self):
        with pytest.raises(ValueError, match="register"):
            self._trace([Instr(0, Op.ALU, srcs=(NUM_ARCH_REGS,), dst=0)]).validate()

    def test_validate_rejects_negative_pc(self):
        with pytest.raises(ValueError, match="pc"):
            self._trace([Instr(-4, Op.ALU)]).validate()

    def test_memory_image_default_empty(self):
        assert self._trace([]).memory_image == {}


def test_constants():
    assert LINE_SIZE == 64
    assert NUM_ARCH_REGS == 16
    assert len(CATEGORIES) == 5
