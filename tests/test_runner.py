"""Tests for the resilient runner: store, resume, deadlines, retry, reports.

The acceptance flow of the runner subsystem — an interrupted campaign whose
second invocation re-simulates nothing already completed, verified by run
counters — lives here, both at the runner level and end to end through the
experiment CLI (with miniature experiments so the test stays fast).
"""

import dataclasses
import json
import types

import pytest

from repro.errors import (
    CheckpointError,
    ConfigError,
    RunFailure,
    RunTimeoutError,
)
from repro.runner import (
    ExperimentRunner,
    FaultInjector,
    ResultStore,
    config_fingerprint,
    get_runner,
    use_runner,
)
from repro.sim.config import no_l2, skylake_server, with_extra_latency
from repro.caches.hierarchy import Level

N = 2000
CFG = skylake_server()


def make_runner(**kwargs):
    kwargs.setdefault("sleep", lambda s: None)
    return ExperimentRunner(**kwargs)


class TestStore:
    def test_memory_memoisation(self):
        runner = make_runner()
        a = runner.run(CFG, "hmmer_like", N)
        b = runner.run(CFG, "hmmer_like", N)
        assert a is b
        assert runner.stats.executed == 1
        assert runner.stats.store_hits == 1

    def test_fingerprint_distinguishes_configs(self):
        assert config_fingerprint(CFG) != config_fingerprint(no_l2(CFG, 6.5))
        assert config_fingerprint(CFG) != config_fingerprint(
            with_extra_latency(CFG, Level.L2, 3)
        )
        assert config_fingerprint(CFG) == config_fingerprint(skylake_server())

    def test_disk_round_trip(self, tmp_path):
        first = make_runner(store=ResultStore(tmp_path))
        result = first.run(CFG, "hmmer_like", N)
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        assert "baseline_server" in files[0].name and "hmmer_like" in files[0].name

        second = make_runner(store=ResultStore(tmp_path, resume=True))
        restored = second.run(CFG, "hmmer_like", N)
        assert second.stats.executed == 0
        assert second.stats.store_hits == 1
        assert restored.cycles == result.cycles
        assert restored.load_served == result.load_served

    def test_without_resume_disk_is_not_read(self, tmp_path):
        make_runner(store=ResultStore(tmp_path)).run(CFG, "hmmer_like", N)
        fresh = make_runner(store=ResultStore(tmp_path, resume=False))
        fresh.run(CFG, "hmmer_like", N)
        assert fresh.stats.executed == 1

    def test_corrupt_checkpoint_quarantined_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        make_runner(store=store).run(CFG, "hmmer_like", N)
        (checkpoint,) = tmp_path.glob("*.json")
        checkpoint.write_text("{ not json")

        resumed = ResultStore(tmp_path, resume=True)
        runner = make_runner(store=resumed)
        runner.run(CFG, "hmmer_like", N)
        assert resumed.corrupt_skipped == 1
        assert runner.stats.executed == 1  # re-simulated, did not crash
        # The broken file was moved aside, and the re-simulated result was
        # checkpointed under the original name.
        (quarantined,) = resumed.quarantined
        assert quarantined.name == checkpoint.name + ".corrupt"
        assert quarantined.exists()
        assert checkpoint.exists()
        assert "not json" in quarantined.read_text()

    def test_quarantined_checkpoint_not_reparsed_on_next_resume(self, tmp_path):
        make_runner(store=ResultStore(tmp_path)).run(CFG, "hmmer_like", N)
        (checkpoint,) = tmp_path.glob("*.json")
        checkpoint.write_text("{ not json")
        first = ResultStore(tmp_path, resume=True)
        make_runner(store=first).run(CFG, "hmmer_like", N)
        # The repaired checkpoint now serves; the .corrupt file is inert.
        second = ResultStore(tmp_path, resume=True)
        runner = make_runner(store=second)
        runner.run(CFG, "hmmer_like", N)
        assert second.corrupt_skipped == 0
        assert runner.stats.store_hits == 1

    def test_quarantine_numbers_colliding_files(self, tmp_path):
        for _ in range(2):
            make_runner(store=ResultStore(tmp_path)).run(CFG, "hmmer_like", N)
            (checkpoint,) = tmp_path.glob("*.json")
            checkpoint.write_text("{ not json")
            store = ResultStore(tmp_path, resume=True)
            make_runner(store=store).run(CFG, "hmmer_like", N)
            checkpoint.write_text("{ not json")  # corrupt the repair too
        store = ResultStore(tmp_path, resume=True)
        make_runner(store=store).run(CFG, "hmmer_like", N)
        names = sorted(p.name for p in tmp_path.glob("*.corrupt*"))
        assert len(names) == 3
        assert names[1].endswith(".corrupt.1") and names[2].endswith(".corrupt.2")

    def test_quarantine_rename_failure_degrades_to_skip(
        self, tmp_path, monkeypatch
    ):
        """If the .corrupt rename itself fails (read-only dir, races), the
        resume degrades to the old count-and-skip path instead of dying."""
        import os

        make_runner(store=ResultStore(tmp_path)).run(CFG, "hmmer_like", N)
        (checkpoint,) = tmp_path.glob("*.json")
        checkpoint.write_text("{ not json")

        def refuse(src, dst):
            raise OSError("read-only filesystem")

        monkeypatch.setattr(os, "replace", refuse)
        store = ResultStore(tmp_path, resume=True)
        assert store._quarantine(checkpoint) is None
        assert store.quarantined == []
        assert checkpoint.exists()  # left in place, counted, not re-parsed

    def test_wrong_schema_checkpoint_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        make_runner(store=store).run(CFG, "hmmer_like", N)
        (checkpoint,) = tmp_path.glob("*.json")
        payload = json.loads(checkpoint.read_text())
        payload["checkpoint_version"] = 99
        checkpoint.write_text(json.dumps(payload))
        resumed = ResultStore(tmp_path, resume=True)
        with pytest.raises(CheckpointError, match="version"):
            resumed._read_checkpoint(checkpoint, payload["fingerprint"])

    def test_clear_drops_memory_keeps_disk(self, tmp_path):
        store = ResultStore(tmp_path, resume=True)
        runner = make_runner(store=store)
        runner.run(CFG, "hmmer_like", N)
        store.clear()
        assert len(store) == 0
        runner.run(CFG, "hmmer_like", N)  # served from disk
        assert runner.stats.executed == 1


class TestIsolationAndRetry:
    def test_config_error_propagates_unretried(self):
        runner = make_runner(retries=3)
        bad = dataclasses.replace(CFG, capacity_scale=0)
        with pytest.raises(ConfigError):
            runner.run(bad, "hmmer_like", N)
        assert runner.stats.executed == 0
        assert runner.failures == []

    def test_persistent_fault_exhausts_retries(self):
        injector = FaultInjector(kind="raise", at_instruction=300, times=99)
        runner = make_runner(
            simulator_factory=injector.simulator_factory, retries=2
        )
        with pytest.raises(RunFailure) as info:
            runner.run(CFG, "hmmer_like", N)
        assert runner.stats.executed == 3       # 1 + 2 retries
        assert runner.stats.retries == 2
        assert info.value.attempts == 3
        assert info.value.config_name == "baseline_server"
        assert info.value.workload == "hmmer_like"

    def test_transient_fault_recovered_by_retry(self):
        injector = FaultInjector(kind="raise", at_instruction=300, times=1)
        runner = make_runner(
            simulator_factory=injector.simulator_factory, retries=1
        )
        result = runner.run(CFG, "hmmer_like", N)
        assert result.ipc > 0
        assert runner.stats.retries == 1
        assert runner.stats.completed == 1
        assert runner.failures == []

    def test_backoff_is_exponential(self):
        # rng=1.0 pins the full-jitter draw to the deterministic ceiling.
        naps = []
        injector = FaultInjector(kind="raise", at_instruction=300, times=2)
        runner = ExperimentRunner(
            simulator_factory=injector.simulator_factory,
            retries=2,
            backoff_s=0.5,
            sleep=naps.append,
            rng=lambda: 1.0,
        )
        runner.run(CFG, "hmmer_like", N)
        assert naps == [0.5, 1.0]

    def test_backoff_is_fully_jittered(self):
        """Each nap is uniform over [0, ceiling): the injected rng draw
        scales the exponential ceiling, so a fleet of retrying runners
        never synchronises into a retry storm."""
        naps = []
        draws = iter([0.5, 0.25])
        injector = FaultInjector(kind="raise", at_instruction=300, times=2)
        runner = ExperimentRunner(
            simulator_factory=injector.simulator_factory,
            retries=2,
            backoff_s=0.5,
            sleep=naps.append,
            rng=lambda: next(draws),
        )
        runner.run(CFG, "hmmer_like", N)
        assert naps == [0.5 * 0.5, 1.0 * 0.25]

    def test_default_backoff_never_exceeds_the_ceiling(self):
        naps = []
        injector = FaultInjector(kind="raise", at_instruction=300, times=2)
        runner = ExperimentRunner(
            simulator_factory=injector.simulator_factory,
            retries=2,
            backoff_s=0.5,
            sleep=naps.append,
        )
        runner.run(CFG, "hmmer_like", N)
        assert len(naps) == 2
        assert 0.0 <= naps[0] < 0.5
        assert 0.0 <= naps[1] < 1.0

    def test_failure_record_shape(self):
        injector = FaultInjector(kind="raise", at_instruction=300, times=99)
        runner = make_runner(simulator_factory=injector.simulator_factory)
        with pytest.raises(RunFailure):
            runner.run(CFG, "hmmer_like", N)
        (record,) = runner.failures
        assert record.error_type == "InjectedFault"
        assert record.config_name == "baseline_server"
        assert record.workload == "hmmer_like"
        assert record.n_instrs == N
        assert record.attempts == 1
        report = runner.failure_report()
        assert report["failures"][0]["error_type"] == "InjectedFault"
        assert report["stats"]["failures"] == 1


class TestTimeout:
    def test_deadline_fires(self):
        ticks = [0.0]

        def clock():
            ticks[0] += 0.25
            return ticks[0]

        runner = make_runner(timeout_s=1.0, clock=clock)
        with pytest.raises(RunFailure) as info:
            runner.run(CFG, "hmmer_like", N)
        assert isinstance(info.value.__cause__, RunTimeoutError)
        assert runner.stats.timeouts == 1

    def test_timeout_is_not_retried(self):
        ticks = [0.0]

        def clock():
            ticks[0] += 0.25
            return ticks[0]

        runner = make_runner(timeout_s=1.0, clock=clock, retries=5)
        with pytest.raises(RunFailure):
            runner.run(CFG, "hmmer_like", N)
        assert runner.stats.executed == 1
        assert runner.stats.retries == 0

    def test_generous_deadline_does_not_fire(self):
        runner = make_runner(timeout_s=300.0)
        assert runner.run(CFG, "hmmer_like", N).ipc > 0


class TestActiveRunner:
    def test_default_runner_exists(self):
        assert get_runner() is get_runner()

    def test_use_runner_scopes_and_restores(self):
        outer = get_runner()
        scoped = make_runner()
        with use_runner(scoped):
            assert get_runner() is scoped
        assert get_runner() is outer

    def test_cached_run_and_clear_cache_use_active_runner(self):
        from repro.experiments.common import cached_run, clear_cache

        scoped = make_runner()
        with use_runner(scoped):
            cached_run(CFG, "hmmer_like", N)
            assert scoped.stats.executed == 1
            assert len(scoped.store) == 1
            clear_cache()
            assert len(scoped.store) == 0


# --------------------------------------------------------------- CLI e2e


def _mini_experiment(configs, workloads, n=1200):
    """A registry-shaped module running a tiny sweep through the runner."""

    def main(quick=False):
        from repro.experiments.common import sweep

        results = sweep(configs, workloads, n)
        return {
            "summary": {
                cfg.name: {wl: results[cfg.name][wl].ipc for wl in workloads}
                for cfg in configs
            }
        }

    return types.SimpleNamespace(main=main)


@pytest.fixture
def mini_registry(monkeypatch):
    """Three miniature experiments; expB's workload is the fault target."""
    from repro.experiments import registry

    cfg_a = skylake_server()
    cfg_b = no_l2(skylake_server(), 6.5)
    monkeypatch.setitem(registry.__dict__, "EXPERIMENTS", {
        "expA": _mini_experiment([cfg_a], ["hmmer_like"]),
        "expB": _mini_experiment([cfg_a], ["mcf_like"]),
        "expC": _mini_experiment([cfg_b], ["hmmer_like"]),
    })
    captured = []
    real_make_runner = registry.make_runner
    monkeypatch.setattr(
        registry, "make_runner",
        lambda args: captured.append(real_make_runner(args)) or captured[-1],
    )
    return registry, captured


class TestRegistryCLI:
    FAULT = "raise:workload=mcf_like:at=300:times=99"

    def test_keep_going_isolates_and_reports(self, mini_registry, tmp_path, capsys):
        registry, captured = mini_registry
        report_path = tmp_path / "failures.json"
        json_path = tmp_path / "results.json"
        code = registry.main([
            "all", "--quick", "--keep-going",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--inject-fault", self.FAULT,
            "--failure-report", str(report_path),
            "--json", str(json_path),
        ])
        # Distinct from a dead campaign (1): completed, but with failures.
        assert code == 3

        payload = json.loads(json_path.read_text())
        # expA and expC completed despite expB's mid-suite fault.
        assert set(payload["experiments"]) == {"expA", "expC"}
        (failure,) = payload["failures"]
        assert failure["experiment"] == "expB"
        assert failure["error_type"] == "InjectedFault"
        assert failure["config_name"] == "baseline_server"
        assert failure["workload"] == "mcf_like"
        assert failure["elapsed_s"] >= 0

        report = json.loads(report_path.read_text())
        assert report["failures"][0]["experiment"] == "expB"
        assert report["runner"]["stats"]["failures"] == 1
        err = capsys.readouterr().err
        assert "expB failed" in err
        assert f"failure report: {report_path}" in err

    def test_resume_re_simulates_nothing_completed(self, mini_registry, tmp_path):
        registry, captured = mini_registry
        ckpt = tmp_path / "ckpt"
        code = registry.main([
            "all", "--quick", "--keep-going",
            "--checkpoint-dir", str(ckpt),
            "--inject-fault", self.FAULT,
        ])
        assert code == 3
        first = captured[-1]
        assert first.stats.completed == 2   # expA + expC checkpointed

        # Second invocation, fault gone: only the failed run simulates.
        code = registry.main([
            "all", "--quick", "--keep-going",
            "--checkpoint-dir", str(ckpt), "--resume",
        ])
        assert code == 0
        second = captured[-1]
        assert second.stats.executed == 1          # only expB's mcf_like run
        assert second.stats.store_hits == 2        # expA/expC from checkpoints
        assert second.stats.failures == 0

        # Third invocation: everything checkpointed, nothing simulates.
        code = registry.main([
            "all", "--quick",
            "--checkpoint-dir", str(ckpt), "--resume",
        ])
        assert code == 0
        assert captured[-1].stats.executed == 0
        assert captured[-1].stats.store_hits == 3

    def test_stop_on_first_failure_without_keep_going(self, mini_registry, tmp_path):
        registry, captured = mini_registry
        json_path = tmp_path / "results.json"
        code = registry.main([
            "all", "--quick",
            "--inject-fault", self.FAULT,
            "--json", str(json_path),
        ])
        assert code == 1
        payload = json.loads(json_path.read_text())
        assert set(payload["experiments"]) == {"expA"}   # stopped at expB

    def test_resume_requires_checkpoint_dir(self, mini_registry):
        registry, _ = mini_registry
        with pytest.raises(SystemExit):
            registry.main(["expA", "--resume"])

    def test_worker_faults_need_isolated_workers(self, mini_registry):
        registry, _ = mini_registry
        with pytest.raises(SystemExit, match="--jobs >= 2"):
            registry.main(["expA", "--inject-fault", "worker-crash"])

    def test_max_rss_needs_jobs(self, mini_registry):
        registry, _ = mini_registry
        with pytest.raises(SystemExit, match="--max-rss-mb requires --jobs"):
            registry.main(["expA", "--max-rss-mb", "512"])

    def test_multiple_serial_injectors_rejected(self, mini_registry):
        registry, _ = mini_registry
        with pytest.raises(SystemExit, match="multiple --inject-fault"):
            registry.main([
                "expA",
                "--inject-fault", self.FAULT,
                "--inject-fault", "nan-metrics",
            ])

    def test_parallel_runner_selected_by_jobs(self, mini_registry, tmp_path):
        from repro.runner import FleetRunner

        registry, captured = mini_registry
        code = registry.main([
            "expA", "--quick", "--jobs", "2",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
        ])
        assert code == 0
        assert isinstance(captured[-1], FleetRunner)
        assert captured[-1].stats.completed == 1
