"""Tests for the content-addressed result cache (repro.cache).

Pins the tier's contract: exact hits are byte-identical and carry
``cache_hit`` provenance outside the payload; near hits are opt-in
estimates stamped with ``near_hit`` provenance inside ``telemetry``; any
single config-field change misses; a renamed machine never collides;
corrupt entries quarantine like ``*.corrupt`` checkpoints; gc evicts LRU
but never pinned entries.
"""

import dataclasses
import json

import pytest

from repro.cache import ResultCache, neighbor_param
from repro.cache.cli import main as cache_cli
from repro.runner import ExperimentRunner, ResultStore
from repro.runner.store import config_fingerprint
from repro.service import preset_configs
from repro.sim.serialization import config_to_dict, result_to_dict

WL = "mcf_like"
N = 3000


@pytest.fixture()
def config():
    return preset_configs()["CATCH"]


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def run_once(config, workload=WL, n=N):
    return ExperimentRunner(ResultStore()).run(config, workload, n)


def canonical(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestExactHits:
    def test_roundtrip_is_byte_identical(self, cache, config):
        result = run_once(config)
        assert cache.put(config, WL, N, result)
        hit = cache.lookup(config, WL, N)
        assert hit is not None and not hit.near
        assert canonical(hit.result) == canonical(result)
        # Provenance travels beside the result, never inside it.
        assert hit.provenance["cache_hit"] is True
        assert hit.provenance["key"] == [config_fingerprint(config), WL, N]
        assert (hit.result.telemetry or {}).get("cache") is None

    def test_put_is_first_write_wins(self, cache, config):
        result = run_once(config)
        assert cache.put(config, WL, N, result) is True
        assert cache.put(config, WL, N, result) is False
        assert cache.stats.puts == 1

    def test_miss_counts(self, cache, config):
        assert cache.lookup(config, WL, N) is None
        assert cache.stats.misses == 1
        assert cache.stats.exact_hits == 0


class TestInvalidation:
    """Satellite: any single config-field change must miss."""

    def test_single_field_change_misses(self, cache, config):
        cache.put(config, WL, N, run_once(config))
        mutants = [
            dataclasses.replace(
                config, l2=dataclasses.replace(config.l2, latency=config.l2.latency + 1)
            ),
            dataclasses.replace(
                config, llc=dataclasses.replace(config.llc, size_kb=config.llc.size_kb * 2)
            ),
            dataclasses.replace(config, capacity_scale=config.capacity_scale + 1),
            dataclasses.replace(
                config, core=dataclasses.replace(config.core, rob_size=config.core.rob_size + 1)
            ),
        ]
        for mutant in mutants:
            assert config_fingerprint(mutant) != config_fingerprint(config)
            assert cache.lookup(mutant, WL, N) is None

    def test_same_machine_different_name_does_not_collide(self, cache, config):
        result = run_once(config)
        cache.put(config, WL, N, result)
        renamed = dataclasses.replace(config, name="totally-different-label")
        # A rename changes the canonical JSON, hence the fingerprint, hence
        # the key: the renamed machine neither hits nor near-hits.
        assert cache.lookup(renamed, WL, N) is None
        assert cache.lookup(renamed, WL, N, near=True) is None

    def test_workload_and_length_participate_in_the_key(self, cache, config):
        cache.put(config, WL, N, run_once(config))
        assert cache.lookup(config, "gcc_like", N) is None
        assert cache.lookup(config, WL, N + 1) is None


class TestCorruptEntries:
    def test_corrupt_entry_is_quarantined(self, cache, config):
        cache.put(config, WL, N, run_once(config))
        (entry,) = cache.entries()
        entry.path.write_text("{ not json")
        assert cache.lookup(config, WL, N) is None
        assert cache.stats.corrupt_quarantined == 1
        assert not entry.path.exists()
        corrupt = list(cache.cache_dir.glob("*.corrupt*"))
        assert len(corrupt) == 1

    def test_wrong_schema_is_quarantined(self, cache, config):
        cache.put(config, WL, N, run_once(config))
        (entry,) = cache.entries()
        entry.path.write_text(json.dumps({"cache_version": 999}))
        assert cache.lookup(config, WL, N) is None
        assert cache.stats.corrupt_quarantined == 1


class TestNearHits:
    def test_lower_n_served_with_provenance(self, cache, config):
        result = run_once(config)
        cache.put(config, WL, N, result)
        hit = cache.lookup(config, WL, N * 2, near=True)
        assert hit is not None and hit.near
        prov = hit.provenance
        assert prov["near_hit"] is True
        assert prov["mode"] == "lower_n"
        assert prov["source_key"] == [config_fingerprint(config), WL, N]
        assert prov["requested_n_instrs"] == N * 2
        # The estimate's own payload carries the flags too.
        assert hit.result.telemetry["cache"]["near_hit"] is True
        # …but the stored entry is untouched (the stamp is on a copy).
        exact = cache.lookup(config, WL, N)
        assert (exact.result.telemetry or {}).get("cache") is None

    def test_higher_n_is_never_near(self, cache, config):
        cache.put(config, WL, N, run_once(config))
        assert cache.lookup(config, WL, N // 2, near=True) is None

    def test_neighbor_param_served_with_provenance(self, cache, config):
        neighbor = dataclasses.replace(
            config, l2=dataclasses.replace(config.l2, latency=config.l2.latency + 1)
        )
        cache.put(neighbor, WL, N, run_once(neighbor))
        hit = cache.lookup(config, WL, N, near=True)
        assert hit is not None and hit.near
        prov = hit.provenance
        assert prov["mode"] == "neighbor_param"
        assert prov["param"] == "l2.latency"
        assert prov["source_key"] == [config_fingerprint(neighbor), WL, N]
        assert prov["requested_fingerprint"] == config_fingerprint(config)

    def test_two_field_difference_is_not_a_neighbor(self, cache, config):
        far = dataclasses.replace(
            config,
            l2=dataclasses.replace(
                config.l2, latency=config.l2.latency + 1, assoc=config.l2.assoc * 2
            ),
        )
        cache.put(far, WL, N, run_once(far))
        assert cache.lookup(config, WL, N, near=True) is None

    def test_near_is_gated_off_by_default(self, cache, config):
        cache.put(config, WL, N, run_once(config))
        assert cache.lookup(config, WL, N * 2) is None
        # Instance-level opt-in works the same way…
        near_cache = ResultCache(cache.cache_dir, near=True)
        assert near_cache.lookup(config, WL, N * 2) is not None
        # …and a per-call override wins over the instance policy.
        assert near_cache.lookup(config, WL, N * 2, near=False) is None

    def test_closest_neighbor_wins(self, cache, config):
        near1 = dataclasses.replace(
            config, l2=dataclasses.replace(config.l2, latency=config.l2.latency + 1)
        )
        far9 = dataclasses.replace(
            config, l2=dataclasses.replace(config.l2, latency=config.l2.latency + 9)
        )
        cache.put(far9, WL, N, run_once(far9))
        cache.put(near1, WL, N, run_once(near1))
        hit = cache.lookup(config, WL, N, near=True)
        assert hit.provenance["source_value"] == config.l2.latency + 1


class TestNeighborParam:
    def test_identical_configs_are_not_neighbors(self, config):
        d = config_to_dict(config)
        assert neighbor_param(d, d) is None

    def test_single_numeric_diff(self, config):
        other = dataclasses.replace(config, capacity_scale=config.capacity_scale + 2)
        diff = neighbor_param(config_to_dict(config), config_to_dict(other))
        assert diff == ("capacity_scale", config.capacity_scale, config.capacity_scale + 2)

    def test_rename_is_not_a_neighbor(self, config):
        other = dataclasses.replace(config, name="else")
        assert neighbor_param(config_to_dict(config), config_to_dict(other)) is None

    def test_non_numeric_diff_is_not_a_neighbor(self, config):
        other = dataclasses.replace(
            config, l2=dataclasses.replace(config.l2, replacement="srrip")
        )
        assert neighbor_param(config_to_dict(config), config_to_dict(other)) is None


class TestGc:
    def _fill(self, cache, config, count=4):
        results = {}
        for i in range(count):
            mutant = dataclasses.replace(config, capacity_scale=config.capacity_scale + i)
            cache.put(mutant, WL, N + i, run_once(mutant, n=N + i))
            results[i] = mutant
        return results

    def test_lru_eviction_down_to_budget(self, cache, config):
        self._fill(cache, config)
        rows = cache.entries()
        keep = sum(row.bytes for row in rows[-2:])
        report = cache.gc(keep)
        assert report["evicted"] == 2
        assert report["bytes_after"] <= keep
        survivors = {row.path.name for row in cache.entries()}
        assert survivors == {row.path.name for row in rows[-2:]}
        assert cache.stats.evictions == 2

    def test_pinned_entries_survive_any_budget(self, cache, config):
        self._fill(cache, config)
        oldest = cache.entries()[0]
        assert cache.pin(
            config_fingerprint_for_entry(cache, oldest), oldest.workload, oldest.n_instrs
        )
        report = cache.gc(0)
        assert report["pinned_kept"] == 1
        names = {row.path.name for row in cache.entries()}
        assert names == {oldest.path.name}

    def test_exact_hit_touches_lru_clock(self, cache, config):
        import os

        mutants = self._fill(cache, config)
        oldest = cache.entries()[0]
        # Age everything, then hit the oldest entry: it must move to the
        # MRU end and survive a gc that evicts half the cache.
        for i, row in enumerate(cache.entries()):
            os.utime(row.path, (row.mtime - 1000 + i, row.mtime - 1000 + i))
        assert cache.lookup(mutants[0], WL, N) is not None
        rows = cache.entries()
        assert rows[-1].path.name == oldest.path.name
        cache.gc(sum(r.bytes for r in rows[-2:]))
        assert oldest.path.name in {r.path.name for r in cache.entries()}

    def test_dry_run_deletes_nothing(self, cache, config):
        self._fill(cache, config)
        before = len(cache.entries())
        report = cache.gc(0, dry_run=True)
        assert report["dry_run"] is True
        assert report["evicted"] == before
        assert len(cache.entries()) == before

    def test_gc_without_budget_raises(self, cache):
        with pytest.raises(ValueError):
            cache.gc()

    def test_auto_gc_on_put(self, tmp_path, config):
        small = ResultCache(tmp_path / "small", max_bytes=1)
        self._fill(small, config, count=3)
        # Every put over budget triggered an eviction pass.
        assert len(small.entries()) <= 1


def config_fingerprint_for_entry(cache, entry):
    payload = json.loads(entry.path.read_text())
    return payload["fingerprint"]


class TestStatsAndCli:
    def test_stats_dict_shape(self, cache, config):
        cache.put(config, WL, N, run_once(config))
        cache.lookup(config, WL, N)
        cache.lookup(config, WL, N + 1)
        stats = cache.stats_dict()
        assert stats["exact_hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] > 0

    def test_cli_ls_stats_gc(self, cache, config, capsys):
        cache.put(config, WL, N, run_once(config))
        root = str(cache.cache_dir)
        assert cache_cli(["ls", root]) == 0
        assert WL in capsys.readouterr().out
        assert cache_cli(["stats", root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert cache_cli(["gc", root, "--max-mb", "0", "--dry-run", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["evicted"] == 1 and report["dry_run"] is True

    def test_cli_pin_unpin(self, cache, config, capsys):
        cache.put(config, WL, N, run_once(config))
        fp = config_fingerprint(config)
        root = str(cache.cache_dir)
        assert cache_cli(["pin", root, fp, WL, str(N)]) == 0
        assert cache.entries()[0].pinned
        assert cache_cli(["unpin", root, fp, WL, str(N)]) == 0
        assert not cache.entries()[0].pinned
        assert cache_cli(["pin", root, "0" * 64, WL, str(N)]) == 1


class TestFingerprintMemoization:
    """Satellite: the memoized fingerprint must keep identical digests."""

    def test_digest_matches_unmemoized_recomputation(self, config):
        import hashlib

        expected = hashlib.sha256(
            json.dumps(config_to_dict(config), sort_keys=True).encode()
        ).hexdigest()
        assert config_fingerprint(config) == expected
        # Memoized second call returns the same digest.
        assert config_fingerprint(config) == expected
        # An equal-but-distinct config object digests identically…
        clone = dataclasses.replace(config)
        assert config_fingerprint(clone) == expected
        # …and any mutation digests differently.
        mutant = dataclasses.replace(config, capacity_scale=config.capacity_scale + 1)
        assert config_fingerprint(mutant) != expected

    def test_store_fingerprint_delegates(self, config):
        store = ResultStore()
        assert store.fingerprint(config) == config_fingerprint(config)
