"""Tests for the offline crash-consistency checker (repro.service.fsck).

A golden state dir — one real campaign run to completion — is corrupted one
seeded class at a time; ``check`` must name each class, ``--repair`` must
quarantine-and-rebuild back to a passing state, and repair must refuse to
touch a state dir a live daemon is serving.
"""

import json
import os
import shutil

import pytest

from repro.service import DONE, PENDING, build_service
from repro.service.fsck import (
    EXIT_ERRORS,
    EXIT_OK,
    EXIT_REFUSED,
    check_state_dir,
    main,
    repair_state_dir,
)
from repro.service.http import preset_configs
from repro.service.journal import Journal, encode_record
from repro.service.queue import JobQueue
from repro.sim.serialization import config_to_dict


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """One completed campaign: journal + checkpoint + flight dump."""
    state = tmp_path_factory.mktemp("golden")
    service = build_service(
        state / "journal.wal", state / "ckpt", fsync=False, poll_s=0.01,
    )
    service.submit_config(
        config_to_dict(preset_configs()["baseline_server"]),
        "hmmer_like", 2000,
    )
    service.start()
    try:
        assert service.wait_idle(timeout=60)
    finally:
        service.stop()
    service.dump_flight_recorder("golden")
    service.queue.journal.close()
    return state


@pytest.fixture
def state(golden, tmp_path):
    """A disposable copy of the golden state dir."""
    target = tmp_path / "state"
    shutil.copytree(golden, target)
    return target


def codes(report):
    return {f.code for f in report.findings}


def append_records(state, payloads):
    with open(state / "journal.wal", "ab") as fh:
        for payload in payloads:
            fh.write(encode_record(payload))


def checkpoint_file(state):
    files = [
        p for p in (state / "ckpt").glob("*.json") if ".corrupt" not in p.name
    ]
    assert len(files) == 1
    return files[0]


class TestCheckClean:
    def test_golden_state_is_clean(self, state):
        report = check_state_dir(state)
        assert report.ok
        assert report.findings == []
        assert report.checked["done_jobs"] == 1
        assert report.checked["checkpoints"] == 1
        assert report.checked["flight_dumps"] == 1

    def test_empty_dir_warns_but_is_ok(self, tmp_path):
        report = check_state_dir(tmp_path)
        assert report.ok
        assert codes(report) == {"journal-missing"}


class TestCorruptionClasses:
    def test_torn_journal_tail(self, state):
        with open(state / "journal.wal", "ab") as fh:
            fh.write(b"J1 deadbeef 99 {half a rec")
        report = check_state_dir(state)
        assert report.ok  # a torn tail is debris, not an invariant break
        assert "journal-torn-tail" in codes(report)
        # Strictly read-only: the torn bytes are still there afterwards.
        assert (state / "journal.wal").read_bytes().endswith(b"{half a rec")

    def test_invalid_record(self, state):
        append_records(state, [{"op": "done", "id": "j-no-such"}])
        report = check_state_dir(state)
        assert not report.ok
        assert "journal-invalid-record" in codes(report)

    def test_orphan_lease(self, state):
        append_records(state, [
            {"op": "submit", "job": _job_dict("j009901", 991)},
            {"op": "lease", "id": "j009901", "owner": "w-dead",
             "expires_at": 1e12},
        ])
        report = check_state_dir(state)
        assert report.ok  # recoverable by replay, so a warning
        assert "orphan-lease" in codes(report)

    def test_done_without_checkpoint(self, state):
        checkpoint_file(state).unlink()
        report = check_state_dir(state)
        assert not report.ok
        assert "done-no-checkpoint" in codes(report)

    def test_done_with_corrupt_checkpoint(self, state):
        checkpoint_file(state).write_text("{not json")
        report = check_state_dir(state)
        assert not report.ok
        assert "done-corrupt-checkpoint" in codes(report)
        assert "checkpoint-corrupt" in codes(report)

    def test_duplicate_dedup_key(self, state):
        twin = _job_dict("j009902", 992)
        twin2 = dict(twin, job_id="j009903", seq=993)
        append_records(state, [
            {"op": "submit", "job": twin},
            {"op": "submit", "job": twin2},
        ])
        report = check_state_dir(state)
        assert not report.ok
        assert "dedup-duplicate" in codes(report)

    def test_tmp_residue(self, state):
        (state / "ckpt" / "half-written.json.tmp").write_text("{")
        report = check_state_dir(state)
        assert report.ok
        assert "tmp-residue" in codes(report)

    def test_corrupt_flight_dump(self, state):
        dump = next(state.glob("flightrec-*.jsonl"))
        dump.write_text('{"ok": true}\n{broken line\n')
        report = check_state_dir(state)
        assert report.ok
        assert "flight-dump-corrupt" in codes(report)

    def test_live_daemon_warning(self, state):
        (state / "service.json").write_text(
            json.dumps({"pid": os.getpid()})
        )
        report = check_state_dir(state)
        assert "daemon-alive" in codes(report)

    def test_dead_pid_in_ready_file_is_quiet(self, state):
        (state / "service.json").write_text(json.dumps({"pid": 2 ** 22 + 11}))
        report = check_state_dir(state)
        assert "daemon-alive" not in codes(report)


class TestRepair:
    def test_repair_clean_state_is_a_no_op_compaction(self, state):
        report = repair_state_dir(state)
        assert report.ok
        assert any("rewrote journal" in r for r in report.repairs)

    def test_repair_truncates_torn_tail(self, state):
        with open(state / "journal.wal", "ab") as fh:
            fh.write(b"garbage-tail")
        report = repair_state_dir(state)
        assert report.ok
        assert "journal-torn-tail" not in codes(report)
        assert any("torn journal bytes" in r for r in report.repairs)

    def test_repair_drops_invalid_records(self, state):
        append_records(state, [{"op": "done", "id": "j-no-such"}])
        report = repair_state_dir(state)
        assert report.ok
        assert any("did not replay" in r for r in report.repairs)

    def test_repair_reclaims_orphan_lease(self, state):
        append_records(state, [
            {"op": "submit", "job": _job_dict("j009901", 991)},
            {"op": "lease", "id": "j009901", "owner": "w-dead",
             "expires_at": 1e12},
        ])
        report = repair_state_dir(state)
        assert report.ok
        assert any("reclaimed orphan lease" in r for r in report.repairs)
        queue = JobQueue(Journal(state / "journal.wal", fsync=False))
        assert queue.get("j009901").state == PENDING
        queue.journal.close()

    def test_repair_demotes_done_without_checkpoint(self, state):
        checkpoint_file(state).unlink()
        report = repair_state_dir(state)
        assert report.ok
        assert any("demoted" in r for r in report.repairs)
        queue = JobQueue(Journal(state / "journal.wal", fsync=False))
        jobs = queue.jobs()
        assert len(jobs) == 1
        assert jobs[0].state == PENDING
        assert jobs[0].summary is None
        queue.journal.close()

    def test_repair_quarantines_corrupt_checkpoint(self, state):
        path = checkpoint_file(state)
        path.write_text("{not json")
        report = repair_state_dir(state)
        assert report.ok
        assert not path.exists()
        assert path.with_suffix(".json.corrupt").exists()
        # The acked job it backed was demoted for a deterministic re-run.
        assert any("demoted" in r for r in report.repairs)

    def test_repair_deletes_tmp_residue(self, state):
        residue = state / "ckpt" / "half.json.tmp"
        residue.write_text("{")
        report = repair_state_dir(state)
        assert report.ok
        assert not residue.exists()

    def test_repair_quarantines_corrupt_flight_dump(self, state):
        dump = next(state.glob("flightrec-*.jsonl"))
        dump.write_text("{broken\n")
        report = repair_state_dir(state)
        assert report.ok
        assert not dump.exists()
        assert dump.with_suffix(".jsonl.corrupt").exists()

    def test_repair_refuses_live_daemon(self, state):
        (state / "service.json").write_text(
            json.dumps({"pid": os.getpid()})
        )
        with pytest.raises(RuntimeError, match="live daemon"):
            repair_state_dir(state)

    def test_repaired_state_serves_again(self, state):
        """After a multi-class corruption + repair, a real service stands
        up on the state dir and finishes the demoted job."""
        checkpoint_file(state).unlink()       # lose the acked result
        with open(state / "journal.wal", "ab") as fh:
            fh.write(b"torn!")                 # tear the tail
        assert not check_state_dir(state).ok
        assert repair_state_dir(state).ok

        service = build_service(
            state / "journal.wal", state / "ckpt", fsync=False, poll_s=0.01,
        )
        service.start()
        try:
            assert service.wait_idle(timeout=60)
        finally:
            service.stop()
            service.queue.journal.close()
        report = check_state_dir(state)
        assert report.ok
        assert report.checked["done_jobs"] == 1


class TestCli:
    def test_clean_exit_zero(self, state, capsys):
        assert main([str(state)]) == EXIT_OK
        assert "clean" in capsys.readouterr().out

    def test_errors_exit_one(self, state, capsys):
        checkpoint_file(state).unlink()
        assert main([str(state)]) == EXIT_ERRORS
        assert "done-no-checkpoint" in capsys.readouterr().out

    def test_repair_then_clean(self, state, capsys):
        checkpoint_file(state).unlink()
        assert main([str(state), "--repair"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "repaired:" in out

    def test_json_report(self, state, capsys):
        assert main([str(state), "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["checked"]["done_jobs"] == 1

    def test_missing_dir_refused(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == EXIT_REFUSED

    def test_repair_refusal_exit_code(self, state, capsys):
        (state / "service.json").write_text(
            json.dumps({"pid": os.getpid()})
        )
        assert main([str(state), "--repair"]) == EXIT_REFUSED
        assert "refusing" in capsys.readouterr().err


def _job_dict(job_id: str, seq: int) -> dict:
    """A minimal valid journal-job payload for hand-seeded records."""
    return {
        "job_id": job_id,
        "seq": seq,
        "fingerprint": "f" * 64,
        "config_name": "seeded",
        "config": {"name": "seeded"},
        "workload": "wl",
        "n_instrs": 1000,
        "state": "pending",
        "submitted_at": 1.0,
    }
