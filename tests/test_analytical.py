"""Simulator validation against the analytical bounds."""

import pytest

from repro.caches.hierarchy import CacheHierarchy, LevelSpec
from repro.cpu.core import CoreParams, OOOCore
from repro.memory.controller import MemoryController
from repro.sim.analytical import (
    LoopShape,
    bandwidth_bound,
    chain_bound,
    predicted_ipc,
    width_bound,
    window_bound,
)
from repro.workloads.trace import Instr, Op, Trace


def make_hierarchy():
    return CacheHierarchy(
        1,
        l1i=LevelSpec(8, 8, 5),
        l1d=LevelSpec(8, 8, 5),
        l2=LevelSpec(64, 8, 15),
        llc=LevelSpec(256, 8, 40),
        memory=MemoryController(fixed_latency=160),
    )


def simulate(instrs, params=None):
    core = OOOCore(0, make_hierarchy(), params or CoreParams())
    result = core.run(Trace("t", "ISPEC", instrs))
    return result.ipc


class TestBoundsAlgebra:
    def test_width(self):
        assert width_bound(CoreParams(width=4)) == 4.0

    def test_chain(self):
        assert chain_bound(LoopShape(instructions=10, chain_latency=5)) == 2.0

    def test_chain_unbounded(self):
        assert chain_bound(LoopShape(instructions=10)) == float("inf")

    def test_window(self):
        shape = LoopShape(instructions=14, body_latency=70)
        # 224/14 = 16 iterations in flight, 70-cycle serial body each.
        assert window_bound(shape, CoreParams()) == pytest.approx(14 * 16 / 70)

    def test_bandwidth(self):
        shape = LoopShape(instructions=6, bytes_per_iter=64)
        bw = bandwidth_bound(shape)
        assert 0 < bw < 6

    def test_predicted_takes_min(self):
        shape = LoopShape(instructions=8, chain_latency=100)
        assert predicted_ipc(shape) == chain_bound(shape)


class TestSimulatorAgreement:
    def test_width_bound_kernel(self):
        """Independent ALUs: the simulator must sit at the width bound."""
        instrs = [Instr(0x400000, Op.ALU, srcs=(2,), dst=3) for _ in range(20_000)]
        ipc = simulate(instrs)
        bound = predicted_ipc(LoopShape(instructions=1))
        assert ipc == pytest.approx(bound, rel=0.1)

    def test_chain_bound_kernel(self):
        """A 1-cycle loop-carried ALU chain: IPC = instrs/chain = 1.0."""
        instrs = [Instr(0x400000, Op.ALU, srcs=(1,), dst=1) for _ in range(10_000)]
        ipc = simulate(instrs)
        bound = predicted_ipc(LoopShape(instructions=1, chain_latency=1))
        assert ipc == pytest.approx(bound, rel=0.06)

    def test_chain_bound_with_load(self):
        """Chain of L1 loads (5 cycles): IPC = 1/5."""
        instrs = [
            Instr(0x400000, Op.LOAD, srcs=(1,), dst=1, addr=0x1000)
            for _ in range(6000)
        ]
        ipc = simulate(instrs)
        bound = predicted_ipc(LoopShape(instructions=1, chain_latency=5))
        assert ipc == pytest.approx(bound, rel=0.1)

    def test_mixed_chain_kernel(self):
        """Loop: chained load + 3 dependent ALUs + 4 independent fillers.

        Chain = 5 (load) + 3 (alus) = 8 cycles for 8 instructions -> IPC 1.
        """
        instrs = []
        for _ in range(2000):
            instrs.append(Instr(0x400000, Op.LOAD, srcs=(1,), dst=1, addr=0x40))
            prev = 1
            for k in range(3):
                instrs.append(Instr(0x400004, Op.ALU, srcs=(prev,), dst=1))
            for k in range(4):
                instrs.append(Instr(0x400008, Op.ALU, srcs=(8,), dst=9))
        ipc = simulate(instrs)
        bound = predicted_ipc(LoopShape(instructions=8, chain_latency=8))
        assert ipc == pytest.approx(min(bound, 4.0), rel=0.15)

    def test_window_bound_kernel(self):
        """Iterations with a long internal (non-carried) chain overlap only
        up to the ROB: IPC = ROB / body_latency."""
        instrs = []
        for i in range(3000):
            # 60-cycle serial body (independent across iterations), 4 instrs
            instrs.append(Instr(0x400000, Op.LOAD, srcs=(2,), dst=4, addr=0x40))
            instrs.append(Instr(0x400004, Op.MUL, srcs=(4,), dst=4))
            instrs.append(Instr(0x400008, Op.FP, srcs=(4,), dst=4))
            instrs.append(Instr(0x40000C, Op.FP, srcs=(4,), dst=5))
        body = 5 + 3 + 4 + 4  # load + mul + fp + fp
        shape = LoopShape(instructions=4, body_latency=body)
        params = CoreParams(rob_size=32)
        ipc = simulate(instrs, params)
        bound = predicted_ipc(shape, params)
        assert ipc == pytest.approx(bound, rel=0.25)

    def test_bandwidth_bound_kernel(self):
        """A never-reused line-per-iteration stream is DRAM-bandwidth-bound
        within 2x (queueing/row effects are not in the analytical model)."""
        instrs = []
        for i in range(30_000):
            instrs.append(
                Instr(0x400000, Op.LOAD, srcs=(2,), dst=4, addr=i * 64)
            )
            instrs.append(Instr(0x400004, Op.ALU, srcs=(4,), dst=5))
        core = OOOCore(
            0,
            make_hierarchy_real(),
            CoreParams(enable_l1_stride=False, enable_l2_stream=False),
        )
        ipc = core.run(Trace("t", "ISPEC", instrs)).ipc
        bound = bandwidth_bound(LoopShape(instructions=2, bytes_per_iter=64))
        assert ipc <= bound * 1.05
        assert ipc >= bound / 4  # within the expected queueing factor


def make_hierarchy_real():
    return CacheHierarchy(
        1,
        l1i=LevelSpec(8, 8, 5),
        l1d=LevelSpec(8, 8, 5),
        l2=LevelSpec(64, 8, 15),
        llc=LevelSpec(256, 8, 40),
        memory=MemoryController(),  # real DRAM for the bandwidth test
    )
