"""Figure 16 + Section VI-E: energy of the two-level CATCH hierarchy.

Compares the three-level baseline against two-level CATCH (noL2 + 9.5 MB) at
iso-area, pricing the simulator's activity counts through the CACTI-, Orion-
and Micron-style models.  Paper shape: the two-level hierarchy moves ~5x more
interconnect traffic but does ~37% less cache work and ~22% less DRAM traffic
(bigger LLC), netting ~11% energy savings on a small (ring) interconnect.
"""

from __future__ import annotations

from collections import defaultdict

from ..obs import console
from ..power.energy import ChipModel
from ..sim.config import no_l2, skylake_server, with_catch
from .common import (
    resolve_params,
    sweep,
    workload_categories,
    workload_names,
)


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    base = skylake_server()
    catch2 = with_catch(no_l2(base, 9.5), name="noL2_9.5+CATCH")
    workloads = workload_names(quick)
    results = sweep([base, catch2], workloads, n)
    base_model = ChipModel(base)
    catch_model = ChipModel(catch2)

    categories = workload_categories()
    savings_by_cat: dict[str, list[float]] = defaultdict(list)
    traffic = {"cache": [], "interconnect": [], "dram": []}
    for wl in workloads:
        a_base = results[base.name][wl].activity
        a_catch = results[catch2.name][wl].activity
        e_base = base_model.energy(a_base)
        e_catch = catch_model.energy(a_catch)
        savings_by_cat[categories[wl]].append(1 - e_catch.total_j / e_base.total_j)
        if a_base.cache_accesses:
            traffic["cache"].append(a_catch.cache_accesses / a_base.cache_accesses)
        if a_base.ring_flit_hops:
            traffic["interconnect"].append(
                a_catch.ring_flit_hops / a_base.ring_flit_hops
            )
        dram_base = a_base.dram_reads + a_base.dram_writes
        if dram_base:
            traffic["dram"].append(
                (a_catch.dram_reads + a_catch.dram_writes) / dram_base
            )
    summary = {
        cat: sum(vals) / len(vals) for cat, vals in sorted(savings_by_cat.items())
    }
    all_savings = [v for vals in savings_by_cat.values() for v in vals]
    summary["GeoMean"] = sum(all_savings) / len(all_savings)
    traffic_ratio = {k: sum(v) / len(v) for k, v in traffic.items() if v}
    area = {
        "baseline_mm2": base_model.area().total_mm2,
        "two_level_mm2": catch_model.area().total_mm2,
    }
    return {
        "experiment": "fig16_energy",
        "energy_savings": summary,
        "traffic_ratio_vs_baseline": traffic_ratio,
        "area": area,
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 16: energy savings of two-level CATCH (noL2 + 9.5MB LLC)")
    for cat, value in data["energy_savings"].items():
        console(f"  {cat:10s} {value:+7.1%}")
    console("traffic vs baseline (ratio):")
    for kind, ratio in data["traffic_ratio_vs_baseline"].items():
        console(f"  {kind:14s} {ratio:6.2f}x")
    a = data["area"]
    console(
        f"area: baseline {a['baseline_mm2']:.1f} mm2, "
        f"two-level {a['two_level_mm2']:.1f} mm2"
    )
    return data


if __name__ == "__main__":
    main()
