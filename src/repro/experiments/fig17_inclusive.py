"""Figure 17: CATCH on the small-L2, inclusive-LLC (client) baseline.

Baseline: 256 KB L2 + 8 MB inclusive LLC (Skylake client).  Variants: noL2,
noL2+CATCH, noL2+CATCH with the reclaimed L2 area added to the LLC (9 MB),
and CATCH on the three-level baseline.  Paper: -5.7%, +6.4%, +7.2%, +10.3%.
"""

from __future__ import annotations

from ..obs import console
from ..sim.config import fig17_configs, skylake_client
from .common import (
    format_pct_table,
    resolve_params,
    speedup_summary,
    sweep,
    workload_names,
)


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    base = skylake_client()
    variants = fig17_configs()
    workloads = workload_names(quick)
    results = sweep([base, *variants], workloads, n)
    summary = {
        cfg.name: speedup_summary(results[cfg.name], results[base.name])
        for cfg in variants
    }
    return {"experiment": "fig17_inclusive", "summary": summary}


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 17: CATCH on the 256KB-L2 inclusive-LLC baseline")
    console(format_pct_table(data["summary"]))
    return data


if __name__ == "__main__":
    main()
