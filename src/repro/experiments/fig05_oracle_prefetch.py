"""Figure 5: performance potential of criticality-aware oracle prefetching.

An oracle converts every L1 miss of a *tracked critical PC* that would hit in
the L2/LLC into an L1 hit (zero-time prefetch), with all code fetches hitting
the L1I.  The tracked-PC budget is swept (32 ... all); a final configuration
removes the L2 entirely.  Paper shape: 32 PCs already capture most of the
all-PC gain (5.5% vs 6.6%), and with the oracle the noL2 machine matches the
three-level one — the motivating result for CATCH.

Baseline hardware prefetchers are disabled throughout (as in the paper,
training them under an oracle is ill-defined).
"""

from __future__ import annotations

from dataclasses import replace

from ..obs import console
from ..core.oracle import OraclePrefetchEngine, profile_critical_pcs
from ..cpu.core import CoreParams
from ..sim.config import no_l2, skylake_server
from ..sim.metrics import geomean
from ..sim.simulator import Simulator
from ..workloads.suites import build_trace, get_spec
from .common import resolve_params, workload_names

PC_BUDGETS = (32, 64, 128, 1024, 2048)


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    core = CoreParams(enable_l1_stride=False, enable_l2_stream=False)
    base = replace(skylake_server(), core=core)
    nol2 = replace(no_l2(base, 6.5), core=core)
    workloads = workload_names(quick)
    budgets = PC_BUDGETS if not quick else (32, 2048)

    gains: dict[str, list[float]] = {str(b): [] for b in budgets}
    gains["all"] = []
    gains["noL2+2048"] = []
    converted: list[float] = []
    for wl in workloads:
        sim = Simulator(base)
        baseline = sim.run(wl, n)
        spec = get_spec(wl)
        trace = build_trace(wl, 2 * n * spec.length_multiplier)
        ranked = profile_critical_pcs(trace, lambda: sim.build_hierarchy(1), core)
        for budget in budgets:
            engine = OraclePrefetchEngine(set(ranked[:budget]))
            result = sim.run(wl, n, engine=engine)
            gains[str(budget)].append(result.ipc / baseline.ipc)
            if budget == budgets[0]:
                total_misses = sum(
                    v for lvl, v in baseline.load_served.items() if lvl.value > 0
                )
                converted.append(
                    engine.stats.converted_loads / total_misses if total_misses else 0.0
                )
        engine = OraclePrefetchEngine(all_pcs=True)
        gains["all"].append(sim.run(wl, n, engine=engine).ipc / baseline.ipc)
        nol2_sim = Simulator(nol2)
        nol2_engine = OraclePrefetchEngine(set(ranked[:2048]))
        gains["noL2+2048"].append(
            nol2_sim.run(wl, n, engine=nol2_engine).ipc / baseline.ipc
        )
    return {
        "experiment": "fig05_oracle_prefetch",
        "gain_by_budget": {k: geomean(v) - 1 for k, v in gains.items()},
        "pct_l1_misses_converted_at_32": sum(converted) / len(converted),
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 5: criticality-aware oracle prefetch potential")
    for key, value in data["gain_by_budget"].items():
        console(f"  tracked PCs {key:>10s}: {value:+7.1%}")
    console(
        f"  L1 misses converted at 32 PCs: "
        f"{data['pct_l1_misses_converted_at_32']:.1%}"
    )
    return data


if __name__ == "__main__":
    main()
