"""Figure 1: performance impact of removing the L2 cache.

Baseline: 1 MB L2 + 5.5 MB exclusive LLC (Skylake-server-like).  Variants:
``noL2 + 6.5 MB LLC`` (iso-capacity for one core) and ``noL2 + 9.5 MB LLC``
(iso-area for the four-core chip).  The paper reports -7.8% and -5.1%
geomean respectively — removing the L2 hurts even when its area is given
back to the LLC, which is the puzzle CATCH resolves.
"""

from __future__ import annotations

from ..obs import console
from ..sim.config import no_l2, skylake_server
from .common import (
    format_pct_table,
    resolve_params,
    speedup_summary,
    sweep,
    workload_names,
)


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    """Reproduce Figure 1; returns per-config, per-category perf impact."""
    n = resolve_params(quick, n_instrs)
    base = skylake_server()
    variants = [no_l2(base, 6.5), no_l2(base, 9.5)]
    workloads = workload_names(quick)
    results = sweep([base, *variants], workloads, n)
    summary = {
        cfg.name: speedup_summary(results[cfg.name], results[base.name])
        for cfg in variants
    }
    return {
        "experiment": "fig01_remove_l2",
        "summary": summary,
        "per_workload": {
            cfg.name: {
                wl: results[cfg.name][wl].ipc / results[base.name][wl].ipc - 1
                for wl in workloads
            }
            for cfg in variants
        },
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 1: performance impact of removing the L2")
    console(format_pct_table(data["summary"]))
    return data


if __name__ == "__main__":
    main()
