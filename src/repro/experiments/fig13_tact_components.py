"""Figure 13: contribution of each TACT component.

On the two-level (noL2 + 6.5 MB) hierarchy, TACT components are enabled
cumulatively: Code, +Cross, +Deep-Self, +Feeder.  Paper: +0.75% (code,
server-heavy), +3.7% (cross), +5.9% (deep), +2.7% (feeder, ISPEC-heavy) —
13% total over the noL2 baseline.
"""

from __future__ import annotations

from ..obs import console
from ..core.tact.coordinator import TACTConfig
from ..sim.config import no_l2, skylake_server, with_catch
from .common import (
    format_pct_table,
    resolve_params,
    speedup_summary,
    sweep,
    workload_names,
)

#: Cumulative component stacks, built through the registry names so the
#: stages stay in sync with ``TACTConfig.COMPONENTS`` / ``--prefetchers``.
_CUMULATIVE = (
    ("Code", ("tact-code",)),
    ("+Cross", ("tact-code", "tact-cross")),
    ("+Deep", ("tact-code", "tact-cross", "tact-deep-self")),
    ("+Feeder", ("tact-code", "tact-cross", "tact-deep-self", "tact-feeder")),
)
STAGES = tuple(
    (label, TACTConfig.with_components(names)) for label, names in _CUMULATIVE
)


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    nol2 = no_l2(skylake_server(), 6.5)
    variants = [
        with_catch(nol2, name=f"noL2+{label}", tact=tact) for label, tact in STAGES
    ]
    workloads = workload_names(quick)
    results = sweep([nol2, *variants], workloads, n)
    cumulative = {
        cfg.name: speedup_summary(results[cfg.name], results[nol2.name])
        for cfg in variants
    }
    increments = {}
    prev = None
    for (label, _), cfg in zip(STAGES, variants):
        gm = cumulative[cfg.name]["GeoMean"]
        increments[label] = gm - prev if prev is not None else gm
        prev = gm
    return {
        "experiment": "fig13_tact_components",
        "cumulative": cumulative,
        "increments": increments,
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 13: TACT component contribution over the noL2 baseline")
    console(format_pct_table(data["cumulative"]))
    console("incremental GeoMean gains:")
    for label, inc in data["increments"].items():
        console(f"  {label:8s} {inc:+.1%}")
    return data


if __name__ == "__main__":
    main()
