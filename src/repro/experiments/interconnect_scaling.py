"""Extension study: where the two-level CATCH energy win breaks down.

Section VI-E: the two-level hierarchy trades a large increase in interconnect
traffic for less cache and DRAM work, which nets positive on a small-core
ring but "would not be true for large core count processors that would use a
complex MESH ... an L2 may still be needed for primarily reducing the
interconnect traffic".

This experiment makes that crossover concrete: it measures per-core traffic
for the baseline and the two-level CATCH hierarchy once, then re-prices the
interconnect component under growing topologies (4-core ring, then 8/16/
32/64-core meshes, scaling mean hop distance accordingly).  The quantity
reported is the interconnect energy *premium* of going two-level, relative
to the cache+DRAM energy the two-level hierarchy saves — above 1.0, dropping
the L2 no longer pays.
"""

from __future__ import annotations

from ..obs import console
from ..interconnect.mesh import MeshInterconnect
from ..interconnect.ring import RingInterconnect
from ..power.energy import ChipModel
from ..power.orion import RingEnergyModel
from ..sim.config import no_l2, skylake_server, with_catch
from .common import resolve_params, sweep, workload_names

TOPOLOGIES = (
    ("ring-4", RingInterconnect(4)),
    ("mesh-8", MeshInterconnect(8)),
    ("mesh-16", MeshInterconnect(16)),
    ("mesh-32", MeshInterconnect(32)),
    ("mesh-64", MeshInterconnect(64)),
)


def _mean_hops(interconnect) -> float:
    if isinstance(interconnect, MeshInterconnect):
        return interconnect.mean_hops()
    total = sum(
        interconnect.hops(c, s)
        for c in range(interconnect.n_cores)
        for s in range(interconnect.n_slices)
    )
    return total / (interconnect.n_cores * interconnect.n_slices)


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    base = skylake_server()
    catch2 = with_catch(no_l2(base, 9.5), name="noL2_9.5+CATCH")
    workloads = workload_names(quick)
    results = sweep([base, catch2], workloads, n)
    base_model = ChipModel(base)
    catch_model = ChipModel(catch2)

    # Measured per-workload components on the 4-core-ring reference machine.
    reference_hops = _mean_hops(RingInterconnect(4))
    rows = {}
    for label, topo in TOPOLOGIES:
        scale = _mean_hops(topo) / reference_hops
        stops = topo.n_stops
        premium_num = 0.0
        premium_den = 0.0
        for wl in workloads:
            a_base = results[base.name][wl].activity
            a_catch = results[catch2.name][wl].activity
            ring_model = RingEnergyModel(stops)
            extra_ring = ring_model.energy_j(
                int(a_catch.ring_flit_hops * scale), a_catch.cycles
            ) - ring_model.energy_j(
                int(a_base.ring_flit_hops * scale), a_base.cycles
            )
            e_base = base_model.energy(a_base)
            e_catch = catch_model.energy(a_catch)
            saved = (e_base.cache_j + e_base.dram_j) - (
                e_catch.cache_j + e_catch.dram_j
            )
            premium_num += max(extra_ring, 0.0)
            premium_den += max(saved, 1e-15)
        rows[label] = {
            "mean_hops": _mean_hops(topo),
            "interconnect_premium": premium_num / premium_den,
        }
    return {"experiment": "interconnect_scaling", "rows": rows}


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Extension: interconnect scaling of the two-level CATCH energy trade")
    console(f"{'topology':10s}{'mean hops':>11s}{'ring premium / cache+DRAM saved':>34s}")
    for label, row in data["rows"].items():
        console(
            f"{label:10s}{row['mean_hops']:>11.2f}"
            f"{row['interconnect_premium']:>34.2f}"
        )
    console(
        "\nAbove 1.0 the extra interconnect energy of going two-level exceeds "
        "the cache+DRAM energy it saves — the paper's argument for keeping a "
        "small L2 on large-core-count mesh parts."
    )
    return data


if __name__ == "__main__":
    main()
