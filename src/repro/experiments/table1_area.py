"""Table I + Figure 9: hardware cost of the criticality detector and TACT.

Analytic accounting, no simulation: the buffered-DDG storage (~2.6 KB for a
224-entry ROB), the hashed-PC store (~0.7 KB), the 32-entry critical load
table, and the TACT structures (~1.2 KB) — the paper's "about 3 KB" detector
plus "about 1.2 KB" TACT budget.
"""

from __future__ import annotations

from ..obs import console
from ..core.criticality import detector_area
from ..core.ddg import graph_area_bytes
from ..core.tact.coordinator import TACTCoordinator


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    del quick, n_instrs  # analytic; signature kept uniform
    graph = graph_area_bytes(rob_size=224)
    det = detector_area(rob_size=224, table_entries=32)
    tact = TACTCoordinator.area_bytes()
    return {
        "experiment": "table1_area",
        "graph": graph,
        "detector_total_kb": det.total_kb,
        "tact_bytes": tact,
        "tact_total_kb": sum(tact.values()) / 1024,
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    g = data["graph"]
    console("Table I: DDG buffering area")
    console(f"  entries (2.5 x ROB):      {g['entries']}")
    console(f"  bits per instruction:     {g['per_instr_bits']}")
    console(f"  graph storage:            {g['graph_bytes'] / 1024:.2f} KB")
    console(f"  hashed-PC storage:        {g['pc_bytes'] / 1024:.2f} KB")
    console(f"  detector total:           {data['detector_total_kb']:.2f} KB (paper: ~3 KB)")
    console("Figure 9: TACT structures")
    for name, size in data["tact_bytes"].items():
        console(f"  {name:24s}{size:6.0f} B")
    console(f"  TACT total:               {data['tact_total_kb']:.2f} KB (paper: ~1.2 KB)")
    return data


if __name__ == "__main__":
    main()
