"""Table II: the workload suite.

Prints the synthetic suite with the paper-category mapping, kernels, and the
measured trace characteristics (loads, branches, code/data footprints).
"""

from __future__ import annotations

from ..obs import console
from ..workloads.suites import ST_SUITE, build_trace
from .common import resolve_params


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    rows = []
    for spec in ST_SUITE:
        trace = build_trace(spec.name, n * spec.length_multiplier)
        rows.append(
            {
                "name": spec.name,
                "category": spec.category,
                "kernel": spec.kernel.__name__,
                "instructions": len(trace),
                "loads": trace.load_count,
                "branches": trace.branch_count,
                "data_kb": trace.footprint_lines() * 64 // 1024,
                "code_kb": trace.code_lines() * 64 // 1024,
            }
        )
    return {"experiment": "table2_workloads", "rows": rows}


def main(quick: bool = True) -> dict:
    data = run(quick=quick)
    console("Table II: workload suite")
    console(
        f"{'name':22s}{'category':10s}{'kernel':18s}"
        f"{'loads':>8s}{'branch':>8s}{'dataKB':>8s}{'codeKB':>8s}"
    )
    for r in data["rows"]:
        console(
            f"{r['name']:22s}{r['category']:10s}{r['kernel']:18s}"
            f"{r['loads']:>8d}{r['branches']:>8d}{r['data_kb']:>8d}{r['code_kb']:>8d}"
        )
    return data


if __name__ == "__main__":
    main()
