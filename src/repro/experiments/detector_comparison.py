"""Extension study: DDG detection vs heuristic criticality predictors.

Section IV-A argues that heuristics "flag many more PCs than are truly
critical", and Section VII positions the buffered-DDG detector as the novel
alternative.  This experiment quantifies that claim on our suite: each
detector drives the full TACT machinery on the two-level (noL2) hierarchy,
and we compare

* delivered performance (the end-to-end measure of identification quality),
* how many distinct PCs each mechanism flagged (over-flagging pressure on
  the 32-entry table and the L1),
* how many L1 prefetches each issued (L1 pollution pressure).

Also runs the "lfu" critical-table variant (the paper's future-work fix for
povray-class PC thrashing) on the DDG detector.
"""

from __future__ import annotations

from dataclasses import replace

from ..obs import console
from ..core.catch_engine import CatchEngine
from ..plugins import DETECTORS as DETECTOR_REGISTRY
from ..sim.config import no_l2, skylake_server, with_catch
from ..sim.metrics import geomean
from ..sim.simulator import Simulator
from .common import resolve_params, workload_names

#: Every registered detector that can drive TACT end to end: ``none`` builds
#: no engine at all and ``oracle`` needs a workload-specific PC set, so both
#: are excluded; anything registered via ``$REPRO_PLUGINS`` is picked up.
_EXCLUDED = frozenset({"none", "oracle"})
DETECTORS = (
    "ddg",
    *(
        name
        for name in DETECTOR_REGISTRY.names()
        if name != "ddg" and name not in _EXCLUDED
    ),
)


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    nol2 = no_l2(skylake_server(), 6.5)
    workloads = workload_names(quick)
    base_sim = Simulator(nol2)
    baselines = {wl: base_sim.run(wl, n) for wl in workloads}

    by_detector: dict[str, dict] = {}
    for name in DETECTORS:
        cfg = with_catch(nol2, name=f"noL2+CATCH[{name}]")
        cfg = replace(cfg, catch=replace(cfg.catch, detector=name))
        sim = Simulator(cfg)
        speedups = []
        flagged_pcs = []
        prefetches = []
        for wl in workloads:
            engine = CatchEngine(cfg.catch)
            result = sim.run(wl, n, engine=engine)
            speedups.append(result.ipc / baselines[wl].ipc)
            flagged_pcs.append(len(engine.detector.critical_pc_counts))
            prefetches.append(engine.tact.stats.issued if engine.tact else 0)
        by_detector[name] = {
            "speedup": geomean(speedups) - 1,
            "avg_flagged_pcs": sum(flagged_pcs) / len(flagged_pcs),
            "avg_prefetches": sum(prefetches) / len(prefetches),
        }

    # Future-work variant: frequency-aware critical table on povray.
    lfu_cfg = with_catch(nol2, name="noL2+CATCH[lfu]")
    lfu_cfg = replace(lfu_cfg, catch=replace(lfu_cfg.catch, table_policy="lfu"))
    lru_povray = Simulator(with_catch(nol2)).run("povray_like", n)
    lfu_povray = Simulator(lfu_cfg).run("povray_like", n)
    base_povray = base_sim.run("povray_like", n)
    table_policy = {
        "povray_lru": lru_povray.ipc / base_povray.ipc - 1,
        "povray_lfu": lfu_povray.ipc / base_povray.ipc - 1,
    }
    return {
        "experiment": "detector_comparison",
        "by_detector": by_detector,
        "table_policy": table_policy,
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Extension: criticality detector comparison (driving TACT on noL2)")
    console(
        f"{'detector':18s}{'perf vs noL2':>14s}{'avg PCs flagged':>17s}"
        f"{'avg L1 prefetches':>19s}"
    )
    for name, row in data["by_detector"].items():
        console(
            f"{name:18s}{row['speedup']:>+14.1%}{row['avg_flagged_pcs']:>17.0f}"
            f"{row['avg_prefetches']:>19.0f}"
        )
    tp = data["table_policy"]
    console(
        f"\nfuture-work table policy on povray_like: "
        f"LRU {tp['povray_lru']:+.1%} vs LFU {tp['povray_lfu']:+.1%}"
    )
    return data


if __name__ == "__main__":
    main()
