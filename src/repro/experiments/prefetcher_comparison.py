"""Extension study: TACT vs conventional prefetchers on the two-level stack.

The paper's TACT prefetchers are criticality-*targeted*: they spend L1 fill
bandwidth only on the handful of loads the DDG detector flags.  The classic
alternative is criticality-*blind* hardware prefetching (next-line, IP-stride,
stream).  This experiment puts both families on the same two-level
(noL2 + 6.5 MB) hierarchy and measures, against a no-prefetch baseline:

* each conventional prefetcher from the ``PREFETCHERS`` registry alone,
* the baseline's conventional combination (IP-stride L1 + stream L2/LLC),
* CATCH (DDG detector + all four TACT components) on top of that combination.

The variant list is built by introspecting the registry — a prefetcher
registered through ``$REPRO_PLUGINS`` (see ARCHITECTURE.md) automatically
joins the comparison without touching this module.
"""

from __future__ import annotations

from dataclasses import replace

from ..obs import console
from ..plugins import PREFETCHERS
from ..sim.config import no_l2, skylake_server, with_catch
from .common import (
    format_pct_table,
    resolve_params,
    speedup_summary,
    sweep,
    workload_names,
)


def conventional_names() -> tuple[str, ...]:
    """Every core-scope (criticality-blind) prefetcher in the registry."""
    return tuple(
        name
        for name in PREFETCHERS.names()
        if PREFETCHERS.get(name).scope == "core"
    )


def build_variants() -> tuple:
    """(no-prefetch baseline, comparison variants) on the noL2 stack."""
    nol2 = no_l2(skylake_server(), 6.5)
    nopf = replace(nol2, name="noL2_nopf", prefetchers=())
    variants = [
        replace(nol2, name=f"noL2+{name}", prefetchers=(name,))
        for name in conventional_names()
    ]
    variants.append(
        replace(nol2, name="noL2+conv", prefetchers=("ip-stride", "stream"))
    )
    variants.append(with_catch(nol2, name="noL2+conv+CATCH"))
    return nopf, variants


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    nopf, variants = build_variants()
    workloads = workload_names(quick)
    results = sweep([nopf, *variants], workloads, n)
    summary = {
        cfg.name: speedup_summary(results[cfg.name], results[nopf.name])
        for cfg in variants
    }
    conventional = {
        name: row["GeoMean"]
        for name, row in summary.items()
        if name != "noL2+conv+CATCH"
    }
    best_name = max(conventional, key=conventional.get)
    return {
        "experiment": "prefetcher_comparison",
        "summary": summary,
        "best_conventional": best_name,
        "catch_vs_best_conventional": (
            summary["noL2+conv+CATCH"]["GeoMean"] - conventional[best_name]
        ),
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console(
        "Extension: conventional prefetchers vs CATCH on noL2 "
        "(speedup over no prefetching)"
    )
    console(format_pct_table(data["summary"]))
    console(
        f"\nbest conventional: {data['best_conventional']}; CATCH adds "
        f"{data['catch_vs_best_conventional']:+.1%} GeoMean on top"
    )
    return data


if __name__ == "__main__":
    main()
