from .registry import main

raise SystemExit(main())
