"""Figure 10: CATCH on the large-L2, exclusive-LLC baseline.

Five configurations against the Skylake-server baseline: noL2+6.5MB,
noL2+9.5MB (iso-area), both with CATCH, and CATCH on the unmodified
three-level hierarchy.  Paper shape: noL2 loses 7.8% (5.1% iso-area); CATCH
turns those into +4.6% / +7.2%; CATCH on the three-level baseline gains 8.4%
— and crucially two-level CATCH ~ three-level CATCH at equal area.
"""

from __future__ import annotations

from ..obs import console
from ..sim.config import fig10_configs, skylake_server
from .common import (
    format_pct_table,
    resolve_params,
    speedup_summary,
    sweep,
    workload_names,
)


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    base = skylake_server()
    variants = fig10_configs()
    workloads = workload_names(quick)
    results = sweep([base, *variants], workloads, n)
    summary = {
        cfg.name: speedup_summary(results[cfg.name], results[base.name])
        for cfg in variants
    }
    per_workload = {
        cfg.name: {
            wl: results[cfg.name][wl].ipc / results[base.name][wl].ipc - 1
            for wl in workloads
        }
        for cfg in variants
    }
    return {
        "experiment": "fig10_catch_exclusive",
        "summary": summary,
        "per_workload": per_workload,
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 10: CATCH on the 1MB-L2 exclusive-LLC baseline")
    console(format_pct_table(data["summary"]))
    return data


if __name__ == "__main__":
    main()
