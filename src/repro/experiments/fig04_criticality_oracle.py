"""Figure 4: the latency-conversion criticality oracles.

Three studies, each run in an "ALL" and a "NonCritical" variant:

* L1 hits re-priced at L2 latency,
* L2 hits re-priced at LLC latency,
* LLC hits re-priced at memory latency.

The critical-PC set comes from a detector-only profiling pass on the
baseline (the hardware's own criticality detection).  The paper's shape:
demoting *all* L1 hits is catastrophic (-16%) and even non-critical L1 hits
hurt (-4.9%) because cheap chains become critical when slowed; non-critical
L2 hits are nearly free to demote (-0.8% vs -7.8% for all); LLC demotion
hurts roughly linearly in the fraction demoted (memory misses always create
critical paths).  This asymmetry is the paper's case for attacking the L2.
"""

from __future__ import annotations

from ..obs import console
from ..caches.hierarchy import Level
from ..core.oracle import make_latency_policy, profile_critical_pcs
from ..sim.config import skylake_server
from ..sim.simulator import Simulator
from .common import resolve_params, workload_names
from ..sim.metrics import geomean

def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    base = skylake_server()
    sim = Simulator(base)
    mem_latency = 200.0
    studies = [
        ("L1_to_L2", Level.L1, float(base.l2.latency)),
        ("L2_to_LLC", Level.L2, float(base.llc.latency)),
        ("LLC_to_MEM", Level.LLC, mem_latency),
    ]
    workloads = workload_names(quick)

    # Baseline runs and criticality profiles are shared across all studies.
    # The critical set is capped at 32 PCs — the hardware table's capacity —
    # so "non-critical" has the same selectivity the real detector would.
    baselines = {wl: sim.run(wl, n) for wl in workloads}
    profiles = {
        wl: set(
            profile_critical_pcs(
                _trace_for(wl, n), lambda: sim.build_hierarchy(1), base.core,
                top_n=32,
            )
        )
        for wl in workloads
    }

    per_study: dict[str, dict[str, float]] = {}
    converted: dict[str, dict[str, float]] = {}
    for label, level, to_latency in studies:
        for mode in ("all", "noncritical"):
            key = f"{label}_{mode}"
            speedups = []
            frac_converted = []
            for wl in workloads:
                critical = profiles[wl] if mode == "noncritical" else set()
                policy = make_latency_policy(mode, critical, level, to_latency)
                demoted = sim.run(wl, n, latency_policy=policy)
                speedups.append(demoted.ipc / baselines[wl].ipc)
                total = policy.counts["total"]
                frac_converted.append(
                    policy.counts["converted"] / total if total else 0.0
                )
            per_study[key] = {"GeoMean": geomean(speedups) - 1}
            converted[key] = {
                "pct_loads_converted": sum(frac_converted) / len(frac_converted)
            }
    return {
        "experiment": "fig04_criticality_oracle",
        "impact": per_study,
        "converted": converted,
    }


def _trace_for(name: str, n_instrs: int):
    from ..workloads.suites import build_trace, get_spec

    spec = get_spec(name)
    return build_trace(name, 2 * n_instrs * spec.length_multiplier)


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 4: impact of increasing (non-)critical load latency")
    for key, value in data["impact"].items():
        conv = data["converted"][key]["pct_loads_converted"]
        console(f"  {key:28s} perf {value['GeoMean']:+7.1%}   loads converted {conv:6.1%}")
    return data


if __name__ == "__main__":
    main()
