"""Experiment registry and command-line entry point.

Usage::

    python -m repro.experiments <experiment> [--quick]
    python -m repro.experiments all [--quick] [--keep-going]

``--quick`` runs the representative workload cross-section at a short trace
length (what the benchmark suite uses); the default runs the full suite at
the full length and reproduces the paper's figures.

Long campaigns run through the resilient runner (:mod:`repro.runner`):

* ``--checkpoint-dir DIR`` persists every completed ``(config, workload)``
  run as a JSON checkpoint the moment it finishes; with ``--resume`` a rerun
  skips everything already checkpointed.
* ``--timeout S`` aborts any single run exceeding the wall-clock deadline;
  ``--retries N`` re-attempts transient per-run failures with backoff.
* ``--keep-going`` isolates failures: a crashing experiment is recorded in
  the structured failure report and the remaining experiments still run
  (the exit code stays nonzero).  ``--failure-report PATH`` writes the
  report as JSON; it is also embedded in ``--json`` output.
* ``--inject-fault SPEC`` (testing) deterministically sabotages matching
  runs — e.g. ``raise:workload=hmmer_like:at=2000`` — so the resilience
  machinery itself is exercisable end to end.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .. import obs
from ..runner import (
    ExperimentRunner,
    FailureRecord,
    FaultInjector,
    ResultStore,
    use_runner,
)
from ..sim.serialization import json_default
from . import (
    detector_comparison,
    interconnect_scaling,
    fig01_remove_l2,
    fig03_latency_sensitivity,
    fig04_criticality_oracle,
    fig05_oracle_prefetch,
    fig10_catch_exclusive,
    fig11_timeliness,
    fig12_per_workload,
    fig13_tact_components,
    fig14_multiprogrammed,
    fig15_llc_latency,
    fig16_energy,
    fig17_inclusive,
    table1_area,
    table2_workloads,
)

EXPERIMENTS = {
    "fig01": fig01_remove_l2,
    "fig03": fig03_latency_sensitivity,
    "fig04": fig04_criticality_oracle,
    "fig05": fig05_oracle_prefetch,
    "fig10": fig10_catch_exclusive,
    "fig11": fig11_timeliness,
    "fig12": fig12_per_workload,
    "fig13": fig13_tact_components,
    "fig14": fig14_multiprogrammed,
    "fig15": fig15_llc_latency,
    "fig16": fig16_energy,
    "fig17": fig17_inclusive,
    "table1": table1_area,
    "table2": table2_workloads,
    "detectors": detector_comparison,
    "interconnect": interconnect_scaling,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Reproduce the paper's tables and figures",
    )
    parser.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    parser.add_argument("--quick", action="store_true", help="fast subset")
    parser.add_argument("--json", metavar="PATH", help="also dump results as JSON")
    parser.add_argument(
        "--render", action="store_true",
        help="additionally draw ASCII bar charts of the summaries",
    )
    resil = parser.add_argument_group("resilience (see repro.runner)")
    resil.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist each completed (config, workload) run under DIR",
    )
    resil.add_argument(
        "--resume", action="store_true",
        help="serve runs already checkpointed in --checkpoint-dir from disk",
    )
    resil.add_argument(
        "--timeout", type=float, metavar="S",
        help="wall-clock deadline per (config, workload) run, in seconds",
    )
    resil.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a transiently failing run up to N times (default 0)",
    )
    resil.add_argument(
        "--keep-going", action="store_true",
        help="on failure, record it and continue with the next experiment",
    )
    resil.add_argument(
        "--failure-report", metavar="PATH",
        help="write the structured failure report as JSON to PATH",
    )
    resil.add_argument(
        "--inject-fault", metavar="SPEC",
        help="testing: deterministically fail matching runs; SPEC is "
             "kind[:key=value...] with kind raise|corrupt-trace|nan-metrics "
             "and keys at=, workload=, config=, times=",
    )
    obs.add_observability_args(parser)
    return parser


def make_runner(args: argparse.Namespace) -> ExperimentRunner:
    """Build the runner an invocation's resilience flags describe."""
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    store = ResultStore(args.checkpoint_dir, resume=args.resume)
    kwargs: dict = {}
    if args.inject_fault:
        try:
            injector = FaultInjector.from_spec(args.inject_fault)
        except ValueError as exc:
            raise SystemExit(f"--inject-fault: {exc}")
        kwargs["simulator_factory"] = injector.simulator_factory
    return ExperimentRunner(
        store,
        timeout_s=args.timeout,
        retries=args.retries,
        **kwargs,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    collected: dict = {}
    failed: list[FailureRecord] = []
    with obs.observability_session(args):
        runner = make_runner(args)
        # N-of-M progress with ETA on stderr for multi-experiment sweeps;
        # single-experiment runs keep their output exactly as before.
        progress = (
            obs.Progress(len(names), label="experiments")
            if len(names) > 1
            else None
        )
        with use_runner(runner):
            for name in names:
                obs.console(f"=== {name} " + "=" * (70 - len(name)))
                started = time.monotonic()
                before = len(runner.failures)
                try:
                    with obs.span(f"experiment:{name}", cat="experiment"):
                        collected[name] = EXPERIMENTS[name].main(quick=args.quick)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    record = _experiment_failure(
                        name, exc, runner.failures[before:], started
                    )
                    failed.append(record)
                    print(
                        f"!!! {name} failed: {record.error_type}: {record.message}",
                        file=sys.stderr,
                    )
                    if not args.keep_going:
                        _finish(args, collected, failed, runner)
                        return 1
                else:
                    if args.render:
                        _render(collected[name])
                if progress is not None:
                    progress.tick(name)
                obs.console()
        return _finish(args, collected, failed, runner)


def _experiment_failure(
    name: str,
    exc: Exception,
    run_failures: list[FailureRecord],
    started: float,
) -> FailureRecord:
    """The report row for one crashed experiment.

    When the crash came through the runner the per-run record already names
    the config/workload; reuse it and tag the experiment.  Anything else
    (a crash outside the runner) still produces a structured row.
    """
    if run_failures:
        record = run_failures[-1]
    else:
        record = FailureRecord(
            config_name="",
            workload="",
            n_instrs=0,
            error_type=type(exc).__name__,
            message=str(exc),
            elapsed_s=time.monotonic() - started,
            attempts=1,
        )
    record.experiment = name
    return record


def _finish(
    args: argparse.Namespace,
    collected: dict,
    failed: list[FailureRecord],
    runner: ExperimentRunner,
) -> int:
    report = {
        "failures": [record.to_dict() for record in failed],
        "runner": runner.failure_report(),
    }
    if args.json:
        payload = {"experiments": collected, "failures": report["failures"]}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, default=json_default)
        obs.console(f"results written to {args.json}")
    if args.failure_report:
        with open(args.failure_report, "w") as fh:
            json.dump(report, fh, indent=2, default=json_default)
        obs.console(f"failure report written to {args.failure_report}")
    if failed:
        print(
            f"{len(failed)} experiment(s) failed: "
            + ", ".join(sorted({r.experiment or '?' for r in failed})),
            file=sys.stderr,
        )
        return 1
    return 0


def _render(data: dict) -> None:
    """Draw ASCII charts for the summary shapes an experiment returned."""
    from .render import render_pct_bars, render_scurve

    summary = data.get("summary")
    if isinstance(summary, dict):
        first = next(iter(summary.values()), None)
        if isinstance(first, dict):
            geo = {cfg: row.get("GeoMean", 0.0) for cfg, row in summary.items()}
            obs.console(render_pct_bars(geo, title="GeoMean vs baseline"))
        elif isinstance(first, float):
            obs.console(render_pct_bars(summary, title="vs baseline"))
    curves = data.get("curves")
    if isinstance(curves, dict):
        for cfg, curve in curves.items():
            obs.console(render_scurve(curve, title=cfg))


if __name__ == "__main__":
    sys.exit(main())
