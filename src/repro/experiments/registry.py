"""Experiment registry and command-line entry point.

Usage::

    python -m repro.experiments <experiment> [--quick]
    python -m repro.experiments all [--quick] [--keep-going]

``--quick`` runs the representative workload cross-section at a short trace
length (what the benchmark suite uses); the default runs the full suite at
the full length and reproduces the paper's figures.

Long campaigns run through the resilient runner (:mod:`repro.runner`):

* ``--jobs/-j N`` dispatches runs to N isolated worker subprocesses
  (:mod:`repro.runner.fleet`); ``0`` means one per CPU.  The default
  (``1``) is the unchanged serial path.  Parallel results are returned in
  submission order and checkpointed by the parent, so they are
  byte-identical to a serial campaign's.
* ``--checkpoint-dir DIR`` persists every completed ``(config, workload)``
  run as a JSON checkpoint the moment it finishes; with ``--resume`` a rerun
  skips everything already checkpointed.
* ``--timeout S`` aborts any single run exceeding the wall-clock deadline;
  under ``--jobs`` the parent additionally hard-kills workers that blow
  through it and cannot be stopped cooperatively.  ``--retries N``
  re-attempts transient per-run failures with backoff.  ``--max-rss-mb M``
  (parallel only) kills workers whose resident set exceeds the guard.
* ``--keep-going`` isolates failures: a crashing experiment is recorded in
  the structured failure report and the remaining experiments still run.
  ``--failure-report PATH`` writes the report as JSON; it is also embedded
  in ``--json`` output.
* ``--inject-fault SPEC`` (testing, repeatable) deterministically sabotages
  matching runs — e.g. ``raise:workload=hmmer_like:at=2000`` — so the
  resilience machinery itself is exercisable end to end.  The
  ``worker-crash``/``worker-hang``/``worker-oom`` kinds take down whole
  worker processes and therefore require ``--jobs >= 2``.

Exit codes: 0 success; 1 failed (stopped at the first failing experiment);
3 completed under ``--keep-going`` but with recorded failures;
130 interrupted (completed runs are checkpointed and, under ``--jobs``, a
resume manifest is written — rerun with ``--resume``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .. import obs
from ..cache import add_cache_args, cache_from_args
from ..plugins import add_selection_args, selection_from_args, use_selection
from ..runner import (
    ExperimentRunner,
    FailureRecord,
    FaultInjector,
    FleetRunner,
    ResultStore,
    WORKER_KINDS,
    use_runner,
)
from ..sim.serialization import json_default
from . import (
    detector_comparison,
    interconnect_scaling,
    fig01_remove_l2,
    fig03_latency_sensitivity,
    fig04_criticality_oracle,
    fig05_oracle_prefetch,
    fig10_catch_exclusive,
    fig11_timeliness,
    fig12_per_workload,
    fig13_tact_components,
    fig14_multiprogrammed,
    fig15_llc_latency,
    fig16_energy,
    fig17_inclusive,
    prefetcher_comparison,
    table1_area,
    table2_workloads,
)

EXPERIMENTS = {
    "fig01": fig01_remove_l2,
    "fig03": fig03_latency_sensitivity,
    "fig04": fig04_criticality_oracle,
    "fig05": fig05_oracle_prefetch,
    "fig10": fig10_catch_exclusive,
    "fig11": fig11_timeliness,
    "fig12": fig12_per_workload,
    "fig13": fig13_tact_components,
    "fig14": fig14_multiprogrammed,
    "fig15": fig15_llc_latency,
    "fig16": fig16_energy,
    "fig17": fig17_inclusive,
    "table1": table1_area,
    "table2": table2_workloads,
    "detectors": detector_comparison,
    "interconnect": interconnect_scaling,
    "prefetchers": prefetcher_comparison,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Reproduce the paper's tables and figures",
    )
    parser.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    parser.add_argument("--quick", action="store_true", help="fast subset")
    parser.add_argument("--json", metavar="PATH", help="also dump results as JSON")
    parser.add_argument(
        "--render", action="store_true",
        help="additionally draw ASCII bar charts of the summaries",
    )
    add_selection_args(parser)
    resil = parser.add_argument_group("resilience (see repro.runner)")
    resil.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="run simulations in N isolated worker processes "
             "(default 1 = serial in-process; 0 = one per CPU)",
    )
    resil.add_argument(
        "--max-rss-mb", type=float, metavar="M",
        help="with --jobs: kill any worker whose RSS exceeds M MiB "
             "(recorded as a WorkerOOMError failure)",
    )
    resil.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist each completed (config, workload) run under DIR",
    )
    resil.add_argument(
        "--resume", action="store_true",
        help="serve runs already checkpointed in --checkpoint-dir from disk",
    )
    resil.add_argument(
        "--timeout", type=float, metavar="S",
        help="wall-clock deadline per (config, workload) run, in seconds",
    )
    resil.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a transiently failing run up to N times (default 0)",
    )
    resil.add_argument(
        "--keep-going", action="store_true",
        help="on failure, record it and continue with the next experiment",
    )
    resil.add_argument(
        "--failure-report", metavar="PATH",
        help="write the structured failure report as JSON to PATH",
    )
    resil.add_argument(
        "--inject-fault", metavar="SPEC", action="append", default=[],
        help="testing (repeatable): deterministically fail matching runs; "
             "SPEC is kind[:key=value...] with kind raise|corrupt-trace|"
             "nan-metrics|worker-crash|worker-hang|worker-oom and keys "
             "at=, workload=, config=, times= (worker-* kinds need "
             "--jobs >= 2)",
    )
    add_cache_args(parser)
    obs.add_observability_args(parser)
    return parser


#: Exit statuses (0 and 1 keep their historical meaning).
EXIT_OK = 0
EXIT_FAILED = 1
#: Distinct status for "--keep-going finished the campaign, but with
#: recorded failures" — scripts can tell a partial campaign from a dead one.
EXIT_COMPLETED_WITH_FAILURES = 3
#: Interrupted (SIGINT/SIGTERM); matches the shell's 128+SIGINT convention.
EXIT_INTERRUPTED = 130


def make_runner(args: argparse.Namespace) -> ExperimentRunner:
    """Build the runner an invocation's resilience flags describe."""
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.jobs < 0:
        raise SystemExit("--jobs must be >= 0 (0 = one worker per CPU)")
    store = ResultStore(args.checkpoint_dir, resume=args.resume)
    try:
        injectors = [FaultInjector.from_spec(s) for s in args.inject_fault]
    except ValueError as exc:
        raise SystemExit(f"--inject-fault: {exc}")
    parallel = args.jobs != 1
    if not parallel:
        for injector in injectors:
            if injector.kind in WORKER_KINDS:
                raise SystemExit(
                    f"--inject-fault {injector.kind} kills a whole process "
                    f"and needs isolated workers; rerun with --jobs >= 2"
                )
        if len(injectors) > 1:
            raise SystemExit(
                "multiple --inject-fault specs require --jobs (the serial "
                "runner takes a single simulator factory)"
            )
        if args.max_rss_mb is not None:
            raise SystemExit("--max-rss-mb requires --jobs (it guards workers)")
        kwargs: dict = {}
        if injectors:
            kwargs["simulator_factory"] = injectors[0].simulator_factory
        return ExperimentRunner(
            store,
            timeout_s=args.timeout,
            retries=args.retries,
            cache=cache_from_args(args),
            cache_near=args.cache_near,
            **kwargs,
        )
    return FleetRunner(
        store,
        jobs=args.jobs,
        timeout_s=args.timeout,
        retries=args.retries,
        max_rss_mb=args.max_rss_mb,
        fault_specs=injectors,
        cache=cache_from_args(args),
        cache_near=args.cache_near,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    collected: dict = {}
    failed: list[FailureRecord] = []
    # --prefetchers/--detector/--topology re-compose every configuration the
    # selected experiments build; the runners apply the active selection
    # (parent-side under --jobs, so workers receive composed configs).
    selection = selection_from_args(args)
    with use_selection(selection), obs.observability_session(args):
        runner = make_runner(args)
        # N-of-M progress with ETA on stderr for multi-experiment sweeps;
        # single-experiment runs keep their output exactly as before.
        progress = (
            obs.Progress(len(names), label="experiments")
            if len(names) > 1
            else None
        )
        with use_runner(runner):
            for name in names:
                obs.console(f"=== {name} " + "=" * (70 - len(name)))
                started = time.monotonic()
                before = len(runner.failures)
                try:
                    with obs.span(f"experiment:{name}", cat="experiment"):
                        collected[name] = EXPERIMENTS[name].main(quick=args.quick)
                except KeyboardInterrupt:
                    return _interrupted(args, collected, failed, runner)
                except Exception as exc:
                    record = _experiment_failure(
                        name, exc, runner.failures[before:], started
                    )
                    failed.append(record)
                    print(
                        f"!!! {name} failed: {record.error_type}: {record.message}",
                        file=sys.stderr,
                    )
                    if not args.keep_going:
                        _finish(args, collected, failed, runner)
                        return EXIT_FAILED
                else:
                    if args.render:
                        _render(collected[name])
                if progress is not None:
                    progress.tick(name)
                obs.console()
        return _finish(args, collected, failed, runner)


def _interrupted(
    args: argparse.Namespace,
    collected: dict,
    failed: list[FailureRecord],
    runner: ExperimentRunner,
) -> int:
    """Ctrl-C / SIGTERM: flush what we have and exit 130, resumably."""
    print("interrupted: stopping campaign", file=sys.stderr)
    if args.checkpoint_dir:
        print(
            f"completed runs are checkpointed under {args.checkpoint_dir}; "
            f"rerun with --checkpoint-dir {args.checkpoint_dir} --resume "
            f"to continue",
            file=sys.stderr,
        )
    manifest = getattr(runner, "last_manifest", None)
    if manifest is not None and args.checkpoint_dir:
        counts = manifest.get("counts", {})
        print(
            f"resume manifest: {counts.get('completed', 0)} completed, "
            f"{counts.get('failed', 0)} failed, "
            f"{counts.get('pending', 0)} pending",
            file=sys.stderr,
        )
    _finish(args, collected, failed, runner, interrupted=True)
    return EXIT_INTERRUPTED


def _experiment_failure(
    name: str,
    exc: Exception,
    run_failures: list[FailureRecord],
    started: float,
) -> FailureRecord:
    """The report row for one crashed experiment.

    When the crash came through the runner the per-run record already names
    the config/workload; reuse it and tag the experiment.  Anything else
    (a crash outside the runner) still produces a structured row.
    """
    if run_failures:
        record = run_failures[-1]
    else:
        record = FailureRecord(
            config_name="",
            workload="",
            n_instrs=0,
            error_type=type(exc).__name__,
            message=str(exc),
            elapsed_s=time.monotonic() - started,
            attempts=1,
        )
    record.experiment = name
    return record


def _finish(
    args: argparse.Namespace,
    collected: dict,
    failed: list[FailureRecord],
    runner: ExperimentRunner,
    *,
    interrupted: bool = False,
) -> int:
    report = {
        "failures": [record.to_dict() for record in failed],
        "runner": runner.failure_report(),
    }
    if args.json:
        payload = {"experiments": collected, "failures": report["failures"]}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, default=json_default)
        obs.console(f"results written to {args.json}")
    if args.failure_report:
        with open(args.failure_report, "w") as fh:
            json.dump(report, fh, indent=2, default=json_default)
        obs.console(f"failure report written to {args.failure_report}")
    if failed or (interrupted and runner.failures):
        if args.failure_report:
            print(f"failure report: {args.failure_report}", file=sys.stderr)
    if failed:
        print(
            f"{len(failed)} experiment(s) failed: "
            + ", ".join(sorted({r.experiment or '?' for r in failed})),
            file=sys.stderr,
        )
        return (
            EXIT_COMPLETED_WITH_FAILURES if args.keep_going else EXIT_FAILED
        )
    return EXIT_OK


def _render(data: dict) -> None:
    """Draw ASCII charts for the summary shapes an experiment returned."""
    from .render import render_pct_bars, render_scurve

    summary = data.get("summary")
    if isinstance(summary, dict):
        first = next(iter(summary.values()), None)
        if isinstance(first, dict):
            geo = {cfg: row.get("GeoMean", 0.0) for cfg, row in summary.items()}
            obs.console(render_pct_bars(geo, title="GeoMean vs baseline"))
        elif isinstance(first, float):
            obs.console(render_pct_bars(summary, title="vs baseline"))
    curves = data.get("curves")
    if isinstance(curves, dict):
        for cfg, curve in curves.items():
            obs.console(render_scurve(curve, title=cfg))


if __name__ == "__main__":
    sys.exit(main())
