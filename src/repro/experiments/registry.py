"""Experiment registry and command-line entry point.

Usage::

    python -m repro.experiments <experiment> [--quick]
    python -m repro.experiments all [--quick]

``--quick`` runs the representative workload cross-section at a short trace
length (what the benchmark suite uses); the default runs the full suite at
the full length and reproduces the paper's figures.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import (
    detector_comparison,
    interconnect_scaling,
    fig01_remove_l2,
    fig03_latency_sensitivity,
    fig04_criticality_oracle,
    fig05_oracle_prefetch,
    fig10_catch_exclusive,
    fig11_timeliness,
    fig12_per_workload,
    fig13_tact_components,
    fig14_multiprogrammed,
    fig15_llc_latency,
    fig16_energy,
    fig17_inclusive,
    table1_area,
    table2_workloads,
)

EXPERIMENTS = {
    "fig01": fig01_remove_l2,
    "fig03": fig03_latency_sensitivity,
    "fig04": fig04_criticality_oracle,
    "fig05": fig05_oracle_prefetch,
    "fig10": fig10_catch_exclusive,
    "fig11": fig11_timeliness,
    "fig12": fig12_per_workload,
    "fig13": fig13_tact_components,
    "fig14": fig14_multiprogrammed,
    "fig15": fig15_llc_latency,
    "fig16": fig16_energy,
    "fig17": fig17_inclusive,
    "table1": table1_area,
    "table2": table2_workloads,
    "detectors": detector_comparison,
    "interconnect": interconnect_scaling,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Reproduce the paper's tables and figures",
    )
    parser.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    parser.add_argument("--quick", action="store_true", help="fast subset")
    parser.add_argument("--json", metavar="PATH", help="also dump results as JSON")
    parser.add_argument(
        "--render", action="store_true",
        help="additionally draw ASCII bar charts of the summaries",
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    collected = {}
    for name in names:
        print(f"=== {name} " + "=" * (70 - len(name)))
        collected[name] = EXPERIMENTS[name].main(quick=args.quick)
        if args.render:
            _render(collected[name])
        print()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(collected, fh, indent=2, default=str)
        print(f"results written to {args.json}")
    return 0


def _render(data: dict) -> None:
    """Draw ASCII charts for the summary shapes an experiment returned."""
    from .render import render_pct_bars, render_scurve

    summary = data.get("summary")
    if isinstance(summary, dict):
        first = next(iter(summary.values()), None)
        if isinstance(first, dict):
            geo = {cfg: row.get("GeoMean", 0.0) for cfg, row in summary.items()}
            print(render_pct_bars(geo, title="GeoMean vs baseline"))
        elif isinstance(first, float):
            print(render_pct_bars(summary, title="vs baseline"))
    curves = data.get("curves")
    if isinstance(curves, dict):
        for cfg, curve in curves.items():
            print(render_scurve(curve, title=cfg))


if __name__ == "__main__":
    sys.exit(main())
