"""Figure 14: four-way multi-programmed workloads.

Weighted speedup of noL2, noL2+CATCH and CATCH over the baseline on four-way
mixes (half RATE-4 homogeneous, half random — Section V).  Paper: noL2 loses
4.1%; noL2+CATCH gains 8.5%; three-level CATCH gains 9.0% — MP gains mirror
the ST gains.
"""

from __future__ import annotations

from ..obs import console
from ..sim.config import no_l2, skylake_server, with_catch
from ..sim.metrics import geomean
from ..sim.multicore import MultiCoreSimulator, alone_ipcs
from .common import resolve_params


def run(
    quick: bool = True, n_instrs: int | None = None, n_mixes: int | None = None
) -> dict:
    from ..workloads.suites import mp_mixes

    n = resolve_params(quick, n_instrs)
    mixes = mp_mixes(n_mixes or (4 if quick else 12))
    base = skylake_server()
    variants = [
        no_l2(base, 6.5),
        with_catch(no_l2(base, 6.5), name="noL2+CATCH"),
        with_catch(base, name="CATCH"),
    ]
    names = {name for mix in mixes for name in mix}

    alone: dict[str, dict[str, float]] = {}
    ws: dict[str, list[float]] = {}
    base_ws: list[float] = []
    alone[base.name] = alone_ipcs(base, names, n)
    base_sim = MultiCoreSimulator(base)
    for mix in mixes:
        base_ws.append(base_sim.run_mix(mix, n).weighted_speedup(alone[base.name]))
    for cfg in variants:
        alone[cfg.name] = alone_ipcs(base, names, n)  # alone on the baseline
        sim = MultiCoreSimulator(cfg)
        ws[cfg.name] = [
            sim.run_mix(mix, n).weighted_speedup(alone[base.name]) for mix in mixes
        ]
    summary = {
        cfg.name: geomean(
            [w / b for w, b in zip(ws[cfg.name], base_ws)]
        )
        - 1
        for cfg in variants
    }
    return {
        "experiment": "fig14_multiprogrammed",
        "summary": summary,
        "mixes": [list(m) for m in mixes],
        "baseline_ws": base_ws,
        "per_config_ws": ws,
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 14: 4-way multi-programmed weighted speedup vs baseline")
    for cfg, value in data["summary"].items():
        console(f"  {cfg:16s} {value:+7.1%}")
    return data


if __name__ == "__main__":
    main()
