"""Figure 14: four-way multi-programmed workloads.

Weighted speedup of noL2, noL2+CATCH and CATCH over the baseline on four-way
mixes (half RATE-4 homogeneous, half random — Section V).  Paper: noL2 loses
4.1%; noL2+CATCH gains 8.5%; three-level CATCH gains 9.0% — MP gains mirror
the ST gains.

Mixes are first-class workload references (``"a+b+c+d"``), so every
measurement — the alone runs and the mixes — goes through the active
:class:`~repro.runner.ExperimentRunner` like any single-threaded experiment:
memoised per process, checkpointed/resumed and fleet-parallelised under the
experiment CLI.  The serial and fleet paths round-trip results through the
same serializer, so stage values are identical either way.
"""

from __future__ import annotations

from ..obs import console
from ..plugins.workloads import mix_display
from ..sim.config import no_l2, skylake_server, with_catch
from ..sim.metrics import geomean
from .common import cached_run, resolve_params


def run(
    quick: bool = True, n_instrs: int | None = None, n_mixes: int | None = None
) -> dict:
    from ..workloads.suites import mp_mixes

    n = resolve_params(quick, n_instrs)
    mixes = mp_mixes(n_mixes or (4 if quick else 12))
    base = skylake_server()
    variants = [
        no_l2(base, 6.5),
        with_catch(no_l2(base, 6.5), name="noL2+CATCH"),
        with_catch(base, name="CATCH"),
    ]
    names = sorted({name for mix in mixes for name in mix})

    # Alone IPCs on the *baseline* machine (the paper's WS denominator for
    # every variant).  ``base`` is a single-core config, so these are plain
    # runner measurements that share the cross-experiment result store.
    alone = {name: cached_run(base, name, n).ipc for name in names}

    refs = [mix_display(mix) for mix in mixes]
    base_results = [cached_run(base, ref, n) for ref in refs]
    base_ws = [r.weighted_speedup(alone) for r in base_results]
    ws: dict[str, list[float]] = {}
    interference: dict[str, list[dict]] = {
        base.name: [_interference(r) for r in base_results],
    }
    for cfg in variants:
        results = [cached_run(cfg, ref, n) for ref in refs]
        ws[cfg.name] = [r.weighted_speedup(alone) for r in results]
        interference[cfg.name] = [_interference(r) for r in results]
    summary = {
        cfg.name: geomean(
            [w / b for w, b in zip(ws[cfg.name], base_ws)]
        )
        - 1
        for cfg in variants
    }
    return {
        "experiment": "fig14_multiprogrammed",
        "summary": summary,
        "mixes": [list(m) for m in mixes],
        "baseline_ws": base_ws,
        "per_config_ws": ws,
        "alone_ipc": alone,
        "per_core_interference": interference,
    }


def _interference(result) -> dict:
    """Per-core criticality/contention stats of one mix run (JSON-keyed)."""
    return {
        str(core): dict(stats, ipc=result.per_core_ipc.get(core))
        for core, stats in result.per_core_stats.items()
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 14: 4-way multi-programmed weighted speedup vs baseline")
    for cfg, value in data["summary"].items():
        console(f"  {cfg:16s} {value:+7.1%}")
    return data


if __name__ == "__main__":
    main()
