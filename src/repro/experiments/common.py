"""Shared experiment infrastructure: cached runs, sweeps, table printing.

Every experiment module exposes ``run(quick=..., n_instrs=...) -> dict`` with
plain-data results (JSON-friendly), plus a ``main()`` that prints the same
rows the paper's figure/table reports.  All simulation goes through the
active :class:`~repro.runner.ExperimentRunner` (see :mod:`repro.runner`):
by default that memoises runs per process so experiments sharing a baseline
don't recompute it; under the experiment CLI it adds checkpoint/resume,
per-run deadlines, retry and structured failure reporting.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..runner import get_runner
from ..sim.config import SimConfig
from ..sim.metrics import RunResult, category_geomeans
from ..sim.simulator import DEFAULT_TRACE_LENGTH
from ..workloads.suites import suite

#: Trace length used by the quick (CI/benchmark) variants of experiments.
#: Long enough that the quick workloads reach their intended cache regimes.
QUICK_TRACE_LENGTH = 24_000


def workload_names(quick: bool) -> list[str]:
    """The workloads an experiment runs: quick cross-section or full suite."""
    return [s.name for s in suite(quick=quick)]


def workload_categories() -> dict[str, str]:
    return {s.name: s.category for s in suite()}


def cached_run(config: SimConfig, workload: str, n_instrs: int) -> RunResult:
    """One (config, workload, length) simulation through the active runner.

    The runner's result store replaces the old unbounded ``lru_cache`` of
    full :class:`RunResult` objects: memoisation behaviour is unchanged for
    plain library use, but the store is clearable (:func:`clear_cache`) and,
    under the experiment CLI, checkpointed to disk.
    """
    return get_runner().run(config, workload, n_instrs)


def clear_cache() -> None:
    """Drop the active runner's in-memory results (benchmark conftest hook)."""
    get_runner().store.clear()


def sweep(
    configs: Iterable[SimConfig], workloads: Iterable[str], n_instrs: int
) -> dict[str, dict[str, RunResult]]:
    """Run every workload on every configuration."""
    return get_runner().sweep(configs, workloads, n_instrs)


def speedup_summary(
    results: Mapping[str, RunResult], baseline: Mapping[str, RunResult]
) -> dict[str, float]:
    """Per-category and overall geomean speedup-1 (the paper's '% impact')."""
    categories = workload_categories()
    speedups = {wl: results[wl].ipc / baseline[wl].ipc for wl in results}
    gm = category_geomeans(speedups, {wl: categories[wl] for wl in speedups})
    return {cat: value - 1.0 for cat, value in gm.items()}


def format_pct_table(
    rows: Mapping[str, Mapping[str, float]], columns: list[str] | None = None
) -> str:
    """Render ``{row_label: {column: fraction}}`` as a percentage table."""
    first = next(iter(rows.values()))
    columns = columns or list(first)
    width = max(12, max((len(c) for c in columns), default=12) + 2)
    header = f"{'':28s}" + "".join(f"{c:>{width}s}" for c in columns)
    lines = [header]
    for label, values in rows.items():
        cells = "".join(f"{values.get(c, float('nan')):>+{width}.1%}" for c in columns)
        lines.append(f"{label:28s}{cells}")
    return "\n".join(lines)


def resolve_params(quick: bool, n_instrs: int | None) -> int:
    """Pick the trace length for an experiment invocation."""
    if n_instrs is not None:
        return n_instrs
    return QUICK_TRACE_LENGTH if quick else DEFAULT_TRACE_LENGTH
