"""Figure 12: per-workload performance (the S-curve).

Per-workload speedups of three configurations over the baseline: noL2+6.5MB,
noL2+9.5MB+CATCH, and CATCH on the three-level hierarchy.  The paper's
callouts: hmmer loses ~40% without an L2 but under 5% with CATCH; mcf swings
from a loss to a large gain via TACT-Feeder; povray (too many critical PCs)
and namd/gromacs (unprefetchable chains) are the residual losers.
"""

from __future__ import annotations

from ..obs import console
from ..sim.config import no_l2, skylake_server, with_catch
from .common import resolve_params, sweep, workload_names

CALLOUTS = ("hmmer_like", "mcf_like", "povray_like", "namd_like", "gromacs_like")


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    base = skylake_server()
    variants = [
        no_l2(base, 6.5),
        with_catch(no_l2(base, 9.5), name="noL2_9.5+CATCH"),
        with_catch(base, name="CATCH"),
    ]
    workloads = workload_names(quick)
    results = sweep([base, *variants], workloads, n)
    curves = {}
    for cfg in variants:
        ratios = {
            wl: results[cfg.name][wl].ipc / results[base.name][wl].ipc
            for wl in workloads
        }
        curves[cfg.name] = dict(sorted(ratios.items(), key=lambda kv: kv[1]))
    callouts = {
        wl: {cfg.name: curves[cfg.name][wl] for cfg in variants}
        for wl in CALLOUTS
        if wl in workloads
    }
    return {"experiment": "fig12_per_workload", "curves": curves, "callouts": callouts}


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 12: per-workload performance ratio vs baseline (sorted)")
    for cfg_name, curve in data["curves"].items():
        values = list(curve.values())
        console(
            f"  {cfg_name:18s} min={values[0]:.2f} "
            f"median={values[len(values) // 2]:.2f} max={values[-1]:.2f}"
        )
    console("  callouts:")
    for wl, row in data["callouts"].items():
        cells = "  ".join(f"{k}={v:.2f}" for k, v in row.items())
        console(f"    {wl:16s} {cells}")
    return data


if __name__ == "__main__":
    main()
