"""Figure 15 + Section VI-D2: sensitivity studies.

Two sweeps:

* **LLC latency** (+6, +12 cycles) on the noL2 baseline and on two-level
  CATCH — the paper loses ~2% per 6 cycles, since TACT cannot fully re-hide a
  longer LLC round trip.
* **Critical-table size** (16..128 entries) for CATCH — the paper found 32
  entries near-optimal: bigger tables admit rarely-critical PCs whose
  prefetches thrash the L1.
"""

from __future__ import annotations

from ..obs import console
from ..caches.hierarchy import Level
from ..sim.config import no_l2, skylake_server, with_catch, with_extra_latency
from .common import (
    resolve_params,
    speedup_summary,
    sweep,
    workload_names,
)


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    base = skylake_server()
    nol2 = no_l2(base, 6.5)
    catch95 = with_catch(no_l2(base, 9.5), name="noL2_9.5+CATCH")
    workloads = workload_names(quick)

    latency_rows = {}
    variants = []
    for cfg in (nol2, catch95):
        for extra in (0, 6, 12):
            variants.append(
                with_extra_latency(cfg, Level.LLC, extra) if extra else cfg
            )
    results = sweep([base, *variants], workloads, n)
    for cfg in variants:
        latency_rows[cfg.name] = speedup_summary(results[cfg.name], results[base.name])

    table_rows = {}
    table_variants = [
        with_catch(base, name=f"CATCH_table{size}", table_entries=size)
        for size in ((32,) if quick else (16, 32, 64, 128))
    ]
    table_results = sweep(table_variants, workloads, n)
    for cfg in table_variants:
        table_rows[cfg.name] = speedup_summary(
            table_results[cfg.name], results[base.name]
        )
    return {
        "experiment": "fig15_llc_latency",
        "llc_latency": {k: v["GeoMean"] for k, v in latency_rows.items()},
        "table_size": {k: v["GeoMean"] for k, v in table_rows.items()},
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 15: sensitivity to LLC hit latency")
    for name, value in data["llc_latency"].items():
        console(f"  {name:32s} {value:+7.1%}")
    console("Section VI-D2: critical-table size sensitivity (CATCH on baseline)")
    for name, value in data["table_size"].items():
        console(f"  {name:32s} {value:+7.1%}")
    return data


if __name__ == "__main__":
    main()
