"""Figure 11: timeliness of inter-cache TACT prefetching.

For CATCH on the two-level (noL2) hierarchy, reports per category: what
fraction of TACT prefetches were served by the LLC, and — of the demand loads
that met a TACT prefetch — how much of the source latency the prefetch hid
(>80%, 10-80%, <10% buckets).  Paper: ~88% of critical TACT prefetches served
from the LLC, >85% of them saving more than 80% of the LLC latency.
"""

from __future__ import annotations

from collections import defaultdict

from ..obs import console
from ..core.catch_engine import CatchEngine
from ..sim.config import no_l2, skylake_server, with_catch
from ..sim.simulator import Simulator
from .common import resolve_params, workload_categories, workload_names


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    cfg = with_catch(no_l2(skylake_server(), 6.5), name="noL2+CATCH")
    sim = Simulator(cfg)
    categories = workload_categories()
    by_category: dict[str, dict[str, float]] = {}
    sums: dict[str, dict[str, float]] = defaultdict(
        lambda: {"llc": 0.0, "over_80": 0.0, "mid": 0.0, "under_10": 0.0, "n": 0}
    )
    for wl in workload_names(quick):
        engine = CatchEngine(cfg.catch)
        sim.run(wl, n, engine=engine)
        stats = engine.tact.stats
        if not stats.issued or not stats.demand_covered:
            continue
        frac = stats.timeliness_fractions()
        bucket = sums[categories[wl]]
        bucket["llc"] += stats.pct_from_llc
        bucket["over_80"] += frac["over_80"]
        bucket["mid"] += frac["mid"]
        bucket["under_10"] += frac["under_10"]
        bucket["n"] += 1
    for cat, bucket in sums.items():
        count = bucket.pop("n")
        by_category[cat] = {k: v / count for k, v in bucket.items()}
    overall = {
        key: sum(c[key] for c in by_category.values()) / len(by_category)
        for key in ("llc", "over_80", "mid", "under_10")
    }
    return {
        "experiment": "fig11_timeliness",
        "by_category": by_category,
        "overall": overall,
    }


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 11: TACT inter-cache prefetch timeliness (noL2+CATCH)")
    console(f"{'category':12s} {'%from LLC':>10s} {'>80% saved':>11s} {'10-80%':>8s} {'<10%':>7s}")
    for cat, row in sorted(data["by_category"].items()):
        console(
            f"{cat:12s} {row['llc']:>10.1%} {row['over_80']:>11.1%} "
            f"{row['mid']:>8.1%} {row['under_10']:>7.1%}"
        )
    o = data["overall"]
    console(
        f"{'overall':12s} {o['llc']:>10.1%} {o['over_80']:>11.1%} "
        f"{o['mid']:>8.1%} {o['under_10']:>7.1%}"
    )
    return data


if __name__ == "__main__":
    main()
