"""Experiment modules: one per table/figure in the paper's evaluation."""
