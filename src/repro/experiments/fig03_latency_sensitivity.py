"""Figure 3: sensitivity to +1/+2/+3 cycles at each cache level.

The paper's headline: L1 latency is by far the most performance-sensitive
(-2.4/-4.8/-7.2%), the L2 an order of magnitude less (-0.5/-0.9/-1.4%), the
LLC least (-0.2/-0.4/-0.6%) — because frequent L1 hits sit on the dependence
chains that feed LLC misses and branch mispredicts, while L2/LLC hits are too
infrequent to create new critical paths.
"""

from __future__ import annotations

from ..obs import console
from ..caches.hierarchy import Level
from ..sim.config import skylake_server, with_extra_latency
from .common import (
    format_pct_table,
    resolve_params,
    speedup_summary,
    sweep,
    workload_names,
)


def run(quick: bool = True, n_instrs: int | None = None) -> dict:
    n = resolve_params(quick, n_instrs)
    base = skylake_server()
    variants = [
        with_extra_latency(base, level, cycles)
        for level in (Level.L1, Level.L2, Level.LLC)
        for cycles in (1, 2, 3)
    ]
    workloads = workload_names(quick)
    results = sweep([base, *variants], workloads, n)
    summary = {}
    for cfg in variants:
        impact = speedup_summary(results[cfg.name], results[base.name])
        summary[cfg.name] = {"GeoMean": impact["GeoMean"]}
    return {"experiment": "fig03_latency_sensitivity", "summary": summary}


def main(quick: bool = False) -> dict:
    data = run(quick=quick)
    console("Figure 3: impact of latency increase at L1/L2/LLC")
    console(format_pct_table(data["summary"], columns=["GeoMean"]))
    return data


if __name__ == "__main__":
    main()
