"""ASCII rendering of experiment results (figure-like bar charts).

The experiment modules return plain-data dictionaries; this module renders
the common shapes — per-category percentage bars and per-workload S-curves —
as terminal bar charts, so ``python -m repro.experiments fig10 --render``
produces something visually comparable to the paper's figures without any
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping

BAR_WIDTH = 40


def _bar(value: float, vmin: float, vmax: float, width: int = BAR_WIDTH) -> str:
    """A signed horizontal bar: negatives grow left of the axis, positives
    right."""
    span = max(vmax, 0.0) - min(vmin, 0.0)
    if span <= 0:
        return " " * width
    zero = int(round(-min(vmin, 0.0) / span * width))
    pos = int(round(value / span * width))
    cells = [" "] * (width + 1)
    if pos >= 0:
        for i in range(zero, min(zero + pos, width) + 1):
            cells[i] = "#"
    else:
        for i in range(max(zero + pos, 0), zero + 1):
            cells[i] = "#"
    cells[zero] = "|"
    return "".join(cells)


def render_pct_bars(
    rows: Mapping[str, float], title: str = "", unit: str = "%"
) -> str:
    """Render ``{label: fraction}`` as signed percentage bars."""
    if not rows:
        return f"{title}\n  (no data)"
    vmin = min(min(rows.values()), 0.0)
    vmax = max(max(rows.values()), 0.0)
    width = max(len(label) for label in rows)
    lines = [title] if title else []
    for label, value in rows.items():
        lines.append(
            f"  {label:{width}s} {value * 100:+7.1f}{unit} "
            f"{_bar(value, vmin, vmax)}"
        )
    return "\n".join(lines)


def render_grouped(
    table: Mapping[str, Mapping[str, float]], title: str = ""
) -> str:
    """Render ``{config: {category: fraction}}`` as grouped bars."""
    lines = [title] if title else []
    for config, categories in table.items():
        lines.append(render_pct_bars(dict(categories), title=config))
        lines.append("")
    return "\n".join(lines).rstrip()


def render_scurve(
    curve: Mapping[str, float], title: str = "", height: int = 12
) -> str:
    """Render a sorted per-workload ratio curve (Figure 12 style) as a
    compact column chart: one column per workload, ``*`` at the ratio."""
    if not curve:
        return f"{title}\n  (no data)"
    values = list(curve.values())
    vmax = max(max(values), 1.0)
    vmin = min(min(values), 1.0)
    span = vmax - vmin or 1.0
    grid = [[" "] * len(values) for _ in range(height)]
    baseline_row = height - 1 - int(round((1.0 - vmin) / span * (height - 1)))
    for col, value in enumerate(values):
        row = height - 1 - int(round((value - vmin) / span * (height - 1)))
        grid[row][col] = "*"
        if 0 <= baseline_row < height and grid[baseline_row][col] == " ":
            grid[baseline_row][col] = "-"
    lines = [title] if title else []
    lines.append(f"  {vmax:5.2f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append("        |" + "".join(row))
    lines.append(f"  {vmin:5.2f} +" + "".join(grid[-1]))
    lines.append(f"        (workloads sorted by ratio; '-' marks 1.0)")
    return "\n".join(lines)
