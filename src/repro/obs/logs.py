"""Structured logging on top of the stdlib: silent by default, JSONL on demand.

All package loggers live under the ``"repro"`` namespace
(:func:`get_logger`).  A :class:`logging.NullHandler` is attached to the
namespace root at import time, so an unconfigured process emits *nothing* —
library users and the default CLI paths see byte-identical output whether or
not this module is imported.

:func:`configure_logging` (driven by ``--log-level`` / ``--log-json`` /
``--log-file``) installs one real handler: human-readable lines, or — with
``json_lines=True`` — one JSON object per line (JSONL) carrying the fields
passed through :func:`log_event`.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

#: Namespace root for every logger in this package.
LOGGER_NAME = "repro"

# Silent-by-default: a handler exists, so logging.lastResort never fires.
logging.getLogger(LOGGER_NAME).addHandler(logging.NullHandler())

#: The handler configure_logging installed (None = unconfigured).
_handler: logging.Handler | None = None


class JsonlFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, extra fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=repr)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the package namespace (``repro`` or ``repro.<name>``)."""
    return logging.getLogger(f"{LOGGER_NAME}.{name}" if name else LOGGER_NAME)


def log_event(
    logger: logging.Logger, level: int, event: str, **fields: object
) -> None:
    """Emit a structured event: plain text normally, merged keys under JSONL."""
    if fields:
        logger.log(level, event, extra={"fields": fields})
    else:
        logger.log(level, event)


def configure_logging(
    level: str = "info",
    *,
    json_lines: bool = False,
    stream: IO[str] | None = None,
    path: str | None = None,
) -> logging.Handler:
    """Install the package log handler (replacing any previous one).

    Args:
        level: threshold name (``debug``/``info``/``warning``/``error``).
        json_lines: emit JSONL instead of human-readable lines.
        stream: destination stream (default ``sys.stderr``).
        path: write to this file instead of a stream.
    """
    global _handler
    root = logging.getLogger(LOGGER_NAME)
    if _handler is not None:
        root.removeHandler(_handler)
        _handler.close()
    if path:
        handler: logging.Handler = logging.FileHandler(path)
    else:
        handler = logging.StreamHandler(stream or sys.stderr)
    if json_lines:
        handler.setFormatter(JsonlFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
    _handler = handler
    return handler


def reset_logging() -> None:
    """Remove the configured handler and return to silent-by-default."""
    global _handler
    root = logging.getLogger(LOGGER_NAME)
    if _handler is not None:
        root.removeHandler(_handler)
        _handler.close()
        _handler = None
    root.setLevel(logging.NOTSET)
