"""Crash flight recorder: a bounded ring of recent structured events.

A :class:`FlightRecorder` keeps the last *N* operationally interesting
events (admissions, rejections, lease churn, worker crashes, breaker
transitions) in memory at a fixed cost — one dict append per event, no
I/O — and can dump them as JSONL the moment something goes wrong: a worker
crash, an unhandled daemon exception, or an operator ``SIGQUIT``.

The dump is the post-mortem the journal cannot be: the journal records
*committed state transitions*, the flight recorder records *what the
service saw happening* — including rejections and expiries that never
become journal records — in arrival order with sequence numbers, so the
tail of a dump reads as the last seconds before the incident.

Dump files are named ``flightrec-<unix-ts>.jsonl`` (a serial suffix on
collision) and start with one header record carrying the dump reason.
:data:`NULL_FLIGHT_RECORDER` is the shared no-op used where recording is
not wired up, so callers never branch.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable

#: Default ring capacity: enough for minutes of service churn, small
#: enough that a dump is instant.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Thread-safe bounded event ring with JSONL dumping.

    Args:
        capacity: events retained (oldest evicted first).
        clock: wall-clock source (injectable for tests).
    """

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"flight recorder capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.recorded = 0  #: total events ever recorded (ring may be smaller)
        self.dumps = 0     #: dump files written

    def record(self, kind: str, **fields) -> dict:
        """Append one event; returns the stored record."""
        with self._lock:
            self._seq += 1
            self.recorded += 1
            event = {"seq": self._seq, "ts": self.clock(), "kind": kind}
            event.update(fields)
            self._ring.append(event)
            return event

    def events(self, n: int | None = None, kind: str | None = None) -> list[dict]:
        """The retained events, oldest first; optionally the last ``n``
        and/or only one ``kind``."""
        with self._lock:
            events = list(self._ring)
        if kind is not None:
            events = [e for e in events if e.get("kind") == kind]
        if n is not None and n >= 0:
            events = events[-n:]
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # ---------------------------------------------------------------- dumps

    def dump(self, path: str | Path, *, reason: str = "manual") -> Path:
        """Write a header record plus every retained event as JSONL."""
        path = Path(path)
        events = self.events()
        header = {
            "kind": "flightrec-dump",
            "reason": reason,
            "dumped_at": self.clock(),
            "events": len(events),
            "recorded_total": self.recorded,
            "capacity": self.capacity,
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines += [json.dumps(event, sort_keys=True, default=repr) for event in events]
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("".join(line + "\n" for line in lines))
        with self._lock:
            self.dumps += 1
        return path

    def dump_to_dir(self, directory: str | Path, *, reason: str = "manual") -> Path:
        """Dump to ``<directory>/flightrec-<ts>.jsonl`` (serial on collision)."""
        directory = Path(directory)
        stamp = int(self.clock())
        path = directory / f"flightrec-{stamp}.jsonl"
        serial = 0
        while path.exists():
            serial += 1
            path = directory / f"flightrec-{stamp}-{serial}.jsonl"
        return self.dump(path, reason=reason)


class NullFlightRecorder:
    """The disabled recorder: every operation is a free no-op."""

    enabled = False
    capacity = 0
    recorded = 0
    dumps = 0

    def record(self, kind: str, **fields) -> dict:
        return {}

    def events(self, n: int | None = None, kind: str | None = None) -> list[dict]:
        return []

    def __len__(self) -> int:
        return 0

    def dump(self, path: str | Path, *, reason: str = "manual") -> Path:
        raise RuntimeError("cannot dump the null flight recorder")

    def dump_to_dir(self, directory: str | Path, *, reason: str = "manual") -> Path:
        raise RuntimeError("cannot dump the null flight recorder")


#: Shared no-op recorder for call sites without a wired-up recorder.
NULL_FLIGHT_RECORDER = NullFlightRecorder()


def load_flight_dump(path: str | Path) -> tuple[dict, list[dict]]:
    """Read a dump back as ``(header, events)`` (tests and CI)."""
    lines = [
        json.loads(line)
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]
    if not lines or lines[0].get("kind") != "flightrec-dump":
        raise ValueError(f"{path} is not a flight-recorder dump")
    return lines[0], lines[1:]
