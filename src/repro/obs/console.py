"""Console output for experiment status lines, JSONL-aware.

Experiment modules route their human-facing figure/table text through
:func:`console` instead of bare ``print``.  By default it *is* ``print`` —
output is byte-identical to the pre-instrumentation CLIs.  When the CLI
enables JSON mode (``--log-json``), console lines become structured
``repro.console`` log events on the JSONL stream instead, so machine
consumers of stdout never see figure text interleaved with their payload.
"""

from __future__ import annotations

import logging

from .logs import get_logger, log_event

_json_mode = False


def set_console_json(enabled: bool) -> bool:
    """Switch console lines to structured log events; returns the old mode."""
    global _json_mode
    previous = _json_mode
    _json_mode = enabled
    return previous


def console_json_enabled() -> bool:
    return _json_mode


def console(message: str = "", **fields: object) -> None:
    """Print a status line (default) or emit it as a structured log event."""
    if _json_mode:
        log_event(get_logger("console"), logging.INFO, message, **fields)
    else:
        print(message)
