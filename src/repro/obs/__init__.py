"""Instrumentation subsystem: metrics, tracing, logging, profiling.

The observability layer for the whole reproduction (see OBSERVABILITY.md):

* **metrics** — a registry of counters/gauges/histograms plus named snapshot
  providers (:mod:`repro.obs.registry`).  Disabled by default: the active
  registry is the no-op :data:`NULL_REGISTRY` and instrumented components
  bind nothing, so the hot path is allocation-free.  Enable with
  :func:`use_metrics` / :func:`set_registry`; the simulator then snapshots
  everything into ``RunResult.telemetry``.
* **tracing** — ``with obs.span("measure"): ...`` records Chrome
  trace-event spans into the active :class:`TraceCollector`
  (:mod:`repro.obs.trace`); with no collector installed, :func:`span`
  returns a shared no-op context manager.
* **logging** — silent-by-default stdlib logging under the ``repro``
  namespace, switchable to JSONL (:mod:`repro.obs.logs`), plus the
  :func:`console` helper experiments print through.
* **profiling** — cProfile wrapping and per-phase wall-clock timing
  (:mod:`repro.obs.profiling`), progress ticks (:mod:`repro.obs.progress`)
  and the shared CLI flags (:mod:`repro.obs.cli`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Mapping

from .console import console, console_json_enabled, set_console_json
from .logs import (
    JsonlFormatter,
    configure_logging,
    get_logger,
    log_event,
    reset_logging,
)
from .profiling import PhaseTimer, profiled
from .progress import Progress
from .registry import (
    LOAD_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .expo import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    validate_exposition,
)
from .flightrec import (
    FlightRecorder,
    NULL_FLIGHT_RECORDER,
    NullFlightRecorder,
    load_flight_dump,
)
from .trace import TraceCollector, current_tid, load_trace, validate_trace_events

# --------------------------------------------------------- active registry

_registry: MetricsRegistry | NullRegistry = NULL_REGISTRY


def metrics() -> MetricsRegistry | NullRegistry:
    """The active metrics registry (the no-op one unless enabled)."""
    return _registry


def set_registry(
    registry: MetricsRegistry | NullRegistry | None,
) -> MetricsRegistry | NullRegistry:
    """Install the active registry (``None`` restores the no-op default)."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry | None = None):
    """Scope a live registry (a fresh one by default) for a ``with`` block."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# ----------------------------------------------------------- active tracer


class _NullSpan:
    """Reentrant shared no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()
_tracer: TraceCollector | None = None


def tracer() -> TraceCollector | None:
    """The active trace collector, or ``None`` when tracing is off."""
    return _tracer


def set_tracer(collector: TraceCollector | None) -> TraceCollector | None:
    """Install the active trace collector; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = collector
    return previous


@contextmanager
def use_tracer(collector: TraceCollector | None = None):
    """Scope a trace collector (a fresh one by default) for a ``with`` block."""
    collector = collector if collector is not None else TraceCollector()
    previous = set_tracer(collector)
    try:
        yield collector
    finally:
        set_tracer(previous)


def span(name: str, cat: str = "sim", args: Mapping | None = None, tid: int = 0):
    """A trace span over the ``with`` block; free no-op when tracing is off."""
    if _tracer is None:
        return _NULL_SPAN
    return _tracer.span(name, cat, args, tid)


def instant(
    name: str, cat: str = "sim", args: Mapping | None = None, tid: int = 0
) -> None:
    """A zero-duration trace marker; no-op when tracing is off."""
    if _tracer is not None:
        _tracer.instant(name, cat, args, tid)


from .cli import add_observability_args, observability_session  # noqa: E402

__all__ = [
    "LOAD_LATENCY_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlFormatter",
    "MetricsRegistry",
    "NULL_FLIGHT_RECORDER",
    "NULL_REGISTRY",
    "NullFlightRecorder",
    "NullRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "PhaseTimer",
    "Progress",
    "TraceCollector",
    "add_observability_args",
    "configure_logging",
    "console",
    "console_json_enabled",
    "current_tid",
    "get_logger",
    "instant",
    "load_flight_dump",
    "load_trace",
    "log_event",
    "metrics",
    "observability_session",
    "profiled",
    "render_prometheus",
    "reset_logging",
    "set_console_json",
    "set_registry",
    "set_tracer",
    "span",
    "tracer",
    "use_metrics",
    "use_tracer",
    "validate_exposition",
    "validate_trace_events",
]
