"""Near-zero-overhead metrics registry: counters, gauges, histograms.

Instrumented components (caches, prefetchers, the criticality detector, the
OOO core) register with the *active* registry at construction time.  The
default active registry is :data:`NULL_REGISTRY`, whose instruments are
shared no-op singletons — binding against it costs one attribute lookup at
construction and nothing on the hot path, so simulation timing with
instrumentation off is indistinguishable from the pre-instrumentation code
(``tests/test_obs_overhead.py`` guards this).

Two complementary instrumentation styles are supported:

* **instruments** (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) for
  per-event recording that only exists while a real registry is active —
  components check ``registry.enabled`` once at construction and keep
  ``None`` otherwise, so the disabled hot path pays a single ``is not None``
  branch;
* **providers** — callables returning a dict of values, registered by name
  and invoked only at :meth:`MetricsRegistry.snapshot` time.  Components
  that already maintain their own stats dataclasses (every cache, the
  prefetchers, the CATCH engine) expose them this way for free.

Provider names are unique: re-registering a name replaces the previous
provider, so rebuilding a hierarchy run after run does not leak entries.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Mapping, Sequence

#: Default bucket upper bounds (cycles) for load-latency histograms: one per
#: hierarchy regime (L1 / L2 / LLC / local DRAM / loaded DRAM tail).
LOAD_LATENCY_BUCKETS: tuple[float, ...] = (5, 10, 15, 25, 40, 60, 100, 160, 250, 400)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-boundary histogram (bucket ``i`` counts ``value <= bounds[i]``).

    The final slot counts overflow (values above the last boundary).
    Boundaries are fixed at construction so recording is a single bisect
    plus two adds — no allocation.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if list(bounds) != sorted(bounds) or not bounds:
            raise ValueError(f"histogram {name!r} needs sorted non-empty bounds")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def record(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation within buckets.

        The estimator mirrors Prometheus's ``histogram_quantile``: the first
        bucket's lower edge is taken as 0 (all recorded metrics here are
        non-negative latencies/sizes), values inside a bucket are assumed
        uniformly distributed, and anything in the overflow bucket clamps to
        the last boundary — a histogram cannot extrapolate past its bounds.

        An *empty* histogram has no quantiles: it returns ``NaN`` (as
        Prometheus's estimator does), never ``0.0`` — a real 0-latency p99
        and "no observations yet" must stay distinguishable.  JSON surfaces
        (:meth:`to_dict`, ``/api/v1/stats``) render the empty case as
        ``null`` instead, since ``NaN`` is not valid JSON.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return math.nan
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            in_bucket = self.counts[i]
            if in_bucket and cumulative + in_bucket >= target:
                fraction = (target - cumulative) / in_bucket
                return lower + fraction * (bound - lower)
            cumulative += in_bucket
            lower = bound
        return self.bounds[-1]

    def to_dict(self) -> dict:
        # The original four keys are part of the checkpointed telemetry
        # format — keep them exactly so old snapshots still compare equal
        # key-for-key; the quantile estimates ride along as new keys.
        # Empty histograms have no quantiles: emit None (JSON null) rather
        # than NaN, which json.dumps would render as invalid JSON; the
        # Prometheus exposition skips non-numeric values, so the text
        # format stays valid either way.
        empty = self.count == 0
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "p50": None if empty else self.quantile(0.50),
            "p95": None if empty else self.quantile(0.95),
            "p99": None if empty else self.quantile(0.99),
        }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled registry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def record(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()

#: Type of a snapshot provider: zero-arg callable returning plain data.
Provider = Callable[[], Mapping]


class MetricsRegistry:
    """A live registry: hands out real instruments and snapshots everything."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._providers: dict[str, Provider] = {}

    # ---------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(
        self, name: str, bounds: Sequence[float] = LOAD_LATENCY_BUCKETS
    ) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, bounds)
        return inst

    # ------------------------------------------------------------ providers

    def register_provider(self, name: str, provider: Provider) -> None:
        """Register (or replace) a named snapshot provider."""
        self._providers[name] = provider

    def unregister_provider(self, name: str) -> None:
        self._providers.pop(name, None)

    # -------------------------------------------------------------- reading

    def snapshot(self) -> dict:
        """Plain-data view of every instrument and provider, right now.

        A provider that raises contributes an ``{"error": ...}`` entry
        instead of aborting the snapshot — telemetry must never kill a run.
        """
        providers: dict[str, dict] = {}
        for name, provider in self._providers.items():
            try:
                providers[name] = dict(provider())
            except Exception as exc:  # snapshot survives a bad provider
                providers[name] = {"error": repr(exc)}
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.to_dict() for n, h in self._histograms.items()},
            "providers": providers,
        }

    def reset(self) -> None:
        """Drop every instrument and provider."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._providers.clear()


class NullRegistry:
    """The disabled registry: every operation is a no-op.

    All instrument factories return one shared no-op object, so components
    written against the registry API cost nothing when instrumentation is
    off.  Components that want a strictly branch-free hot path check
    ``enabled`` at construction and skip binding instruments entirely.
    """

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, bounds: Sequence[float] = LOAD_LATENCY_BUCKETS
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def register_provider(self, name: str, provider: Provider) -> None:
        pass

    def unregister_provider(self, name: str) -> None:
        pass

    def snapshot(self) -> dict:
        return {}

    def reset(self) -> None:
        pass


#: The module-level disabled registry (the default active one).
NULL_REGISTRY = NullRegistry()
