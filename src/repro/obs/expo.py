"""Prometheus text-format exposition of a metrics-registry snapshot.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot
<repro.obs.registry.MetricsRegistry.snapshot>` dict into the Prometheus
text exposition format (version ``0.0.4`` — the format every Prometheus
server scrapes):

* **counters** become ``repro_<name>_total`` samples with ``# TYPE counter``;
* **gauges** become ``repro_<name>`` samples with ``# TYPE gauge``;
* **histograms** become full Prometheus histograms — *cumulative*
  ``_bucket{le="..."}`` samples ending in ``le="+Inf"``, plus ``_sum`` and
  ``_count`` (the registry stores per-bucket counts; the cumulative sum
  happens here, at exposition time);
* **provider snapshots** (the per-component stats dicts) are flattened to
  one labeled gauge family, ``repro_snapshot{provider="...",key="..."}``,
  keeping nested keys as dotted paths and skipping non-numeric leaves.

Metric names are sanitised to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` alphabet
(dots in registry names become underscores) and label values are escaped
per the spec (backslash, double quote, newline).

:func:`validate_exposition` is the checker the CI smoke job runs over a
live scrape: line syntax, metric-name alphabet, family grouping, duplicate
series, and histogram bucket cumulativity/completeness.  It can be invoked
standalone::

    python -m repro.obs.expo check metrics.prom     # '-' reads stdin
"""

from __future__ import annotations

import re
import sys
from typing import Mapping

#: Default metric-name prefix for everything this package exposes.
NAMESPACE = "repro"

#: Content-Type a conforming scrape endpoint must serve.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_BAD_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

# One sample line: name{labels} value  (we never emit timestamps).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)


def sanitize_metric_name(name: str, namespace: str = NAMESPACE) -> str:
    """Map a registry name onto the Prometheus metric-name alphabet."""
    base = _BAD_NAME_CHARS.sub("_", name)
    if namespace:
        base = f"{namespace}_{base}"
    if not _NAME_RE.match(base):
        base = "_" + base
    return base


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-format spec."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape a HELP docstring per the text-format spec."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labels(pairs: "list[tuple[str, str]]") -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(str(value))}"' for name, value in pairs
    )
    return "{" + inner + "}"


def _flatten(prefix: str, value: object, out: "list[tuple[str, float]]") -> None:
    if isinstance(value, Mapping):
        for key in sorted(value, key=str):
            child = f"{prefix}.{key}" if prefix else str(key)
            _flatten(child, value[key], out)
        return
    if isinstance(value, bool):
        out.append((prefix, 1.0 if value else 0.0))
    elif isinstance(value, (int, float)):
        out.append((prefix, float(value)))
    # strings, lists, None: not representable as a gauge sample — skipped.


def render_prometheus(snapshot: Mapping, namespace: str = NAMESPACE) -> str:
    """Render a registry snapshot as Prometheus text exposition format.

    Accepts the dict shape :meth:`MetricsRegistry.snapshot` produces —
    ``{"counters": ..., "gauges": ..., "histograms": ..., "providers":
    ...}`` — with every section optional, so an empty snapshot renders to
    an empty (but valid) exposition.
    """
    lines: list[str] = []

    for name in sorted(snapshot.get("counters") or {}):
        value = snapshot["counters"][name]
        metric = sanitize_metric_name(name, namespace)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# HELP {metric} Counter {escape_help(name)} from the metrics registry.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {format_value(value)}")

    for name in sorted(snapshot.get("gauges") or {}):
        value = snapshot["gauges"][name]
        metric = sanitize_metric_name(name, namespace)
        lines.append(f"# HELP {metric} Gauge {escape_help(name)} from the metrics registry.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {format_value(value)}")

    for name in sorted(snapshot.get("histograms") or {}):
        hist = snapshot["histograms"][name]
        metric = sanitize_metric_name(name, namespace)
        bounds = list(hist.get("bounds") or [])
        counts = list(hist.get("counts") or [])
        total = hist.get("sum", 0.0)
        count = hist.get("count", 0)
        lines.append(f"# HELP {metric} Histogram {escape_help(name)} from the metrics registry.")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, bucket_count in zip(bounds, counts):
            cumulative += bucket_count
            labels = _labels([("le", format_value(bound))])
            lines.append(f"{metric}_bucket{labels} {cumulative}")
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{metric}_sum {format_value(total)}")
        lines.append(f"{metric}_count {count}")

    providers = snapshot.get("providers") or {}
    if providers:
        metric = sanitize_metric_name("snapshot", namespace)
        lines.append(
            f"# HELP {metric} Provider snapshot values flattened to "
            f"(provider, key) labels."
        )
        lines.append(f"# TYPE {metric} gauge")
        for provider in sorted(providers):
            flat: list[tuple[str, float]] = []
            _flatten("", providers[provider], flat)
            for key, value in flat:
                labels = _labels([("provider", provider), ("key", key)])
                lines.append(f"{metric}{labels} {format_value(value)}")

    return "".join(line + "\n" for line in lines)


# ------------------------------------------------------------------ checker


def _parse_labels(raw: str) -> "list[tuple[str, str]] | None":
    """Parse a label body (``a="b",c="d"``); None on syntax errors."""
    pairs: list[tuple[str, str]] = []
    i = 0
    n = len(raw)
    while i < n:
        eq = raw.find("=", i)
        if eq < 0:
            return None
        name = raw[i:eq]
        if not _LABEL_NAME_RE.match(name):
            return None
        if eq + 1 >= n or raw[eq + 1] != '"':
            return None
        j = eq + 2
        value_chars: list[str] = []
        while j < n:
            ch = raw[j]
            if ch == "\\":
                if j + 1 >= n:
                    return None
                nxt = raw[j + 1]
                value_chars.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt)
                )
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        else:
            return None
        pairs.append((name, "".join(value_chars)))
        i = j + 1
        if i < n:
            if raw[i] != ",":
                return None
            i += 1
    return pairs


def _family_of(sample_name: str, types: Mapping[str, str]) -> str:
    """The metric family a sample belongs to (histogram suffix aware)."""
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
        if base and types.get(base) in ("histogram", "summary", "counter"):
            return base
    return sample_name


def validate_exposition(text: str) -> list[str]:
    """Check text against the Prometheus exposition format (0.0.4 subset).

    Returns a list of problem strings (empty = valid).  Beyond line syntax
    it verifies the properties a broken renderer is most likely to violate:
    histogram buckets must be *cumulative* (non-decreasing as ``le``
    increases), end in ``le="+Inf"``, and agree with ``_count``; a series
    (name + label set) must be unique; a family's samples must be grouped.
    """
    problems: list[str] = []
    if text and not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    types: dict[str, str] = {}
    seen_series: set[tuple] = set()
    family_done: set[str] = set()
    current_family: str | None = None
    # family -> {"buckets": [(le, value)], "count": int|None}
    histograms: dict[str, dict] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                if not _NAME_RE.match(name):
                    problems.append(f"line {lineno}: bad metric name {name!r}")
                if parts[1] == "TYPE":
                    if name in types:
                        problems.append(
                            f"line {lineno}: duplicate TYPE for {name}"
                        )
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in (
                        "counter", "gauge", "histogram", "summary", "untyped"
                    ):
                        problems.append(
                            f"line {lineno}: unknown type {kind!r} for {name}"
                        )
                    types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparsable sample {line!r}")
            continue
        name = match.group("name")
        raw_labels = match.group("labels")
        labels = _parse_labels(raw_labels) if raw_labels else []
        if labels is None:
            problems.append(f"line {lineno}: bad label syntax {raw_labels!r}")
            continue
        value_s = match.group("value")
        if value_s not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value_s)
            except ValueError:
                problems.append(f"line {lineno}: bad value {value_s!r}")
                continue
        series = (name, tuple(sorted(labels)))
        if series in seen_series:
            problems.append(f"line {lineno}: duplicate series {name}{dict(labels)}")
        seen_series.add(series)
        family = _family_of(name, types)
        if family != current_family:
            if family in family_done:
                problems.append(
                    f"line {lineno}: samples of {family} are not grouped"
                )
            if current_family is not None:
                family_done.add(current_family)
            current_family = family
        if types.get(family) == "histogram":
            entry = histograms.setdefault(family, {"buckets": [], "count": None})
            if name == family + "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    problems.append(
                        f"line {lineno}: {name} sample has no 'le' label"
                    )
                else:
                    bound = float("inf") if le == "+Inf" else float(le)
                    entry["buckets"].append((bound, float(value_s)))
            elif name == family + "_count":
                entry["count"] = float(value_s)

    for family, entry in histograms.items():
        buckets = entry["buckets"]
        if not buckets or buckets[-1][0] != float("inf"):
            problems.append(f"histogram {family}: missing le=\"+Inf\" bucket")
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            problems.append(f"histogram {family}: 'le' bounds not ascending")
        values = [v for _, v in buckets]
        if any(b > a for a, b in zip(values[1:], values)):
            problems.append(
                f"histogram {family}: bucket values not cumulative "
                f"(must be non-decreasing in le)"
            )
        if (
            buckets
            and buckets[-1][0] == float("inf")
            and entry["count"] is not None
            and buckets[-1][1] != entry["count"]
        ):
            problems.append(
                f"histogram {family}: +Inf bucket {buckets[-1][1]:g} "
                f"!= _count {entry['count']:g}"
            )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    """``python -m repro.obs.expo check FILE`` — exit 0 iff valid."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2 or argv[0] != "check":
        print("usage: python -m repro.obs.expo check FILE|-", file=sys.stderr)
        return 2
    source = argv[1]
    text = sys.stdin.read() if source == "-" else open(source).read()
    problems = validate_exposition(text)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        samples = sum(
            1 for line in text.splitlines() if line and not line.startswith("#")
        )
        print(f"OK: {samples} samples")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
