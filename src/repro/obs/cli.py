"""Shared observability CLI flags and the session that honours them.

Both entry points (``python -m repro.sim`` and ``python -m repro.experiments``)
call :func:`add_observability_args` on their parser and wrap execution in
:func:`observability_session`.  With every flag at its default the session
configures nothing and changes nothing — output stays byte-identical to an
uninstrumented process.
"""

from __future__ import annotations

import json
import sys
from argparse import ArgumentParser, Namespace
from contextlib import contextmanager

from .console import set_console_json
from .logs import configure_logging, reset_logging
from .profiling import profiled
from .registry import MetricsRegistry
from .trace import TraceCollector

_LOG_LEVELS = ("debug", "info", "warning", "error")


def add_observability_args(parser: ArgumentParser) -> None:
    """Attach the ``--trace-out/--profile/--log-*/--metrics-out`` flags."""
    group = parser.add_argument_group("observability (see OBSERVABILITY.md)")
    group.add_argument(
        "--trace-out", metavar="PATH",
        help="write spans as Chrome trace-event JSON (open in Perfetto)",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="wrap the command in cProfile and print a cumulative report "
             "to stderr; phase wall-clock timings land in the telemetry",
    )
    group.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the final metrics-registry snapshot as JSON",
    )
    group.add_argument(
        "--log-level", choices=_LOG_LEVELS, metavar="LEVEL",
        help=f"enable logging at LEVEL ({'/'.join(_LOG_LEVELS)})",
    )
    group.add_argument(
        "--log-json", action="store_true",
        help="structured JSONL logs; console status lines become log events",
    )
    group.add_argument(
        "--log-file", metavar="PATH",
        help="write logs to PATH instead of stderr",
    )


@contextmanager
def observability_session(args: Namespace):
    """Honour the observability flags for the duration of a CLI command.

    Yields the live :class:`MetricsRegistry` (or ``None`` when metrics stay
    disabled).  On exit the trace file and metrics snapshot are written and
    all global observability state is restored, so sessions nest cleanly in
    tests.
    """
    from . import set_registry, set_tracer

    trace_out = getattr(args, "trace_out", None)
    profile = getattr(args, "profile", False)
    metrics_out = getattr(args, "metrics_out", None)
    log_level = getattr(args, "log_level", None)
    log_json = getattr(args, "log_json", False)
    log_file = getattr(args, "log_file", None)

    configured_logging = bool(log_level or log_json or log_file)
    if configured_logging:
        configure_logging(
            log_level or "info", json_lines=log_json, path=log_file
        )
    previous_console = set_console_json(log_json)

    registry = None
    previous_registry = None
    if metrics_out or profile or trace_out:
        registry = MetricsRegistry()
        previous_registry = set_registry(registry)

    collector = None
    previous_tracer = None
    if trace_out:
        collector = TraceCollector()
        previous_tracer = set_tracer(collector)

    try:
        with profiled(enabled=profile):
            yield registry
    finally:
        if collector is not None:
            set_tracer(previous_tracer)
            collector.write(trace_out)
            print(f"trace written to {trace_out}", file=sys.stderr)
        if registry is not None:
            if metrics_out:
                with open(metrics_out, "w") as fh:
                    json.dump(registry.snapshot(), fh, indent=2, default=repr)
                print(f"metrics written to {metrics_out}", file=sys.stderr)
            set_registry(previous_registry)
        set_console_json(previous_console)
        if configured_logging:
            reset_logging()
