"""Span collection in Chrome trace-event JSON (Perfetto / chrome://tracing).

A :class:`TraceCollector` accumulates *complete* events (``ph: "X"``) with
microsecond timestamps relative to collector creation.  ``--trace-out`` on
the CLIs writes :meth:`TraceCollector.to_payload` to disk; the resulting
file loads directly in https://ui.perfetto.dev or ``chrome://tracing``.

The trace-event format reference is the "Trace Event Format" document; only
the small subset we emit (``X``, ``i`` and ``C`` phases) is validated by
:func:`validate_trace_events`, which the CI smoke run and the round-trip
tests both use.

Cross-process merging: a fleet worker records into its own collector and
ships ``(wall_t0, events)`` back with its result; the parent calls
:meth:`TraceCollector.merge_events`, which rebases the shipped timestamps
onto the parent's timeline using the wall-clock anchor each collector
captures at construction.  Shipped events keep their worker ``pid``, so
Perfetto renders each worker as its own process track under one timeline.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterable, Mapping

#: Phases validate_trace_events accepts (the subset this module emits).
_KNOWN_PHASES = {"X", "i", "C"}

#: Minimum µs gap enforced between successive counter samples so a coarse
#: injected clock cannot emit duplicate timestamps (Perfetto renders
#: duplicate-ts counter samples in arbitrary — i.e. wrong — order).
_TS_EPSILON_US = 1e-3


class TraceCollector:
    """Accumulates trace events for one process-wide timeline.

    Args:
        clock: seconds-valued monotonic clock (tests inject a fake).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._t0 = clock()
        #: Wall-clock anchor for cross-process merging: the wall time at
        #: which this collector's timeline origin (``ts == 0``) was taken.
        self.wall_t0 = time.time()
        self.pid = os.getpid()
        self.events: list[dict] = []
        self._last_counter_ts = -1.0

    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    def now_us(self) -> float:
        """The current timestamp on this collector's timeline (µs)."""
        return self._now_us()

    # -------------------------------------------------------------- emitting

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "sim",
        args: Mapping | None = None,
        tid: int = 0,
    ):
        """Record a complete event covering the ``with`` block."""
        start = self._now_us()
        try:
            yield self
        finally:
            event = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": start,
                "dur": self._now_us() - start,
                "pid": self.pid,
                "tid": tid,
            }
            if args:
                event["args"] = dict(args)
            self.events.append(event)

    def complete(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        cat: str = "sim",
        args: Mapping | None = None,
        tid: int = 0,
    ) -> None:
        """Record a complete event with explicit timestamps.

        Used for *retroactive* spans whose start was only a remembered
        timestamp — e.g. a job's queue-wait span, emitted at lease time
        covering ``submit → lease``.
        """
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": max(0.0, ts_us),
            "dur": max(0.0, dur_us),
            "pid": self.pid,
            "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def instant(
        self,
        name: str,
        cat: str = "sim",
        args: Mapping | None = None,
        tid: int = 0,
    ) -> None:
        """Record a zero-duration marker."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self._now_us(),
            "pid": self.pid,
            "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def counter(self, name: str, values: Mapping[str, float], cat: str = "sim") -> None:
        """Record a counter sample (rendered as a stacked track).

        Timestamps are forced strictly monotonic: a coarse injected clock
        (or two samples inside one clock tick) would otherwise produce
        duplicate ``ts`` values, which Perfetto renders out of order.
        """
        ts = self._now_us()
        if ts <= self._last_counter_ts:
            ts = self._last_counter_ts + _TS_EPSILON_US
        self._last_counter_ts = ts
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "C",
                "ts": ts,
                "pid": self.pid,
                "tid": 0,
                "args": dict(values),
            }
        )

    # -------------------------------------------------------------- merging

    def merge_events(
        self,
        events: Iterable[Mapping],
        *,
        wall_t0: float | None = None,
        extra_args: Mapping | None = None,
    ) -> int:
        """Fold another collector's events onto this timeline.

        Args:
            events: the other collector's ``events`` list (its timestamps
                are relative to *its* origin).
            wall_t0: the other collector's wall-clock anchor; when given,
                timestamps are rebased so both timelines share this
                collector's origin.  Without it events are appended as-is.
            extra_args: merged into each event's ``args`` (e.g. a
                ``trace_id`` tag), without overwriting existing keys.

        Returns the number of events merged.
        """
        offset_us = 0.0
        if wall_t0 is not None:
            offset_us = (wall_t0 - self.wall_t0) * 1e6
        merged = 0
        for event in events:
            event = dict(event)
            event["ts"] = max(0.0, float(event.get("ts", 0.0)) + offset_us)
            if extra_args:
                merged_args = dict(extra_args)
                merged_args.update(event.get("args") or {})
                event["args"] = merged_args
            self.events.append(event)
            merged += 1
        return merged

    # --------------------------------------------------------------- output

    def to_payload(self) -> dict:
        """The JSON-object form of the trace-event format."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> None:
        """Write the trace as JSON (Perfetto-loadable)."""
        Path(path).write_text(json.dumps(self.to_payload()) + "\n")


def current_tid() -> int:
    """A small per-thread id for trace events (stable within a process)."""
    return threading.get_ident() % 1_000_000


def validate_trace_events(payload: object) -> list[str]:
    """Check a trace payload against the trace-event schema subset we emit.

    Returns a list of problem strings (empty = valid).  Used by the CI smoke
    step and the round-trip tests, and intentionally tolerant of event kinds
    we do not emit ourselves only in that it names them as problems rather
    than crashing.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args not an object")
    return problems


def load_trace(path: str | Path) -> dict:
    """Read a trace file back (round-trip tests)."""
    return json.loads(Path(path).read_text())
