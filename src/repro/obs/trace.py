"""Span collection in Chrome trace-event JSON (Perfetto / chrome://tracing).

A :class:`TraceCollector` accumulates *complete* events (``ph: "X"``) with
microsecond timestamps relative to collector creation.  ``--trace-out`` on
the CLIs writes :meth:`TraceCollector.to_payload` to disk; the resulting
file loads directly in https://ui.perfetto.dev or ``chrome://tracing``.

The trace-event format reference is the "Trace Event Format" document; only
the small subset we emit (``X``, ``i`` and ``C`` phases) is validated by
:func:`validate_trace_events`, which the CI smoke run and the round-trip
tests both use.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Mapping

#: Phases validate_trace_events accepts (the subset this module emits).
_KNOWN_PHASES = {"X", "i", "C"}


class TraceCollector:
    """Accumulates trace events for one process-wide timeline.

    Args:
        clock: seconds-valued monotonic clock (tests inject a fake).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._t0 = clock()
        self.pid = os.getpid()
        self.events: list[dict] = []

    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    # -------------------------------------------------------------- emitting

    @contextmanager
    def span(self, name: str, cat: str = "sim", args: Mapping | None = None):
        """Record a complete event covering the ``with`` block."""
        start = self._now_us()
        try:
            yield self
        finally:
            event = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": start,
                "dur": self._now_us() - start,
                "pid": self.pid,
                "tid": 0,
            }
            if args:
                event["args"] = dict(args)
            self.events.append(event)

    def instant(self, name: str, cat: str = "sim", args: Mapping | None = None) -> None:
        """Record a zero-duration marker."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": self._now_us(),
            "pid": self.pid,
            "tid": 0,
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def counter(self, name: str, values: Mapping[str, float], cat: str = "sim") -> None:
        """Record a counter sample (rendered as a stacked track)."""
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "C",
                "ts": self._now_us(),
                "pid": self.pid,
                "tid": 0,
                "args": dict(values),
            }
        )

    # --------------------------------------------------------------- output

    def to_payload(self) -> dict:
        """The JSON-object form of the trace-event format."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> None:
        """Write the trace as JSON (Perfetto-loadable)."""
        Path(path).write_text(json.dumps(self.to_payload()) + "\n")


def validate_trace_events(payload: object) -> list[str]:
    """Check a trace payload against the trace-event schema subset we emit.

    Returns a list of problem strings (empty = valid).  Used by the CI smoke
    step and the round-trip tests, and intentionally tolerant of event kinds
    we do not emit ourselves only in that it names them as problems rather
    than crashing.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args not an object")
    return problems


def load_trace(path: str | Path) -> dict:
    """Read a trace file back (round-trip tests)."""
    return json.loads(Path(path).read_text())
