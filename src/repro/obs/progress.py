"""N-of-M progress ticks with ETA, for long experiment sweeps.

Ticks go to stderr (never stdout) so ``--json`` payloads and figure text
stay clean, and the ETA is the classic remaining = elapsed / done * left
extrapolation — coarse, but exactly what you want at 2 a.m. watching
``python -m repro.experiments all``.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Callable


class Progress:
    """Prints ``[k/M] item  elapsed Xs  ETA Ys`` lines as work completes.

    Args:
        total: number of items in the sweep.
        label: prefix naming the sweep (e.g. ``"experiments"``).
        stream: destination (default ``sys.stderr``).
        clock: monotonic seconds source (tests inject a fake).
    """

    def __init__(
        self,
        total: int,
        label: str = "",
        stream: IO[str] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._start = clock()
        self.done = 0

    def tick(self, item: str = "") -> str:
        """Mark one item complete and emit the progress line (returned too)."""
        self.done += 1
        elapsed = self._clock() - self._start
        prefix = f"{self.label} " if self.label else ""
        line = f"{prefix}[{self.done}/{self.total}] {item}".rstrip()
        line += f"  elapsed {elapsed:.1f}s"
        if 0 < self.done < self.total:
            eta = elapsed / self.done * (self.total - self.done)
            line += f"  ETA {eta:.1f}s"
        print(line, file=self.stream, flush=True)
        return line
