"""Profiling hooks: cProfile wrapping and per-phase wall-clock timing.

``--profile`` on the CLIs wraps the whole command in :func:`profiled`, which
prints a sorted-cumulative ``pstats`` report to stderr on exit.  Phase-level
wall-clock timing (trace build / warmup / measure / finish) is recorded by
the simulator itself with :class:`PhaseTimer` and lands in
``RunResult.telemetry`` and the metrics snapshot.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import time
from contextlib import contextmanager
from typing import IO, Callable


@contextmanager
def profiled(
    enabled: bool = True,
    *,
    stream: IO[str] | None = None,
    top: int = 30,
    sort: str = "cumulative",
):
    """Profile the block with cProfile and print a sorted report on exit.

    With ``enabled=False`` this is a transparent no-op, so CLI code can wrap
    unconditionally.  Yields the live profiler (or ``None`` when disabled).
    """
    if not enabled:
        yield None
        return
    out = stream if stream is not None else sys.stderr
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        print(f"--- cProfile ({sort}, top {top}) ---", file=out)
        pstats.Stats(profiler, stream=out).sort_stats(sort).print_stats(top)


class PhaseTimer:
    """Accumulates named wall-clock phase durations (seconds)."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.phases: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        start = self._clock()
        try:
            yield
        finally:
            self.phases[name] = (
                self.phases.get(name, 0.0) + self._clock() - start
            )

    def to_dict(self) -> dict[str, float]:
        return dict(self.phases)
