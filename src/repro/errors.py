"""Typed exception hierarchy for the reproduction.

Everything the package raises deliberately derives from :class:`ReproError`,
so callers (the resilient runner, the experiment CLI, tests) can distinguish
*our* failure classes from genuine bugs:

* :class:`ConfigError` — a nonsense machine description, raised eagerly by
  :meth:`repro.sim.config.SimConfig.validate` before any simulation starts.
* :class:`RunTimeoutError` — a run exceeded its wall-clock deadline
  (enforced cooperatively by the runner's per-instruction check).
* :class:`ResultIntegrityError` — a simulation completed but produced a
  result that fails sanity checks (non-finite cycles, zero instructions).
* :class:`InjectedFault` — raised only by the fault-injection harness
  (:mod:`repro.runner.faultinject`); never seen in production runs.
* :class:`CheckpointError` — a checkpoint file could not be read/decoded.
* :class:`WorkerCrashError` / :class:`WorkerOOMError` — a fleet worker
  *process* died (nonzero exit, signal, OOM-kill) or tripped the parent's
  RSS guard; raised/recorded only by :mod:`repro.runner.fleet`.
* :class:`RunFailure` — terminal wrapper raised by the runner once retries
  are exhausted; carries the structured context a failure report needs.
* :class:`JournalError` — misuse of the campaign service's write-ahead
  journal (torn tails are *not* errors: replay truncates them).
* :class:`AdmissionError` and its subclasses :class:`QueueFull`,
  :class:`QuotaExceeded`, :class:`CircuitOpen` — typed submission
  rejections from the campaign service, each carrying a ``retry_after_s``
  hint (HTTP 429 + ``Retry-After`` at the API boundary).
* :class:`SafeModeActive` — the service has stopped admitting writes
  because its storage is failing (ENOSPC/EIO evidence); maps to HTTP 503
  with ``Retry-After``, unlike admission rejections which map to 429.
* :class:`JobNotFound` / :class:`JobStateError` — bad job id, or an
  operation invalid for the job's current state-machine state.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every deliberate error in this package."""


class ConfigError(ReproError, ValueError):
    """A machine configuration fails validation (see ``SimConfig.validate``)."""


class RunTimeoutError(ReproError):
    """A simulation exceeded its wall-clock deadline."""

    def __init__(self, message: str, *, elapsed_s: float = 0.0,
                 timeout_s: float = 0.0) -> None:
        super().__init__(message)
        self.elapsed_s = elapsed_s
        self.timeout_s = timeout_s


class ResultIntegrityError(ReproError):
    """A run finished but its metrics fail sanity checks (NaN/zero)."""


class InjectedFault(ReproError):
    """A deterministic failure injected by the fault-injection harness."""


class CheckpointError(ReproError):
    """A checkpoint/result file is unreadable or has the wrong schema."""


class WorkerError(ReproError):
    """Base class for faults of a fleet worker *process* (not a run)."""


class WorkerCrashError(WorkerError):
    """A worker process died without reporting a result.

    ``exitcode`` follows ``multiprocessing.Process.exitcode`` conventions:
    positive values are the process exit status, negative values are the
    signal that killed it (``-9`` with no deadline kill from our side is
    the signature of the kernel OOM killer).
    """

    def __init__(self, message: str, *, exitcode: int | None = None) -> None:
        super().__init__(message)
        self.exitcode = exitcode


class WorkerOOMError(WorkerError):
    """A worker exceeded the fleet's RSS guard and was killed."""

    def __init__(self, message: str, *, rss_mb: float = 0.0,
                 limit_mb: float = 0.0) -> None:
        super().__init__(message)
        self.rss_mb = rss_mb
        self.limit_mb = limit_mb


class JournalError(ReproError):
    """The service's write-ahead journal hit an unrecoverable condition.

    Torn or corrupt *tails* are not errors (they are truncated with a
    warning during replay, mirroring checkpoint quarantine); this is for
    genuine misuse — appending to a closed journal, an unwritable path.
    """


class AdmissionError(ReproError):
    """Base class for typed submission rejections from the campaign service.

    Every admission rejection carries ``retry_after_s`` — a hint for when
    the caller should try again (surfaced as the HTTP ``Retry-After``
    header) — so clients can back off instead of hammering a full queue.
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QueueFull(AdmissionError):
    """The durable job queue is at its bounded depth; nothing was enqueued."""


class QuotaExceeded(AdmissionError):
    """The submitter already holds its full quota of active jobs."""


class CircuitOpen(AdmissionError):
    """This configuration is quarantined: its workers repeatedly crashed.

    The breaker re-admits a single probe job after the cooldown
    (``retry_after_s``); a successful probe closes the circuit.
    """


class SafeModeActive(ReproError):
    """The service is in disk-fault safe mode and not admitting writes.

    Deliberately *not* an :class:`AdmissionError`: admission rejections are
    the caller's problem (full queue, quota) and map to HTTP 429, while
    safe mode is the *service's* problem (its disk is failing) and maps to
    HTTP 503 + ``Retry-After``.  Read-only operations keep working.
    """

    def __init__(self, message: str, *, retry_after_s: float = 5.0,
                 reason: str = "") -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.reason = reason


class JobNotFound(ReproError, KeyError):
    """No job with the requested id exists in the queue."""


class JobStateError(ReproError):
    """An operation is invalid for the job's current state (e.g. cancelling
    a job that already completed, completing a job nobody holds a lease on)."""


class RunFailure(ReproError):
    """One ``(config, workload)`` run failed after all recovery attempts.

    Raised by :class:`repro.runner.ExperimentRunner` with the context a
    structured failure report needs; ``__cause__`` is the final underlying
    exception.
    """

    def __init__(
        self,
        message: str,
        *,
        config_name: str,
        workload: str,
        n_instrs: int,
        attempts: int,
        elapsed_s: float,
    ) -> None:
        super().__init__(message)
        self.config_name = config_name
        self.workload = workload
        self.n_instrs = n_instrs
        self.attempts = attempts
        self.elapsed_s = elapsed_s
