"""Workload registry: named workloads as pluggable, content-addressed specs.

The last hard-wired component family becomes a :class:`Registry` like every
other: the 35 Table-II synthetic suites register here at import, trace-file
workloads register via :func:`repro.workloads.ingest.register_trace_workload`,
and out-of-tree workloads register from ``$REPRO_PLUGINS`` modules exactly
like prefetchers do (see ARCHITECTURE.md for the worked example).

Identity is **content-addressed**, not name-addressed: every workload
reference resolves to a :func:`workload_fingerprint` — a SHA-256 over what
the workload *is* (kernel + parameters for synthetic specs, trace-file
content hash for ingested traces, the member fingerprints for a mix) — and
that fingerprint, not the display name, keys ResultStore checkpoints,
ResultCache entries and service dedup.  Re-registering a name with different
parameters therefore can never alias a cached result.

Multi-programmed mixes are first-class references: ``"a+b+c+d"`` (the
:data:`MIX_SEPARATOR` join of member names) names a 4-way mix whose
fingerprint covers the ordered member tuple.
"""

from __future__ import annotations

import hashlib
import json

from .registry import Registry, canonical_name

#: Separator joining member names into a mix reference (and display string).
#: Reserved: it may not appear in a registered workload name.
MIX_SEPARATOR = "+"


class WorkloadRegistry(Registry):
    """A :class:`Registry` whose mutations bump a generation counter.

    The generation participates in the fingerprint memo key, so
    re-registering a name (out-of-tree override, test seam) immediately
    invalidates every memoised fingerprint — and with it the
    fingerprint-keyed trace memo in ``repro.workloads.suites`` — instead of
    serving a stale entry for the old spec.
    """

    def __init__(self, kind: str) -> None:
        super().__init__(kind)
        self.generation = 0

    def register(self, name, entry, *, summary: str = ""):
        if MIX_SEPARATOR in name:
            raise ValueError(
                f"workload name {name!r} contains {MIX_SEPARATOR!r}, which is "
                f"reserved for multi-programmed mix references"
            )
        spec = super().register(name, entry, summary=summary)
        self.generation += 1
        return spec

    def unregister(self, name) -> None:
        super().unregister(name)
        self.generation += 1


WORKLOADS: WorkloadRegistry = WorkloadRegistry("workload")


def register_workload(spec, *, summary: str = ""):
    """Register one workload spec under its own ``name``.

    ``spec`` is anything with ``name``, ``category`` and
    ``build(n_instrs) -> Trace`` — a
    :class:`~repro.workloads.suites.WorkloadSpec`, a
    :class:`~repro.workloads.ingest.TraceFileSpec`, or an out-of-tree
    equivalent.
    """
    return WORKLOADS.register(
        spec.name,
        spec,
        summary=summary or f"{getattr(spec, 'category', '?')} workload",
    )


# ------------------------------------------------------------------- mixes


def is_mix(ref: str) -> bool:
    """Whether a workload reference names a multi-programmed mix."""
    return isinstance(ref, str) and MIX_SEPARATOR in ref


def mix_names(ref: str) -> tuple[str, ...]:
    """The ordered member names of a mix reference (``"a+b"`` -> ``(a, b)``)."""
    return tuple(part for part in ref.split(MIX_SEPARATOR) if part)


def mix_display(mix) -> str:
    """The canonical display/reference string of a mix tuple."""
    return MIX_SEPARATOR.join(mix)


# ------------------------------------------------------------ fingerprints

#: Fingerprint memo: ``(registry generation, reference) -> digest``.  The
#: generation key makes registration/unregistration an implicit invalidation.
_FP_MEMO: dict[tuple[int, str], str] = {}


def _spec_payload(spec) -> dict:
    """The identity payload of one registered (non-mix) workload spec."""
    payload = getattr(spec, "fingerprint_payload", None)
    if callable(payload):
        # Ingested traces (and out-of-tree specs that know better) supply
        # their own identity — typically a content hash of the trace file.
        return payload()
    kernel = getattr(spec, "kernel", None)
    return {
        "type": "synthetic",
        "kernel": getattr(kernel, "__name__", repr(kernel)),
        "category": getattr(spec, "category", ""),
        "params": [list(pair) for pair in getattr(spec, "params", ())],
        "length_multiplier": getattr(spec, "length_multiplier", 1),
    }


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()


def workload_fingerprint(ref: str) -> str:
    """Stable content digest of a workload reference (memoized).

    * A registered synthetic spec hashes its kernel name, parameters and
      length semantics — the name is display-only, so a reused name with
      different parameters gets a different fingerprint.
    * An ingested trace workload hashes the trace file's *content*.
    * A mix reference (``"a+b+c+d"``) hashes the ordered member
      fingerprints, so the tuple identity covers every member's identity.
    * An *unregistered* name falls back to hashing the name itself: ad-hoc
      references (test doubles, prebuilt traces run by name) stay keyable
      without ever being able to alias a registered workload's entries.
    """
    if not isinstance(ref, str):
        ref = mix_display(ref)
    registered = not is_mix(ref) and ref in WORKLOADS
    # Key *after* the membership check: that check imports $REPRO_PLUGINS
    # modules, whose registrations bump the generation.
    key = (WORKLOADS.generation, ref)
    memo = _FP_MEMO.get(key)
    if memo is not None:
        return memo
    if is_mix(ref):
        payload = {
            "type": "mix",
            "members": [workload_fingerprint(name) for name in mix_names(ref)],
        }
    elif registered:
        payload = _spec_payload(WORKLOADS.get(ref))
    else:
        payload = {"type": "name", "name": canonical_name(ref)}
    fp = _digest(payload)
    if len(_FP_MEMO) > 4096:  # bound churn from generation bumps
        _FP_MEMO.clear()
    _FP_MEMO[key] = fp
    return fp


# ----------------------------------------------------- built-in registrations

def _register_builtin_suite() -> None:
    from ..workloads.suites import ST_SUITE

    for spec in ST_SUITE:
        register_workload(
            spec,
            summary=f"{spec.category} synthetic: {spec.kernel.__name__}",
        )


_register_builtin_suite()
