"""Composition layer: resolve registry names into built components.

This is the single place where ``SimConfig`` fields and CLI flags
(``--prefetchers``/``--detector``/``--topology``) turn into constructed
objects:

* :func:`core_prefetcher_factories` — the per-core trainer factories the
  simulator hands to :class:`~repro.cpu.core.OOOCore`.  When
  ``SimConfig.prefetchers`` is ``None`` the names are *derived from the
  legacy* ``CoreParams`` flags, so the default composition is
  registry-driven yet byte-identical to the hard-wired wiring it replaced
  (the golden-parity harness enforces this).
* :func:`make_engine` — the engine matching the config (CATCH when a
  ``CatchConfig`` is present, the no-op :class:`Engine` otherwise).
* :class:`Selection` / :func:`apply_selection` — the CLI override object:
  a topology transform, a mixed prefetcher list (core entries go to
  ``SimConfig.prefetchers``, ``tact-*`` entries to ``CatchConfig.tact``),
  and a detector swap, with the semantically invalid combinations rejected
  as :class:`ConfigError` naming the conflicting fields.
* :func:`use_selection` / :func:`apply_active_selection` — process-wide
  override the experiment runners consult, so ``repro.experiments <fig>
  --detector oldest-in-rob`` re-composes every config an experiment builds
  without the experiment knowing.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace

from ..core.catch_engine import CatchConfig, CatchEngine
from ..core.tact.coordinator import TACTConfig
from ..cpu.engine import Engine
from ..errors import ConfigError
from .detectors import DETECTORS
from .prefetchers import PREFETCHERS
from .registry import canonical_name
from .topologies import TOPOLOGIES

__all__ = [
    "Selection",
    "add_selection_args",
    "apply_active_selection",
    "apply_selection",
    "core_prefetcher_factories",
    "core_prefetcher_names",
    "make_engine",
    "selection_from_args",
    "split_prefetcher_names",
    "use_selection",
]


# ------------------------------------------------------------ construction


def core_prefetcher_names(config) -> tuple[str, ...]:
    """Canonical core-scope prefetcher names for a configuration.

    ``SimConfig.prefetchers`` wins when set; otherwise the names are derived
    from the legacy ``CoreParams.enable_l1_stride``/``enable_l2_stream``
    flags (the pre-registry wiring), preserving the default composition.
    """
    if config.prefetchers is not None:
        return tuple(canonical_name(name) for name in config.prefetchers)
    names = []
    if config.core.enable_l1_stride:
        names.append("ip-stride")
    if config.core.enable_l2_stream:
        names.append("stream")
    return tuple(names)


def core_prefetcher_factories(config) -> list:
    """Resolve :func:`core_prefetcher_names` to trainer factories."""
    factories = []
    for name in core_prefetcher_names(config):
        spec = PREFETCHERS.get(name)
        if spec.scope != "core" or spec.factory is None:
            raise ConfigError(
                f"{config.name}: prefetcher {name!r} has scope "
                f"{spec.scope!r} and cannot be built per-core; TACT "
                f"components belong in catch.tact, not SimConfig.prefetchers"
            )
        factories.append(spec.factory)
    return factories


def make_engine(config) -> Engine:
    """Engine matching the config (CATCH when configured, else no-op)."""
    if config.catch is not None:
        return CatchEngine(config.catch)
    return Engine()


def split_prefetcher_names(names) -> tuple[list[str], list[str]]:
    """Split a mixed prefetcher list into (core names, TACT components)."""
    core_names: list[str] = []
    tact_components: list[str] = []
    for name in names:
        spec = PREFETCHERS.get(name)
        if spec.scope == "tact":
            tact_components.append(spec.component)
        else:
            core_names.append(canonical_name(name))
    return core_names, tact_components


# --------------------------------------------------------------- Selection


@dataclass(frozen=True)
class Selection:
    """CLI-level component overrides applied on top of a ``SimConfig``."""

    prefetchers: tuple[str, ...] | None = None
    detector: str | None = None
    topology: str | None = None

    def __bool__(self) -> bool:
        return (
            self.prefetchers is not None
            or self.detector is not None
            or self.topology is not None
        )


def apply_selection(config, selection: Selection):
    """Re-compose one configuration under a :class:`Selection`.

    Semantics:

    * ``topology`` applies first (its transform renames the config the way
      the equivalent factory would).
    * ``prefetchers`` is exhaustive: core entries replace
      ``SimConfig.prefetchers``; ``tact-*`` entries replace the enabled
      ``CatchConfig.tact`` components (creating a CATCH config with the
      ``ddg`` detector if none exists); listing *no* ``tact-*`` entry on a
      CATCH config turns it detector-only (criticality is still learned,
      TACT stops prefetching).
    * ``detector`` swaps the identification mechanism wherever a CATCH
      config exists (or creates a detector-only one); ``none`` strips the
      CATCH engine entirely and conflicts with ``tact-*`` prefetchers.

    A re-composed config gets a ``name`` suffix recording the overrides, so
    checkpoint keys and result rows never collide with the unmodified run.
    """
    sel = selection
    cfg = config
    if sel.topology is not None:
        cfg = TOPOLOGIES.get(sel.topology).transform(cfg)
    base = cfg

    tact_components: list[str] | None = None
    if sel.prefetchers is not None:
        core_names, tact_components = split_prefetcher_names(sel.prefetchers)
        cfg = replace(cfg, prefetchers=tuple(core_names))
    detector = (
        canonical_name(sel.detector) if sel.detector is not None else None
    )

    if detector == "none":
        if tact_components:
            raise ConfigError(
                f"{cfg.name}: prefetchers "
                f"{['tact-' + c for c in tact_components]} require a "
                f"criticality detector but detector='none' was selected "
                f"(conflicting fields: prefetchers, detector)"
            )
        if cfg.catch is not None:
            cfg = replace(cfg, catch=None)
    else:
        catch = cfg.catch
        if tact_components:
            seed = catch if catch is not None else CatchConfig()
            catch = replace(
                seed,
                tact=TACTConfig.with_components(tact_components),
                detector=detector or seed.detector,
                detector_only=False,
            )
        elif sel.prefetchers is not None and catch is not None:
            catch = replace(
                catch,
                detector_only=True,
                detector=detector or catch.detector,
            )
        elif detector is not None:
            catch = (
                replace(catch, detector=detector)
                if catch is not None
                else CatchConfig(detector=detector, detector_only=True)
            )
        if catch != cfg.catch:
            cfg = replace(cfg, catch=catch)

    if cfg != base:
        parts = []
        if sel.prefetchers is not None:
            parts.append(
                "pf=" + "+".join(canonical_name(n) for n in sel.prefetchers)
            )
        if detector is not None:
            parts.append(f"det={detector}")
        if parts:
            cfg = replace(cfg, name=f"{cfg.name}[{','.join(parts)}]")
    return cfg


# ----------------------------------------------------------- CLI plumbing


def add_selection_args(parser) -> None:
    """Attach the shared component-selection flags to an argparse parser."""
    group = parser.add_argument_group(
        "component selection",
        "override the plugin composition of every configuration the command "
        "builds (see `python -m repro.sim plugins` for the registries)",
    )
    group.add_argument(
        "--prefetchers", nargs="+", metavar="NAME", default=None,
        help="exhaustive prefetcher list: core entries (ip-stride, stream, "
             "next-line, ...) and/or TACT components (tact-cross, ...); "
             "'none' selects no prefetchers at all",
    )
    group.add_argument(
        "--detector", metavar="NAME", default=None,
        help="criticality detector (ddg, oracle, load-miss-pc, ...); "
             "'none' strips the CATCH engine entirely",
    )
    group.add_argument(
        "--topology", metavar="NAME", default=None,
        help="hierarchy shape transform (baseline, no-l2, no-l2-catch, ...)",
    )


def selection_from_args(args) -> Selection:
    """Build a :class:`Selection` from parsed ``add_selection_args`` flags."""
    prefetchers = None
    if args.prefetchers is not None:
        names = [
            name
            for token in args.prefetchers
            for name in token.split(",")
            if name
        ]
        if names == ["none"]:
            names = []
        prefetchers = tuple(names)
    return Selection(
        prefetchers=prefetchers,
        detector=args.detector,
        topology=args.topology,
    )


# ------------------------------------------------------- active selection

_active_selection: Selection | None = None


@contextlib.contextmanager
def use_selection(selection: Selection | None):
    """Make ``selection`` the process-wide override for the duration."""
    global _active_selection
    previous = _active_selection
    _active_selection = selection if selection else None
    try:
        yield
    finally:
        _active_selection = previous


def apply_active_selection(config):
    """Apply the active :class:`Selection` (identity when none is active)."""
    if _active_selection is None:
        return config
    return apply_selection(config, _active_selection)
