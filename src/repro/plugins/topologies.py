"""Hierarchy-topology registry: named transforms over ``SimConfig``.

A topology entry is a pure transform ``SimConfig -> SimConfig`` reusing the
factories in :mod:`repro.sim.config`, so ``--topology no-l2`` on any
baseline produces exactly the machine the corresponding factory would have
built (on the Skylake-server baseline, ``no-l2`` yields the paper's
``noL2_6.5MB`` and ``no-l2-iso-area`` the ``noL2_9.5MB`` of Figure 10).

The capacity rules follow the paper's Section III framing: removing the L2
folds its capacity into the LLC (same total on-die SRAM), and the iso-area
variant grows the LLC by 4x the L2 capacity (the L2's area is dominated by
its higher-speed arrays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigError
from .registry import Registry


@dataclass(frozen=True)
class TopologySpec:
    """One selectable cache-hierarchy shape."""

    name: str
    summary: str
    transform: Callable  #: (SimConfig) -> SimConfig


TOPOLOGIES: Registry[TopologySpec] = Registry("topology")


def register_topology(
    name: str, transform: Callable, *, summary: str = ""
) -> TopologySpec:
    """Register a topology transform (the external-plugin entry point)."""
    spec = TopologySpec(name=name, summary=summary, transform=transform)
    TOPOLOGIES.register(name, spec, summary=summary)
    return spec


def _drop_l2(config, l2_area_factor: float):
    from ..sim.config import no_l2

    if config.l2 is None:
        return config  # already two-level; the transform is idempotent
    if config.llc is None:
        raise ConfigError(
            f"{config.name}: topology 'no-l2' requires an LLC to absorb the "
            f"L2 capacity"
        )
    llc_mb = (config.llc.size_kb + l2_area_factor * config.l2.size_kb) / 1024
    return no_l2(config, llc_mb)


def _with_catch(config):
    from ..sim.config import with_catch

    return config if config.catch is not None else with_catch(config)


register_topology(
    "baseline", lambda config: config,
    summary="the configuration's own L1/L2/LLC stack, unchanged",
)
register_topology(
    "no-l2", lambda config: _drop_l2(config, 1.0),
    summary="drop the L2, LLC grows by its capacity (iso-SRAM two-level)",
)
register_topology(
    "no-l2-iso-area", lambda config: _drop_l2(config, 4.0),
    summary="drop the L2, LLC grows by 4x its capacity (iso-area two-level)",
)
register_topology(
    "catch", _with_catch,
    summary="attach the CATCH engine (detector + TACT) to the stack",
)
register_topology(
    "no-l2-catch", lambda config: _with_catch(_drop_l2(config, 1.0)),
    summary="iso-SRAM two-level stack with CATCH (Figure 10's proposal)",
)
register_topology(
    "no-l2-iso-area-catch", lambda config: _with_catch(_drop_l2(config, 4.0)),
    summary="iso-area two-level stack with CATCH",
)
