"""Generic string-keyed plugin registry (the componentization substrate).

Every pluggable family in the simulator — prefetchers, criticality
detectors, replacement policies, hierarchy topologies — is a
:class:`Registry` instance mapping a canonical name to a small spec object.
The registry is deliberately a *leaf* module (stdlib imports only) so the
cache/CPU/core layers can depend on it without import cycles; the concrete
entries live next to the code they construct (``repro.plugins.prefetchers``,
``repro.caches.replacement`` …).

Lookup semantics shared by all registries:

* names are case-insensitive and ``_``/``-`` agnostic (``oldest_in_rob``
  and ``oldest-in-rob`` resolve to the same entry, so serialized configs
  written before the registry existed keep loading);
* an unknown name raises :class:`~repro.errors.ConfigError` listing every
  registered name plus a did-you-mean nearest match;
* registering a name twice raises ``ValueError`` (a programming error, not
  a configuration error).

External plugins: modules named in the ``REPRO_PLUGINS`` environment
variable (comma-separated import paths) are imported before any lookup, so
out-of-tree components can register themselves without touching this
package.  The variable is re-read when it changes, which makes it usable
from tests and — because spawn-based fleet workers inherit the environment
and ``sys.path`` — from parallel campaigns.
"""

from __future__ import annotations

import difflib
import importlib
import os
from typing import Generic, Iterator, TypeVar

from ..errors import ConfigError

#: Environment variable naming external plugin modules (comma-separated).
PLUGINS_ENV_VAR = "REPRO_PLUGINS"

T = TypeVar("T")


def canonical_name(name: str) -> str:
    """Normalise a registry key: lowercase, ``_`` treated as ``-``."""
    return name.strip().lower().replace("_", "-")


def suggest(name: str, known: "list[str]") -> str:
    """Uniform "unknown name" error text: sorted choices + did-you-mean."""
    message = f"choose from {sorted(known)}"
    close = difflib.get_close_matches(canonical_name(name), known, n=1)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    return message


_loaded_modules: set[str] = set()
_last_env: str | None = None


def load_external_plugins() -> None:
    """Import every module named in ``REPRO_PLUGINS`` (idempotent).

    Called before each registry lookup; a no-op unless the variable changed
    since the last call.  A module that fails to import raises
    :class:`ConfigError` naming it, and will be retried on the next lookup
    (so a transient failure does not poison the process).
    """
    global _last_env
    env = os.environ.get(PLUGINS_ENV_VAR, "")
    if env == _last_env:
        return
    pending = [
        mod for mod in (m.strip() for m in env.split(","))
        if mod and mod not in _loaded_modules
    ]
    for mod in pending:
        try:
            importlib.import_module(mod)
        except ConfigError:
            raise
        except Exception as exc:
            raise ConfigError(
                f"plugin module {mod!r} (from ${PLUGINS_ENV_VAR}) failed to "
                f"import: {type(exc).__name__}: {exc}"
            ) from exc
        _loaded_modules.add(mod)
    _last_env = env


class Registry(Generic[T]):
    """One pluggable component family: canonical name -> spec object.

    Args:
        kind: human label used in error messages ("prefetcher",
            "replacement policy", ...).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}
        self._summaries: dict[str, str] = {}

    # ------------------------------------------------------------ mutation

    def register(self, name: str, entry: T, *, summary: str = "") -> T:
        """Add an entry; a duplicate (canonical) name raises ``ValueError``."""
        key = canonical_name(name)
        if key in self._entries:
            raise ValueError(
                f"duplicate {self.kind} registration: {name!r} is already "
                f"registered (as {key!r})"
            )
        self._entries[key] = entry
        self._summaries[key] = summary or (
            (getattr(entry, "summary", "") or "").strip()
        )
        return entry

    def unregister(self, name: str) -> None:
        """Remove an entry (test seam; unknown names are a no-op)."""
        key = canonical_name(name)
        self._entries.pop(key, None)
        self._summaries.pop(key, None)

    # ------------------------------------------------------------- lookup

    def get(self, name: str) -> T:
        """Resolve a name; unknown names raise :class:`ConfigError`."""
        load_external_plugins()
        key = canonical_name(name)
        try:
            return self._entries[key]
        except KeyError:
            raise ConfigError(
                f"unknown {self.kind} {name!r}; "
                f"{suggest(name, list(self._entries))}"
            ) from None

    def __contains__(self, name: str) -> bool:
        load_external_plugins()
        return canonical_name(name) in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> tuple[str, ...]:
        """Sorted canonical names of every registered entry."""
        load_external_plugins()
        return tuple(sorted(self._entries))

    def describe(self) -> dict[str, str]:
        """Canonical name -> one-line summary, for CLI/doc introspection."""
        load_external_plugins()
        return {name: self._summaries[name] for name in sorted(self._entries)}
