"""Prefetcher registry: conventional core-side prefetchers + TACT components.

Two scopes share one namespace so ``--prefetchers`` can mix them freely:

* ``scope="core"`` — a per-core trainer built as ``factory(core_id,
  hierarchy)``; the returned object carries ``TRAIN_ON`` (``"load"`` or
  ``"miss"``, see :mod:`repro.caches.prefetchers`) and an ``issued``
  counter.  Selected via ``SimConfig.prefetchers``.
* ``scope="tact"`` — one of the paper's criticality-driven TACT components
  (Section IV-B); ``component`` names the
  :data:`repro.core.tact.coordinator.COMPONENTS` flag.  Selected via
  ``CatchConfig.tact`` (``TACTConfig.with_components``) because TACT only
  exists inside a CATCH engine with a detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..caches.prefetchers import (
    L1StridePrefetcher,
    L2StreamPrefetcher,
    NextLinePrefetcher,
)
from ..core.tact.coordinator import COMPONENTS
from .registry import Registry


@dataclass(frozen=True)
class PrefetcherSpec:
    """One selectable prefetcher."""

    name: str
    scope: str  #: ``"core"`` (per-core trainer) or ``"tact"`` (TACT component)
    summary: str
    factory: Callable | None = None  #: core scope: (core_id, hierarchy) -> trainer
    component: str = ""              #: tact scope: ``COMPONENTS`` key


PREFETCHERS: Registry[PrefetcherSpec] = Registry("prefetcher")


def register_prefetcher(
    name: str, factory: Callable, *, summary: str = ""
) -> PrefetcherSpec:
    """Register a core-scope prefetcher (the external-plugin entry point).

    ``factory(core_id, hierarchy)`` must return a trainer with a
    ``TRAIN_ON`` class attribute and the matching ``train`` signature.
    """
    spec = PrefetcherSpec(name=name, scope="core", summary=summary, factory=factory)
    PREFETCHERS.register(name, spec, summary=summary)
    return spec


register_prefetcher(
    "ip-stride", L1StridePrefetcher,
    summary="PC-indexed stride prefetcher into the L1, distance 1 (baseline)",
)
register_prefetcher(
    "stream", L2StreamPrefetcher,
    summary="multi-stream sequential prefetcher into the L2/LLC (baseline)",
)
register_prefetcher(
    "next-line", NextLinePrefetcher,
    summary="one-block-lookahead next-line prefetcher into the L1",
)

_TACT_SUMMARIES = {
    "cross": "TACT-Cross: trigger-target prefetch across load PCs",
    "deep-self": "TACT-Deep-Self: deeper stride distance for critical PCs",
    "feeder": "TACT-Feeder: prefetch via the register-feeder load",
    "code": "TACT-Code: CNPIP code runahead for critical code misses",
}
for _component in COMPONENTS:
    PREFETCHERS.register(
        f"tact-{_component}",
        PrefetcherSpec(
            name=f"tact-{_component}",
            scope="tact",
            summary=_TACT_SUMMARIES[_component],
            component=_component,
        ),
        summary=_TACT_SUMMARIES[_component],
    )
