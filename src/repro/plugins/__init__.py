"""Plugin registries for every pluggable simulator component.

The paper's claim is compositional — CATCH = criticality detection + TACT
prefetchers layered on interchangeable hierarchies — and this package makes
the reproduction compose the same way: string-keyed, introspectable
registries for

========================  ====================================================
``PREFETCHERS``           conventional core prefetchers + TACT components
``DETECTORS``             criticality identification mechanisms
``TOPOLOGIES``            hierarchy shapes (baseline / no-L2 / CATCH variants)
``POLICIES``              cache replacement policies (``caches.replacement``)
========================  ====================================================

resolved from ``SimConfig`` fields and the ``--prefetchers`` /
``--detector`` / ``--topology`` CLI flags via :mod:`repro.plugins.compose`.
External modules named in ``$REPRO_PLUGINS`` are imported before any
lookup, so out-of-tree components register without touching this package
(see ``ARCHITECTURE.md`` for the worked example).

Submodules are loaded lazily (PEP 562): the registry *class* is a leaf the
cache layer imports at interpreter startup, while the concrete entries pull
in the cache/core/CPU layers and therefore must not load until the package
tree is fully initialised.
"""

from __future__ import annotations

import importlib

from .registry import (
    PLUGINS_ENV_VAR,
    Registry,
    canonical_name,
    load_external_plugins,
    suggest,
)

__all__ = [
    "PLUGINS_ENV_VAR",
    "Registry",
    "canonical_name",
    "load_external_plugins",
    "suggest",
    # lazily resolved:
    "PREFETCHERS",
    "PrefetcherSpec",
    "register_prefetcher",
    "DETECTORS",
    "DetectorSpec",
    "register_detector",
    "TOPOLOGIES",
    "TopologySpec",
    "register_topology",
    "WORKLOADS",
    "WorkloadRegistry",
    "register_workload",
    "workload_fingerprint",
    "is_mix",
    "mix_names",
    "mix_display",
    "MIX_SEPARATOR",
    "POLICIES",
    "Selection",
    "apply_selection",
    "apply_active_selection",
    "use_selection",
    "core_prefetcher_names",
    "core_prefetcher_factories",
    "split_prefetcher_names",
    "make_engine",
    "all_registries",
]

_LAZY = {
    "PREFETCHERS": ("prefetchers", "PREFETCHERS"),
    "PrefetcherSpec": ("prefetchers", "PrefetcherSpec"),
    "register_prefetcher": ("prefetchers", "register_prefetcher"),
    "DETECTORS": ("detectors", "DETECTORS"),
    "DetectorSpec": ("detectors", "DetectorSpec"),
    "register_detector": ("detectors", "register_detector"),
    "TOPOLOGIES": ("topologies", "TOPOLOGIES"),
    "TopologySpec": ("topologies", "TopologySpec"),
    "register_topology": ("topologies", "register_topology"),
    "WORKLOADS": ("workloads", "WORKLOADS"),
    "WorkloadRegistry": ("workloads", "WorkloadRegistry"),
    "register_workload": ("workloads", "register_workload"),
    "workload_fingerprint": ("workloads", "workload_fingerprint"),
    "is_mix": ("workloads", "is_mix"),
    "mix_names": ("workloads", "mix_names"),
    "mix_display": ("workloads", "mix_display"),
    "MIX_SEPARATOR": ("workloads", "MIX_SEPARATOR"),
    "Selection": ("compose", "Selection"),
    "add_selection_args": ("compose", "add_selection_args"),
    "selection_from_args": ("compose", "selection_from_args"),
    "apply_selection": ("compose", "apply_selection"),
    "apply_active_selection": ("compose", "apply_active_selection"),
    "use_selection": ("compose", "use_selection"),
    "core_prefetcher_names": ("compose", "core_prefetcher_names"),
    "core_prefetcher_factories": ("compose", "core_prefetcher_factories"),
    "split_prefetcher_names": ("compose", "split_prefetcher_names"),
    "make_engine": ("compose", "make_engine"),
}


def __getattr__(name: str):
    if name == "POLICIES":
        from ..caches.replacement import POLICIES

        return POLICIES
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, attr)


def all_registries() -> dict[str, Registry]:
    """Every component registry, keyed by family name (CLI introspection)."""
    from ..caches.replacement import POLICIES
    from .detectors import DETECTORS
    from .prefetchers import PREFETCHERS
    from .topologies import TOPOLOGIES
    from .workloads import WORKLOADS

    return {
        "prefetchers": PREFETCHERS,
        "detectors": DETECTORS,
        "topologies": TOPOLOGIES,
        "replacement-policies": POLICIES,
        "workloads": WORKLOADS,
    }
