"""Criticality-detector registry.

Entries are resolved by :meth:`repro.core.catch_engine.CatchEngine.attach`
from ``CatchConfig.detector``: ``factory(core, catch_config)`` returns an
object with the detector interface (``on_retire``, ``is_critical``,
``is_tracked``, ``critical_pc_counts``, ``table``).  The special entry
``none`` has no factory — it means "no criticality engine at all" and is
resolved at composition time (``catch=None``), never inside an engine;
``SimConfig.validate`` rejects configurations that reach the engine with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.criticality import CriticalityDetector
from ..core.heuristics import HEURISTICS
from ..core.oracle import OracleDetector
from .registry import Registry


@dataclass(frozen=True)
class DetectorSpec:
    """One selectable criticality-identification mechanism."""

    name: str
    summary: str
    factory: Callable | None = None  #: (core, CatchConfig) -> detector


DETECTORS: Registry[DetectorSpec] = Registry("criticality detector")


def register_detector(
    name: str, factory: Callable | None, *, summary: str = ""
) -> DetectorSpec:
    """Register a detector (the external-plugin entry point)."""
    spec = DetectorSpec(name=name, summary=summary, factory=factory)
    DETECTORS.register(name, spec, summary=summary)
    return spec


def _make_ddg(core, cfg) -> CriticalityDetector:
    return CriticalityDetector(
        rob_size=core.params.rob_size,
        table_entries=cfg.table_entries,
        rename_latency=core.params.rename_latency,
        epoch_instructions=cfg.epoch_instructions,
        table_policy=cfg.table_policy,
    )


register_detector(
    "ddg", _make_ddg,
    summary="the paper's buffered data-dependency-graph detector (Section IV-A)",
)
register_detector(
    "oracle",
    lambda core, cfg: OracleDetector(cfg.oracle_pcs),
    summary="fixed critical-PC set from CatchConfig.oracle_pcs (perfect knowledge)",
)
register_detector(
    "none", None,
    summary="no criticality engine at all (composes to catch=None)",
)

_HEURISTIC_SUMMARIES = {
    "oldest_in_rob": "flag loads that stall in-order retirement (QOLD family)",
    "consumer_count": "flag loads with high dynamic fan-out",
    "branch_feeder": "flag loads feeding mispredicted branches",
    "load_miss_pc": "flag every load PC that misses the L1 (cheapest cue)",
}


def _heuristic_factory(cls) -> Callable:
    def build(core, cfg, _cls=cls):
        return _cls(
            table_entries=cfg.table_entries,
            epoch_instructions=cfg.epoch_instructions,
        )

    return build


for _name, _cls in HEURISTICS.items():
    register_detector(
        _name,  # canonicalised to kebab-case by the registry
        _heuristic_factory(_cls),
        summary=_HEURISTIC_SUMMARIES[_name],
    )
