"""Synthetic workload kernels.

The paper drives its simulator with 100M-instruction traces of SPEC CPU2006,
HPC, server and client applications (Table II).  Offline we cannot run those
binaries, so each kernel below synthesises the *program property* that the
paper's analysis attributes to a workload class:

=====================  ==========================================================
Kernel                 Property exercised
=====================  ==========================================================
``streaming``          sequential/strided sweeps; stream prefetcher territory
``hot_loop``           working set parked at a chosen cache level; the critical
                       loads hit L2/LLC (the paper's central L2-hit scenario)
``indexed_gather``     ``A[B[i]]`` indirection: the B-stream *feeds* the A
                       address — the TACT-Feeder pattern (mcf-like)
``pointer_chase``      true linked-list dependence; not prefetchable by any
                       address association (namd/gromacs-like hard case)
``struct_walk``        multiple fields at fixed offsets off one advancing base
                       pointer — the TACT-Cross trigger/target pattern
``server_app``         code footprint far beyond the 32 KB code L1; front-end
                       stalls dominated by code misses (TACT-Code territory)
``branchy``            data-dependent unpredictable branches (client-like)
``fp_compute``         FP dependence chains + strided loads (FSPEC-like)
``many_critical_pcs``  more simultaneously-critical load PCs than the 32-entry
                       critical table can track (povray-like pathology)
=====================  ==========================================================

Every kernel emits explicit register dependences so the DDG timing model and
criticality detector see realistic chains, and populates the trace's memory
image wherever load *data* determines future addresses.
"""

from __future__ import annotations

import random

from .trace import Instr, Op, Trace

# Register conventions used by the kernels.
R_PTR, R_IDX, R_BASE, R_LIMIT = 0, 1, 2, 3
R_DATA = (4, 5, 6, 7, 8, 9, 10, 11)
R_TMP = (12, 13, 14, 15)


class TraceBuilder:
    """Helper for emitting instruction streams with static PCs.

    A kernel lays out static code starting at ``code_base``; each *static
    slot* keeps a fixed PC across loop iterations so PC-indexed hardware
    (stride tables, the critical-load table, TACT) behaves as it would on a
    real loop.
    """

    def __init__(self, name: str, category: str, seed: int, code_base: int = 0x400000):
        self.name = name
        self.category = category
        self.rng = random.Random(seed)
        self.instrs: list[Instr] = []
        self.memory_image: dict[int, int] = {}
        self.code_base = code_base
        self._next_region = 0x10000000

    # -- memory regions ------------------------------------------------------

    def alloc(self, size_bytes: int, align: int = 4096) -> int:
        """Reserve a data region; returns its base address."""
        base = (self._next_region + align - 1) // align * align
        self._next_region = base + size_bytes
        return base

    # -- emit helpers ---------------------------------------------------------

    def load(self, pc: int, dst: int, addr: int, *, srcs: tuple[int, ...] = (),
             data: int | None = None) -> None:
        if data is None:
            data = self.memory_image.get(addr, 0)
        self.instrs.append(Instr(pc, Op.LOAD, srcs=srcs, dst=dst, addr=addr, data=data))

    def store(self, pc: int, addr: int, src: int) -> None:
        self.instrs.append(Instr(pc, Op.STORE, srcs=(src,), addr=addr))

    def alu(self, pc: int, dst: int, srcs: tuple[int, ...]) -> None:
        self.instrs.append(Instr(pc, Op.ALU, srcs=srcs, dst=dst))

    def mul(self, pc: int, dst: int, srcs: tuple[int, ...]) -> None:
        self.instrs.append(Instr(pc, Op.MUL, srcs=srcs, dst=dst))

    def fp(self, pc: int, dst: int, srcs: tuple[int, ...]) -> None:
        self.instrs.append(Instr(pc, Op.FP, srcs=srcs, dst=dst))

    def branch(self, pc: int, taken: bool, target: int, *, srcs: tuple[int, ...] = ()) -> None:
        self.instrs.append(Instr(pc, Op.BRANCH, srcs=srcs, taken=taken, target=target))

    def build(self) -> Trace:
        trace = Trace(self.name, self.category, self.instrs, self.memory_image)
        trace.validate()
        return trace


# --------------------------------------------------------------------------
# Kernels.  Each returns a Trace of ~n_instrs dynamic instructions.
# --------------------------------------------------------------------------


def streaming(
    name: str, category: str, n_instrs: int, *,
    ws_bytes: int = 8 << 20, stride: int = 64, alu_per_load: int = 2,
    store_every: int = 8, seed: int = 1,
) -> Trace:
    """Strided sweep over a working set (memory-bandwidth style)."""
    b = TraceBuilder(name, category, seed)
    base = b.alloc(ws_bytes)
    pc = b.code_base
    i = 0
    while len(b.instrs) < n_instrs:
        addr = base + (i * stride) % ws_bytes
        slot = pc
        b.load(slot, R_DATA[0], addr, srcs=(R_PTR,))
        slot += 4
        prev = R_DATA[0]
        for k in range(alu_per_load):
            dst = R_DATA[1 + k % 3]
            b.alu(slot, dst, (prev,))
            prev = dst
            slot += 4
        if i % store_every == store_every - 1:
            b.store(slot, addr, prev)
        slot += 4
        b.alu(slot, R_PTR, (R_PTR,))  # pointer bump
        slot += 4
        b.branch(slot, True, pc)
        i += 1
    return b.build()


def hot_loop(
    name: str, category: str, n_instrs: int, *,
    ws_bytes: int = 512 << 10, stride: int = 64, chain_loads: int = 4,
    alu_between: int = 1, l1_lanes: int = 0, seed: int = 2,
) -> Trace:
    """Loop whose loads hit at the level that holds ``ws_bytes``.

    The loads form a dependence chain per iteration, so with the working set
    in the L2/LLC they are exactly the paper's "critical loads hitting outer
    levels".  Strided addressing makes them TACT-Deep-Self prefetchable.

    ``l1_lanes`` of the chain's loads use a tiny (4 KB) always-L1-resident
    region: real hot loops mix cache-resident and L1-resident accesses on
    their chains, which dilutes how much outer-level latency shows on the
    critical path.
    """
    b = TraceBuilder(name, category, seed)
    lane_sizes = [4096] * l1_lanes + [ws_bytes] * (chain_loads - l1_lanes)
    lane_bases = [b.alloc(size) for size in lane_sizes]
    pc = b.code_base
    i = 0
    while len(b.instrs) < n_instrs:
        slot = pc
        prev = R_PTR
        for lane, (lane_base, lane_size) in enumerate(zip(lane_bases, lane_sizes)):
            offset = (i * stride) % lane_size
            reg = R_DATA[lane % len(R_DATA)]
            b.load(slot, reg, lane_base + offset, srcs=(prev,))
            slot += 4
            for _ in range(alu_between):
                b.alu(slot, reg, (reg,))
                slot += 4
            prev = reg
        b.alu(slot, R_PTR, (R_PTR,))
        slot += 4
        b.branch(slot, True, pc, srcs=(prev,))
        i += 1
    return b.build()


def indexed_gather(
    name: str, category: str, n_instrs: int, *,
    data_ws_bytes: int = 4 << 20,
    alu_per_iter: int = 3, scale: int = 1, seed: int = 3,
) -> Trace:
    """``A[B[i]]`` indirection: streaming index array feeding a gather.

    ``B`` is sequential (the hardware can run ahead on it);
    ``A[scale*B[i] + base]`` is the critical, otherwise-unprefetchable load.
    This is the TACT-Feeder pattern and our stand-in for mcf.
    """
    b = TraceBuilder(name, category, seed)
    data_lines = data_ws_bytes // 64
    # The index array is a permutation of the data pool (mcf-style arc
    # ordering): every pass over B touches every line of A exactly once, so
    # after warmup the gather pool is resident at whatever level holds it —
    # no fresh-line leakage from random draws.
    index_entries = data_lines
    index_base = b.alloc(index_entries * 8)
    data_base = b.alloc(data_ws_bytes)
    perm = list(range(data_lines))
    b.rng.shuffle(perm)
    for i in range(index_entries):
        b.memory_image[index_base + i * 8] = (perm[i] * 64) // scale
    pc = b.code_base
    i = 0
    while len(b.instrs) < n_instrs:
        slot = pc
        idx_addr = index_base + (i % index_entries) * 8
        b.load(slot, R_IDX, idx_addr, srcs=(R_PTR,))  # feeder: B[i]
        slot += 4
        value = b.memory_image[idx_addr]
        b.alu(slot, R_TMP[0], (R_IDX,))  # address arithmetic
        slot += 4
        b.load(slot, R_DATA[0], data_base + scale * value, srcs=(R_TMP[0],))
        slot += 4
        prev = R_DATA[0]
        for k in range(alu_per_iter):
            dst = R_DATA[1 + k % 3]
            b.alu(slot, dst, (prev,))
            prev = dst
            slot += 4
        b.alu(slot, R_PTR, (R_PTR,))
        slot += 4
        b.branch(slot, True, pc, srcs=(prev,))
        i += 1
    return b.build()


def pointer_chase(
    name: str, category: str, n_instrs: int, *,
    nodes: int = 65536, alu_per_hop: int = 2, chains: int = 1,
    ptr_work: int = 0, seed: int = 4,
) -> Trace:
    """Random linked-list traversal: serial loads, no address association.

    ``chains`` independent lists are walked round-robin (real pointer-heavy
    codes usually have a few concurrent traversals, giving the OOO some
    memory-level parallelism across chains while each chain stays serial).

    ``ptr_work`` ALU ops process the loaded pointer before the next hop
    (node work on the loop-carried path), diluting the load-latency share of
    the critical path; ``alu_per_hop`` ops hang *off* the chain (payload
    work the OOO overlaps freely).
    """
    b = TraceBuilder(name, category, seed)
    region = b.alloc(nodes * 64)
    order = list(range(nodes))
    b.rng.shuffle(order)
    addr_of = [region + slot * 64 for slot in order]
    per_chain = nodes // chains
    cursors = []
    for c in range(chains):
        lo = c * per_chain
        for i in range(per_chain):
            b.memory_image[addr_of[lo + i]] = addr_of[lo + (i + 1) % per_chain]
        cursors.append(addr_of[lo])
    chain_regs = [R_PTR, R_IDX, R_BASE, R_LIMIT][:chains]
    pc = b.code_base
    c = 0
    while len(b.instrs) < n_instrs:
        slot = pc + c * 128
        reg = chain_regs[c]
        b.load(slot, reg, cursors[c], srcs=(reg,))  # next = node->next
        slot += 4
        for _ in range(ptr_work):
            b.alu(slot, reg, (reg,))  # node work on the pointer path
            slot += 4
        prev = reg
        for k in range(alu_per_hop):
            dst = R_DATA[(c * 2 + k) % len(R_DATA)]
            b.alu(slot, dst, (prev,))
            prev = dst
            slot += 4
        b.branch(slot, True, pc, srcs=(prev,))
        cursors[c] = b.memory_image[cursors[c]]
        c = (c + 1) % chains
    return b.build()


def struct_walk(
    name: str, category: str, n_instrs: int, *,
    n_structs: int = 16384, struct_bytes: int = 256, fields: int = 3,
    linked: bool = False, seed: int = 5,
) -> Trace:
    """Walk structs reading several fields at fixed offsets per element.

    Field 0 is the *trigger* load; fields 1..k sit at fixed offsets from the
    same base — the TACT-Cross association (same ``RegSrcBase``, different
    ``Offset``).

    With ``linked=True`` the walk is a linked list: field 0 holds the pointer
    to the next struct, so field 0 forms a serial load chain (latency
    critical) and the remaining fields are cross-prefetchable off it —
    the classic data structure CATCH accelerates.
    """
    b = TraceBuilder(name, category, seed)
    region = b.alloc(n_structs * struct_bytes)
    offsets = [0] + [64 * (1 + f) for f in range(fields - 1)]
    offsets = [o for o in offsets if o < struct_bytes]
    bases = [region + k * struct_bytes for k in range(n_structs)]
    if linked:
        order = list(range(n_structs))
        b.rng.shuffle(order)
        chain = [bases[k] for k in order]
        for i in range(n_structs):
            b.memory_image[chain[i]] = chain[(i + 1) % n_structs]
    pc = b.code_base
    i = 0
    while len(b.instrs) < n_instrs:
        slot = pc
        struct_base = chain[i % n_structs] if linked else bases[i % n_structs]
        prev = R_PTR
        for f, off in enumerate(offsets):
            reg = R_PTR if (linked and f == 0) else R_DATA[f % len(R_DATA)]
            b.load(slot, reg, struct_base + off, srcs=(R_PTR,))
            slot += 4
            b.alu(slot, R_TMP[f % len(R_TMP)], (reg, prev))
            prev = R_TMP[f % len(R_TMP)]
            slot += 4
        if not linked:
            b.alu(slot, R_PTR, (R_PTR,))
            slot += 4
        b.branch(slot, True, pc, srcs=(prev,))
        i += 1
    return b.build()


def skewed_gather(
    name: str, category: str, n_instrs: int, *,
    hot_bytes: int = 512 << 10, band_bytes: int = 1536 << 10,
    hot_fraction: float = 0.5, loads_per_iter: int = 4, alu_per_load: int = 0,
    seed: int = 12,
) -> Trace:
    """Independent gathers over a hot set plus a capacity-transition band.

    Real capacity-sensitive applications do not fall off a cliff when their
    working set crosses a cache size: only a *band* of their footprint
    transitions.  Here ``hot_fraction`` of loads hit a small always-resident
    hot region; the rest cycle through a ``band_bytes`` region laid just
    across the LLC-size range under study (a pseudo-permutation sweep, so
    every band line is re-referenced each pass).  Growing the LLC smoothly
    converts band misses into hits, and the independent loads (high MLP) keep
    the per-miss cost moderate — yielding the gentle capacity curves behind
    Figure 1's LLC-size comparisons.
    """
    b = TraceBuilder(name, category, seed)
    hot_lines = hot_bytes // 64
    band_lines = band_bytes // 64
    hot_base = b.alloc(hot_bytes)
    band_base = b.alloc(band_bytes)
    pc = b.code_base
    band_i = 0
    while len(b.instrs) < n_instrs:
        slot = pc
        for lane in range(loads_per_iter):
            if b.rng.random() < hot_fraction:
                addr = hot_base + b.rng.randrange(hot_lines) * 64
            else:
                # Uniform random within the band: geometric reuse distances,
                # so the hit ratio scales smoothly with LLC capacity (a
                # cyclic sweep would be all-or-nothing under LRU).
                addr = band_base + b.rng.randrange(band_lines) * 64
                band_i += 1
            reg = R_DATA[lane % 4]
            b.load(slot, reg, addr, srcs=(R_PTR,))
            slot += 4
            prev = reg
            for _ in range(alu_per_load):
                dst = R_DATA[4 + lane % 4]
                b.alu(slot, dst, (prev,))
                prev = dst
                slot += 4
        b.alu(slot, R_PTR, (R_PTR,))
        slot += 4
        b.branch(slot, True, pc)
    return b.build()


def cross_gather(
    name: str, category: str, n_instrs: int, *,
    data_ws_bytes: int = 416 << 10, chain_muls: int = 6, seed: int = 10,
) -> Trace:
    """Permuted gather of line *pairs* with a slow computed offset.

    Each iteration reads a pair index from a permutation array, loads the
    *trigger* line of the pair through a short address chain, and the
    *target* line (trigger + 64) through a long multiply chain.  The target
    is therefore demanded ``~3*chain_muls`` cycles after the trigger executes
    even though their addresses differ by a constant 64 — exactly the
    cross-PC association TACT-Cross exploits.  The permutation defeats stride
    prefetching, and the index-to-address scale (128) falls outside Feeder's
    {1,2,4,8} scale set, so Cross is the only mechanism that can help.
    """
    b = TraceBuilder(name, category, seed)
    pairs = data_ws_bytes // 128
    index_base = b.alloc(pairs * 8)
    data_base = b.alloc(data_ws_bytes)
    perm = list(range(pairs))
    b.rng.shuffle(perm)
    for i in range(pairs):
        b.memory_image[index_base + i * 8] = perm[i]
    pc = b.code_base
    i = 0
    while len(b.instrs) < n_instrs:
        slot = pc
        idx_addr = index_base + (i % pairs) * 8
        b.load(slot, R_IDX, idx_addr, srcs=(R_PTR,))
        slot += 4
        k = b.memory_image[idx_addr]
        b.mul(slot, R_TMP[0], (R_IDX,))  # fast trigger-address path
        slot += 4
        b.load(slot, R_DATA[0], data_base + k * 128, srcs=(R_TMP[0],))  # trigger
        slot += 4
        prev = R_IDX
        for m in range(chain_muls):  # slow target-address path
            dst = R_TMP[1 + m % 3]
            b.mul(slot, dst, (prev,))
            prev = dst
            slot += 4
        b.load(slot, R_DATA[1], data_base + k * 128 + 64, srcs=(prev,))  # target
        slot += 4
        # Only the *target* gates the loop-carried accumulator (so the
        # detector unambiguously flags it); the trigger's value is consumed
        # off the critical path.
        b.alu(slot, R_LIMIT, (R_LIMIT, R_DATA[1]))
        slot += 4
        b.alu(slot, R_TMP[0], (R_DATA[0],))
        slot += 4
        b.alu(slot, R_PTR, (R_PTR,))
        slot += 4
        b.branch(slot, True, pc, srcs=(R_LIMIT,))
        i += 1
    return b.build()


def server_app(
    name: str, category: str, n_instrs: int, *,
    code_kb: int = 256, block_instrs: int = 12, data_ws_bytes: int = 6 << 20,
    seed: int = 6,
) -> Trace:
    """Large-code-footprint transaction loop (server class).

    The static code spans ``code_kb`` of basic blocks visited in a repeating
    (hence BTB-predictable) but L1I-thrashing order; each block does a little
    work on an LLC-resident heap.  Front-end code misses dominate — the
    TACT-Code runahead target.
    """
    b = TraceBuilder(name, category, seed)
    heap = b.alloc(data_ws_bytes)
    block_bytes = block_instrs * 4 + 8  # body + loop branch + exit branch
    n_blocks = (code_kb * 1024) // block_bytes
    # Cap the tour so it wraps at least ~3 times within the trace; a tour
    # longer than the trace would be pure cold misses with nothing to learn.
    executed_blocks = max(1, n_instrs // (2 * block_instrs))
    n_blocks = max(8, min(n_blocks, executed_blocks // 3))
    block_pcs = [b.code_base + blk * block_bytes for blk in range(n_blocks)]
    # Fixed permutation tour (every block has one static successor, so block
    # exits are BTB-learnable after one tour).  Hot/cold locality comes from
    # per-block repeat counts: a fifth of the blocks are hot inner loops that
    # iterate several times per visit, amortising their code misses, while
    # cold blocks run once and thrash the L1I.
    tour = list(range(n_blocks))
    b.rng.shuffle(tour)
    reps_of = [
        b.rng.randint(6, 10) if b.rng.random() < 0.35 else 1
        for _ in range(n_blocks)
    ]
    # Transaction heap: a pseudo-permutation sweep sized so the trace revisits
    # every heap line a few times (resident after warmup, not fresh misses).
    expected_visits = max(1, n_instrs // (block_instrs * 2))
    pool_lines = min(data_ws_bytes // 64, max(256, expected_visits // 2))
    i = 0
    while len(b.instrs) < n_instrs:
        blk = tour[i % n_blocks]
        nxt = tour[(i + 1) % n_blocks]
        base_pc = block_pcs[blk]
        reps = reps_of[blk]
        for rep in range(reps):
            slot = base_pc
            addr = heap + ((i * 97 + rep * 31) % pool_lines) * 64
            b.load(slot, R_DATA[0], addr, srcs=(R_PTR,))
            slot += 4
            prev = R_DATA[0]
            for k in range(block_instrs - 4):
                dst = R_DATA[(1 + k) % len(R_DATA)]
                b.alu(slot, dst, (prev,))
                prev = dst
                slot += 4
            b.store(slot, addr, prev)
            slot += 4
            b.branch(slot, rep < reps - 1, base_pc, srcs=(prev,))
            slot += 4
        b.branch(slot, True, block_pcs[nxt])
        i += 1
    return b.build()


def branchy(
    name: str, category: str, n_instrs: int, *,
    ws_bytes: int = 64 << 10, p_taken: float = 0.5, work_per_branch: int = 4,
    seed: int = 7,
) -> Trace:
    """Data-dependent unpredictable branches over an L1/L2-resident set."""
    b = TraceBuilder(name, category, seed)
    base = b.alloc(ws_bytes)
    ws_lines = ws_bytes // 64
    pc = b.code_base
    exit_pc = pc + 0x1000
    i = 0
    while len(b.instrs) < n_instrs:
        # Alternate a strided load PC over the full working set (the
        # prefetchable branch feed CATCH accelerates) with a random load PC
        # over a small L1-resident hot region (table lookups).  Distinct
        # static PCs keep the stride learnable per PC.
        if i % 2 == 0:
            slot = pc
            addr = base + ((i // 2) * 64) % ws_bytes
        else:
            slot = pc + 0x200
            addr = base + b.rng.randrange(min(ws_lines, 96)) * 64
        b.load(slot, R_DATA[0], addr, srcs=(R_PTR,))
        slot += 4
        prev = R_DATA[0]
        for k in range(work_per_branch):
            dst = R_DATA[1 + k % 3]
            b.alu(slot, dst, (prev,))
            prev = dst
            slot += 4
        taken = b.rng.random() < p_taken  # data-dependent: unlearnable
        b.branch(slot, taken, exit_pc if taken else pc, srcs=(prev,))
        slot += 4
        b.alu(slot, R_PTR, (R_PTR,))
        slot += 4
        b.branch(slot, True, pc)
        i += 1
    return b.build()


def fp_compute(
    name: str, category: str, n_instrs: int, *,
    ws_bytes: int = 2 << 20, stride: int = 64, fp_chain: int = 3,
    seed: int = 8,
) -> Trace:
    """FP dependence chains fed by strided loads (FSPEC/HPC class)."""
    b = TraceBuilder(name, category, seed)
    a = b.alloc(ws_bytes)
    c = b.alloc(ws_bytes)
    pc = b.code_base
    i = 0
    while len(b.instrs) < n_instrs:
        slot = pc
        off = (i * stride) % ws_bytes
        b.load(slot, R_DATA[0], a + off, srcs=(R_PTR,))
        slot += 4
        b.load(slot, R_DATA[1], c + off, srcs=(R_PTR,))
        slot += 4
        prev = R_DATA[0]
        for k in range(fp_chain):
            dst = R_DATA[2 + k % 4]
            b.fp(slot, dst, (prev, R_DATA[1]))
            prev = dst
            slot += 4
        b.store(slot, a + off, prev)
        slot += 4
        b.alu(slot, R_PTR, (R_PTR,))
        slot += 4
        b.branch(slot, True, pc)
        i += 1
    return b.build()


def many_critical_pcs(
    name: str, category: str, n_instrs: int, *,
    n_load_pcs: int = 96, ws_bytes: int = 2 << 20, chain_every: int = 2,
    seed: int = 9,
) -> Trace:
    """Many distinct load PCs take turns on the critical path (povray-like).

    Static code contains ``n_load_pcs`` separate load slots visited round
    robin; each is critical when visited, overflowing a 32-entry critical
    table.  Every ``chain_every``-th iteration feeds the loop-carried pointer
    (serialising), the rest overlap — mirroring real code where only a
    fraction of each PC's instances sit on the critical path.
    """
    b = TraceBuilder(name, category, seed)
    base = b.alloc(ws_bytes)
    pcs = [b.code_base + k * 48 for k in range(n_load_pcs)]
    i = 0
    while len(b.instrs) < n_instrs:
        k = i % n_load_pcs
        slot = pcs[k]
        addr = base + ((i * 17) * 64) % ws_bytes
        b.load(slot, R_DATA[0], addr, srcs=(R_PTR,))
        b.alu(slot + 4, R_DATA[1], (R_DATA[0],))
        if i % chain_every == 0:
            # Serialising link, diluted by fixed ALU work so the critical
            # path is not purely load latency (as in real code).
            prev = R_DATA[1]
            for w in range(6):
                dst = R_DATA[2 + w % 4]
                b.alu(slot + 8 + w * 4, dst, (prev,))
                prev = dst
            b.alu(slot + 32, R_PTR, (R_PTR, prev))
        else:
            b.alu(slot + 8, R_PTR, (R_PTR,))
        b.branch(slot + 36, True, pcs[(k + 1) % n_load_pcs], srcs=(R_DATA[1],))
        i += 1
    return b.build()
