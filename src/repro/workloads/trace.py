"""Instruction and trace model shared by the workload generators and the core.

The simulator is trace driven: a workload is a sequence of :class:`Instr`
records with explicit architectural register dependencies, memory addresses,
load data values and branch outcomes.  This is the information the paper's
in-house simulator extracts from x86 execution; carrying it in the trace lets
the DDG timing model (``repro.cpu``) and the criticality/TACT hardware
(``repro.core``) observe exactly what real hardware would.

Traces also carry a *memory image* — a sparse ``addr -> int`` map holding the
contents of pointer/index arrays.  The TACT-Feeder prefetcher reads prefetched
lines' data from this image, exactly as the hardware reads data out of a
fetched cache line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterator

#: Number of architectural integer registers modeled (x86-64 GPR count).
NUM_ARCH_REGS = 16

#: Cache line size in bytes, fixed across the hierarchy (Skylake uses 64B).
LINE_SIZE = 64
LINE_SHIFT = 6


class Op(IntEnum):
    """Instruction classes distinguished by the timing model."""

    ALU = 0      #: single-cycle integer op
    MUL = 1      #: 3-cycle integer multiply
    FP = 2       #: 4-cycle floating point op
    LOAD = 3     #: memory load (latency from the cache hierarchy)
    STORE = 4    #: memory store (retire-time write, no consumer latency)
    BRANCH = 5   #: conditional/unconditional branch
    NOP = 6      #: no-op / fence placeholder


#: Fixed execution latencies (cycles) for non-load operations.
EXEC_LATENCY = {
    Op.ALU: 1,
    Op.MUL: 3,
    Op.FP: 4,
    Op.LOAD: 0,   # filled in by the cache hierarchy at execute time
    Op.STORE: 1,
    Op.BRANCH: 1,
    Op.NOP: 1,
}


@dataclass(slots=True)
class Instr:
    """One dynamic instruction.

    Attributes:
        pc: byte address of the instruction (static PC; loop iterations
            revisit the same PC).
        op: instruction class.
        srcs: architectural source register ids (empty tuple if none).
        dst: destination register id, or ``-1`` when the instruction does not
            write a register (stores, branches).
        addr: memory byte address for LOAD/STORE, else ``-1``.
        data: value loaded/stored for LOAD/STORE, else ``0``.  Load values
            feed the TACT-Feeder data association.
        taken: branch outcome (meaningful only for ``Op.BRANCH``).
        target: branch target PC (meaningful only for ``Op.BRANCH``).
    """

    pc: int
    op: Op
    srcs: tuple[int, ...] = ()
    dst: int = -1
    addr: int = -1
    data: int = 0
    taken: bool = False
    target: int = -1

    @property
    def is_mem(self) -> bool:
        return self.op is Op.LOAD or self.op is Op.STORE

    @property
    def line(self) -> int:
        """Cache-line address of the memory access (``-1`` for non-memory)."""
        return self.addr >> LINE_SHIFT if self.addr >= 0 else -1

    @property
    def code_line(self) -> int:
        """Cache-line address of the instruction bytes."""
        return self.pc >> LINE_SHIFT


@dataclass
class Trace:
    """A complete workload trace.

    Attributes:
        name: workload name (e.g. ``"mcf_like"``).
        category: one of ``client/FSPEC/HPC/ISPEC/server`` (Table II).
        instrs: dynamic instruction stream.
        memory_image: sparse memory contents for data-dependent address
            streams (pointer chains, index arrays).
    """

    name: str
    category: str
    instrs: list[Instr]
    memory_image: dict[int, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    @property
    def load_count(self) -> int:
        return sum(1 for i in self.instrs if i.op is Op.LOAD)

    @property
    def branch_count(self) -> int:
        return sum(1 for i in self.instrs if i.op is Op.BRANCH)

    def footprint_lines(self) -> int:
        """Number of distinct data cache lines touched."""
        return len({i.line for i in self.instrs if i.is_mem})

    def code_lines(self) -> int:
        """Number of distinct code cache lines touched."""
        return len({i.code_line for i in self.instrs})

    def validate(self) -> None:
        """Sanity-check structural invariants; raises ``ValueError``."""
        for idx, ins in enumerate(self.instrs):
            if ins.op is Op.LOAD or ins.op is Op.STORE:
                if ins.addr < 0:
                    raise ValueError(f"instr {idx}: memory op without address")
            if ins.dst >= NUM_ARCH_REGS or any(
                s >= NUM_ARCH_REGS or s < 0 for s in ins.srcs
            ):
                raise ValueError(f"instr {idx}: register id out of range")
            if ins.pc < 0:
                raise ValueError(f"instr {idx}: negative pc")


CATEGORIES = ("client", "FSPEC", "HPC", "ISPEC", "server")
