"""Trace serialization: save/load traces, plus a CLI inspector.

Traces are stored as gzipped JSON with a small header (format version,
workload metadata) followed by column-major instruction arrays — compact,
diff-able, and dependency-free.  Round-tripping is exact.

CLI::

    python -m repro.workloads dump mcf_like --n 20000 --out mcf.trace.gz
    python -m repro.workloads info mcf.trace.gz
    python -m repro.workloads list
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from .trace import Instr, Op, Trace

FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> dict:
    """Column-major plain-data representation of a trace."""
    instrs = trace.instrs
    return {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "category": trace.category,
        "count": len(instrs),
        "pc": [i.pc for i in instrs],
        "op": [int(i.op) for i in instrs],
        "srcs": [list(i.srcs) for i in instrs],
        "dst": [i.dst for i in instrs],
        "addr": [i.addr for i in instrs],
        "data": [i.data for i in instrs],
        "taken": [int(i.taken) for i in instrs],
        "target": [i.target for i in instrs],
        "memory_image": [[k, v] for k, v in trace.memory_image.items()],
    }


def trace_from_dict(payload: dict) -> Trace:
    """Inverse of :func:`trace_to_dict`; validates the format version."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    count = payload["count"]
    columns = (
        payload["pc"], payload["op"], payload["srcs"], payload["dst"],
        payload["addr"], payload["data"], payload["taken"], payload["target"],
    )
    if any(len(col) != count for col in columns):
        raise ValueError("corrupt trace: column lengths disagree with count")
    instrs = [
        Instr(
            pc=pc,
            op=Op(op),
            srcs=tuple(srcs),
            dst=dst,
            addr=addr,
            data=data,
            taken=bool(taken),
            target=target,
        )
        for pc, op, srcs, dst, addr, data, taken, target in zip(*columns)
    ]
    image = {k: v for k, v in payload["memory_image"]}
    trace = Trace(payload["name"], payload["category"], instrs, image)
    trace.validate()
    return trace


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace as gzipped JSON."""
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        json.dump(trace_to_dict(trace), fh)


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        return trace_from_dict(json.load(fh))


def describe_trace(trace: Trace) -> dict:
    """Summary statistics for the CLI's ``info`` command."""
    op_mix = {op.name: 0 for op in Op}
    for instr in trace.instrs:
        op_mix[instr.op.name] += 1
    return {
        "name": trace.name,
        "category": trace.category,
        "instructions": len(trace),
        "op_mix": {k: v for k, v in op_mix.items() if v},
        "data_footprint_kb": trace.footprint_lines() * 64 // 1024,
        "code_footprint_kb": max(1, trace.code_lines() * 64 // 1024),
        "memory_image_entries": len(trace.memory_image),
    }
