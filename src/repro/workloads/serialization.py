"""Trace serialization: save/load traces, plus a CLI inspector.

Three interchangeable on-disk formats, all exact round-trips:

* **gzipped JSON** (``save_trace``/``load_trace``) — the original format:
  one JSON object with column-major instruction arrays.
* **JSONL** (``save_trace_jsonl``/``load_trace_jsonl``) — a header object
  on the first line, one compact instruction row per following line.
  Line-oriented, so external recorders can stream-append and standard
  text tools can slice/inspect.
* **compact binary** (``save_trace_bin``/``load_trace_bin``) — a
  struct-packed format roughly 5x smaller than the JSON forms, for large
  recorded traces.

:func:`load_trace_any` sniffs the format from the file's leading bytes, so
ingestion (``repro.workloads.ingest``) accepts any of the three.

CLI::

    python -m repro.workloads dump mcf_like --n 20000 --out mcf.trace.gz
    python -m repro.workloads info mcf.trace.gz
    python -m repro.workloads list
"""

from __future__ import annotations

import gzip
import json
import struct
from pathlib import Path

from .trace import Instr, Op, Trace

FORMAT_VERSION = 1

#: Magic prefix of the compact binary format.
BIN_MAGIC = b"RTRC"

#: Per-instruction record: pc, op, dst, addr, data, target, taken, n_srcs
#: (sources follow as signed bytes — register indices are tiny).
_BIN_INSTR = struct.Struct("<qbqqqqbB")
_BIN_PAIR = struct.Struct("<qq")


def trace_to_dict(trace: Trace) -> dict:
    """Column-major plain-data representation of a trace."""
    instrs = trace.instrs
    return {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "category": trace.category,
        "count": len(instrs),
        "pc": [i.pc for i in instrs],
        "op": [int(i.op) for i in instrs],
        "srcs": [list(i.srcs) for i in instrs],
        "dst": [i.dst for i in instrs],
        "addr": [i.addr for i in instrs],
        "data": [i.data for i in instrs],
        "taken": [int(i.taken) for i in instrs],
        "target": [i.target for i in instrs],
        "memory_image": [[k, v] for k, v in trace.memory_image.items()],
    }


def trace_from_dict(payload: dict) -> Trace:
    """Inverse of :func:`trace_to_dict`; validates the format version."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    count = payload["count"]
    columns = (
        payload["pc"], payload["op"], payload["srcs"], payload["dst"],
        payload["addr"], payload["data"], payload["taken"], payload["target"],
    )
    if any(len(col) != count for col in columns):
        raise ValueError("corrupt trace: column lengths disagree with count")
    instrs = [
        Instr(
            pc=pc,
            op=Op(op),
            srcs=tuple(srcs),
            dst=dst,
            addr=addr,
            data=data,
            taken=bool(taken),
            target=target,
        )
        for pc, op, srcs, dst, addr, data, taken, target in zip(*columns)
    ]
    image = {k: v for k, v in payload["memory_image"]}
    trace = Trace(payload["name"], payload["category"], instrs, image)
    trace.validate()
    return trace


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace as gzipped JSON."""
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        json.dump(trace_to_dict(trace), fh)


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        return trace_from_dict(json.load(fh))


# ------------------------------------------------------------------- JSONL


def save_trace_jsonl(trace: Trace, path: str | Path) -> None:
    """Write a trace as JSON Lines: header object, then one row per instr.

    Each row is ``[pc, op, srcs, dst, addr, data, taken, target]`` — the
    column order of :func:`trace_to_dict`, row-major so recorders can
    append as they go.
    """
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "format_version": FORMAT_VERSION,
            "kind": "trace-jsonl",
            "name": trace.name,
            "category": trace.category,
            "count": len(trace.instrs),
            "memory_image": [[k, v] for k, v in trace.memory_image.items()],
        }
        fh.write(json.dumps(header) + "\n")
        for i in trace.instrs:
            row = [i.pc, int(i.op), list(i.srcs), i.dst, i.addr, i.data,
                   int(i.taken), i.target]
            fh.write(json.dumps(row) + "\n")


def load_trace_jsonl(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace_jsonl`."""
    with open(path, "r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if (
            header.get("format_version") != FORMAT_VERSION
            or header.get("kind") != "trace-jsonl"
        ):
            raise ValueError(
                f"{path} is not a version-{FORMAT_VERSION} JSONL trace"
            )
        instrs = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            pc, op, srcs, dst, addr, data, taken, target = json.loads(line)
            instrs.append(Instr(
                pc=pc, op=Op(op), srcs=tuple(srcs), dst=dst, addr=addr,
                data=data, taken=bool(taken), target=target,
            ))
    if len(instrs) != header["count"]:
        raise ValueError(
            f"corrupt JSONL trace {path}: header says {header['count']} "
            f"instructions, found {len(instrs)}"
        )
    image = {k: v for k, v in header["memory_image"]}
    trace = Trace(header["name"], header["category"], instrs, image)
    trace.validate()
    return trace


# ------------------------------------------------------------ compact binary


def save_trace_bin(trace: Trace, path: str | Path) -> None:
    """Write a trace in the struct-packed compact binary format."""
    name = trace.name.encode()
    category = trace.category.encode()
    with open(path, "wb") as fh:
        fh.write(BIN_MAGIC)
        fh.write(struct.pack("<HHH", FORMAT_VERSION, len(name), len(category)))
        fh.write(name)
        fh.write(category)
        fh.write(struct.pack("<QQ", len(trace.instrs), len(trace.memory_image)))
        for i in trace.instrs:
            fh.write(_BIN_INSTR.pack(
                i.pc, int(i.op), i.dst, i.addr, i.data, i.target,
                int(i.taken), len(i.srcs),
            ))
            if i.srcs:
                fh.write(struct.pack(f"<{len(i.srcs)}b", *i.srcs))
        for addr, value in trace.memory_image.items():
            fh.write(_BIN_PAIR.pack(addr, value))


def load_trace_bin(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace_bin`."""
    with open(path, "rb") as fh:
        data = fh.read()
    if data[:4] != BIN_MAGIC:
        raise ValueError(f"{path} is not a compact binary trace (bad magic)")
    version, name_len, cat_len = struct.unpack_from("<HHH", data, 4)
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported binary trace version {version} "
            f"(this build reads {FORMAT_VERSION})"
        )
    offset = 10
    name = data[offset:offset + name_len].decode(); offset += name_len
    category = data[offset:offset + cat_len].decode(); offset += cat_len
    count, image_len = struct.unpack_from("<QQ", data, offset)
    offset += 16
    instrs = []
    try:
        for _ in range(count):
            pc, op, dst, addr, value, target, taken, n_srcs = (
                _BIN_INSTR.unpack_from(data, offset)
            )
            offset += _BIN_INSTR.size
            srcs = struct.unpack_from(f"<{n_srcs}b", data, offset)
            offset += n_srcs
            instrs.append(Instr(
                pc=pc, op=Op(op), srcs=srcs, dst=dst, addr=addr,
                data=value, taken=bool(taken), target=target,
            ))
        image = {}
        for _ in range(image_len):
            addr, value = _BIN_PAIR.unpack_from(data, offset)
            offset += _BIN_PAIR.size
            image[addr] = value
    except struct.error as exc:
        raise ValueError(f"corrupt binary trace {path}: {exc}") from exc
    trace = Trace(name, category, instrs, image)
    trace.validate()
    return trace


# ------------------------------------------------------------ format sniffing


def load_trace_any(path: str | Path) -> Trace:
    """Load a trace in any supported format, sniffed from its first bytes.

    gzip magic -> :func:`load_trace`; :data:`BIN_MAGIC` ->
    :func:`load_trace_bin`; otherwise JSONL.
    """
    with open(path, "rb") as fh:
        head = fh.read(4)
    if head[:2] == b"\x1f\x8b":
        return load_trace(path)
    if head == BIN_MAGIC:
        return load_trace_bin(path)
    return load_trace_jsonl(path)


def describe_trace(trace: Trace) -> dict:
    """Summary statistics for the CLI's ``info`` command."""
    op_mix = {op.name: 0 for op in Op}
    for instr in trace.instrs:
        op_mix[instr.op.name] += 1
    return {
        "name": trace.name,
        "category": trace.category,
        "instructions": len(trace),
        "op_mix": {k: v for k, v in op_mix.items() if v},
        "data_footprint_kb": trace.footprint_lines() * 64 // 1024,
        "code_footprint_kb": max(1, trace.code_lines() * 64 // 1024),
        "memory_image_entries": len(trace.memory_image),
    }
