"""Named workload suites mirroring the paper's Table II.

The paper evaluates 70 single-thread applications over five categories
(SPEC INT, SPEC FP, HPC, server, client) plus 60 four-way multi-programmed
mixes.  We reproduce the *structure* at laptop scale: 35 named synthetic
workloads whose kernels exercise the behaviours the paper attributes to each
application, and parameterised MP mixes.

Workloads the paper calls out individually are modeled explicitly:

* ``hmmer_like`` — L2-resident dependent loads (loses heavily without an L2,
  recovered by TACT-Deep-Self);
* ``mcf_like`` — index-feeding-gather (lifted by TACT-Feeder);
* ``povray_like`` — more critical load PCs than the 32-entry table tracks;
* ``namd_like`` / ``gromacs_like`` — pointer chases no prefetcher can help.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from . import generator as g
from .trace import CATEGORIES, Trace

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload: kernel + parameters + category."""

    name: str
    category: str
    kernel: Callable[..., Trace]
    params: tuple[tuple[str, object], ...] = ()
    #: Trace-length multiplier.  LLC-boundary working sets (1.6-2.4 MB on the
    #: scaled hierarchy) need more instructions than the default to both
    #: build and re-reference their footprint; the simulator honours this.
    length_multiplier: int = 1

    def build(self, n_instrs: int = 30_000) -> Trace:
        """Materialise the trace with ``n_instrs`` dynamic instructions."""
        return self.kernel(self.name, self.category, n_instrs, **dict(self.params))


def _spec(
    name: str,
    category: str,
    kernel: Callable[..., Trace],
    length_multiplier: int = 1,
    **params,
) -> WorkloadSpec:
    return WorkloadSpec(
        name, category, kernel, tuple(sorted(params.items())), length_multiplier
    )


# Working sets below are tuned for the default capacity-scaled hierarchy
# (L1 8 KB, L2 256 KB, LLC 1.375 MB; noL2 variants 1.625 / 2.375 MB) at the
# default 40K-instruction trace length, targeting four regimes:
# L1-resident, L2-resident (the CATCH sweet spot), LLC-resident, and
# streaming-past-LLC (memory bound).
ST_SUITE: list[WorkloadSpec] = [
    # ---- ISPEC ------------------------------------------------------------
    _spec("mcf_like", "ISPEC", g.indexed_gather, data_ws_bytes=288 * KB,
          length_multiplier=2, seed=11),
    _spec("omnetpp_like", "ISPEC", g.pointer_chase, nodes=4096, chains=2,
          alu_per_hop=4, ptr_work=8, seed=12),
    _spec("xalancbmk_like", "ISPEC", g.cross_gather, data_ws_bytes=416 * KB,
          chain_muls=6, seed=13),
    _spec("astar_like", "ISPEC", g.pointer_chase, nodes=1024, chains=3,
          alu_per_hop=4, ptr_work=12, seed=14),
    _spec("gobmk_like", "ISPEC", g.branchy, ws_bytes=48 * KB, p_taken=0.35, seed=15),
    _spec("perlbench_like", "ISPEC", g.server_app, code_kb=48, block_instrs=16,
          data_ws_bytes=512 * KB, seed=16),
    _spec("bzip2_like", "ISPEC", g.hot_loop, ws_bytes=64 * KB, chain_loads=3,
          l1_lanes=2, alu_between=8, seed=17),
    _spec("libquantum_like", "ISPEC", g.streaming, ws_bytes=7 * MB,
          stride=448, seed=18),
    _spec("h264ref_like", "ISPEC", g.cross_gather, data_ws_bytes=192 * KB,
          chain_muls=5, seed=19),
    _spec("sjeng_like", "ISPEC", g.branchy, ws_bytes=64 * KB, p_taken=0.45, seed=20),
    _spec("gcc_like", "ISPEC", g.many_critical_pcs, n_load_pcs=64,
          ws_bytes=384 * KB, seed=21),
    _spec("hmmer_like", "ISPEC", g.hot_loop, ws_bytes=48 * KB, chain_loads=4,
          alu_between=2, seed=22),
    # ---- FSPEC ------------------------------------------------------------
    _spec("bwaves_like", "FSPEC", g.streaming, ws_bytes=8 * MB, stride=512, seed=31),
    _spec("milc_like", "FSPEC", g.skewed_gather, hot_bytes=384 * KB,
          band_bytes=1600 * KB, hot_fraction=0.7, length_multiplier=3, seed=32),
    _spec("zeusmp_like", "FSPEC", g.skewed_gather, hot_bytes=512 * KB,
          band_bytes=1920 * KB, hot_fraction=0.7, length_multiplier=3, seed=33),
    _spec("soplex_like", "FSPEC", g.indexed_gather, data_ws_bytes=320 * KB, seed=34),
    _spec("povray_like", "FSPEC", g.many_critical_pcs, n_load_pcs=96,
          ws_bytes=256 * KB, seed=35),
    _spec("calculix_like", "FSPEC", g.fp_compute, ws_bytes=48 * KB, seed=36),
    _spec("gemsfdtd_like", "FSPEC", g.streaming, ws_bytes=10 * MB,
          stride=640, seed=37),
    _spec("lbm_like", "FSPEC", g.streaming, ws_bytes=8 * MB, stride=512,
          store_every=2, seed=38),
    _spec("namd_like", "FSPEC", g.pointer_chase, nodes=8192, chains=2, seed=39),
    _spec("gromacs_like", "FSPEC", g.pointer_chase, nodes=12288, chains=2, seed=40),
    _spec("sphinx3_like", "FSPEC", g.skewed_gather, hot_bytes=512 * KB,
          band_bytes=1792 * KB, hot_fraction=0.7, length_multiplier=3, seed=41),
    _spec("leslie3d_like", "FSPEC", g.fp_compute, ws_bytes=5 * MB,
          stride=448, seed=42),
    # ---- HPC ----------------------------------------------------------------
    _spec("hplinpack_like", "HPC", g.fp_compute, ws_bytes=32 * KB, seed=51),
    _spec("blackscholes_like", "HPC", g.fp_compute, ws_bytes=16 * KB,
          fp_chain=5, seed=52),
    _spec("bioinformatics_like", "HPC", g.indexed_gather, data_ws_bytes=224 * KB, seed=53),
    _spec("hpcapp_like", "HPC", g.streaming, ws_bytes=12 * MB, stride=768, seed=54),
    # ---- server -------------------------------------------------------------
    _spec("tpcc_like", "server", g.server_app, code_kb=56, block_instrs=16,
          data_ws_bytes=512 * KB, seed=61),
    _spec("tpce_like", "server", g.server_app, code_kb=48, block_instrs=16,
          data_ws_bytes=384 * KB, seed=62),
    _spec("specjbb_like", "server", g.server_app, code_kb=40, block_instrs=16,
          data_ws_bytes=320 * KB, seed=63),
    _spec("oracle_like", "server", g.server_app, code_kb=56, block_instrs=16,
          data_ws_bytes=448 * KB, seed=64),
    _spec("hadoop_like", "server", g.server_app, code_kb=32, block_instrs=16,
          data_ws_bytes=768 * KB, seed=65),
    _spec("specpower_like", "server", g.server_app, code_kb=24, block_instrs=16,
          data_ws_bytes=256 * KB, seed=66),
    # ---- client -------------------------------------------------------------
    _spec("excel_like", "client", g.branchy, ws_bytes=96 * KB, p_taken=0.4, seed=71),
    _spec("facedet_like", "client", g.cross_gather, data_ws_bytes=384 * KB,
          chain_muls=7, seed=72),
    _spec("h264enc_like", "client", g.hot_loop, ws_bytes=40 * KB, chain_loads=2,
          l1_lanes=1, alu_between=8, seed=73),
]

#: A small representative cross-section used by fast tests and benchmarks.
QUICK_SUITE_NAMES = (
    "hmmer_like", "mcf_like", "sphinx3_like", "tpcc_like",
    "excel_like", "bwaves_like", "hplinpack_like", "namd_like",
)


def get_spec(name: str) -> WorkloadSpec:
    """Look up a workload in the ``WORKLOADS`` registry.

    Resolution goes through :data:`repro.plugins.workloads.WORKLOADS`, so
    ingested trace workloads and ``$REPRO_PLUGINS`` registrations resolve
    exactly like the built-in suite; an unknown name raises
    :class:`~repro.errors.ConfigError` with sorted choices and a
    did-you-mean, matching every other component family.
    """
    from ..plugins.workloads import WORKLOADS

    return WORKLOADS.get(name)


def suite(categories: tuple[str, ...] | None = None, quick: bool = False) -> list[WorkloadSpec]:
    """The ST workload list, optionally restricted.

    Args:
        categories: keep only these Table-II categories.
        quick: restrict to :data:`QUICK_SUITE_NAMES` (fast CI runs).
    """
    specs = ST_SUITE
    if quick:
        specs = [s for s in specs if s.name in QUICK_SUITE_NAMES]
    if categories:
        unknown = set(categories) - set(CATEGORIES)
        if unknown:
            raise ValueError(f"unknown categories: {sorted(unknown)}")
        specs = [s for s in specs if s.category in categories]
    return list(specs)


#: Trace memo keyed by ``(workload fingerprint, n_instrs)`` — *not* by name:
#: a name re-registered with different parameters (or a re-recorded trace
#: file) gets a new fingerprint and therefore never serves the old name's
#: stale memoised trace.  Bounded LRU, like the old ``lru_cache``.
_TRACE_MEMO: "OrderedDict[tuple[str, int], Trace]" = OrderedDict()
_TRACE_MEMO_MAX = 256


def build_trace(name: str, n_instrs: int = 30_000) -> Trace:
    """Build (and memoise) the trace for a named workload.

    Repeated calls with the same spec identity return the *same* trace
    object (tests and the MP path rely on identity-level memoisation).
    """
    from ..plugins.workloads import workload_fingerprint

    spec = get_spec(name)
    key = (workload_fingerprint(name), n_instrs)
    hit = _TRACE_MEMO.get(key)
    if hit is not None:
        _TRACE_MEMO.move_to_end(key)
        return hit
    trace = spec.build(n_instrs)
    _TRACE_MEMO[key] = trace
    while len(_TRACE_MEMO) > _TRACE_MEMO_MAX:
        _TRACE_MEMO.popitem(last=False)
    return trace


#: ``functools.lru_cache``-compatible seam kept for callers/tests that
#: explicitly drop the memo (e.g. memory-pressure benchmarks).
build_trace.cache_clear = _TRACE_MEMO.clear  # type: ignore[attr-defined]


def mp_mixes(count: int = 12, *, rate4: int | None = None, seed: int = 99) -> list[tuple[str, ...]]:
    """Four-way multi-programmed mixes (paper Section V: half RATE-4 copies
    of one application, half random mixes).

    Args:
        count: total number of mixes.
        rate4: how many are homogeneous 4-copy mixes (default: half).
        seed: RNG seed for the random mixes.
    """
    import random

    rng = random.Random(seed)
    if rate4 is None:
        rate4 = count // 2
    names = [s.name for s in ST_SUITE]
    mixes: list[tuple[str, ...]] = []
    rate_pool = rng.sample(names, min(rate4, len(names)))
    for name in rate_pool:
        mixes.append((name,) * 4)
    while len(mixes) < count:
        mixes.append(tuple(rng.sample(names, 4)))
    return mixes
