"""Workload CLI: list the suite, dump traces to disk, inspect trace files.

Usage::

    python -m repro.workloads list
    python -m repro.workloads dump mcf_like --n 20000 --out mcf.trace.gz
    python -m repro.workloads dump tpcc_like --out tpcc.jsonl --format jsonl
    python -m repro.workloads info mcf.trace.gz

``dump --format`` selects gzipped JSON (``gz``, default), JSON Lines
(``jsonl``) or the compact binary format (``bin``); ``info`` sniffs the
format from the file's leading bytes.
"""

from __future__ import annotations

import argparse
import sys

from .serialization import (
    describe_trace,
    load_trace_any,
    save_trace,
    save_trace_bin,
    save_trace_jsonl,
)
from .suites import ST_SUITE, build_trace, get_spec

_SAVERS = {"gz": save_trace, "jsonl": save_trace_jsonl, "bin": save_trace_bin}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.workloads")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table-II workload suite")

    dump = sub.add_parser("dump", help="generate a workload and save its trace")
    dump.add_argument("workload")
    dump.add_argument("--n", type=int, default=40_000, help="instruction count")
    dump.add_argument("--out", required=True, help="output trace path")
    dump.add_argument(
        "--format", choices=sorted(_SAVERS), default="gz",
        help="on-disk format (default: gzipped JSON)",
    )

    info = sub.add_parser("info", help="summarise a saved trace file")
    info.add_argument("path")

    args = parser.parse_args(argv)
    if args.command == "list":
        print(f"{'name':22s}{'category':10s}{'kernel':18s}{'multiplier':>11s}")
        for spec in ST_SUITE:
            print(
                f"{spec.name:22s}{spec.category:10s}"
                f"{spec.kernel.__name__:18s}{spec.length_multiplier:>11d}"
            )
    elif args.command == "dump":
        spec = get_spec(args.workload)
        trace = build_trace(args.workload, args.n * spec.length_multiplier)
        _SAVERS[args.format](trace, args.out)
        print(f"wrote {len(trace)} instructions to {args.out}")
    elif args.command == "info":
        summary = describe_trace(load_trace_any(args.path))
        for key, value in summary.items():
            print(f"  {key:22s} {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
