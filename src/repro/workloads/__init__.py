"""Workload substrate: instruction model, synthetic kernels, Table-II suites."""

from .trace import CATEGORIES, EXEC_LATENCY, LINE_SIZE, NUM_ARCH_REGS, Instr, Op, Trace
from .serialization import (
    describe_trace,
    load_trace,
    load_trace_any,
    load_trace_bin,
    load_trace_jsonl,
    save_trace,
    save_trace_bin,
    save_trace_jsonl,
)
from .ingest import (
    INGEST_PROFILES,
    TraceFileSpec,
    register_trace_workload,
    trace_content_hash,
)
from .suites import (
    QUICK_SUITE_NAMES,
    ST_SUITE,
    WorkloadSpec,
    build_trace,
    get_spec,
    mp_mixes,
    suite,
)

__all__ = [
    "CATEGORIES",
    "EXEC_LATENCY",
    "LINE_SIZE",
    "NUM_ARCH_REGS",
    "Instr",
    "Op",
    "Trace",
    "describe_trace",
    "load_trace",
    "load_trace_any",
    "load_trace_bin",
    "load_trace_jsonl",
    "save_trace",
    "save_trace_bin",
    "save_trace_jsonl",
    "INGEST_PROFILES",
    "TraceFileSpec",
    "register_trace_workload",
    "trace_content_hash",
    "QUICK_SUITE_NAMES",
    "ST_SUITE",
    "WorkloadSpec",
    "build_trace",
    "get_spec",
    "mp_mixes",
    "suite",
]
