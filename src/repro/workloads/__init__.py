"""Workload substrate: instruction model, synthetic kernels, Table-II suites."""

from .trace import CATEGORIES, EXEC_LATENCY, LINE_SIZE, NUM_ARCH_REGS, Instr, Op, Trace
from .serialization import describe_trace, load_trace, save_trace
from .suites import (
    QUICK_SUITE_NAMES,
    ST_SUITE,
    WorkloadSpec,
    build_trace,
    get_spec,
    mp_mixes,
    suite,
)

__all__ = [
    "CATEGORIES",
    "EXEC_LATENCY",
    "LINE_SIZE",
    "NUM_ARCH_REGS",
    "Instr",
    "Op",
    "Trace",
    "describe_trace",
    "load_trace",
    "save_trace",
    "QUICK_SUITE_NAMES",
    "ST_SUITE",
    "WorkloadSpec",
    "build_trace",
    "get_spec",
    "mp_mixes",
    "suite",
]
