"""Trace-file ingestion: recorded or external traces as registry workloads.

A :class:`TraceFileSpec` wraps a trace file on disk (any of the formats
``workloads.serialization`` reads: gzipped JSON, JSONL, or compact binary)
and presents the same ``name``/``category``/``build(n_instrs)`` surface as a
synthetic :class:`~repro.workloads.suites.WorkloadSpec`, so an ingested trace
runs through the simulator, runner, fleet and daemon exactly like a named
kernel.

Identity is the trace file's **content hash**: the spec's
``fingerprint_payload`` feeds :func:`repro.plugins.workloads
.workload_fingerprint` a SHA-256 of the file bytes, so editing the file (or
registering a different file under a reused name) changes every downstream
key — checkpoints, cache entries, service dedup — instead of aliasing them.

Named profile presets (:data:`INGEST_PROFILES`) bundle the category and
length semantics commonly wanted for a class of recorded traces::

    from repro.workloads.ingest import register_trace_workload
    register_trace_workload("prod_txn", "prod.trace.jsonl", profile="server-app")
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from ..errors import ConfigError
from .trace import CATEGORIES, Trace

#: Named ingestion presets: category + trace-length semantics for a class of
#: recorded traces.  ``length_multiplier`` follows the synthetic suite's
#: convention (big-footprint traces need more instructions to re-reference
#: their working set).
INGEST_PROFILES: dict[str, dict] = {
    "server-app": {"category": "server", "length_multiplier": 1},
    "client-app": {"category": "client", "length_multiplier": 1},
    "spec-int": {"category": "ISPEC", "length_multiplier": 1},
    "spec-fp": {"category": "FSPEC", "length_multiplier": 2},
    "hpc-stream": {"category": "HPC", "length_multiplier": 3},
}

#: Content-hash memo keyed by ``(path, mtime_ns, size)`` — re-hashing a
#: multi-megabyte trace on every fingerprint lookup would dominate small runs.
_CONTENT_HASHES: dict[tuple[str, int, int], str] = {}


def trace_content_hash(path: str | Path) -> str:
    """SHA-256 of the trace file's bytes (memoized on ``(path, mtime, size)``)."""
    path = Path(path)
    try:
        stat = path.stat()
    except OSError as exc:
        raise ConfigError(f"trace file {path} is unreadable: {exc}") from exc
    key = (str(path.resolve()), stat.st_mtime_ns, stat.st_size)
    memo = _CONTENT_HASHES.get(key)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    value = digest.hexdigest()
    if len(_CONTENT_HASHES) > 1024:
        _CONTENT_HASHES.clear()
    _CONTENT_HASHES[key] = value
    return value


@dataclass(frozen=True)
class TraceFileSpec:
    """One ingested trace file, registry-shaped.

    Args:
        name: registry name (display-only; identity is the content hash).
        path: trace file in any ``load_trace_any`` format.
        category: Table-II category for reporting.
        length_multiplier: trace-length scaling, as for synthetic specs.
    """

    name: str
    path: str
    category: str = "server"
    length_multiplier: int = 1

    def fingerprint_payload(self) -> dict:
        """Content-addressed identity for :func:`workload_fingerprint`."""
        return {"type": "trace", "sha256": trace_content_hash(self.path)}

    def build(self, n_instrs: int = 30_000) -> Trace:
        """Load the file and truncate to ``n_instrs`` dynamic instructions.

        Recorded traces are finite: asking for more instructions than the
        file holds is a :class:`ConfigError` (a short estimate silently
        standing in for a long measurement would corrupt results), while a
        shorter request keeps the prefix — with the full memory image, so
        warmup-truncated runs still find their data.
        """
        from .serialization import load_trace_any

        trace = load_trace_any(self.path)
        if len(trace.instrs) < n_instrs:
            raise ConfigError(
                f"trace file {self.path} holds {len(trace.instrs)} "
                f"instructions but {n_instrs} were requested; record a "
                f"longer trace or lower n_instrs"
            )
        return Trace(
            self.name,
            self.category,
            trace.instrs[:n_instrs],
            dict(trace.memory_image),
        )


def register_trace_workload(
    name: str,
    path: str | Path,
    *,
    profile: str | None = None,
    category: str | None = None,
    length_multiplier: int | None = None,
    summary: str = "",
) -> TraceFileSpec:
    """Register one trace file as a named workload in ``WORKLOADS``.

    ``profile`` selects an :data:`INGEST_PROFILES` preset; ``category`` /
    ``length_multiplier`` override it.  The file must exist (its content
    hash is the workload's identity, computed eagerly here so a missing
    file fails at registration, not mid-campaign).
    """
    from ..plugins.workloads import register_workload

    preset: dict = {}
    if profile is not None:
        if profile not in INGEST_PROFILES:
            raise ConfigError(
                f"unknown ingest profile {profile!r}; "
                f"choose from {sorted(INGEST_PROFILES)}"
            )
        preset = INGEST_PROFILES[profile]
    cat = category or preset.get("category", "server")
    if cat not in CATEGORIES:
        raise ConfigError(
            f"unknown workload category {cat!r}; choose from {CATEGORIES}"
        )
    spec = TraceFileSpec(
        name=name,
        path=str(path),
        category=cat,
        length_multiplier=(
            length_multiplier
            if length_multiplier is not None
            else preset.get("length_multiplier", 1)
        ),
    )
    trace_content_hash(spec.path)  # fail fast on a missing/unreadable file
    register_workload(
        spec,
        summary=summary or f"{cat} trace file: {Path(path).name}",
    )
    return spec
