"""Simulation drivers: configurations, single-core and multi-core runners."""

from .config import (
    DEFAULT_CAPACITY_SCALE,
    SimConfig,
    fig10_configs,
    fig17_configs,
    no_l2,
    skylake_client,
    skylake_server,
    with_catch,
    with_extra_latency,
)
from .metrics import (
    ActivitySnapshot,
    MPRunResult,
    RunResult,
    category_geomeans,
    geomean,
    weighted_speedup,
)
from .multicore import MultiCoreSimulator, alone_ipcs, relocate_trace
from .prefetch_metrics import PrefetchQuality, l1_prefetch_quality, quality_from_stats
from .simulator import (
    DEFAULT_TRACE_LENGTH,
    Simulator,
    run_config_suite,
    speedups_vs_baseline,
)

__all__ = [
    "DEFAULT_CAPACITY_SCALE",
    "SimConfig",
    "fig10_configs",
    "fig17_configs",
    "no_l2",
    "skylake_client",
    "skylake_server",
    "with_catch",
    "with_extra_latency",
    "ActivitySnapshot",
    "MPRunResult",
    "RunResult",
    "category_geomeans",
    "geomean",
    "weighted_speedup",
    "PrefetchQuality",
    "l1_prefetch_quality",
    "quality_from_stats",
    "MultiCoreSimulator",
    "alone_ipcs",
    "relocate_trace",
    "DEFAULT_TRACE_LENGTH",
    "Simulator",
    "run_config_suite",
    "speedups_vs_baseline",
]
