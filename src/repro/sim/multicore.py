"""Four-core multi-programmed simulation (Section VI-C / Figure 14).

Each core runs its own trace; cores share the LLC, ring and DRAM.  Cores are
interleaved by commit timestamp (the core with the earliest local clock steps
next), so shared-resource contention — LLC capacity, bank conflicts, bus
occupancy — emerges naturally from the timestamps.

Each trace's data addresses are relocated to a private region (separate
processes do not share physical data pages); code addresses are left shared,
as RATE-4 copies of one binary genuinely share code lines in the LLC.

The metric is weighted speedup: ``sum_i IPC_together_i / IPC_alone_i`` with
the alone runs on the same configuration (paper Section V).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace as dc_replace

from .. import obs
from ..workloads.suites import build_trace, get_spec
from ..workloads.trace import Instr, Trace
from .config import SimConfig
from .metrics import RunResult
from .simulator import DEFAULT_TRACE_LENGTH, Simulator

#: Address-space stride separating the cores' private data regions.
_CORE_ADDRESS_STRIDE = 1 << 40


def relocate_trace(trace: Trace, core: int) -> Trace:
    """Shift a trace's data addresses into a core-private region."""
    if core == 0:
        return trace
    offset = core * _CORE_ADDRESS_STRIDE
    instrs = [
        dc_replace(ins, addr=ins.addr + offset) if ins.addr >= 0 else ins
        for ins in trace.instrs
    ]
    image = {addr + offset: value for addr, value in trace.memory_image.items()}
    return Trace(trace.name, trace.category, instrs, image)


@dataclass
class MPResult:
    """Outcome of one four-way mix on one configuration."""

    mix: tuple[str, ...]
    config_name: str
    ipc: dict[int, float]                 #: per-core IPC (measured half)
    cycles: dict[int, float] = field(default_factory=dict)

    def weighted_speedup(self, alone_ipc: dict[str, float]) -> float:
        """Sum of per-core IPC ratios vs the alone runs."""
        return sum(
            self.ipc[core] / alone_ipc[name]
            for core, name in enumerate(self.mix)
        )


class MultiCoreSimulator:
    """Runs four-way mixes on a shared hierarchy.

    Args:
        config: machine configuration; ``n_cores`` cores are instantiated.
    """

    def __init__(self, config: SimConfig, n_cores: int = 4) -> None:
        self.config = dc_replace(config, n_cores=n_cores).validate()
        self.n_cores = n_cores

    def run_mix(
        self, mix: tuple[str, ...], n_instrs: int = DEFAULT_TRACE_LENGTH
    ) -> MPResult:
        """Run one mix to completion (warmup half + measured half)."""
        if len(mix) != self.n_cores:
            raise ValueError(f"mix size {len(mix)} != {self.n_cores} cores")
        with obs.span("mix-build", args={"mix": "+".join(mix)}):
            sim = Simulator(self.config)
            hierarchy = sim.build_hierarchy()
            traces = []
            for core_id, name in enumerate(mix):
                spec = get_spec(name)
                trace = build_trace(name, 2 * n_instrs * spec.length_multiplier)
                traces.append(relocate_trace(trace, core_id))
            engines = [sim.make_engine() for _ in range(self.n_cores)]
            cores = [
                sim.make_core(c, hierarchy, engines[c])
                for c in range(self.n_cores)
            ]
            for core, trace in zip(cores, traces):
                core.start(trace)

        boundaries = [len(t.instrs) // 2 for t in traces]
        half_time: dict[int, float] = {}
        positions = [0] * self.n_cores
        # Min-heap of (local commit time, core id): the core whose clock is
        # furthest behind steps next, keeping shared-resource timestamps
        # roughly ordered.
        heap = [(0.0, c) for c in range(self.n_cores)]
        heapq.heapify(heap)
        with obs.span("mix-run", args={"mix": "+".join(mix)}):
            while heap:
                _, c = heapq.heappop(heap)
                pos = positions[c]
                trace = traces[c]
                if pos >= len(trace.instrs):
                    continue
                commit = cores[c].step(pos, trace.instrs[pos])
                positions[c] = pos + 1
                if positions[c] == boundaries[c]:
                    half_time[c] = commit
                    hierarchy.stats[c] = type(hierarchy.stats[c])()
                    cores[c].reset_stats()
                    engines[c].reset_stats()
                if positions[c] < len(trace.instrs):
                    heapq.heappush(heap, (commit, c))
            hierarchy.memory.finish(max(core.time for core in cores))

        ipc = {}
        cycles = {}
        for c in range(self.n_cores):
            measured = len(traces[c].instrs) - boundaries[c]
            span = cores[c].time - half_time[c]
            cycles[c] = span
            ipc[c] = measured / span if span else 0.0
        return MPResult(mix=mix, config_name=self.config.name, ipc=ipc, cycles=cycles)


def alone_ipcs(
    config: SimConfig, names: set[str], n_instrs: int = DEFAULT_TRACE_LENGTH
) -> dict[str, float]:
    """IPC of each workload running alone on the same configuration."""
    sim = Simulator(dc_replace(config, n_cores=1))
    return {name: sim.run(name, n_instrs).ipc for name in names}
