"""Four-core multi-programmed simulation (Section VI-C / Figure 14).

Each core runs its own trace; cores share the LLC, ring and DRAM.  Cores are
interleaved by commit timestamp (the core with the earliest local clock steps
next), so shared-resource contention — LLC capacity, bank conflicts, bus
occupancy — emerges naturally from the timestamps.

Each trace's data addresses are relocated to a private region (separate
processes do not share physical data pages); code addresses are left shared,
as RATE-4 copies of one binary genuinely share code lines in the LLC.

A mix is a first-class workload reference: :meth:`MultiCoreSimulator.run`
accepts the ``"a+b+c+d"`` display string (see
:mod:`repro.plugins.workloads`), and :meth:`run_mix` returns an
:class:`~repro.sim.metrics.MPRunResult` — RunResult-shaped, so mixes
checkpoint, cache and serve through the runner/fleet/daemon stack exactly
like single-core runs.

The metric is weighted speedup: ``sum_i IPC_together_i / IPC_alone_i`` with
the alone runs on the same configuration (paper Section V).
"""

from __future__ import annotations

import heapq
from dataclasses import replace as dc_replace

from .. import obs
from ..core.catch_engine import CatchEngine
from ..workloads.suites import build_trace, get_spec
from ..workloads.trace import Trace
from .config import SimConfig
from .metrics import ActivitySnapshot, MPRunResult
from .simulator import DEFAULT_TRACE_LENGTH, Simulator

#: Address-space stride separating the cores' private data regions.
_CORE_ADDRESS_STRIDE = 1 << 40


def relocate_trace(trace: Trace, core: int) -> Trace:
    """Shift a trace's data addresses into a core-private region."""
    if core == 0:
        return trace
    offset = core * _CORE_ADDRESS_STRIDE
    instrs = [
        dc_replace(ins, addr=ins.addr + offset) if ins.addr >= 0 else ins
        for ins in trace.instrs
    ]
    image = {addr + offset: value for addr, value in trace.memory_image.items()}
    return Trace(trace.name, trace.category, instrs, image)


class MultiCoreSimulator:
    """Runs four-way mixes on a shared hierarchy.

    Args:
        config: machine configuration; ``n_cores`` cores are instantiated.
    """

    def __init__(self, config: SimConfig, n_cores: int = 4) -> None:
        self.config = dc_replace(config, n_cores=n_cores).validate()
        self.n_cores = n_cores

    def run(
        self,
        workload,
        n_instrs: int = DEFAULT_TRACE_LENGTH,
        *,
        on_instruction=None,
        deadline=None,
        **_ignored,
    ) -> MPRunResult:
        """Simulator-compatible entry point: a mix reference runs as a mix.

        ``workload`` is the ``"a+b+c+d"`` display string or the member
        tuple itself; extra single-core-only kwargs (``kernel`` etc.) are
        accepted and ignored so the runner can treat this class as a
        drop-in simulator for mix jobs.
        """
        from ..plugins.workloads import mix_names

        mix = mix_names(workload) if isinstance(workload, str) else tuple(workload)
        return self.run_mix(
            mix, n_instrs, on_instruction=on_instruction, deadline=deadline
        )

    def run_mix(
        self,
        mix: tuple[str, ...],
        n_instrs: int = DEFAULT_TRACE_LENGTH,
        *,
        on_instruction=None,
        deadline=None,
    ) -> MPRunResult:
        """Run one mix to completion (warmup half + measured half).

        ``on_instruction``/``deadline`` follow the single-core simulator's
        hook contract, called with the running count of globally stepped
        instructions — the fleet worker's heartbeat and the runner's
        wall-clock deadline ride them for mix jobs too.
        """
        from ..plugins.workloads import mix_display

        if len(mix) != self.n_cores:
            raise ValueError(f"mix size {len(mix)} != {self.n_cores} cores")
        display = mix_display(mix)
        with obs.span("mix-build", args={"mix": display}):
            sim = Simulator(self.config)
            hierarchy = sim.build_hierarchy()
            traces = []
            for core_id, name in enumerate(mix):
                spec = get_spec(name)
                trace = build_trace(name, 2 * n_instrs * spec.length_multiplier)
                traces.append(relocate_trace(trace, core_id))
            engines = [sim.make_engine() for _ in range(self.n_cores)]
            cores = [
                sim.make_core(c, hierarchy, engines[c])
                for c in range(self.n_cores)
            ]
            for core, trace in zip(cores, traces):
                core.start(trace)
        if deadline is not None:
            deadline(0)

        boundaries = [len(t.instrs) // 2 for t in traces]
        half_time: dict[int, float] = {}
        positions = [0] * self.n_cores
        stepped = 0
        # Min-heap of (local commit time, core id): the core whose clock is
        # furthest behind steps next, keeping shared-resource timestamps
        # roughly ordered.
        heap = [(0.0, c) for c in range(self.n_cores)]
        heapq.heapify(heap)
        with obs.span("mix-run", args={"mix": display}):
            while heap:
                _, c = heapq.heappop(heap)
                pos = positions[c]
                trace = traces[c]
                if pos >= len(trace.instrs):
                    continue
                commit = cores[c].step(pos, trace.instrs[pos])
                positions[c] = pos + 1
                stepped += 1
                if on_instruction is not None:
                    on_instruction(stepped)
                if deadline is not None:
                    deadline(stepped)
                if positions[c] == boundaries[c]:
                    half_time[c] = commit
                    hierarchy.stats[c] = type(hierarchy.stats[c])()
                    cores[c].reset_stats()
                    engines[c].reset_stats()
                if positions[c] < len(trace.instrs):
                    heapq.heappush(heap, (commit, c))
            hierarchy.memory.finish(max(core.time for core in cores))

        per_core_ipc: dict[int, float] = {}
        per_core_cycles: dict[int, float] = {}
        per_core_instructions: dict[int, int] = {}
        per_core_stats: dict[int, dict] = {}
        load_served: dict = {}
        code_served: dict = {}
        total_loads = 0
        latency_weighted = 0.0
        mispredicts = 0
        code_stall_cycles = 0.0
        critical_pcs = 0
        for c in range(self.n_cores):
            measured = len(traces[c].instrs) - boundaries[c]
            span = cores[c].time - half_time[c]
            per_core_cycles[c] = span
            per_core_instructions[c] = measured
            per_core_ipc[c] = measured / span if span else 0.0
            stats = hierarchy.stats[c]
            core_loads = sum(stats.load_served.values())
            total_loads += core_loads
            latency_weighted += stats.avg_load_latency * core_loads
            for level, count in stats.load_served.items():
                load_served[level] = load_served.get(level, 0) + count
            for level, count in stats.code_served.items():
                code_served[level] = code_served.get(level, 0) + count
            mispredicts += cores[c].mispredicts
            code_stall_cycles += cores[c].frontend.code_stall_cycles
            core_critical = 0
            if isinstance(engines[c], CatchEngine):
                core_critical = engines[c].critical_pcs
                critical_pcs += core_critical
            per_core_stats[c] = {
                "workload": mix[c],
                "load_served": {
                    level.name: count
                    for level, count in stats.load_served.items()
                },
                "avg_load_latency": stats.avg_load_latency,
                "mispredicts": cores[c].mispredicts,
                "code_stall_cycles": cores[c].frontend.code_stall_cycles,
                "critical_pcs": core_critical,
            }
        cycles = max(per_core_cycles.values()) if per_core_cycles else 0.0
        return MPRunResult(
            workload=display,
            category="MP",
            config_name=self.config.name,
            instructions=sum(per_core_instructions.values()),
            cycles=cycles,
            load_served=load_served,
            code_served=code_served,
            avg_load_latency=(
                latency_weighted / total_loads if total_loads else 0.0
            ),
            mispredicts=mispredicts,
            code_stall_cycles=code_stall_cycles,
            critical_pcs=critical_pcs,
            activity=ActivitySnapshot.capture(hierarchy, cycles),
            mix=tuple(mix),
            per_core_ipc=per_core_ipc,
            per_core_cycles=per_core_cycles,
            per_core_instructions=per_core_instructions,
            per_core_stats=per_core_stats,
        )


def alone_ipcs(
    config: SimConfig, names: set[str], n_instrs: int = DEFAULT_TRACE_LENGTH
) -> dict[str, float]:
    """IPC of each workload running alone on the same configuration."""
    sim = Simulator(dc_replace(config, n_cores=1))
    return {name: sim.run(name, n_instrs).ipc for name in names}
