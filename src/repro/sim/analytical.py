"""Analytical performance bounds for simulator validation.

A cycle-level simulator should agree with closed-form first-order models on
kernels simple enough to solve by hand.  This module provides those models —
the classic bounds from interval analysis:

* **width bound** — IPC <= dispatch width;
* **chain bound** — a loop whose iterations are linked by a dependence chain
  of total latency L and contains N instructions runs at IPC = N/L when the
  chain is the bottleneck;
* **window (ROB) bound** — a chain of length C cycles per iteration with N
  instructions per iteration overlaps at most ``ROB/N`` iterations, giving
  IPC = min(width, ROB/C);
* **bandwidth bound** — a memory-bound stream moving B bytes per instruction
  cannot exceed IPC = peak_bw / (B * f).

``tests/test_analytical.py`` pins the simulator against each bound; the
models are also useful on their own for quick what-if estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.core import CoreParams
from ..memory.dram import DRAMConfig


@dataclass(frozen=True)
class LoopShape:
    """A steady-state loop for analytical evaluation.

    Attributes:
        instructions: dynamic instructions per iteration.
        chain_latency: total latency (cycles) of the loop-carried dependence
            chain per iteration (0 = fully parallel iterations).
        body_latency: latency of the longest intra-iteration dependence path
            that is NOT loop carried (bounds nothing once overlapped, but
            matters for the window bound).
        bytes_per_iter: unique memory traffic per iteration (bandwidth bound).
    """

    instructions: int
    chain_latency: float = 0.0
    body_latency: float = 0.0
    bytes_per_iter: float = 0.0


def width_bound(core: CoreParams) -> float:
    """Dispatch/commit width ceiling."""
    return float(core.width)


def chain_bound(shape: LoopShape) -> float:
    """IPC limit from the loop-carried dependence chain."""
    if shape.chain_latency <= 0:
        return float("inf")
    return shape.instructions / shape.chain_latency


def window_bound(shape: LoopShape, core: CoreParams) -> float:
    """IPC limit from the ROB: iterations in flight x instrs / critical path.

    With ``W = ROB/instructions`` iterations resident and each needing
    ``body_latency`` cycles of serial work, retirement advances one iteration
    per ``body_latency / W`` cycles.
    """
    if shape.body_latency <= 0:
        return float("inf")
    iterations_in_window = max(1.0, core.rob_size / shape.instructions)
    return shape.instructions * iterations_in_window / shape.body_latency


def bandwidth_bound(
    shape: LoopShape, dram: DRAMConfig | None = None, cpu_ghz: float = 3.2
) -> float:
    """IPC limit from DRAM bandwidth for a streaming loop."""
    if shape.bytes_per_iter <= 0:
        return float("inf")
    cfg = dram or DRAMConfig()
    # Peak: one 64B burst per channel per burst_cycles DRAM clocks.
    bytes_per_cpu_cycle = (
        cfg.channels * 64 / (cfg.burst_cycles * cfg.cycle_ratio)
    )
    cycles_per_iter = shape.bytes_per_iter / bytes_per_cpu_cycle
    return shape.instructions / cycles_per_iter


def predicted_ipc(
    shape: LoopShape,
    core: CoreParams | None = None,
    dram: DRAMConfig | None = None,
) -> float:
    """The binding bound: min of width, chain, window and bandwidth."""
    core = core or CoreParams()
    return min(
        width_bound(core),
        chain_bound(shape),
        window_bound(shape, core),
        bandwidth_bound(shape, dram),
    )
