"""Configuration serialization: SimConfig <-> JSON.

Experiment campaigns need reproducible machine descriptions: this module
round-trips :class:`~repro.sim.config.SimConfig` (including nested core,
cache, DRAM and CATCH/TACT settings) through plain JSON, and backs the
``python -m repro.sim`` CLI.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from ..caches.hierarchy import Level, LevelSpec
from ..core.catch_engine import CatchConfig
from ..core.tact.coordinator import TACTConfig
from ..cpu.core import CoreParams
from ..memory.dram import DRAMConfig
from .config import SimConfig


def config_to_dict(config: SimConfig) -> dict:
    """Plain-data representation of a machine configuration."""

    def spec(level: LevelSpec | None) -> dict | None:
        return dataclasses.asdict(level) if level is not None else None

    payload = {
        "name": config.name,
        "core": dataclasses.asdict(config.core),
        "l1i": spec(config.l1i),
        "l1d": spec(config.l1d),
        "l2": spec(config.l2),
        "llc": spec(config.llc),
        "llc_policy": config.llc_policy,
        "n_cores": config.n_cores,
        "capacity_scale": config.capacity_scale,
        "extra_latency": [[int(level), cycles] for level, cycles in config.extra_latency],
        "dram": dataclasses.asdict(config.dram),
        "fixed_memory_latency": config.fixed_memory_latency,
        "catch": None,
    }
    if config.catch is not None:
        payload["catch"] = {
            "tact": dataclasses.asdict(config.catch.tact),
            "table_entries": config.catch.table_entries,
            "epoch_instructions": config.catch.epoch_instructions,
            "detector_only": config.catch.detector_only,
            "detector": config.catch.detector,
            "table_policy": config.catch.table_policy,
        }
    return payload


def config_from_dict(payload: dict) -> SimConfig:
    """Inverse of :func:`config_to_dict`."""

    def spec(data: dict | None) -> LevelSpec | None:
        return LevelSpec(**data) if data is not None else None

    catch = None
    if payload.get("catch") is not None:
        c = payload["catch"]
        catch = CatchConfig(
            tact=TACTConfig(**c["tact"]),
            table_entries=c["table_entries"],
            epoch_instructions=c["epoch_instructions"],
            detector_only=c["detector_only"],
            detector=c.get("detector", "ddg"),
            table_policy=c.get("table_policy", "lru"),
        )
    return SimConfig(
        name=payload["name"],
        core=CoreParams(**payload["core"]),
        l1i=spec(payload["l1i"]),
        l1d=spec(payload["l1d"]),
        l2=spec(payload["l2"]),
        llc=spec(payload["llc"]),
        llc_policy=payload["llc_policy"],
        n_cores=payload["n_cores"],
        capacity_scale=payload["capacity_scale"],
        extra_latency=tuple(
            (Level(level), cycles) for level, cycles in payload["extra_latency"]
        ),
        dram=DRAMConfig(**payload["dram"]),
        fixed_memory_latency=payload["fixed_memory_latency"],
        catch=catch,
    )


def save_config(config: SimConfig, path: str | Path) -> None:
    """Write a configuration as indented JSON."""
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2) + "\n")


def load_config(path: str | Path) -> SimConfig:
    """Read a configuration written by :func:`save_config`."""
    return config_from_dict(json.loads(Path(path).read_text()))
