"""Configuration and result serialization: SimConfig / RunResult <-> JSON.

Experiment campaigns need reproducible machine descriptions *and* durable
measurements: this module round-trips :class:`~repro.sim.config.SimConfig`
(including nested core, cache, DRAM and CATCH/TACT settings) and
:class:`~repro.sim.metrics.RunResult` (including activity snapshots and TACT
counters) through plain JSON.  It backs the ``python -m repro.sim`` CLI and
the resilient runner's checkpoint store (:mod:`repro.runner.store`).

``json_default`` is the *strict* encoder hook the experiment CLI uses for
``--json``: it serializes the types we know (dataclasses, enums, sets) and
fails loudly on anything else instead of silently stringifying.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from collections import Counter
from pathlib import Path

from ..caches.hierarchy import Level, LevelSpec
from ..core.catch_engine import CatchConfig
from ..core.tact.coordinator import TACTConfig, TACTStats
from ..cpu.core import CoreParams
from ..memory.dram import DRAMConfig
from .config import SimConfig
from .metrics import ActivitySnapshot, MPRunResult, RunResult

#: Schema version written into serialized RunResult payloads.
RESULT_FORMAT_VERSION = 1


def config_to_dict(config: SimConfig) -> dict:
    """Plain-data representation of a machine configuration."""

    def spec(level: LevelSpec | None) -> dict | None:
        return dataclasses.asdict(level) if level is not None else None

    payload = {
        "name": config.name,
        "core": dataclasses.asdict(config.core),
        "l1i": spec(config.l1i),
        "l1d": spec(config.l1d),
        "l2": spec(config.l2),
        "llc": spec(config.llc),
        "llc_policy": config.llc_policy,
        "n_cores": config.n_cores,
        "capacity_scale": config.capacity_scale,
        "extra_latency": [[int(level), cycles] for level, cycles in config.extra_latency],
        "dram": dataclasses.asdict(config.dram),
        "fixed_memory_latency": config.fixed_memory_latency,
        "catch": None,
        "prefetchers": (
            list(config.prefetchers) if config.prefetchers is not None else None
        ),
    }
    if config.catch is not None:
        payload["catch"] = {
            "tact": dataclasses.asdict(config.catch.tact),
            "table_entries": config.catch.table_entries,
            "epoch_instructions": config.catch.epoch_instructions,
            "detector_only": config.catch.detector_only,
            "detector": config.catch.detector,
            "table_policy": config.catch.table_policy,
            "oracle_pcs": list(config.catch.oracle_pcs),
        }
    return payload


def config_from_dict(payload: dict) -> SimConfig:
    """Inverse of :func:`config_to_dict`."""

    def spec(data: dict | None) -> LevelSpec | None:
        return LevelSpec(**data) if data is not None else None

    catch = None
    if payload.get("catch") is not None:
        c = payload["catch"]
        catch = CatchConfig(
            tact=TACTConfig(**c["tact"]),
            table_entries=c["table_entries"],
            epoch_instructions=c["epoch_instructions"],
            detector_only=c["detector_only"],
            detector=c.get("detector", "ddg"),
            table_policy=c.get("table_policy", "lru"),
            oracle_pcs=tuple(c.get("oracle_pcs", ())),
        )
    return SimConfig(
        name=payload["name"],
        core=CoreParams(**payload["core"]),
        l1i=spec(payload["l1i"]),
        l1d=spec(payload["l1d"]),
        l2=spec(payload["l2"]),
        llc=spec(payload["llc"]),
        llc_policy=payload["llc_policy"],
        n_cores=payload["n_cores"],
        capacity_scale=payload["capacity_scale"],
        extra_latency=tuple(
            (Level(level), cycles) for level, cycles in payload["extra_latency"]
        ),
        dram=DRAMConfig(**payload["dram"]),
        fixed_memory_latency=payload["fixed_memory_latency"],
        catch=catch,
        prefetchers=(
            tuple(payload["prefetchers"])
            if payload.get("prefetchers") is not None
            else None
        ),
    )


def save_config(config: SimConfig, path: str | Path) -> None:
    """Write a configuration as indented JSON."""
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2) + "\n")


def load_config(path: str | Path) -> SimConfig:
    """Read a configuration written by :func:`save_config`."""
    return config_from_dict(json.loads(Path(path).read_text()))


# ------------------------------------------------------------- RunResult


def _level_map_to_dict(served: dict[Level, int]) -> dict[str, int]:
    return {Level(level).name: count for level, count in served.items()}


def _level_map_from_dict(payload: dict[str, int]) -> dict[Level, int]:
    return {Level[name]: count for name, count in payload.items()}


def result_to_dict(result: RunResult) -> dict:
    """Plain-data representation of one measured run."""
    tact = None
    if result.tact_stats is not None:
        ts = result.tact_stats
        tact = dataclasses.asdict(ts)
        tact["served_from"] = _level_map_to_dict(ts.served_from)
    payload = {
        "format_version": RESULT_FORMAT_VERSION,
        "workload": result.workload,
        "category": result.category,
        "config_name": result.config_name,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "load_served": _level_map_to_dict(result.load_served),
        "code_served": _level_map_to_dict(result.code_served),
        "avg_load_latency": result.avg_load_latency,
        "mispredicts": result.mispredicts,
        "code_stall_cycles": result.code_stall_cycles,
        "critical_pcs": result.critical_pcs,
        "tact_stats": tact,
        "activity": (
            dataclasses.asdict(result.activity)
            if result.activity is not None
            else None
        ),
        "telemetry": result.telemetry,
    }
    if isinstance(result, MPRunResult):
        # MP-only keys, appended so single-core RunResult payloads stay
        # byte-identical to the pre-MP format (the golden-parity contract).
        payload["kind"] = "mp"
        payload["mix"] = list(result.mix)
        payload["per_core_ipc"] = {
            str(core): value for core, value in result.per_core_ipc.items()
        }
        payload["per_core_cycles"] = {
            str(core): value for core, value in result.per_core_cycles.items()
        }
        payload["per_core_instructions"] = {
            str(core): value
            for core, value in result.per_core_instructions.items()
        }
        payload["per_core_stats"] = {
            str(core): stats for core, stats in result.per_core_stats.items()
        }
    return payload


def result_from_dict(payload: dict) -> RunResult:
    """Inverse of :func:`result_to_dict`."""
    version = payload.get("format_version")
    if version != RESULT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported RunResult format version {version!r} "
            f"(expected {RESULT_FORMAT_VERSION})"
        )
    tact = None
    if payload.get("tact_stats") is not None:
        t = dict(payload["tact_stats"])
        t["served_from"] = Counter(_level_map_from_dict(t["served_from"]))
        tact = TACTStats(**t)
    activity = None
    if payload.get("activity") is not None:
        activity = ActivitySnapshot(**payload["activity"])
    fields = dict(
        workload=payload["workload"],
        category=payload["category"],
        config_name=payload["config_name"],
        instructions=payload["instructions"],
        cycles=payload["cycles"],
        load_served=_level_map_from_dict(payload["load_served"]),
        code_served=_level_map_from_dict(payload["code_served"]),
        avg_load_latency=payload["avg_load_latency"],
        mispredicts=payload["mispredicts"],
        code_stall_cycles=payload["code_stall_cycles"],
        critical_pcs=payload["critical_pcs"],
        tact_stats=tact,
        activity=activity,
        telemetry=payload.get("telemetry"),
    )
    if payload.get("kind") == "mp":
        return MPRunResult(
            **fields,
            mix=tuple(payload.get("mix", ())),
            per_core_ipc={
                int(core): value
                for core, value in payload.get("per_core_ipc", {}).items()
            },
            per_core_cycles={
                int(core): value
                for core, value in payload.get("per_core_cycles", {}).items()
            },
            per_core_instructions={
                int(core): value
                for core, value in payload.get("per_core_instructions", {}).items()
            },
            per_core_stats={
                int(core): stats
                for core, stats in payload.get("per_core_stats", {}).items()
            },
        )
    return RunResult(**fields)


def save_result(result: RunResult, path: str | Path) -> None:
    """Write one measured run as indented JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2) + "\n")


def load_result(path: str | Path) -> RunResult:
    """Read a result written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))


def json_default(obj: object):
    """Strict ``json.dump(default=...)`` hook for experiment payloads.

    Serializes the dataclasses this package produces (``RunResult`` through
    :func:`result_to_dict`, ``SimConfig`` through :func:`config_to_dict`,
    anything else field-by-field), enums by name, and ``Counter``/sets
    structurally.  Unknown types raise ``TypeError`` so schema drift is an
    error, not a silently stringified payload.
    """
    if isinstance(obj, RunResult):
        return result_to_dict(obj)
    if isinstance(obj, SimConfig):
        return config_to_dict(obj)
    if isinstance(obj, enum.Enum):
        return obj.name
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    raise TypeError(
        f"experiment payload contains unserializable {type(obj).__name__}: "
        f"{obj!r}"
    )
