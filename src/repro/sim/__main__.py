"""Simulation CLI: inspect configurations and run one-off simulations.

Usage::

    python -m repro.sim list
    python -m repro.sim plugins
    python -m repro.sim describe CATCH --out catch.json
    python -m repro.sim run baseline_server hmmer_like --n 40000
    python -m repro.sim run catch.json mcf_like
    python -m repro.sim run baseline_server mcf_like --prefetchers ip-stride \
        --detector none
    python -m repro.sim run baseline_server mcf_like --topology no-l2
    python -m repro.sim run baseline_server hmmer_like+mcf_like  # MP mix

``run`` accepts the observability flags (``--trace-out``, ``--profile``,
``--metrics-out``, ``--log-level``, ``--log-json``, ``--log-file``); see
OBSERVABILITY.md.  With all of them off, output is unchanged.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .. import obs
from ..errors import ConfigError
from .config import fig10_configs, fig17_configs, skylake_client, skylake_server
from .serialization import load_config, save_config
from .simulator import Simulator


def _named_configs():
    configs = {
        "baseline_server": skylake_server(),
        "baseline_client": skylake_client(),
    }
    for cfg in (*fig10_configs(), *fig17_configs()):
        configs[cfg.name] = cfg
    return configs


def _resolve(name_or_path: str):
    configs = _named_configs()
    if name_or_path in configs:
        return configs[name_or_path]
    if Path(name_or_path).exists():
        return load_config(name_or_path)
    raise SystemExit(
        f"unknown config {name_or_path!r}; known: {sorted(configs)} "
        f"(or a JSON file path)"
    )


def _execute_run(sim: Simulator, cfg, args):
    """One measurement: in-process by default, via the resilient runner
    when a deadline or worker isolation was requested (output unchanged)."""
    from ..errors import RunFailure
    from ..plugins.workloads import is_mix, mix_names

    if args.jobs == 1 and args.timeout is None:
        if is_mix(args.workload):
            from .multicore import MultiCoreSimulator

            mp = MultiCoreSimulator(cfg, n_cores=len(mix_names(args.workload)))
            return mp.run(args.workload, args.n)
        return sim.run(args.workload, args.n)
    if args.jobs == 1:
        from ..runner import ExperimentRunner

        runner = ExperimentRunner(timeout_s=args.timeout)
    else:
        from ..runner import FleetRunner

        runner = FleetRunner(jobs=args.jobs, timeout_s=args.timeout)
    try:
        return runner.run(cfg, args.workload, args.n)
    except RunFailure as exc:
        raise SystemExit(f"run failed: {exc}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.sim")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the named machine configurations")

    plugins = sub.add_parser(
        "plugins", help="list the pluggable component registries"
    )
    plugins.add_argument(
        "--family", metavar="NAME", default=None,
        help="show only one registry (prefetchers, detectors, topologies, "
             "replacement-policies)",
    )

    describe = sub.add_parser("describe", help="show or export a configuration")
    describe.add_argument("config")
    describe.add_argument("--out", help="write the configuration as JSON")

    run = sub.add_parser("run", help="simulate one workload on one config")
    run.add_argument("config", help="named config or JSON file")
    run.add_argument("workload")
    run.add_argument("--n", type=int, default=40_000)
    run.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="run in an isolated worker process (any N != 1; crash/hang "
             "containment via repro.runner.fleet); default 1 = in-process",
    )
    run.add_argument(
        "--timeout", type=float, metavar="S",
        help="wall-clock deadline in seconds (cooperative; with --jobs the "
             "parent also hard-kills a hung worker)",
    )
    from ..plugins import add_selection_args

    add_selection_args(run)
    obs.add_observability_args(run)

    args = parser.parse_args(argv)
    if args.command == "list":
        for name, cfg in _named_configs().items():
            print(f"  {name:22s} {cfg.describe()}")
    elif args.command == "plugins":
        from ..plugins import all_registries

        registries = all_registries()
        if args.family is not None and args.family not in registries:
            raise SystemExit(
                f"unknown registry family {args.family!r}; "
                f"choose from {sorted(registries)}"
            )
        for family, registry in registries.items():
            if args.family is not None and family != args.family:
                continue
            print(f"{family}:")
            for name, summary in registry.describe().items():
                print(f"  {name:22s} {summary}")
    elif args.command == "describe":
        cfg = _resolve(args.config)
        print(cfg.describe())
        if args.out:
            save_config(cfg, args.out)
            print(f"written to {args.out}")
    elif args.command == "run":
        from ..plugins import apply_selection, selection_from_args

        cfg = _resolve(args.config)
        try:
            selection = selection_from_args(args)
            if selection:
                cfg = apply_selection(cfg, selection)
            sim = Simulator(cfg)
        except ConfigError as exc:
            raise SystemExit(f"invalid configuration: {exc}")
        with obs.observability_session(args):
            with obs.span(
                "cli:run", cat="cli",
                args={"config": cfg.name, "workload": args.workload},
            ):
                try:
                    result = _execute_run(sim, cfg, args)
                except ConfigError as exc:
                    raise SystemExit(str(exc))
            served = {
                lvl.name: count for lvl, count in result.load_served.items() if count
            }
            obs.console(f"{result.workload} on {cfg.name}:")
            obs.console(f"  IPC              {result.ipc:.3f}")
            obs.console(f"  cycles           {result.cycles:.0f}")
            obs.console(f"  loads served     {served}")
            obs.console(f"  avg load latency {result.avg_load_latency:.1f} cycles")
            obs.console(f"  mispredicts      {result.mispredicts}")
            obs.console(f"  code stalls      {result.code_stall_cycles:.0f} cycles")
            per_core = getattr(result, "per_core_ipc", None)
            if per_core:
                cores = "  ".join(
                    f"core{core} {ipc:.3f}"
                    for core, ipc in sorted(per_core.items())
                )
                obs.console(f"  per-core IPC     {cores}")
            if args.profile and result.telemetry:
                phases = result.telemetry["phases"]
                timings = "  ".join(
                    f"{name} {seconds * 1e3:.1f}ms"
                    for name, seconds in phases.items()
                )
                print(f"phase wall-clock: {timings}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
