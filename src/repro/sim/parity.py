"""Golden-parity differential harness for the simulation kernels.

The optimized kernel (:meth:`repro.cpu.core.OOOCore.run_span`) must be
*indistinguishable* from the seed's per-instruction reference loop: not
"close", byte-identical.  The comparator here canonicalises a
:class:`~repro.sim.metrics.RunResult` to a deterministic JSON string and the
harness runs the same (config, workload) pair through both kernels on fresh
simulators, asserting the strings match.  Any hot-path change that reorders a
float operation, drops a tie-break, or skips a stat update shows up as a
one-character diff instead of a silently drifted figure.

``tests/test_golden_parity.py`` runs the matrix as a tier-1 gate;
``benchmarks/bench_kernel.py`` runs it at full trace length and records the
instructions/second of both kernels into ``BENCH_kernel.json``.
"""

from __future__ import annotations

import gc
import json
import time
from dataclasses import dataclass

from ..workloads.suites import build_trace, get_spec, suite
from .config import SimConfig, fig10_configs, skylake_server
from .metrics import RunResult
from .serialization import result_to_dict
from .simulator import Simulator


def canonical_result_json(
    result: RunResult, *, include_telemetry: bool = False
) -> str:
    """Deterministic JSON encoding of a run result for byte comparison.

    ``telemetry`` carries wall-clock phase timings that legitimately differ
    between two runs of identical simulations, so it is nulled out unless the
    caller explicitly opts in; everything else in the payload is a pure
    function of (config, workload, kernel semantics) and must match exactly.
    """
    payload = result_to_dict(result)
    if not include_telemetry:
        payload["telemetry"] = None
    return json.dumps(payload, sort_keys=True)


@dataclass(slots=True)
class KernelComparison:
    """One (config, workload) pair run through both kernels."""

    config_name: str
    workload: str
    n_instrs: int
    instructions_stepped: int  #: per kernel, warmup included
    reference_s: float
    fast_s: float
    reference_json: str
    fast_json: str

    @property
    def match(self) -> bool:
        return self.reference_json == self.fast_json

    @property
    def reference_ips(self) -> float:
        return self.instructions_stepped / self.reference_s

    @property
    def fast_ips(self) -> float:
        return self.instructions_stepped / self.fast_s

    @property
    def speedup(self) -> float:
        return self.reference_s / self.fast_s


def compare_kernels(
    config: SimConfig,
    workload: str,
    n_instrs: int,
    *,
    warmup: bool = True,
    repeats: int = 1,
) -> KernelComparison:
    """Run ``workload`` on ``config`` under both kernels, fresh state each.

    A fresh :class:`Simulator` (and therefore hierarchy, core and engine) is
    built per kernel so neither run sees the other's warmed state.  The
    trace is built once, outside the timed region — the timing measures the
    kernels, not the workload generator — and with ``repeats > 1`` each
    kernel is timed that many times (fresh simulator each) keeping the
    minimum, the standard guard against scheduler/GC noise on a single run.
    """
    spec = get_spec(workload)
    length = n_instrs * spec.length_multiplier
    trace = build_trace(workload, 2 * length if warmup else length)
    clock = time.perf_counter
    timings: dict[str, float] = {}
    results: dict[str, RunResult] = {}
    for kernel in ("reference", "fast"):
        best = float("inf")
        for _ in range(max(1, repeats)):
            sim = Simulator(config)
            gc.collect()
            t0 = clock()
            results[kernel] = sim.run(
                trace, warmup=warmup, kernel=kernel
            )
            best = min(best, clock() - t0)
        timings[kernel] = best
    stepped = results["fast"].instructions * (2 if warmup else 1)
    return KernelComparison(
        config_name=config.name,
        workload=workload,
        n_instrs=n_instrs,
        instructions_stepped=stepped,
        reference_s=timings["reference"],
        fast_s=timings["fast"],
        reference_json=canonical_result_json(results["reference"]),
        fast_json=canonical_result_json(results["fast"]),
    )


def differential_matrix(quick: bool = True) -> list[tuple[SimConfig, str]]:
    """The fig10 smoke matrix: every fig10 config x every suite workload.

    This is the fixed matrix both the parity test and the kernel benchmark
    iterate — the baseline three-level machine plus the Figure 10 two-level
    and CATCH variants, crossed with the workload suite (``quick=True`` is
    the smoke subset the figure-smoke CI job already exercises).
    """
    configs = [skylake_server(), *fig10_configs()]
    names = [spec.name for spec in suite(quick=quick)]
    return [(config, name) for config in configs for name in names]
