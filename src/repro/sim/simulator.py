"""Single-core simulation driver with warmup/measurement methodology.

Short traces start from cold caches, so every measured run generates a
double-length trace and measures only the second half: the first half warms
caches, branch predictors and (for CATCH) the criticality and TACT tables;
statistics are reset at the midpoint and the second half is measured on the
same continuous timeline.  Because the workload kernels are continuous loops,
the measured half is genuine steady state — looping working sets are resident
at their natural level while streaming kernels keep touching *fresh* lines
and stay memory-bound (replaying the identical trace as warmup would have
artificially cached them).  This is the standard warmup discipline of sampled
simulators.
"""

from __future__ import annotations

import time

from .. import obs
from ..caches.hierarchy import CacheHierarchy, Level
from ..core.catch_engine import CatchEngine
from ..cpu.core import OOOCore
from ..cpu.engine import Engine
from ..plugins import compose
from ..workloads.suites import build_trace, get_spec
from ..workloads.trace import Trace
from .config import SimConfig
from .metrics import ActivitySnapshot, RunResult

#: Default dynamic instruction count for experiment traces.
DEFAULT_TRACE_LENGTH = 40_000

#: Simulation kernels selectable via ``Simulator.run(kernel=...)``.
#: ``fast`` is the optimized span loop (:meth:`OOOCore.run_span`);
#: ``reference`` is the seed-equivalent per-instruction ``step()`` loop kept
#: as the golden baseline for the parity harness.  Both must produce
#: byte-identical ``RunResult`` JSON (see ``repro.sim.parity``).
KERNELS = ("fast", "reference")


def _reference_span(core, instrs, idx, on_instruction, deadline) -> int:
    """The seed's per-instruction loop, verbatim: the golden reference."""
    step = core.step
    for instr in instrs:
        step(idx, instr)
        idx += 1
        if on_instruction is not None:
            on_instruction(idx)
        if deadline is not None:
            deadline(idx)
    return idx


class Simulator:
    """Builds and runs one machine configuration.

    Args:
        config: machine description (see ``repro.sim.config`` factories).
            Validated eagerly — a nonsense machine raises
            :class:`~repro.errors.ConfigError` here, not mid-simulation.
    """

    def __init__(self, config: SimConfig) -> None:
        self.config = config.validate()

    # ------------------------------------------------------------- building

    def build_hierarchy(self, n_cores: int | None = None) -> CacheHierarchy:
        """Construct a fresh (cold) cache hierarchy for this config."""
        cfg = self.config
        from ..memory.controller import MemoryController

        memory = MemoryController(cfg.dram, fixed_latency=cfg.fixed_memory_latency)
        return CacheHierarchy(
            n_cores or cfg.n_cores,
            l1i=cfg.scaled(cfg.l1i),
            l1d=cfg.scaled(cfg.l1d),
            l2=cfg.scaled(cfg.l2),
            llc=cfg.scaled(cfg.llc),
            llc_policy=cfg.llc_policy,
            memory=memory,
            extra_latency=dict(cfg.extra_latency),
        )

    def make_engine(self) -> Engine:
        """Engine matching the config (CATCH when configured, else no-op)."""
        return compose.make_engine(self.config)

    def make_core(
        self, core_id: int, hierarchy: CacheHierarchy, engine: Engine
    ) -> OOOCore:
        """Build one core with registry-composed prefetchers.

        The prefetcher set comes from ``SimConfig.prefetchers`` (or, when
        unset, the legacy ``CoreParams`` flags) via
        :func:`repro.plugins.compose.core_prefetcher_factories`.
        """
        return OOOCore(
            core_id,
            hierarchy,
            self.config.core,
            engine,
            prefetchers=compose.core_prefetcher_factories(self.config),
        )

    # ------------------------------------------------------------- running

    def run(
        self,
        workload: str | Trace,
        n_instrs: int = DEFAULT_TRACE_LENGTH,
        *,
        engine: Engine | None = None,
        warmup: bool = True,
        hierarchy: CacheHierarchy | None = None,
        latency_policy=None,
        on_instruction=None,
        deadline=None,
        kernel: str = "fast",
    ) -> RunResult:
        """Run one workload on this configuration and return the measurement.

        Args:
            workload: a suite workload name, or a prebuilt :class:`Trace`.
            n_instrs: trace length when building from a name.
            engine: override the config's engine (oracle studies).
            warmup: run the warmup pass (disable only in unit tests).
            hierarchy: reuse an existing hierarchy (oracle two-phase studies
                requiring identical cold-start state should pass fresh ones).
            on_instruction: optional callable invoked with the running retired
                instruction index after every stepped instruction (warmup
                included), under both kernels.  The fault-injection harness
                uses it to raise at a chosen instruction; exceptions it
                raises abort the run.
            deadline: optional callable invoked with the retired-instruction
                index *and* at every phase boundary (including right after
                trace build, which has no per-instruction hook).  Kept
                separate from ``on_instruction`` so a wall-clock deadline
                still fires when a fault hook replaces or swallows the
                instruction callback.  The fast kernel polls it every
                :data:`~repro.cpu.core.DEADLINE_POLL_STRIDE` instructions —
                the stride the runner's ``Deadline`` responds to anyway;
                the reference kernel polls per instruction as the seed did.
                Exceptions it raises abort the run.
            kernel: ``"fast"`` (optimized :meth:`OOOCore.run_span` loop, the
                default) or ``"reference"`` (seed-equivalent per-instruction
                ``step()`` loop).  Both produce byte-identical results; the
                parity harness (``repro.sim.parity``) enforces it.
        """
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
        registry = obs.metrics()
        clock = time.perf_counter
        phase_s: dict[str, float] = {}
        name = workload if isinstance(workload, str) else workload.name

        t_phase = clock()
        with obs.span("trace-build", args={"workload": name}):
            if isinstance(workload, Trace):
                trace = workload
            else:
                spec = get_spec(workload)
                length = n_instrs * spec.length_multiplier
                trace = build_trace(workload, 2 * length if warmup else length)
            hierarchy = hierarchy or self.build_hierarchy(n_cores=1)
            if latency_policy is not None:
                hierarchy.latency_policy = latency_policy
            engine = engine or self.make_engine()
            core = self.make_core(0, hierarchy, engine)
            core.start(trace)
        phase_s["trace_build"] = clock() - t_phase
        if deadline is not None:
            deadline(0)

        total = len(trace.instrs)
        boundary = total // 2 if warmup else 0
        idx = 0
        t_phase = clock()
        with obs.span("warmup", args={"instructions": boundary}):
            if kernel == "fast":
                idx = core.run_span(
                    trace.instrs[:boundary], idx,
                    on_instruction=on_instruction, deadline=deadline,
                )
            else:
                idx = _reference_span(
                    core, trace.instrs[:boundary], idx, on_instruction, deadline
                )
            if warmup:
                self._reset_all_stats(hierarchy, core, engine)
        phase_s["warmup"] = clock() - t_phase
        if deadline is not None:
            deadline(0)
        start_time = core.time
        measured = total - boundary
        t_phase = clock()
        with obs.span("measure", args={"instructions": measured}):
            if kernel == "fast":
                core.run_span(
                    trace.instrs[boundary:], idx,
                    on_instruction=on_instruction, deadline=deadline,
                )
            else:
                _reference_span(
                    core, trace.instrs[boundary:], idx, on_instruction, deadline
                )
        phase_s["measure"] = clock() - t_phase
        t_phase = clock()
        with obs.span("finish"):
            hierarchy.memory.finish(core.time)
        cycles = core.time - start_time

        stats = hierarchy.stats[0]
        tact_stats = None
        critical_pcs = 0
        if isinstance(engine, CatchEngine):
            if engine.tact is not None:
                tact_stats = engine.tact.stats
            critical_pcs = engine.critical_pcs
        category = trace.category
        result = RunResult(
            workload=trace.name,
            category=category,
            config_name=self.config.name,
            instructions=measured,
            cycles=cycles,
            load_served=dict(stats.load_served),
            code_served=dict(stats.code_served),
            avg_load_latency=stats.avg_load_latency,
            mispredicts=core.mispredicts,
            code_stall_cycles=core.frontend.code_stall_cycles,
            critical_pcs=critical_pcs,
            tact_stats=tact_stats,
            activity=ActivitySnapshot.capture(hierarchy, cycles),
        )
        phase_s["finish"] = clock() - t_phase
        if registry.enabled:
            for phase, seconds in phase_s.items():
                registry.gauge(f"sim.phase.{phase}_s").set(seconds)
            result.telemetry = {
                "phases": dict(phase_s),
                "metrics": registry.snapshot(),
            }
        return result

    @staticmethod
    def _reset_all_stats(
        hierarchy: CacheHierarchy, core: OOOCore, engine: Engine
    ) -> None:
        hierarchy.reset_stats()
        core.reset_stats()
        engine.reset_stats()


def run_config_suite(
    config: SimConfig,
    workloads: list[str],
    n_instrs: int = DEFAULT_TRACE_LENGTH,
) -> dict[str, RunResult]:
    """Run a list of suite workloads on one configuration."""
    sim = Simulator(config)
    return {name: sim.run(name, n_instrs) for name in workloads}


def speedups_vs_baseline(
    results: dict[str, RunResult], baseline: dict[str, RunResult]
) -> dict[str, float]:
    """Per-workload IPC ratios of ``results`` over ``baseline``."""
    return {
        name: results[name].speedup_over(baseline[name]) for name in results
    }
