"""Result records, activity snapshots and speedup/geomean helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..caches.hierarchy import CacheHierarchy, Level


@dataclass(frozen=True)
class ActivitySnapshot:
    """Traffic counters captured after a measured run (power model input).

    All counts cover the measurement window only (post-warmup).
    """

    cycles: float
    l1_reads: int
    l1_writes: int
    l2_reads: int
    l2_writes: int
    llc_reads: int
    llc_writes: int
    ring_messages: int
    ring_data_messages: int
    ring_flit_hops: int
    dram_reads: int
    dram_writes: int
    dram_activations: int

    @classmethod
    def capture(cls, hierarchy: CacheHierarchy, cycles: float) -> "ActivitySnapshot":
        l1_reads = sum(c.stats.reads for c in hierarchy.l1d) + sum(
            c.stats.reads for c in hierarchy.l1i
        )
        l1_writes = sum(c.stats.writes for c in hierarchy.l1d) + sum(
            c.stats.writes for c in hierarchy.l1i
        )
        l2_reads = sum(c.stats.reads for c in hierarchy.l2) if hierarchy.l2 else 0
        l2_writes = sum(c.stats.writes for c in hierarchy.l2) if hierarchy.l2 else 0
        llc = hierarchy.llc
        dram = hierarchy.memory.dram.stats
        ring = hierarchy.ring.stats
        return cls(
            cycles=cycles,
            l1_reads=l1_reads,
            l1_writes=l1_writes,
            l2_reads=l2_reads,
            l2_writes=l2_writes,
            llc_reads=llc.stats.reads if llc else 0,
            llc_writes=llc.stats.writes if llc else 0,
            ring_messages=ring.messages,
            ring_data_messages=ring.data_messages,
            ring_flit_hops=ring.flit_hops,
            dram_reads=hierarchy.memory.traffic.read_lines,
            dram_writes=hierarchy.memory.traffic.write_lines,
            dram_activations=dram.activations,
        )

    @property
    def cache_accesses(self) -> int:
        """L2 + LLC traffic (the paper's "cache traffic" in Section VI-E)."""
        return self.l2_reads + self.l2_writes + self.llc_reads + self.llc_writes


@dataclass
class RunResult:
    """One (workload, configuration) measured simulation."""

    workload: str
    category: str
    config_name: str
    instructions: int
    cycles: float
    load_served: dict[Level, int] = field(default_factory=dict)
    code_served: dict[Level, int] = field(default_factory=dict)
    avg_load_latency: float = 0.0
    mispredicts: int = 0
    code_stall_cycles: float = 0.0
    critical_pcs: int = 0
    tact_stats: object | None = None
    activity: ActivitySnapshot | None = None
    #: Instrumentation snapshot (phase wall-clock timings + metrics registry
    #: contents) captured by the simulator when observability is enabled;
    #: ``None`` on default runs (see ``repro.obs`` and OBSERVABILITY.md).
    telemetry: dict | None = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "RunResult") -> float:
        """IPC ratio vs a baseline run of the same workload."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"speedup across different workloads: "
                f"{self.workload} vs {baseline.workload}"
            )
        return self.ipc / baseline.ipc if baseline.ipc else 0.0


@dataclass
class MPRunResult(RunResult):
    """One multi-programmed mix, RunResult-shaped and checkpointable.

    The inherited fields are whole-mix aggregates (``workload`` is the mix
    display string ``"a+b+c+d"``, ``instructions`` the total measured
    instructions, ``cycles`` the longest per-core measured span, served
    counts and stall cycles summed across cores); the ``per_core_*`` maps
    carry each core's own measurement, and :attr:`per_core_stats` the
    criticality-interference detail (per-core load service levels, load
    latency, critical PCs) that Figure 14's contention analysis reads.
    """

    mix: tuple[str, ...] = ()
    per_core_ipc: dict[int, float] = field(default_factory=dict)
    per_core_cycles: dict[int, float] = field(default_factory=dict)
    per_core_instructions: dict[int, int] = field(default_factory=dict)
    #: Per-core interference detail: plain-JSON dicts of
    #: ``{load_served: {level: n}, avg_load_latency, mispredicts,
    #: code_stall_cycles, critical_pcs}``.
    per_core_stats: dict[int, dict] = field(default_factory=dict)

    def weighted_speedup(self, alone_ipc: Mapping[str, float]) -> float:
        """Paper Section V: sum of per-core IPC ratios vs the alone runs."""
        return sum(
            self.per_core_ipc[core] / alone_ipc[name]
            for core, name in enumerate(self.mix)
        )


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports GeoMean across workloads."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def category_geomeans(
    speedups: Mapping[str, float], categories: Mapping[str, str]
) -> dict[str, float]:
    """Per-category and overall geomean of per-workload speedups.

    Args:
        speedups: workload name -> speedup.
        categories: workload name -> category.
    """
    by_cat: dict[str, list[float]] = {}
    for name, value in speedups.items():
        by_cat.setdefault(categories[name], []).append(value)
    out = {cat: geomean(vals) for cat, vals in sorted(by_cat.items())}
    out["GeoMean"] = geomean(speedups.values())
    return out


def weighted_speedup(
    together_ipc: Mapping[str, float], alone_ipc: Mapping[str, float]
) -> float:
    """MP metric (Section V): sum of per-core IPC_together / IPC_alone."""
    return sum(
        together_ipc[key] / alone_ipc[key] for key in together_ipc
    )
