"""Prefetch quality metrics: accuracy, coverage, timeliness, pollution.

The paper's prefetching argument is quantitative: TACT must be *accurate*
(Section IV-B: "direct these prefetches to only a select list of critical
loads... Overfetching into the L1 can cause L1 thrashing"), *covering* (the
oracle converts ~17% of L1 misses) and *timely* (Figure 11).  This module
derives the standard prefetcher-quality metrics from cache statistics so any
configuration can be audited:

* **accuracy** — fraction of prefetch fills that saw a demand hit before
  eviction;
* **coverage** — fraction of would-be demand misses eliminated by prefetching
  (approximated as useful prefetches / (useful prefetches + misses));
* **pollution** — prefetched-but-unused fills per demand access (each one
  displaced a line something might have needed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..caches.cache import Cache, CacheStats


@dataclass(frozen=True)
class PrefetchQuality:
    """Derived prefetcher-quality figures for one cache."""

    fills: int
    useful: int
    unused: int
    demand_misses: int
    demand_accesses: int

    @property
    def accuracy(self) -> float:
        """useful / resolved prefetches (hit-before-eviction rate)."""
        resolved = self.useful + self.unused
        return self.useful / resolved if resolved else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of potential demand misses the prefetcher absorbed."""
        potential = self.useful + self.demand_misses
        return self.useful / potential if potential else 0.0

    @property
    def pollution(self) -> float:
        """Unused prefetch fills per demand access."""
        return self.unused / self.demand_accesses if self.demand_accesses else 0.0


def quality_from_stats(stats: CacheStats) -> PrefetchQuality:
    """Build the quality record from one cache's counters."""
    return PrefetchQuality(
        fills=stats.prefetch_fills,
        useful=stats.prefetch_useful,
        unused=stats.prefetch_unused,
        demand_misses=stats.misses,
        demand_accesses=stats.accesses,
    )


def l1_prefetch_quality(cache: Cache) -> PrefetchQuality:
    """Convenience wrapper for the usual L1D audit."""
    return quality_from_stats(cache.stats)
