"""Named machine configurations for every experiment in the paper.

Sizes below are the *paper's* sizes (Section V).  Because Python-speed traces
are 3-4 orders of magnitude shorter than the paper's 100M-instruction runs,
configurations carry a ``capacity_scale`` that divides every cache capacity
(latencies, ROB, widths and DRAM timing are untouched): workload working sets
in ``repro.workloads.suites`` are sized against the scaled hierarchy so the
hit/miss regimes — which loads hit L1 vs L2 vs LLC vs memory — match the
paper's.  ``capacity_scale=1`` gives the paper-exact machine.

Factory summary (the figures each configuration serves):

========================  =====================================================
``skylake_server()``      1 MB L2 + 5.5 MB exclusive LLC baseline (Figs 1-16)
``skylake_client()``      256 KB L2 + 8 MB inclusive LLC baseline (Fig 17)
``no_l2(cfg, llc_mb)``    two-level variants (6.5 / 9.5 MB, 9 MB inclusive)
``with_catch(cfg, ...)``  adds the CATCH engine (detector + TACT)
``with_extra_latency``    Figure 3 / Figure 15 latency sensitivity knobs
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..caches.hierarchy import Level, LevelSpec
from ..errors import ConfigError
from ..core.catch_engine import CatchConfig
from ..core.tact.coordinator import TACTConfig
from ..cpu.core import CoreParams
from ..memory.dram import DRAMConfig

#: Default capacity divisor (see module docstring).
DEFAULT_CAPACITY_SCALE = 4


@dataclass(frozen=True)
class SimConfig:
    """A complete machine description.

    Cache specs are in paper-scale KB; ``capacity_scale`` is applied when the
    hierarchy is built.
    """

    name: str
    core: CoreParams = field(default_factory=CoreParams)
    l1i: LevelSpec = LevelSpec(32, 8, 5)
    l1d: LevelSpec = LevelSpec(32, 8, 5)
    l2: LevelSpec | None = LevelSpec(1024, 16, 15)
    llc: LevelSpec | None = LevelSpec(5632, 11, 40, hashed_index=True)
    llc_policy: str = "exclusive"
    n_cores: int = 1
    capacity_scale: int = DEFAULT_CAPACITY_SCALE
    extra_latency: tuple[tuple[Level, int], ...] = ()
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    fixed_memory_latency: int | None = None
    catch: CatchConfig | None = None
    #: Core-scope prefetcher names resolved through
    #: :data:`repro.plugins.prefetchers.PREFETCHERS` (e.g. ``("ip-stride",
    #: "stream")``).  ``None`` derives the legacy pair from the
    #: ``CoreParams`` enable flags; ``()`` disables core prefetching.  TACT
    #: components are *not* valid here — they live in ``catch.tact``.
    prefetchers: tuple[str, ...] | None = None

    def scaled(self, spec: LevelSpec | None) -> LevelSpec | None:
        """Apply the capacity scale to one level spec.

        Scaled sizes are rounded to an integral KB (minimum 1 KB) so the
        built cache geometry is exact rather than silently truncated by the
        byte-level integer division in :class:`~repro.caches.cache.Cache`.
        """
        if spec is None:
            return None
        return replace(spec, size_kb=max(1, round(spec.size_kb / self.capacity_scale)))

    @property
    def is_catch(self) -> bool:
        return self.catch is not None

    def validate(self) -> "SimConfig":
        """Eagerly reject nonsense machines with a typed :class:`ConfigError`.

        Called from :class:`~repro.sim.simulator.Simulator` construction and
        from the resilient runner, so bad configurations fail *before* any
        trace is generated or cache built, with a message naming the exact
        parameter — not deep inside the hierarchy (or not at all).
        """
        if self.capacity_scale < 1:
            raise ConfigError(
                f"{self.name}: capacity_scale must be >= 1, got "
                f"{self.capacity_scale}"
            )
        if self.n_cores < 1:
            raise ConfigError(f"{self.name}: n_cores must be >= 1, got {self.n_cores}")
        if self.llc_policy not in ("exclusive", "inclusive"):
            raise ConfigError(
                f"{self.name}: unknown llc_policy {self.llc_policy!r} "
                f"(expected 'exclusive' or 'inclusive')"
            )
        for label, spec in (
            ("l1i", self.l1i),
            ("l1d", self.l1d),
            ("l2", self.l2),
            ("llc", self.llc),
        ):
            if spec is None:
                continue
            self._validate_level(label, spec)
        if (
            self.llc_policy == "exclusive"
            and self.llc is not None
            and self.l2 is not None
            and self.llc.size_kb < self.l2.size_kb
        ):
            raise ConfigError(
                f"{self.name}: exclusive LLC ({self.llc.size_kb:g} KB) smaller "
                f"than the L2 ({self.l2.size_kb:g} KB)"
            )
        for level, cycles in self.extra_latency:
            if cycles < 0:
                raise ConfigError(
                    f"{self.name}: negative extra latency {cycles} at "
                    f"{Level(level).name}"
                )
        self._validate_components()
        return self

    def _validate_components(self) -> None:
        """Check every plugin name against its registry (with did-you-mean).

        Imported lazily: the registries pull in the full component modules,
        which must not load while the package tree is still initialising.
        """
        from ..caches.replacement import POLICIES
        from ..core.tact.coordinator import COMPONENTS
        from ..plugins.detectors import DETECTORS
        from ..plugins.prefetchers import PREFETCHERS

        for label, spec in (
            ("l1i", self.l1i),
            ("l1d", self.l1d),
            ("l2", self.l2),
            ("llc", self.llc),
        ):
            if spec is None:
                continue
            try:
                POLICIES.get(spec.replacement)
            except ConfigError as exc:
                raise ConfigError(f"{self.name}: {label}: {exc}") from None
        if self.prefetchers is not None:
            for name in self.prefetchers:
                try:
                    prefetcher = PREFETCHERS.get(name)
                except ConfigError as exc:
                    raise ConfigError(
                        f"{self.name}: prefetchers: {exc}"
                    ) from None
                if prefetcher.scope != "core":
                    catch_desc = (
                        "catch=None"
                        if self.catch is None
                        else f"catch.detector={self.catch.detector!r}"
                    )
                    raise ConfigError(
                        f"{self.name}: prefetcher {name!r} is a TACT "
                        f"component and needs a criticality detector "
                        f"(conflicting fields: prefetchers="
                        f"{self.prefetchers!r}, {catch_desc}); enable it "
                        f"via catch.tact — TACTConfig.with_components"
                        f"({[name]!r}) — or the --prefetchers CLI flag with "
                        f"a detector"
                    )
        if self.catch is not None:
            try:
                detector = DETECTORS.get(self.catch.detector)
            except ConfigError as exc:
                raise ConfigError(
                    f"{self.name}: catch.detector: {exc}"
                ) from None
            if detector.factory is None:
                enabled = [
                    f"catch.tact.{flag}"
                    for flag in COMPONENTS.values()
                    if getattr(self.catch.tact, flag)
                ]
                raise ConfigError(
                    f"{self.name}: catch.detector='none' conflicts with the "
                    f"attached CATCH engine "
                    f"({', '.join(enabled) if enabled else 'detector_only'})"
                    f"; a CATCH config needs a real detector — use "
                    f"catch=None for no criticality engine at all"
                )

    def _validate_level(self, label: str, spec: LevelSpec) -> None:
        if spec.size_kb <= 0:
            raise ConfigError(
                f"{self.name}: {label} size must be positive, got "
                f"{spec.size_kb!r} KB"
            )
        if spec.assoc <= 0:
            raise ConfigError(
                f"{self.name}: {label} associativity must be positive, got "
                f"{spec.assoc!r}"
            )
        if spec.latency <= 0:
            raise ConfigError(
                f"{self.name}: {label} latency must be positive, got "
                f"{spec.latency!r}"
            )
        # 64 B lines: assoc ways of one set must fit the capacity, and the
        # associativity may not exceed the resulting set count.
        sets = int(spec.size_kb * 1024) // (spec.assoc * 64)
        if spec.assoc > max(sets, 0):
            raise ConfigError(
                f"{self.name}: {label} associativity {spec.assoc} exceeds the "
                f"set count {sets} ({spec.size_kb:g} KB / {spec.assoc}-way / "
                f"64 B lines)"
            )

    def describe(self) -> str:
        l2 = f"{self.l2.size_kb:.0f}KB L2" if self.l2 else "noL2"
        llc = (
            f"{self.llc.size_kb / 1024:.2f}MB {self.llc_policy} LLC"
            if self.llc
            else "noLLC"
        )
        catch = " +CATCH" if self.is_catch else ""
        return f"{self.name}: {l2}, {llc}{catch}"


# ---------------------------------------------------------------- factories


def skylake_server(name: str = "baseline_server", **overrides) -> SimConfig:
    """Section V baseline: Skylake-server-like, large L2, exclusive LLC."""
    return SimConfig(
        name=name,
        l2=LevelSpec(1024, 16, 15),
        llc=LevelSpec(5632, 11, 40, hashed_index=True),
        llc_policy="exclusive",
        **overrides,
    )


def skylake_client(name: str = "baseline_client", **overrides) -> SimConfig:
    """Section VI-F baseline: 256 KB L2, 8 MB inclusive LLC."""
    return SimConfig(
        name=name,
        l2=LevelSpec(256, 16, 13),
        llc=LevelSpec(8192, 16, 36, hashed_index=True),
        llc_policy="inclusive",
        **overrides,
    )


def no_l2(base: SimConfig, llc_mb: float, name: str | None = None) -> SimConfig:
    """Remove the L2 and resize the LLC (Figure 1 / Figure 10 variants)."""
    if base.llc is None:
        raise ConfigError(
            f"{base.name}: no_l2 requires a configuration with an LLC"
        )
    llc = replace(base.llc, size_kb=llc_mb * 1024)
    return replace(
        base,
        name=name or f"noL2_{llc_mb:g}MB",
        l2=None,
        llc=llc,
    )


def with_catch(
    base: SimConfig,
    name: str | None = None,
    tact: TACTConfig | None = None,
    table_entries: int = 32,
) -> SimConfig:
    """Attach the CATCH engine to a configuration."""
    catch = CatchConfig(tact=tact or TACTConfig(), table_entries=table_entries)
    return replace(base, name=name or f"{base.name}+CATCH", catch=catch)


def with_extra_latency(base: SimConfig, level: Level, cycles: int, name: str | None = None) -> SimConfig:
    """Add cycles to one level's hit latency (Figures 3 and 15)."""
    extra = dict(base.extra_latency)
    extra[level] = extra.get(level, 0) + cycles
    return replace(
        base,
        name=name or f"{base.name}+{level.name.lower()}+{cycles}cyc",
        extra_latency=tuple(sorted(extra.items())),
    )


def fig10_configs(scale: int = DEFAULT_CAPACITY_SCALE) -> list[SimConfig]:
    """The five configurations of Figure 10, baseline excluded."""
    base = skylake_server(capacity_scale=scale)
    return [
        no_l2(base, 6.5),
        no_l2(base, 9.5),
        with_catch(no_l2(base, 6.5), name="noL2_6.5MB+CATCH"),
        with_catch(no_l2(base, 9.5), name="noL2_9.5MB+CATCH"),
        with_catch(base, name="CATCH"),
    ]


def fig17_configs(scale: int = DEFAULT_CAPACITY_SCALE) -> list[SimConfig]:
    """The four configurations of Figure 17, baseline excluded."""
    base = skylake_client(capacity_scale=scale)
    return [
        no_l2(base, 8.0, name="noL2_incl"),
        with_catch(no_l2(base, 8.0), name="noL2+CATCH"),
        with_catch(no_l2(base, 9.0), name="noL2+CATCH+9MB_L3"),
        with_catch(base, name="CATCH_incl"),
    ]
