"""Main-memory substrate: DDR4 timing model and memory controller."""

from .controller import MemoryController, MemTraffic
from .dram import DRAM, DRAMConfig, DRAMStats

__all__ = ["MemoryController", "MemTraffic", "DRAM", "DRAMConfig", "DRAMStats"]
