"""DDR4 main-memory timing model.

Models the paper's memory system: two DDR4-2400 channels, two ranks per
channel, eight banks per rank, 64-bit data bus per channel, 2 KB row buffers
and 15-15-15-39 (tCAS-tRCD-tRP-tRAS) timings.  Writes are queued and drained
in batches to reduce channel turnarounds, as in the paper.

The model is used by the cache hierarchy to price LLC misses: it returns a
read latency in *CPU* cycles that accounts for row-buffer state, bank
occupancy and data-bus serialization at the access time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DRAMConfig:
    """DDR4-2400 parameters (DRAM-cycle timings unless noted)."""

    channels: int = 2
    ranks: int = 2
    banks: int = 8
    row_bytes: int = 2048
    tcas: int = 15
    trcd: int = 15
    trp: int = 15
    tras: int = 39
    tccd: int = 4                  #: CAS-to-CAS gap: column reads pipeline
    burst_cycles: int = 4          #: BL8 on a 64-bit bus = 4 DRAM clocks
    dram_clock_ghz: float = 1.2    #: DDR4-2400 I/O clock
    cpu_clock_ghz: float = 3.2
    controller_cycles: int = 20    #: CPU-cycle queue/controller overhead
    write_queue_depth: int = 64
    write_batch: int = 16          #: writes drained per batch

    @property
    def cycle_ratio(self) -> float:
        """CPU cycles per DRAM cycle."""
        return self.cpu_clock_ghz / self.dram_clock_ghz

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks * self.banks


@dataclass(slots=True)
class _Bank:
    open_row: int = -1
    busy_until: float = 0.0
    activate_time: float = -1.0e18  #: when the open row was activated


@dataclass(slots=True)
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_empty: int = 0
    row_conflicts: int = 0
    activations: int = 0
    write_batches: int = 0

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_empty + self.row_conflicts
        return self.row_hits / total if total else 0.0


class DRAM:
    """Bank/row-buffer timing model for the whole memory system."""

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        cfg = self.config
        self._banks = [_Bank() for _ in range(cfg.total_banks)]
        self._bus_free = [0.0] * cfg.channels
        self._write_queues: list[list[int]] = [[] for _ in range(cfg.channels)]
        self.stats = DRAMStats()
        self._lines_per_row = cfg.row_bytes // 64

    # -- address mapping ----------------------------------------------------

    def map_address(self, line_addr: int) -> tuple[int, int, int]:
        """Map a line address to ``(channel, bank_index, row)``.

        Channel and bank selection XOR-fold higher address bits (as real
        memory controllers do) so that power-of-2 strides still spread across
        channels and banks instead of camping on one.
        """
        cfg = self.config
        hashed = line_addr ^ (line_addr >> 7) ^ (line_addr >> 13)
        channel = hashed % cfg.channels
        row = line_addr // self._lines_per_row
        bank_in_system = (row ^ (row >> 5)) % (cfg.ranks * cfg.banks)
        bank_index = channel * cfg.ranks * cfg.banks + bank_in_system
        return channel, bank_index, row

    # -- timing ---------------------------------------------------------------

    def _cpu(self, dram_cycles: float) -> float:
        return dram_cycles * self.config.cycle_ratio

    def _bank_access(self, bank: _Bank, row: int, start: float) -> tuple[float, float]:
        """Resolve row-buffer state at ``start``.

        Returns ``(access_latency, bank_occupancy)`` in CPU cycles: the
        latency until data begins, and how long the bank's command pipeline
        is tied up.  Column reads to an open row pipeline at tCCD, so their
        occupancy is far shorter than their latency; activates occupy the
        bank for the full RAS-to-CAS window.
        """
        cfg = self.config
        if bank.open_row == row:
            self.stats.row_hits += 1
            return self._cpu(cfg.tcas), self._cpu(cfg.tccd)
        if bank.open_row == -1:
            self.stats.row_empty += 1
            self.stats.activations += 1
            bank.open_row = row
            bank.activate_time = start
            return self._cpu(cfg.trcd + cfg.tcas), self._cpu(cfg.trcd + cfg.tccd)
        # Row conflict: precharge may also have to wait out tRAS.
        self.stats.row_conflicts += 1
        self.stats.activations += 1
        tras_done = bank.activate_time + self._cpu(cfg.tras)
        precharge_start = max(start, tras_done)
        extra_wait = precharge_start - start
        bank.open_row = row
        bank.activate_time = precharge_start + self._cpu(cfg.trp)
        latency = extra_wait + self._cpu(cfg.trp + cfg.trcd + cfg.tcas)
        occupancy = extra_wait + self._cpu(cfg.trp + cfg.trcd + cfg.tccd)
        return latency, occupancy

    def read(self, line_addr: int, now: float) -> float:
        """Issue a read; returns total latency in CPU cycles from ``now``."""
        cfg = self.config
        channel, bank_index, row = self.map_address(line_addr)
        bank = self._banks[bank_index]
        self.stats.reads += 1

        start = max(now + cfg.controller_cycles, bank.busy_until)
        access, occupancy = self._bank_access(bank, row, start)
        data_start = max(start + access, self._bus_free[channel])
        burst = self._cpu(cfg.burst_cycles)
        done = data_start + burst
        bank.busy_until = start + occupancy
        self._bus_free[channel] = done
        return done - now

    def write(self, line_addr: int, now: float) -> None:
        """Queue a write-back; drained in batches (no latency to the core)."""
        cfg = self.config
        channel, _, _ = self.map_address(line_addr)
        queue = self._write_queues[channel]
        queue.append(line_addr)
        self.stats.writes += 1
        if len(queue) >= cfg.write_batch:
            self._drain(channel, now)

    def _drain(self, channel: int, now: float) -> None:
        """Drain the channel's write queue as one scheduled batch.

        Writes are modeled as consuming data-bus bandwidth (one burst each)
        plus an activation per row for power accounting.  They do not stall
        bank command pipelines the way reads do: real controllers drain
        writes opportunistically between reads, so charging full bank
        cascades here would penalise reads far beyond hardware behaviour.
        """
        cfg = self.config
        self.stats.write_batches += 1
        queue = self._write_queues[channel]
        t = max(now, self._bus_free[channel])
        rows_touched = set()
        for line_addr in queue:
            _, bank_index, row = self.map_address(line_addr)
            rows_touched.add((bank_index, row))
            t += self._cpu(cfg.burst_cycles)
        self.stats.activations += len(rows_touched)
        self._bus_free[channel] = t
        queue.clear()

    def flush_writes(self, now: float) -> None:
        """Force-drain all write queues (end of simulation)."""
        for channel, queue in enumerate(self._write_queues):
            if queue:
                self._drain(channel, now)

    def pending_writes(self) -> int:
        return sum(len(q) for q in self._write_queues)

    def backlog(self, now: float) -> float:
        """How far (CPU cycles) the least-loaded channel's data bus is booked
        beyond ``now`` — the controller's congestion signal.  Prefetchers are
        throttled on this, as real memory controllers drop/defer prefetches
        under load."""
        return max(0.0, min(self._bus_free) - now)
