"""Memory controller: the cache hierarchy's interface to DRAM.

Wraps the DDR4 timing model with request accounting and an optional
fixed-latency mode (useful for unit tests and analytic studies where DRAM
queueing effects would be noise).
"""

from __future__ import annotations

from dataclasses import dataclass

from .dram import DRAM, DRAMConfig


@dataclass(slots=True)
class MemTraffic:
    """Byte-level traffic counters (feeds the DRAM power model)."""

    read_lines: int = 0
    write_lines: int = 0

    @property
    def read_bytes(self) -> int:
        return self.read_lines * 64

    @property
    def write_bytes(self) -> int:
        return self.write_lines * 64


class MemoryController:
    """Schedules reads and write-backs onto the DRAM model.

    Args:
        config: DRAM parameters; defaults to the paper's DDR4-2400 setup.
        fixed_latency: if not ``None``, every read costs exactly this many CPU
            cycles and the DRAM model is bypassed (deterministic test mode).
    """

    def __init__(
        self,
        config: DRAMConfig | None = None,
        fixed_latency: int | None = None,
    ) -> None:
        self.dram = DRAM(config)
        self.fixed_latency = fixed_latency
        self.traffic = MemTraffic()

    def read(self, line_addr: int, now: float) -> float:
        """Read one line; returns latency in CPU cycles."""
        self.traffic.read_lines += 1
        if self.fixed_latency is not None:
            return float(self.fixed_latency)
        return self.dram.read(line_addr, now)

    def write(self, line_addr: int, now: float) -> None:
        """Write back one dirty line (posted; no latency to the core)."""
        self.traffic.write_lines += 1
        if self.fixed_latency is None:
            self.dram.write(line_addr, now)

    def backlog(self, now: float) -> float:
        """DRAM congestion in CPU cycles (0 in fixed-latency test mode)."""
        if self.fixed_latency is not None:
            return 0.0
        return self.dram.backlog(now)

    def finish(self, now: float) -> None:
        """Drain pending writes at end of simulation."""
        if self.fixed_latency is None:
            self.dram.flush_writes(now)
