"""Reproduction of "Criticality Aware Tiered Cache Hierarchy" (ISCA 2018).

Public API tour:

* ``repro.sim`` — machine configurations and the simulation drivers
  (:class:`~repro.sim.Simulator`, :class:`~repro.sim.MultiCoreSimulator`).
* ``repro.core`` — the paper's contribution: the hardware criticality
  detector (:class:`~repro.core.CriticalityDetector`), the TACT prefetcher
  family and the composed :class:`~repro.core.CatchEngine`.
* ``repro.workloads`` — the synthetic Table-II workload suite.
* ``repro.cpu`` / ``repro.caches`` / ``repro.memory`` /
  ``repro.interconnect`` — the OOO core, cache hierarchy, DDR4 and ring
  substrates.
* ``repro.power`` — CACTI/Orion/Micron-style energy and area models.
* ``repro.runner`` — the resilient experiment runner: checkpoint/resume
  result store, per-run deadlines, retry, failure reports, fault injection.
* ``repro.errors`` — the typed exception hierarchy everything above raises.
* ``repro.experiments`` — one module per paper figure/table
  (``python -m repro.experiments all``).
"""

from .core import CatchConfig, CatchEngine, CriticalityDetector
from .errors import ConfigError, ReproError
from .sim import (
    MultiCoreSimulator,
    SimConfig,
    Simulator,
    no_l2,
    skylake_client,
    skylake_server,
    with_catch,
)
from .workloads import Trace, build_trace, suite

__version__ = "1.0.0"

__all__ = [
    "CatchConfig",
    "CatchEngine",
    "ConfigError",
    "CriticalityDetector",
    "ReproError",
    "MultiCoreSimulator",
    "SimConfig",
    "Simulator",
    "no_l2",
    "skylake_client",
    "skylake_server",
    "with_catch",
    "Trace",
    "build_trace",
    "suite",
    "__version__",
]
