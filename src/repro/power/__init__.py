"""Power/area substrate: CACTI-, Orion- and Micron-style analytical models."""

from .cacti import CacheEnergyModel, snoop_filter_area_mm2
from .dram_power import DRAMEnergyModel
from .energy import AreaBreakdown, ChipModel, EnergyBreakdown
from .orion import RingEnergyModel

__all__ = [
    "CacheEnergyModel",
    "snoop_filter_area_mm2",
    "DRAMEnergyModel",
    "AreaBreakdown",
    "ChipModel",
    "EnergyBreakdown",
    "RingEnergyModel",
]
