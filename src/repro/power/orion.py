"""Orion-style ring interconnect energy model.

The paper estimates interconnect power with Orion 2.0 [43], [44].  The ring
energy is dominated by link traversal and router crossings per flit; our
simulator counts flit-hops directly, so the model is a per-flit-hop energy
plus router leakage.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Energy to move one flit (16B) across one hop (link + router), ~22nm ring.
_FLIT_HOP_PJ = 2.8
_ROUTER_LEAK_MW = 1.5


@dataclass(frozen=True)
class RingEnergyModel:
    """Energy figures for a bidirectional ring with ``n_stops`` stops."""

    n_stops: int

    def energy_j(self, flit_hops: int, cycles: float, freq_ghz: float = 3.2) -> float:
        """Dynamic (flit-hop) plus router leakage energy over a run."""
        dynamic = flit_hops * _FLIT_HOP_PJ * 1e-12
        seconds = cycles / (freq_ghz * 1e9)
        leakage = self.n_stops * _ROUTER_LEAK_MW * 1e-3 * seconds
        return dynamic + leakage
