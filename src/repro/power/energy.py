"""Chip-level energy and area aggregation (Section VI-E / Figure 16).

Combines the CACTI-like cache model, Orion-like ring model and Micron-like
DRAM model with an :class:`~repro.sim.metrics.ActivitySnapshot` to produce
the per-run energy breakdown the paper uses to compare the two-level CATCH
hierarchy against the three-level baseline, and the die-area accounting
behind the "30% lower area" claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import SimConfig
from ..sim.metrics import ActivitySnapshot
from .cacti import CacheEnergyModel, snoop_filter_area_mm2
from .dram_power import DRAMEnergyModel
from .orion import RingEnergyModel


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per component over one measured run."""

    l1_j: float
    l2_j: float
    llc_j: float
    ring_j: float
    dram_j: float

    @property
    def cache_j(self) -> float:
        return self.l1_j + self.l2_j + self.llc_j

    @property
    def total_j(self) -> float:
        return self.cache_j + self.ring_j + self.dram_j


@dataclass(frozen=True)
class AreaBreakdown:
    """mm^2 of the cache subsystem (per chip, ``n_cores`` cores)."""

    l1_mm2: float
    l2_mm2: float
    llc_mm2: float
    snoop_filter_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.l1_mm2 + self.l2_mm2 + self.llc_mm2 + self.snoop_filter_mm2


class ChipModel:
    """Prices a configuration's activity snapshot into energy and area.

    Args:
        config: the machine configuration (paper-scale cache sizes are used
            for area; energy models use the scaled sizes actually simulated,
            consistent with the traffic counts).
        n_cores: cores on the chip (4 in the paper's power study).
    """

    def __init__(self, config: SimConfig, n_cores: int = 4) -> None:
        self.config = config
        self.n_cores = n_cores
        scale = config.capacity_scale
        self._l1 = CacheEnergyModel(
            (config.l1i.size_kb + config.l1d.size_kb) / scale, config.l1d.assoc
        )
        self._l2 = (
            CacheEnergyModel(config.l2.size_kb / scale, config.l2.assoc)
            if config.l2
            else None
        )
        self._llc = (
            CacheEnergyModel(config.llc.size_kb / scale, config.llc.assoc)
            if config.llc
            else None
        )
        self._ring = RingEnergyModel(n_stops=2 * n_cores)
        self._dram = DRAMEnergyModel()

    # ---------------------------------------------------------------- energy

    def energy(self, activity: ActivitySnapshot) -> EnergyBreakdown:
        """Energy breakdown for one measured run."""
        cycles = activity.cycles
        l1_j = self._l1.energy_j(activity.l1_reads, activity.l1_writes, cycles)
        l2_j = (
            self._l2.energy_j(activity.l2_reads, activity.l2_writes, cycles)
            if self._l2
            else 0.0
        )
        llc_j = (
            self._llc.energy_j(activity.llc_reads, activity.llc_writes, cycles)
            if self._llc
            else 0.0
        )
        ring_j = self._ring.energy_j(activity.ring_flit_hops, cycles)
        dram_j = self._dram.energy_j(
            activity.dram_reads,
            activity.dram_writes,
            activity.dram_activations,
            cycles,
        )
        return EnergyBreakdown(l1_j, l2_j, llc_j, ring_j, dram_j)

    # ------------------------------------------------------------------ area

    def area(self) -> AreaBreakdown:
        """Cache-subsystem die area at *paper-scale* sizes (mm^2)."""
        cfg = self.config
        l1_mm2 = self.n_cores * (
            CacheEnergyModel(cfg.l1i.size_kb).area_mm2
            + CacheEnergyModel(cfg.l1d.size_kb).area_mm2
        )
        l2_mm2 = (
            self.n_cores * CacheEnergyModel(cfg.l2.size_kb, cfg.l2.assoc).area_mm2
            if cfg.l2
            else 0.0
        )
        llc_mm2 = (
            CacheEnergyModel(cfg.llc.size_kb, cfg.llc.assoc).area_mm2
            if cfg.llc
            else 0.0
        )
        snoop = (
            snoop_filter_area_mm2(cfg.llc.size_kb / 1024)
            if cfg.llc is not None and cfg.llc_policy == "exclusive"
            else 0.0
        )
        return AreaBreakdown(l1_mm2, l2_mm2, llc_mm2, snoop)
