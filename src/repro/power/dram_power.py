"""Micron-style DDR4 DRAM power model (Micron TN-41-01 methodology [28]).

Energy per operation is derived from IDD currents: activate/precharge pairs,
read/write bursts, and background (standby + refresh) power proportional to
time.  Constants approximate DDR4-2400 x8 devices; as with the cache model,
the paper's conclusions rest on traffic *ratios*, which the simulator counts
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

_ACT_PRE_NJ = 2.2        #: one activate+precharge pair (whole rank)
_READ_BURST_NJ = 1.4     #: one 64B read burst incl. I/O
_WRITE_BURST_NJ = 1.5    #: one 64B write burst incl. ODT
_BACKGROUND_MW = 190.0   #: standby + refresh for a 2-channel, 4-rank system


@dataclass(frozen=True)
class DRAMEnergyModel:
    """System-level DRAM energy from command counts."""

    def energy_j(
        self,
        reads: int,
        writes: int,
        activations: int,
        cycles: float,
        freq_ghz: float = 3.2,
    ) -> float:
        dynamic = (
            reads * _READ_BURST_NJ
            + writes * _WRITE_BURST_NJ
            + activations * _ACT_PRE_NJ
        ) * 1e-9
        seconds = cycles / (freq_ghz * 1e9)
        background = _BACKGROUND_MW * 1e-3 * seconds
        return dynamic + background
