"""CACTI-style cache energy and area model.

The paper models cache power with CACTI 6.0 [29] and estimates area from die
plots [30].  We reproduce the same *accounting*: per-access dynamic energy
and leakage power that grow with capacity, multiplied by the activity counts
the simulator produces.  Constants are calibrated to published CACTI numbers
for a 22 nm-class node (order-of-magnitude correct; the paper's conclusions
depend on ratios, not absolute joules).

Scaling laws (standard CACTI fits):

* dynamic energy per access ~ ``E0 * (size/32KB)^0.5`` — wordline/bitline
  energy grows with array dimensions;
* leakage power ~ linear in capacity;
* area ~ linear in capacity with a fixed per-array overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Reference energies (pJ per 64B access) and leakage (mW per KB), 22nm-ish.
_L1_REF_PJ = 15.0        # 32 KB, 8-way
_REF_SIZE_KB = 32.0
_LEAK_MW_PER_KB = 0.25
_AREA_MM2_PER_MB = 1.8   # dense SRAM array at ~22 nm
_AREA_OVERHEAD_MM2 = 0.08


@dataclass(frozen=True)
class CacheEnergyModel:
    """Energy/area figures for one cache array.

    Args:
        size_kb: capacity in KB.
        assoc: associativity (mild energy penalty for wider compares).
    """

    size_kb: float
    assoc: int = 8

    @property
    def read_energy_pj(self) -> float:
        """Dynamic energy of one read access (64B line + tag compare)."""
        scale = (self.size_kb / _REF_SIZE_KB) ** 0.5
        assoc_factor = 1.0 + 0.02 * max(0, self.assoc - 8)
        return _L1_REF_PJ * scale * assoc_factor

    @property
    def write_energy_pj(self) -> float:
        """Writes cost slightly more than reads (full line drive)."""
        return 1.2 * self.read_energy_pj

    @property
    def leakage_mw(self) -> float:
        return _LEAK_MW_PER_KB * self.size_kb

    @property
    def area_mm2(self) -> float:
        return _AREA_MM2_PER_MB * (self.size_kb / 1024.0) + _AREA_OVERHEAD_MM2

    def energy_j(self, reads: int, writes: int, cycles: float, freq_ghz: float = 3.2) -> float:
        """Total energy (dynamic + leakage) over a run."""
        dynamic_pj = reads * self.read_energy_pj + writes * self.write_energy_pj
        seconds = cycles / (freq_ghz * 1e9)
        leakage_j = self.leakage_mw * 1e-3 * seconds
        return dynamic_pj * 1e-12 + leakage_j


def snoop_filter_area_mm2(llc_mb: float) -> float:
    """Exclusive LLCs need a separate snoop filter / coherence directory
    [25]; inclusive LLCs get inclusion-based filtering for free.  Sized at
    roughly 1/16 of the tracked capacity's tag+state storage."""
    return 0.12 * llc_mb
