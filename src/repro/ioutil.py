"""Durable filesystem primitives shared by every persistence layer.

Three subsystems write files whose loss or truncation would cost more than
one re-simulation: the checkpoint store (:mod:`repro.runner.store`), the
fleet's resume manifest (:mod:`repro.runner.fleet`), and the campaign
service's write-ahead journal (:mod:`repro.service.journal`).  All of them
route their writes through this module so the crash-safety contract lives in
exactly one place:

* :func:`atomic_write_json` — the classic temp-file + ``os.replace`` dance,
  *with* the two fsyncs the old in-line versions skipped: the temp file's
  contents are flushed to stable storage **before** the rename (so the
  rename can never install an empty or truncated file), and the parent
  directory is fsync'd **after** it (so the rename itself survives a power
  cut).
* :func:`fsync_dir` — directory fsync, tolerated to fail on filesystems
  that refuse ``O_RDONLY`` directory handles (the write is still atomic
  there, just not durably ordered — same guarantee as before this module).

``os.fsync`` failures on the *data* are real errors and propagate;
directory-fsync failures degrade to ``False`` because several platforms
(and some network filesystems) simply do not support it — but no longer
*silently*: the first failure logs a WARNING and every failure increments
:func:`dir_fsync_failures`, which the campaign service republishes as the
``service.dir_fsync_failures`` gauge so an operator can see that rename
durability is reduced on that filesystem.

The I/O backend seam
--------------------

Every syscall-boundary operation these helpers perform — open, write,
fsync, rename, truncate, unlink, directory fsync — is routed through a
pluggable backend (:func:`io_backend`).  The production backend
(:class:`OsIO`) is a direct passthrough to ``os``; the storage chaos layer
(:mod:`repro.service.chaos`) installs a recording/fault-injecting shim via
:func:`set_io_backend` / :func:`use_io_backend` to prove the crash-safety
contract against torn writes, ENOSPC, fsync EIO and rename failure.  The
indirection is one attribute load on paths that already pay for a syscall,
so the hot simulation loop is untouched.
"""

from __future__ import annotations

import errno
import json
import logging
import os
from contextlib import contextmanager
from pathlib import Path

#: ``errno`` values that are *storage faults*: evidence the filesystem
#: under a durable write is failing (full, quota'd, dying, or remounted
#: read-only) rather than the write being wrong.  The campaign service
#: enters safe mode on these (see ``repro.service.daemon``).
STORAGE_FAULT_ERRNOS = frozenset({
    errno.ENOSPC, errno.EIO, errno.EDQUOT, errno.EROFS,
})


def is_storage_fault(exc: BaseException) -> bool:
    """True when ``exc`` is disk-misbehaviour evidence (ENOSPC/EIO/...).

    Used by the campaign service to distinguish "the disk is failing"
    (enter safe mode, keep the job) from "the write was wrong" (fail the
    operation).
    """
    return isinstance(exc, OSError) and exc.errno in STORAGE_FAULT_ERRNOS


# ------------------------------------------------------------- the backend


class OsIO:
    """The production I/O backend: a direct passthrough to ``os``.

    All ``os.*`` attributes are looked up at call time, so tests that
    monkeypatch ``os.fsync``/``os.replace`` keep working unchanged.
    """

    name = "os"

    def open(self, path: str | Path, mode: str):
        return open(os.fspath(path), mode)

    def fsync(self, fh) -> None:
        """Flush a file object's buffers and fsync its descriptor."""
        fh.flush()
        os.fsync(fh.fileno())

    def replace(self, src: str | Path, dst: str | Path) -> None:
        os.replace(os.fspath(src), os.fspath(dst))

    def unlink(self, path: str | Path) -> None:
        os.unlink(os.fspath(path))

    def fsync_dir(self, path: str | Path) -> bool:
        """Raw directory fsync; ``False`` when the platform refuses."""
        try:
            fd = os.open(os.fspath(path), os.O_RDONLY)
        except OSError:
            return False
        try:
            os.fsync(fd)
            return True
        except OSError:
            return False
        finally:
            os.close(fd)


_OS_IO = OsIO()
_backend = _OS_IO


def io_backend():
    """The active I/O backend (the direct :class:`OsIO` unless shimmed)."""
    return _backend


def set_io_backend(backend):
    """Install ``backend`` (``None`` restores :class:`OsIO`); returns the
    previous backend so callers can restore it."""
    global _backend
    previous = _backend
    _backend = backend if backend is not None else _OS_IO
    return previous


@contextmanager
def use_io_backend(backend):
    """Scope an I/O backend (e.g. a chaos shim) for a ``with`` block."""
    previous = set_io_backend(backend)
    try:
        yield backend
    finally:
        set_io_backend(previous)


# --------------------------------------------------- directory-fsync health

_dir_fsync_failures = 0
_dir_fsync_warned = False


def dir_fsync_failures() -> int:
    """Directory fsyncs that failed since process start (operator signal)."""
    return _dir_fsync_failures


def reset_dir_fsync_stats() -> None:
    """Reset the failure counter and the warn-once latch (tests)."""
    global _dir_fsync_failures, _dir_fsync_warned
    _dir_fsync_failures = 0
    _dir_fsync_warned = False


def fsync_dir(path: str | Path) -> bool:
    """Fsync a directory so a completed rename inside it is durable.

    Returns ``True`` when the fsync happened, ``False`` when the platform
    or filesystem would not allow it (never raises — the caller's write is
    already atomic, this only strengthens ordering).  Failures are counted
    (:func:`dir_fsync_failures`) and the first one logs a WARNING so a
    filesystem with reduced rename durability is visible to operators.
    """
    global _dir_fsync_failures, _dir_fsync_warned
    ok = io_backend().fsync_dir(path)
    if not ok:
        _dir_fsync_failures += 1
        if not _dir_fsync_warned:
            _dir_fsync_warned = True
            from .obs import get_logger, log_event

            log_event(
                get_logger("ioutil"), logging.WARNING,
                "directory fsync unsupported here: completed renames are "
                "atomic but not durably ordered on this filesystem",
                path=str(path), failures=_dir_fsync_failures,
            )
    return ok


# ------------------------------------------------------------ atomic writes


def atomic_write_text(path: str | Path, text: str) -> None:
    """Durably replace ``path`` with ``text`` (temp file + fsync + rename).

    A crash at any instant leaves either the old complete file or the new
    complete file — never a hybrid, never a zero-length husk.  The temp
    file lives next to the target (same filesystem, so the rename is
    atomic) and is cleaned up on failure.
    """
    path = Path(path)
    io = io_backend()
    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        fh = io.open(tmp, "wb")
        try:
            fh.write(text.encode("utf-8"))
            io.fsync(fh)
        finally:
            fh.close()
    except BaseException:
        try:
            io.unlink(tmp)
        except OSError:
            pass
        raise
    io.replace(tmp, path)
    fsync_dir(path.parent)


def atomic_write_json(path: str | Path, payload, *, indent: int | None = 2) -> None:
    """Durably write ``payload`` as JSON to ``path`` (see module docstring)."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
