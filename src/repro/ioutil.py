"""Durable filesystem primitives shared by every persistence layer.

Three subsystems write files whose loss or truncation would cost more than
one re-simulation: the checkpoint store (:mod:`repro.runner.store`), the
fleet's resume manifest (:mod:`repro.runner.fleet`), and the campaign
service's write-ahead journal (:mod:`repro.service.journal`).  All of them
route their writes through this module so the crash-safety contract lives in
exactly one place:

* :func:`atomic_write_json` — the classic temp-file + ``os.replace`` dance,
  *with* the two fsyncs the old in-line versions skipped: the temp file's
  contents are flushed to stable storage **before** the rename (so the
  rename can never install an empty or truncated file), and the parent
  directory is fsync'd **after** it (so the rename itself survives a power
  cut).
* :func:`fsync_dir` — directory fsync, tolerated to fail on filesystems
  that refuse ``O_RDONLY`` directory handles (the write is still atomic
  there, just not durably ordered — same guarantee as before this module).

``os.fsync`` failures on the *data* are real errors and propagate;
directory-fsync failures degrade silently because several platforms
(and some network filesystems) simply do not support it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


def fsync_dir(path: str | Path) -> bool:
    """Fsync a directory so a completed rename inside it is durable.

    Returns ``True`` when the fsync happened, ``False`` when the platform
    or filesystem would not allow it (never raises — the caller's write is
    already atomic, this only strengthens ordering).
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(fd)
        return True
    except OSError:
        return False
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Durably replace ``path`` with ``text`` (temp file + fsync + rename).

    A crash at any instant leaves either the old complete file or the new
    complete file — never a hybrid, never a zero-length husk.  The temp
    file lives next to the target (same filesystem, so the rename is
    atomic) and is cleaned up on failure.
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    fd = os.open(os.fspath(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)
    fsync_dir(path.parent)


def atomic_write_json(path: str | Path, payload, *, indent: int | None = 2) -> None:
    """Durably write ``payload`` as JSON to ``path`` (see module docstring)."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
