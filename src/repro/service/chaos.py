"""Deterministic storage/I-O chaos: fault shim + syscall-boundary op log.

The durability story of the campaign service rests on three primitives —
:func:`repro.ioutil.atomic_write_text`, :meth:`repro.service.journal.Journal.append`
/ :meth:`~repro.service.journal.Journal.rewrite`, and
:meth:`repro.runner.store.ResultStore.put` — all of which route their
syscall-boundary operations through the pluggable I/O backend in
:mod:`repro.ioutil`.  :class:`ChaosFS` is the adversarial implementation of
that backend.  Installed via :meth:`ChaosFS.install` (or ``serve --chaos``),
it does two things:

**Fault injection.**  A list of :class:`FaultRule`\\ s describes a
deterministic fault plan.  Each rule names a fault kind, an optional path
substring filter, an op-count threshold and a firing budget, so "the third
fsync of the journal returns EIO" is a one-liner and replays identically
every run.  Kinds:

* ``enospc-write`` — the write fails with ``ENOSPC``; no bytes land.
* ``short-write`` — only a prefix of the data lands, then ``ENOSPC`` is
  raised (a disk filling mid-write; the caller sees the error).
* ``torn-write`` — a prefix lands and :class:`PowerCut` is raised (the
  process dies mid-write; nobody sees an error).
* ``eio-fsync`` — ``fsync`` fails with ``EIO`` (the fsync-gate problem:
  the data's durability is unknown and the caller must not ack).
* ``erename`` — ``os.replace`` fails with ``EIO``; the target keeps its
  old contents.
* ``eio-fsync-dir`` — directory fsync reports failure, exercising the
  reduced-durability warning path in :func:`repro.ioutil.fsync_dir`.

**Op log + prefix replay.**  Every mutation that *actually happened* is
recorded — ``("write", path, offset, data)``, ``truncate``, ``replace``,
``unlink``, plus ``fsync``/``fsync_dir`` markers — with paths relative to
the chaos root.  :func:`replay_prefix` re-applies the first *k* ops (and
optionally the first *j* bytes of op *k*) into a fresh directory,
reconstructing the exact on-disk state a process killed at that instant
would have left behind.  Sweeping ``k`` (and ``j``) over seeded random cut
points is the standing proof of the exactly-once contract: recovery from
*every* prefix must preserve every acknowledged job and duplicate nothing
(``tests/test_service_crash_harness.py``).

The replay model is kill-``-9``-at-syscall-granularity: a completed
syscall's effect survives, an uncompleted one doesn't, and the final write
may be torn mid-buffer.  That is exactly the contract the journal's
fsync-before-ack discipline is designed for — an acked record is always a
*completed, fsync'd* write, so it appears in every prefix at or after the
ack point.
"""

from __future__ import annotations

import errno
import os
import random
from dataclasses import dataclass, field
from pathlib import Path

from ..ioutil import OsIO, use_io_backend

#: The fault kinds a :class:`FaultRule` may name, and the op they attach to.
FAULT_KINDS = (
    "enospc-write", "short-write", "torn-write",
    "eio-fsync", "erename", "eio-fsync-dir",
)

_WRITE_KINDS = frozenset({"enospc-write", "short-write", "torn-write"})


class PowerCut(BaseException):
    """Simulated power cut / ``kill -9`` mid-syscall.

    Deliberately a ``BaseException``: the containment layers that keep a
    daemon alive through ordinary failures (``except Exception``) must not
    absorb a simulated process death — the harness catches it at the top,
    exactly where a real crash would end the process.
    """


@dataclass
class FaultRule:
    """One deterministic fault in a chaos plan.

    Args:
        kind: one of :data:`FAULT_KINDS`.
        path_substr: only ops whose path contains this substring are hit
            (``None`` = any path).
        after_ops: stay dormant until the global op counter reaches this.
        times: firing budget (default 1).
        keep_bytes: for ``short-write``/``torn-write``, how many bytes of
            the interrupted write land (default: half, minimum 1 when the
            write is non-empty — a torn write that wrote nothing is just
            the clean previous state).
    """

    kind: str
    path_substr: str | None = None
    after_ops: int = 0
    times: int = 1
    keep_bytes: int | None = None
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown chaos fault kind {self.kind!r} "
                f"(expected one of {FAULT_KINDS})"
            )

    @classmethod
    def from_spec(cls, spec: str) -> "FaultRule":
        """Parse the CLI form ``kind[:key=value[:key=value...]]``.

        Example: ``eio-fsync:path=journal.wal:after_ops=40:times=1``.
        Keys: ``path``, ``after_ops``, ``times``, ``keep_bytes``.
        """
        parts = spec.split(":")
        kwargs: dict = {"kind": parts[0]}
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"bad chaos spec segment {part!r} in {spec!r}")
            if key == "path":
                kwargs["path_substr"] = value
            elif key == "after_ops":
                kwargs["after_ops"] = int(value)
            elif key == "times":
                kwargs["times"] = int(value)
            elif key == "keep_bytes":
                kwargs["keep_bytes"] = int(value)
            else:
                raise ValueError(f"unknown chaos spec key {key!r} in {spec!r}")
        return cls(**kwargs)

    def matches(self, op_index: int, path: str) -> bool:
        if self.fired >= self.times or op_index < self.after_ops:
            return False
        return self.path_substr is None or self.path_substr in path


class ChaosFS:
    """A fault-injecting, op-logging I/O backend (see :class:`~repro.ioutil.OsIO`).

    Args:
        rules: :class:`FaultRule`\\ s or their ``from_spec`` strings.
        root: paths are recorded relative to this directory (required for
            :func:`replay_prefix`; ``None`` records absolute paths).
        inner: the real backend to delegate surviving operations to.
    """

    def __init__(self, rules=(), *, root: str | Path | None = None,
                 inner=None) -> None:
        self.inner = inner if inner is not None else OsIO()
        self.rules = [
            rule if isinstance(rule, FaultRule) else FaultRule.from_spec(rule)
            for rule in rules
        ]
        self.root = Path(root).resolve() if root is not None else None
        #: The syscall-boundary op log (every *effective* mutation).
        self.ops: list[dict] = []
        #: Every fault that fired, in order (kind, op index, path).
        self.faults: list[dict] = []

    name = "chaos"

    # ------------------------------------------------------------- plumbing

    def install(self):
        """Context manager installing this shim as the active I/O backend."""
        return use_io_backend(self)

    def _rel(self, path) -> str:
        path = Path(path)
        if self.root is not None:
            try:
                return str(path.resolve().relative_to(self.root))
            except ValueError:
                pass
        return str(path)

    def _log(self, op: str, path, **fields) -> dict:
        entry = {"op": op, "path": self._rel(path), **fields}
        self.ops.append(entry)
        return entry

    def _strike(self, kinds, path) -> FaultRule | None:
        """The first armed rule of one of ``kinds`` matching this op."""
        rel = self._rel(path)
        for rule in self.rules:
            if rule.kind in kinds and rule.matches(len(self.ops), rel):
                rule.fired += 1
                self.faults.append(
                    {"kind": rule.kind, "op_index": len(self.ops), "path": rel}
                )
                return rule
        return None

    # -------------------------------------------------------------- backend

    def open(self, path, mode: str):
        fh = self.inner.open(path, mode)
        size = 0
        if "a" in mode:
            try:
                size = os.path.getsize(path)
            except OSError:
                size = 0
        if "w" in mode:
            self._log("create", path)
        return _ChaosFile(self, path, fh, pos=size)

    def fsync(self, fh) -> None:
        if isinstance(fh, _ChaosFile):
            fh.raw.flush()
            rule = self._strike({"eio-fsync"}, fh.path)
            if rule is not None:
                raise OSError(
                    errno.EIO, f"chaos: injected fsync EIO on {self._rel(fh.path)}"
                )
            os.fsync(fh.raw.fileno())
            self._log("fsync", fh.path)
        else:  # a plain file object from some other backend: pass through
            self.inner.fsync(fh)

    def replace(self, src, dst) -> None:
        rule = self._strike({"erename"}, dst)
        if rule is not None:
            raise OSError(
                errno.EIO, f"chaos: injected rename failure onto {self._rel(dst)}"
            )
        self.inner.replace(src, dst)
        self._log("replace", dst, src=self._rel(src))

    def unlink(self, path) -> None:
        self.inner.unlink(path)
        self._log("unlink", path)

    def fsync_dir(self, path) -> bool:
        rule = self._strike({"eio-fsync-dir"}, path)
        if rule is not None:
            return False
        ok = self.inner.fsync_dir(path)
        self._log("fsync_dir", path, ok=ok)
        return ok

    # ------------------------------------------------------------- file ops

    def _write(self, file: "_ChaosFile", data: bytes) -> int:
        rule = self._strike(_WRITE_KINDS, file.path)
        if rule is not None and rule.kind == "enospc-write":
            raise OSError(
                errno.ENOSPC,
                f"chaos: injected ENOSPC writing {self._rel(file.path)}",
            )
        if rule is not None:  # short-write / torn-write: a prefix lands
            keep = rule.keep_bytes if rule.keep_bytes is not None else len(data) // 2
            keep = max(0, min(keep, len(data)))
            if keep:
                file.raw.write(data[:keep])
                file.raw.flush()
                self._log(
                    "write", file.path, offset=file.pos, data=bytes(data[:keep]),
                    fault=rule.kind,
                )
                file.pos += keep
            if rule.kind == "torn-write":
                raise PowerCut(
                    f"chaos: power cut after {keep}/{len(data)} bytes of "
                    f"{self._rel(file.path)}"
                )
            raise OSError(
                errno.ENOSPC,
                f"chaos: short write ({keep}/{len(data)} bytes) on "
                f"{self._rel(file.path)}",
            )
        n = file.raw.write(data)
        self._log("write", file.path, offset=file.pos, data=bytes(data))
        file.pos += len(data)
        return n

    def _truncate(self, file: "_ChaosFile", size: int) -> None:
        file.raw.flush()
        file.raw.truncate(size)
        self._log("truncate", file.path, size=size)
        file.pos = min(file.pos, size)


class _ChaosFile:
    """File proxy: writes/truncates go through the shim, reads pass through."""

    def __init__(self, chaos: ChaosFS, path, raw, *, pos: int = 0) -> None:
        self.chaos = chaos
        self.path = Path(path)
        self.raw = raw
        self.pos = pos  # logical write offset (append files start at size)

    def write(self, data) -> int:
        return self.chaos._write(self, bytes(data))

    def truncate(self, size=None) -> None:
        self.chaos._truncate(self, self.pos if size is None else size)

    def flush(self) -> None:
        self.raw.flush()

    def fileno(self) -> int:
        return self.raw.fileno()

    def seek(self, offset, whence=0):
        result = self.raw.seek(offset, whence)
        self.pos = self.raw.tell()
        return result

    def tell(self):
        return self.raw.tell()

    def read(self, *args):
        return self.raw.read(*args)

    def close(self) -> None:
        self.raw.close()

    @property
    def closed(self) -> bool:
        return self.raw.closed

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------- replaying


def replay_prefix(
    ops: list[dict],
    target_dir: str | Path,
    upto: int | None = None,
    *,
    partial_bytes: int | None = None,
) -> Path:
    """Reconstruct the on-disk state of a crash after ``ops[:upto]``.

    Applies the first ``upto`` logged ops (default: all) into
    ``target_dir`` — which should start empty and stands in for the chaos
    root.  When ``partial_bytes`` is given and ``ops[upto]`` is a write,
    its first ``partial_bytes`` bytes are additionally applied: the
    process died *inside* that write.  Returns ``target_dir``.
    """
    target = Path(target_dir)
    target.mkdir(parents=True, exist_ok=True)
    upto = len(ops) if upto is None else upto
    todo = list(ops[:upto])
    if partial_bytes is not None and upto < len(ops) and ops[upto]["op"] == "write":
        cut = dict(ops[upto])
        cut["data"] = cut["data"][:partial_bytes]
        todo.append(cut)
    for entry in todo:
        path = target / entry["path"]
        op = entry["op"]
        if op == "create":
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"")
        elif op == "write":
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "ab") as fh:  # extend if short, then overwrite
                fh.truncate(max(fh.tell(), entry["offset"]))
            with open(path, "r+b") as fh:
                fh.seek(entry["offset"])
                fh.write(entry["data"])
        elif op == "truncate":
            with open(path, "r+b") as fh:
                fh.truncate(entry["size"])
        elif op == "replace":
            src = target / entry["src"]
            path.parent.mkdir(parents=True, exist_ok=True)
            os.replace(src, path)
        elif op == "unlink":
            path.unlink(missing_ok=True)
        elif op in ("fsync", "fsync_dir"):
            pass  # durability markers; no replay effect
        else:  # pragma: no cover - future op kinds
            raise ValueError(f"unknown chaos op {op!r}")
    return target


def cut_points(
    ops: list[dict], n: int, *, seed: int = 0
) -> list[tuple[int, int | None]]:
    """``n`` seeded random crash points over an op log.

    Each cut is ``(op_index, partial_bytes)``: die just before
    ``ops[op_index]`` executes, optionally after its first
    ``partial_bytes`` bytes when it is a write (torn-write cuts are drawn
    for roughly half the samples that land on a write).  Always includes
    the two boundary cuts (before any op, after every op).
    """
    rng = random.Random(seed)
    cuts: list[tuple[int, int | None]] = [(0, None), (len(ops), None)]
    for _ in range(max(0, n - 2)):
        index = rng.randrange(len(ops) + 1)
        partial = None
        if index < len(ops) and ops[index]["op"] == "write" and rng.random() < 0.5:
            size = len(ops[index]["data"])
            if size:
                partial = rng.randrange(size)
        cuts.append((index, partial))
    return cuts
