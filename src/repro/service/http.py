"""Stdlib HTTP API over the campaign service (no new dependencies).

A thin, threaded JSON layer (``http.server.ThreadingHTTPServer``) over
:class:`~repro.service.daemon.CampaignService`.  Endpoints (all under
``/api/v1``):

=======  ==========================  ===========================================
Method   Path                        Meaning
=======  ==========================  ===========================================
POST     ``/api/v1/jobs``            submit ``{config|preset, workload,
                                     n_instrs, priority?, submitter?}`` —
                                     202 with the job row (``deduped`` marks
                                     an idempotent hit)
GET      ``/api/v1/jobs/<id>``       job status (the full state-machine row)
GET      ``/api/v1/jobs/<id>/result``serialized RunResult — 200 when done,
                                     202 while pending/leased, 410 for
                                     failed/cancelled
POST     ``/api/v1/jobs/<id>/cancel``cancel (immediate for pending, flagged
                                     for leased)
GET      ``/api/v1/jobs``            all job rows
GET      ``/api/v1/stats``           queue statistics + journal replay stats
GET      ``/api/v1/healthz``         liveness probe
=======  ==========================  ===========================================

Typed admission rejections (:class:`~repro.errors.QueueFull`,
:class:`~repro.errors.QuotaExceeded`, :class:`~repro.errors.CircuitOpen`)
map to **429** with a ``Retry-After`` header carrying the queue's hint;
:class:`~repro.errors.ConfigError` and malformed bodies map to **400**,
unknown jobs to **404**, invalid state transitions to **409**.

``preset`` names a server-side configuration
(:func:`preset_configs`: the Skylake baselines plus the fig10 variants) so
clients can drive paper campaigns without shipping a config payload.
"""

from __future__ import annotations

import json
import logging
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import (
    AdmissionError,
    ConfigError,
    JobNotFound,
    JobStateError,
)
from ..obs import get_logger, log_event
from ..sim.config import fig10_configs, skylake_client, skylake_server
from ..sim.serialization import config_to_dict
from .daemon import CampaignService

logger = get_logger("service.http")

_JOB_PATH = re.compile(r"^/api/v1/jobs/([A-Za-z0-9_-]+)(/result|/cancel)?$")

#: Cap on request bodies; a config payload is a few KiB.
MAX_BODY_BYTES = 1 << 20


def preset_configs() -> dict:
    """Named server-side configurations clients may submit by ``preset``."""
    presets = {}
    for config in (skylake_server(), skylake_client(), *fig10_configs()):
        presets[config.name] = config
    return presets


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the service; one instance per request (threaded)."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"
    service: CampaignService  # injected by make_server's subclass

    # ------------------------------------------------------------- plumbing

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        log_event(
            logger, logging.DEBUG, "http", request=format % args,
            client=self.client_address[0],
        )

    def _json(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload, indent=2).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, *, error_type: str = "",
               headers: dict | None = None) -> None:
        self._json(
            status,
            {"error": message, "error_type": error_type or "Error"},
            headers,
        )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw or b"{}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # --------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802
        try:
            if self.path == "/api/v1/healthz":
                self._json(200, {"status": "ok"})
            elif self.path == "/api/v1/stats":
                self._json(200, self.service.queue.stats())
            elif self.path == "/api/v1/jobs":
                self._json(
                    200,
                    {"jobs": [job.to_dict() for job in self.service.queue.jobs()]},
                )
            else:
                match = _JOB_PATH.match(self.path)
                if match and match.group(2) is None:
                    self._job_status(match.group(1))
                elif match and match.group(2) == "/result":
                    self._job_result(match.group(1))
                else:
                    self._error(404, f"no route {self.path}")
        except JobNotFound as exc:
            self._error(404, str(exc), error_type="JobNotFound")
        except Exception as exc:  # the server must outlive any request
            log_event(logger, logging.ERROR, "request error", error=repr(exc))
            self._error(500, repr(exc), error_type="InternalError")

    def do_POST(self) -> None:  # noqa: N802
        try:
            if self.path == "/api/v1/jobs":
                self._submit()
                return
            match = _JOB_PATH.match(self.path)
            if match and match.group(2) == "/cancel":
                self._cancel(match.group(1))
                return
            self._error(404, f"no route {self.path}")
        except AdmissionError as exc:
            self._error(
                429, str(exc), error_type=type(exc).__name__,
                headers={"Retry-After": str(int(exc.retry_after_s + 0.5) or 1)},
            )
        except JobNotFound as exc:
            # Before the 400 clause: JobNotFound is also a KeyError.
            self._error(404, str(exc), error_type="JobNotFound")
        except (ConfigError, ValueError, KeyError, TypeError) as exc:
            self._error(400, str(exc) or repr(exc), error_type=type(exc).__name__)
        except JobStateError as exc:
            self._error(409, str(exc), error_type="JobStateError")
        except Exception as exc:
            log_event(logger, logging.ERROR, "request error", error=repr(exc))
            self._error(500, repr(exc), error_type="InternalError")

    # -------------------------------------------------------------- handlers

    def _submit(self) -> None:
        body = self._read_body()
        config_payload = body.get("config")
        preset = body.get("preset")
        if (config_payload is None) == (preset is None):
            raise ValueError("submit exactly one of 'config' or 'preset'")
        if preset is not None:
            presets = preset_configs()
            if preset not in presets:
                raise ValueError(
                    f"unknown preset {preset!r} "
                    f"(choices: {', '.join(sorted(presets))})"
                )
            config_payload = config_to_dict(presets[preset])
        workload = body.get("workload")
        if not isinstance(workload, str) or not workload:
            raise ValueError("'workload' must be a non-empty string")
        n_instrs = body.get("n_instrs")
        if not isinstance(n_instrs, int) or n_instrs <= 0:
            raise ValueError("'n_instrs' must be a positive integer")
        job, deduped = self.service.submit_config(
            config_payload,
            workload,
            n_instrs,
            priority=body.get("priority", "normal"),
            submitter=str(body.get("submitter", "anonymous")),
        )
        self._json(202, dict(job.to_dict(), deduped=deduped))

    def _job_status(self, job_id: str) -> None:
        self._json(200, self.service.queue.get(job_id).to_dict())

    def _job_result(self, job_id: str) -> None:
        job = self.service.queue.get(job_id)
        if job.state in ("pending", "leased"):
            self._json(202, {"state": job.state, "job_id": job_id})
            return
        if job.state != "done":
            self._error(
                410, f"job {job_id} is {job.state}", error_type="JobStateError",
            )
            return
        payload = self.service.result_payload(job)
        if payload is None:
            # Done per the journal but the checkpoint is gone (deleted or
            # quarantined): surface it rather than 500 on a KeyError.
            self._error(
                503, f"result for {job_id} is not in the store",
                error_type="CheckpointError",
            )
            return
        self._json(200, {
            "job_id": job_id,
            "degraded": job.degraded,
            "requested_n_instrs": job.requested_n_instrs,
            "result": payload,
        })

    def _cancel(self, job_id: str) -> None:
        job = self.service.queue.cancel(job_id)
        self._json(202, job.to_dict())


def make_server(
    service: CampaignService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Build the HTTP server bound to ``service`` (port 0 = OS-assigned)."""

    class _Handler(ServiceHandler):
        pass

    _Handler.service = service
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    return server


def serve_in_thread(server: ThreadingHTTPServer) -> threading.Thread:
    """Run ``server.serve_forever`` on a daemon thread (tests and the CLI)."""
    thread = threading.Thread(
        target=server.serve_forever, name="svc-http", daemon=True,
        kwargs={"poll_interval": 0.1},
    )
    thread.start()
    return thread
