"""Stdlib HTTP API over the campaign service (no new dependencies).

A thin, threaded JSON layer (``http.server.ThreadingHTTPServer``) over
:class:`~repro.service.daemon.CampaignService`.  Endpoints:

=======  ==========================  ===========================================
Method   Path                        Meaning
=======  ==========================  ===========================================
POST     ``/api/v1/jobs``            submit ``{config|preset, workload,
                                     n_instrs, priority?, submitter?}`` —
                                     202 with the job row (``deduped`` marks
                                     an idempotent hit)
GET      ``/api/v1/jobs/<id>``       job status (the full state-machine row)
GET      ``/api/v1/jobs/<id>/result``serialized RunResult — 200 when done,
                                     202 while pending/leased, 410 for
                                     failed/cancelled
POST     ``/api/v1/jobs/<id>/cancel``cancel (immediate for pending, flagged
                                     for leased)
GET      ``/api/v1/jobs``            all job rows
GET      ``/api/v1/stats``           queue statistics + SLO latency quantiles
                                     + daemon identity
GET      ``/api/v1/events``          flight-recorder ring (``?n=``, ``?kind=``)
GET      ``/api/v1/healthz``         liveness probe (uptime, version)
GET      ``/metrics``                Prometheus text exposition of the
                                     service registry
=======  ==========================  ===========================================

Typed admission rejections (:class:`~repro.errors.QueueFull`,
:class:`~repro.errors.QuotaExceeded`, :class:`~repro.errors.CircuitOpen`)
map to **429** with a ``Retry-After`` header carrying the queue's hint;
:class:`~repro.errors.SafeModeActive` (disk-fault safe mode) maps to
**503** + ``Retry-After`` and flips ``/healthz`` to ``degraded``;
:class:`~repro.errors.ConfigError` and malformed bodies map to **400**,
unknown jobs to **404**, invalid state transitions to **409**.

Submissions may carry ``inject_fault`` — a
:meth:`~repro.runner.faultinject.FaultInjector.from_spec` string armed for
that job's runs (the chaos-testing hook).  It is validated at admission:
process-level kinds are refused under thread isolation.

``preset`` names a server-side configuration
(:func:`preset_configs`: the Skylake baselines plus the fig10 variants) so
clients can drive paper campaigns without shipping a config payload.

Request correlation: every request is assigned a correlation id — the
inbound ``X-Request-Id`` header when it is well-formed, a fresh random id
otherwise — which is echoed back as ``X-Request-Id`` on the response.  A
submission's correlation id becomes the job's ``trace_id``: journaled with
the job, tagged onto every lifecycle span and flight-recorder event, and
shipped back from fleet workers, so one id follows a request end-to-end
(HTTP → queue → worker) through the merged trace.
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from .. import __version__, obs
from ..errors import (
    AdmissionError,
    ConfigError,
    JobNotFound,
    JobStateError,
    SafeModeActive,
)
from ..obs import (
    PROMETHEUS_CONTENT_TYPE,
    current_tid,
    get_logger,
    log_event,
    render_prometheus,
)
from ..plugins.workloads import MIX_SEPARATOR
from ..sim.config import fig10_configs, skylake_client, skylake_server
from ..sim.serialization import config_to_dict
from .daemon import CampaignService

logger = get_logger("service.http")

_JOB_PATH = re.compile(r"^/api/v1/jobs/([A-Za-z0-9_-]+)(/result|/cancel)?$")

#: Inbound ``X-Request-Id`` values we are willing to adopt: short, printable,
#: header/JSON/label-safe.  Anything else gets a fresh generated id.
_REQUEST_ID = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Cap on request bodies; a config payload is a few KiB.
MAX_BODY_BYTES = 1 << 20


def preset_configs() -> dict:
    """Named server-side configurations clients may submit by ``preset``."""
    presets = {}
    for config in (skylake_server(), skylake_client(), *fig10_configs()):
        presets[config.name] = config
    return presets


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the service; one instance per request (threaded)."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"
    service: CampaignService  # injected by make_server's subclass
    request_id: str = ""

    # ------------------------------------------------------------- plumbing

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        log_event(
            logger, logging.DEBUG, "http", request=format % args,
            client=self.client_address[0], request_id=self.request_id,
        )

    def _assign_request_id(self) -> str:
        """Adopt a well-formed inbound ``X-Request-Id`` or mint one."""
        inbound = self.headers.get("X-Request-Id") or ""
        if _REQUEST_ID.match(inbound):
            self.request_id = inbound
        else:
            self.request_id = uuid.uuid4().hex[:16]
        return self.request_id

    def _json(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload, indent=2).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _text(
        self, status: int, text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, *, error_type: str = "",
               headers: dict | None = None) -> None:
        self._json(
            status,
            {"error": message, "error_type": error_type or "Error"},
            headers,
        )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw or b"{}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # --------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802
        path, _, query = self.path.partition("?")
        rid = self._assign_request_id()
        with obs.span(
            "http:GET", "http", {"path": path, "trace_id": rid},
            tid=current_tid(),
        ):
            try:
                if path == "/metrics":
                    self._text(
                        200,
                        render_prometheus(self.service.telemetry_snapshot()),
                        PROMETHEUS_CONTENT_TYPE,
                    )
                elif path == "/api/v1/healthz":
                    self._json(200, self._health())
                elif path == "/api/v1/stats":
                    self._json(200, self.service.service_stats())
                elif path == "/api/v1/events":
                    self._events(query)
                elif path == "/api/v1/jobs":
                    self._json(
                        200,
                        {"jobs": [job.to_dict() for job in self.service.queue.jobs()]},
                    )
                else:
                    match = _JOB_PATH.match(path)
                    if match and match.group(2) is None:
                        self._job_status(match.group(1))
                    elif match and match.group(2) == "/result":
                        self._job_result(match.group(1))
                    else:
                        self._error(404, f"no route {path}")
            except JobNotFound as exc:
                self._error(404, str(exc), error_type="JobNotFound")
            except ValueError as exc:
                self._error(400, str(exc) or repr(exc), error_type="ValueError")
            except Exception as exc:  # the server must outlive any request
                log_event(
                    logger, logging.ERROR, "request error",
                    error=repr(exc), request_id=rid,
                )
                self._error(500, repr(exc), error_type="InternalError")

    def do_POST(self) -> None:  # noqa: N802
        path, _, _query = self.path.partition("?")
        rid = self._assign_request_id()
        with obs.span(
            "http:POST", "http", {"path": path, "trace_id": rid},
            tid=current_tid(),
        ):
            try:
                if path == "/api/v1/jobs":
                    self._submit()
                    return
                match = _JOB_PATH.match(path)
                if match and match.group(2) == "/cancel":
                    self._cancel(match.group(1))
                    return
                self._error(404, f"no route {path}")
            except SafeModeActive as exc:
                # 503, not 429: the *service's* disk is the problem, and
                # the client should retry the same request after the hint.
                self._error(
                    503, str(exc), error_type="SafeModeActive",
                    headers={"Retry-After": str(int(exc.retry_after_s + 0.5) or 1)},
                )
            except AdmissionError as exc:
                self._error(
                    429, str(exc), error_type=type(exc).__name__,
                    headers={"Retry-After": str(int(exc.retry_after_s + 0.5) or 1)},
                )
            except JobNotFound as exc:
                # Before the 400 clause: JobNotFound is also a KeyError.
                self._error(404, str(exc), error_type="JobNotFound")
            except (ConfigError, ValueError, KeyError, TypeError) as exc:
                self._error(400, str(exc) or repr(exc), error_type=type(exc).__name__)
            except JobStateError as exc:
                self._error(409, str(exc), error_type="JobStateError")
            except Exception as exc:
                log_event(
                    logger, logging.ERROR, "request error",
                    error=repr(exc), request_id=rid,
                )
                self._error(500, repr(exc), error_type="InternalError")

    # -------------------------------------------------------------- handlers

    def _health(self) -> dict:
        started = self.service.started_at
        safe = self.service.safe_mode_status()
        return {
            "status": "degraded" if safe["active"] else "ok",
            "safe_mode": safe,
            "uptime_s": round(time.time() - started, 3) if started else 0.0,
            "version": __version__,
        }

    def _events(self, query: str) -> None:
        params = parse_qs(query)
        n = int(params["n"][0]) if "n" in params else None
        kind = params["kind"][0] if "kind" in params else None
        recorder = self.service.recorder
        self._json(200, {
            "events": recorder.events(n=n, kind=kind),
            "recorded_total": recorder.recorded,
            "capacity": recorder.capacity,
        })

    def _submit(self) -> None:
        body = self._read_body()
        config_payload = body.get("config")
        preset = body.get("preset")
        if (config_payload is None) == (preset is None):
            raise ValueError("submit exactly one of 'config' or 'preset'")
        if preset is not None:
            presets = preset_configs()
            if preset not in presets:
                raise ValueError(
                    f"unknown preset {preset!r} "
                    f"(choices: {', '.join(sorted(presets))})"
                )
            config_payload = config_to_dict(presets[preset])
        workload = body.get("workload")
        if isinstance(workload, list):
            # A multi-programmed mix: a tuple of workload refs in the
            # submit API, carried internally as the "+"-joined display ref.
            if not workload or not all(
                isinstance(m, str) and m and MIX_SEPARATOR not in m
                for m in workload
            ):
                raise ValueError(
                    "'workload' list must contain non-empty workload names"
                )
            workload = MIX_SEPARATOR.join(workload)
        if not isinstance(workload, str) or not workload:
            raise ValueError(
                "'workload' must be a non-empty string or list of names"
            )
        n_instrs = body.get("n_instrs")
        if not isinstance(n_instrs, int) or n_instrs <= 0:
            raise ValueError("'n_instrs' must be a positive integer")
        inject_fault = body.get("inject_fault")
        if inject_fault is not None and (
            not isinstance(inject_fault, str) or not inject_fault
        ):
            raise ValueError("'inject_fault' must be a non-empty string")
        job, deduped = self.service.submit_config(
            config_payload,
            workload,
            n_instrs,
            priority=body.get("priority", "normal"),
            submitter=str(body.get("submitter", "anonymous")),
            trace_id=self.request_id,
            inject_fault=inject_fault,
        )
        self._json(202, dict(job.to_dict(), deduped=deduped))

    def _job_status(self, job_id: str) -> None:
        self._json(200, self.service.queue.get(job_id).to_dict())

    def _job_result(self, job_id: str) -> None:
        job = self.service.queue.get(job_id)
        if job.state in ("pending", "leased"):
            self._json(202, {"state": job.state, "job_id": job_id})
            return
        if job.state != "done":
            self._error(
                410, f"job {job_id} is {job.state}", error_type="JobStateError",
            )
            return
        payload = self.service.result_payload(job)
        if payload is None:
            # Done per the journal but the checkpoint is gone (deleted or
            # quarantined): surface it rather than 500 on a KeyError.
            self._error(
                503, f"result for {job_id} is not in the store",
                error_type="CheckpointError",
            )
            return
        self._json(200, {
            "job_id": job_id,
            "degraded": job.degraded,
            "requested_n_instrs": job.requested_n_instrs,
            "cached": job.cached,
            "cache_provenance": job.cache_provenance,
            "result": payload,
        })

    def _cancel(self, job_id: str) -> None:
        job = self.service.queue.cancel(job_id)
        self._json(202, job.to_dict())


def make_server(
    service: CampaignService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Build the HTTP server bound to ``service`` (port 0 = OS-assigned)."""

    class _Handler(ServiceHandler):
        pass

    _Handler.service = service
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    return server


def serve_in_thread(server: ThreadingHTTPServer) -> threading.Thread:
    """Run ``server.serve_forever`` on a daemon thread (tests and the CLI)."""
    thread = threading.Thread(
        target=server.serve_forever, name="svc-http", daemon=True,
        kwargs={"poll_interval": 0.1},
    )
    thread.start()
    return thread
