"""Crash-safe append-only write-ahead journal for the campaign service.

The journal is the durability backbone of :mod:`repro.service.queue`: every
queue mutation is appended here *before* it is applied in memory, so the
full queue state is a pure function of the journal and a process killed at
any instant — ``kill -9`` included — recovers by replay.

Record format (one record per line, text so the journal is greppable)::

    J1 <crc32:08x> <nbytes> <payload>\\n

where ``payload`` is compact JSON (no embedded newlines), ``nbytes`` its
UTF-8 byte length, and the CRC-32 covers the payload bytes.  Appends are
flushed and ``fsync``'d before :meth:`Journal.append` returns (the
directory too, on the first append of a journal's life), which is the
commit point: a record the caller saw acknowledged survives any crash.

Replay walks records from the start and stops at the first torn or corrupt
entry: a missing trailing newline, a malformed header, a length or checksum
mismatch.  Everything from that point on is a *tail* the crash tore — it is
truncated (the bad bytes are preserved in a ``*.torn`` sidecar first) with
a WARNING, mirroring the checkpoint store's quarantine semantics: recovery
costs re-submitting at most the one un-acknowledged record, never the
journal.  Because records are only ever appended, a prefix of bytes is a
prefix of committed records — the property ``tests/test_service_journal.py``
proves by killing the writer at every byte boundary.

:meth:`Journal.rewrite` compacts: it atomically replaces the journal with a
snapshot set of records (fsync'd temp + rename + directory fsync via
:mod:`repro.ioutil`), so a long-lived service's replay cost is bounded by
live state, not lifetime history.
"""

from __future__ import annotations

import json
import logging
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import JournalError
from ..ioutil import fsync_dir, io_backend
from ..obs import get_logger, log_event

logger = get_logger("service.journal")

#: Record magic / format version tag; bump on any layout change.
MAGIC = b"J1"


@dataclass
class ReplayStats:
    """What a replay found — published through the service metrics."""

    records: int = 0            #: committed records recovered
    committed_bytes: int = 0    #: byte offset of the last committed record
    torn_bytes: int = 0         #: bytes truncated from a torn/corrupt tail
    torn_sidecar: str | None = None  #: where the bad tail was preserved
    errors: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "records": self.records,
            "committed_bytes": self.committed_bytes,
            "torn_bytes": self.torn_bytes,
            "torn_sidecar": self.torn_sidecar,
            "errors": list(self.errors),
        }


def encode_record(payload: dict) -> bytes:
    """One committed record as bytes (exactly what :meth:`append` writes)."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
    return b"%s %08x %d " % (MAGIC, zlib.crc32(body), len(body)) + body + b"\n"


def scan_journal(path: str | Path) -> tuple[list[dict], ReplayStats]:
    """Read-only decode of a journal: committed records + tail diagnosis.

    The non-mutating core of :meth:`Journal.replay` — nothing is truncated
    and no sidecar is written, so offline tooling (``repro.service.fsck``)
    can diagnose a journal without altering evidence.
    """
    path = Path(path)
    stats = ReplayStats()
    if not path.exists():
        return [], stats
    data = path.read_bytes()
    records: list[dict] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        line = data[offset : len(data) if newline < 0 else newline + 1]
        try:
            records.append(decode_line(line))
        except ValueError as exc:
            stats.errors.append(str(exc))
            break
        offset += len(line)
    stats.records = len(records)
    stats.committed_bytes = offset
    stats.torn_bytes = len(data) - offset
    return records, stats


def decode_line(line: bytes) -> dict:
    """Parse one full record line (without trusting it); raises ValueError."""
    if not line.endswith(b"\n"):
        raise ValueError("record has no trailing newline (torn write)")
    head = line[:-1]
    parts = head.split(b" ", 3)
    if len(parts) != 4 or parts[0] != MAGIC:
        raise ValueError("malformed record header")
    _, crc_hex, nbytes_s, body = parts
    try:
        crc = int(crc_hex, 16)
        nbytes = int(nbytes_s)
    except ValueError:
        raise ValueError("malformed record header fields")
    if len(body) != nbytes:
        raise ValueError(f"record length mismatch ({len(body)} != {nbytes})")
    if zlib.crc32(body) != crc:
        raise ValueError("record checksum mismatch")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ValueError(f"record payload is not JSON: {exc}")
    if not isinstance(payload, dict):
        raise ValueError("record payload is not an object")
    return payload


class Journal:
    """Append-only, checksummed, fsync-per-append record log.

    Args:
        path: journal file (created, with parents, on first use).
        fsync: flush every append to stable storage before acknowledging
            it (the production default).  Tests that hammer the journal
            may disable it — the *format* guarantees are unchanged, only
            power-loss durability is.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = None
        self._dir_synced = False
        self.appends = 0   #: records durably committed this incarnation
        self.rewrites = 0  #: compactions performed this incarnation

    # ------------------------------------------------------------- writing

    def append(self, payload: dict) -> None:
        """Durably commit one record; returns only once it would survive."""
        if self._fh is None:
            self._open_for_append()
        record = encode_record(payload)
        try:
            self._fh.write(record)
            if self.fsync:
                io_backend().fsync(self._fh)
            else:
                self._fh.flush()
        except ValueError as exc:  # write on a closed underlying file
            raise JournalError(f"journal {self.path} is closed: {exc}")
        self.appends += 1
        if not self._dir_synced:
            # First durable record of this journal's life: make the file's
            # *existence* durable too.
            if self.fsync:
                fsync_dir(self.path.parent)
            self._dir_synced = True

    def _open_for_append(self) -> None:
        try:
            self._fh = io_backend().open(self.path, "ab")
        except OSError as exc:
            raise JournalError(f"cannot open journal {self.path}: {exc}")

    # ------------------------------------------------------------- reading

    def replay(self) -> tuple[list[dict], ReplayStats]:
        """Recover the committed record prefix, truncating any torn tail.

        Safe to call on a missing journal (no records, no stats).  Must be
        called before :meth:`append` re-opens the file, i.e. at service
        start — the normal lifecycle — so truncation never races a writer.
        """
        if self._fh is not None:
            raise JournalError("replay() on a journal already open for append")
        records, stats = scan_journal(self.path)
        if stats.torn_bytes:
            data = self.path.read_bytes()
            stats.torn_sidecar = str(self._truncate_tail(data, stats.committed_bytes))
            log_event(
                logger, logging.WARNING, "truncated torn journal tail",
                path=str(self.path), committed_records=stats.records,
                torn_bytes=stats.torn_bytes, sidecar=stats.torn_sidecar,
                error=stats.errors[-1] if stats.errors else None,
            )
        return records, stats

    def _truncate_tail(self, data: bytes, offset: int) -> Path:
        """Preserve the bad tail in a ``*.torn`` sidecar, then truncate."""
        sidecar = self.path.with_suffix(self.path.suffix + ".torn")
        serial = 0
        while sidecar.exists():
            serial += 1
            sidecar = self.path.with_suffix(f"{self.path.suffix}.torn.{serial}")
        try:
            sidecar.write_bytes(data[offset:])
        except OSError:
            pass  # forensics are best-effort; the truncation is not
        io = io_backend()
        fh = io.open(self.path, "r+b")
        try:
            fh.truncate(offset)
            if self.fsync:
                io.fsync(fh)
        finally:
            fh.close()
        return sidecar

    # ---------------------------------------------------------- compaction

    def rewrite(self, payloads: list[dict]) -> None:
        """Atomically replace the journal's contents with ``payloads``.

        Used for compaction: the caller snapshots live state as records and
        the journal swaps wholesale — a crash leaves either the old or the
        new journal, both complete.
        """
        was_open = self._fh is not None
        if was_open:
            self.close()
        io = io_backend()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        fh = io.open(tmp, "wb")
        try:
            for payload in payloads:
                fh.write(encode_record(payload))
            if self.fsync:
                io.fsync(fh)
            else:
                fh.flush()
        finally:
            fh.close()
        io.replace(tmp, self.path)
        if self.fsync:
            fsync_dir(self.path.parent)
        self._dir_synced = True
        self.rewrites += 1
        if was_open:
            self._open_for_append()

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        if self._fh is not None:
            try:
                if self.fsync:
                    io_backend().fsync(self._fh)
                else:
                    self._fh.flush()
            except (OSError, ValueError):
                pass
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
