"""Durable job queue: WAL-backed state machine with leases and admission.

Every mutation is journaled (:mod:`repro.service.journal`) *before* it is
applied in memory, so the queue's full state is recoverable by replay after
a crash at any instant.  Jobs move through an explicit state machine::

    submit ──> pending ──lease──> leased ──complete──> done
                  ^                  │ │ └──fail (attempts left)──┐
                  │                  │ └──fail (spent)──> failed  │
                  │                  └──lease expiry / release────┤
                  └───────────────────────────────────────────────┘
    pending | leased ──cancel──> cancelled

``done``, ``failed`` and ``cancelled`` are terminal.  Ownership is
lease-based: a worker must hold a live lease to complete or fail a job, and
leases that expire (hung worker) or that belong to a previous daemon
incarnation (replay finds a job still ``leased``) are reclaimed to
``pending`` — the attempt was already counted when the lease was granted,
so a job that keeps killing its workers converges to ``failed`` instead of
looping forever.

Robustness behaviours layered on the state machine:

* **Idempotent dedup** — submissions are keyed by
  ``(config_fingerprint, workload, requested n_instrs)``; re-submitting an
  active or completed job returns the existing one, so client retries and
  replayed submissions never double-run or double-count a measurement.
  The key uses the length the caller *asked for*, not the one shedding
  clamped to — and a full-length submission never dedups against a
  degraded quick estimate, so clamped results can only ever be served to
  callers whose response carries ``degraded`` provenance.
* **Admission control** — the queue is depth-bounded
  (:class:`~repro.errors.QueueFull`) and per-submitter quota'd
  (:class:`~repro.errors.QuotaExceeded`); both rejections carry a
  ``retry_after_s`` hint derived from the observed mean service time.
* **Load shedding** — above the shed watermark, *low-priority* submissions
  are degraded to quick-mode estimates (``n_instrs`` clamped) instead of
  rejected; the job carries ``degraded`` provenance and the requested
  length, so a consumer can tell an estimate from a full measurement.
* **Circuit breaker** — configurations whose workers repeatedly crash
  (:class:`FailureRecord <repro.runner.runner.FailureRecord>` evidence:
  ``WorkerCrashError``/``WorkerOOMError``) are quarantined: further
  submissions raise :class:`~repro.errors.CircuitOpen` until a cooldown
  passes, after which one half-open probe job is admitted; its success
  closes the circuit, its failure re-opens it.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import asdict, dataclass, field
from time import time as _wall_clock
from typing import Callable, Iterable

from ..errors import (
    CircuitOpen,
    JobNotFound,
    JobStateError,
    QueueFull,
    QuotaExceeded,
)
from ..obs import NULL_FLIGHT_RECORDER, get_logger, log_event
from .journal import Journal, ReplayStats

logger = get_logger("service.queue")

# Job states (the journal stores the strings, so they are part of the
# on-disk format — append-only, never renumber).
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL = frozenset({DONE, FAILED, CANCELLED})

#: Priority names accepted at the API boundary, mapped to scheduling rank.
PRIORITIES = {"low": 0, "normal": 1, "high": 2}

#: ``FailureRecord.error_type`` values that count as crash evidence for the
#: circuit breaker (a worker *process* died, not a mere run error).
CRASH_ERROR_TYPES = frozenset({"WorkerCrashError", "WorkerOOMError"})


@dataclass
class Job:
    """One queued measurement and its full state-machine context."""

    job_id: str
    seq: int
    fingerprint: str
    config_name: str
    config: dict                 #: serialized SimConfig payload
    workload: str
    n_instrs: int
    #: Content digest of the workload (see ``repro.plugins.workloads``):
    #: the identity half of the dedup key.  Defaulted so journals written
    #: before workload fingerprints existed still replay; such jobs fall
    #: back to name-keyed dedup.
    workload_fingerprint: str = ""
    priority: int = PRIORITIES["normal"]
    submitter: str = "anonymous"
    #: End-to-end correlation id: assigned at the API boundary (from the
    #: request's ``X-Request-Id``), journaled with the job, and tagged onto
    #: every span/log/flight-recorder event the job generates downstream.
    trace_id: str = ""
    state: str = PENDING
    submitted_at: float = 0.0
    finished_at: float | None = None
    #: Load-shedding provenance: when degraded, ``n_instrs`` was clamped
    #: from ``requested_n_instrs`` and the result is a quick-mode estimate.
    degraded: bool = False
    requested_n_instrs: int | None = None
    #: Optional fault-injection spec (``repro.runner.faultinject`` syntax)
    #: armed for this job's runs — chaos-testing provenance travels with
    #: the job.  Validated at admission (see ``daemon.submit_config``).
    inject_fault: str | None = None
    #: Result-cache provenance: a cached job completed straight from the
    #: content-addressed result cache (the ``done-cached`` journal outcome)
    #: without ever holding a lease.  ``cache_provenance`` is the cache's
    #: hit record (``cache_hit`` or ``near_hit`` + ``source_key``).
    cached: bool = False
    cache_provenance: dict | None = None
    attempts: int = 0
    lease_owner: str | None = None
    lease_expires_at: float | None = None
    cancel_requested: bool = False
    summary: dict | None = None  #: small result summary (full result in store)
    error: dict | None = None
    #: Per-attempt error context accumulated across requeues.
    attempt_errors: list[str] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str, int]:
        """Dedup key: the length the caller *requested*, not the clamped one.

        A shed job runs at ``n_instrs`` (clamped) but occupies the key of
        ``requested_n_instrs`` — so a quick-mode submission at the clamped
        length never collides with it, and a later full-length submission
        of the same point finds it (and, per :meth:`JobQueue.submit`, runs
        fresh instead of accepting the estimate).

        The workload half is the *fingerprint* (content identity) when the
        job has one; legacy journal entries without it key by display name.
        """
        return (
            self.fingerprint,
            self.workload_fingerprint or self.workload,
            self.requested_n_instrs or self.n_instrs,
        )

    @property
    def active(self) -> bool:
        return self.state not in TERMINAL

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Job":
        return cls(**payload)


@dataclass
class _Breaker:
    """Per-fingerprint circuit state (crash counting / quarantine)."""

    failures: int = 0
    opened_at: float | None = None
    probing: bool = False

    def to_dict(self) -> dict:
        return asdict(self)


# ------------------------------------------------------- pure state replay
#
# The journal-application logic lives in module functions over plain dicts
# so that offline tooling (``repro.service.fsck``) can reconstruct queue
# state from a scanned journal without constructing a JobQueue — which
# would *mutate* the journal (replay truncates torn tails).  JobQueue
# routes its own ``_apply`` through the same functions, so there is one
# replay semantics, used both online and offline.


def install_job(job: Job, jobs: dict, by_key: dict) -> None:
    """Install ``job``, updating the latest-job-per-key dedup index."""
    jobs[job.job_id] = job
    # The dedup index tracks the *latest* job per key; terminal
    # failed/cancelled jobs stay addressable by id but do not block a
    # fresh submission of the same point.
    existing = by_key.get(job.key)
    current = jobs.get(existing) if existing else None
    if (
        current is None
        or current.seq <= job.seq
        or current.state in (FAILED, CANCELLED)
    ):
        by_key[job.key] = job.job_id


def _check_state(job: Job, allowed: set, op: str) -> None:
    if job.state not in allowed:
        raise JobStateError(
            f"cannot {op} job {job.job_id} in state {job.state!r}"
        )


def apply_record(
    record: dict, jobs: dict, by_key: dict, breakers: dict
) -> Job | None:
    """Apply one journal record to queue state; returns any installed job.

    Raises :class:`JobNotFound`/:class:`JobStateError` on a record that is
    invalid against the current state (a journal corruption signal).
    """
    op = record["op"]
    if op == "safe_mode":
        # Audit-only: records when the daemon entered/left disk-fault safe
        # mode.  No queue-state effect (jobs were never lost to safe mode).
        return None
    if op == "job":  # compaction snapshot: install verbatim
        job = Job.from_dict(record["job"])
        install_job(job, jobs, by_key)
        return job
    if op == "breaker":
        breakers[record["fingerprint"]] = _Breaker(
            failures=record.get("failures", 0),
            opened_at=record.get("opened_at"),
            probing=record.get("probing", False),
        )
        return None
    if op == "submit":
        job = Job.from_dict(record["job"])
        install_job(job, jobs, by_key)
        return job
    job = jobs.get(record["id"])
    if job is None:
        raise JobNotFound(f"journal references unknown job {record['id']!r}")
    if op == "lease":
        # A lease over an already-leased job is a *takeover*: the previous
        # lease was recovered in memory without journaling (the storage-
        # fault path, see JobQueue.recover_lease) and the attempt was
        # refunded — so only a grant from pending counts an attempt.
        _check_state(job, {PENDING, LEASED}, op)
        if job.state == PENDING:
            job.attempts += 1
        job.state = LEASED
        job.lease_owner = record["owner"]
        job.lease_expires_at = record["expires_at"]
    elif op == "release":
        _check_state(job, {LEASED}, op)
        job.state = PENDING
        job.lease_owner = None
        job.lease_expires_at = None
    elif op == "requeue":
        _check_state(job, {LEASED}, op)
        job.state = PENDING
        job.lease_owner = None
        job.lease_expires_at = None
        if record.get("error"):
            job.attempt_errors.append(record["error"])
    elif op == "done":
        _check_state(job, {LEASED}, op)
        job.state = DONE
        job.summary = record.get("summary")
        job.finished_at = record.get("at")
        job.lease_owner = None
        job.lease_expires_at = None
    elif op == "done-cached":
        # Completed straight from the result cache at submit time: the job
        # never held a lease (PENDING -> DONE is legal only here) and its
        # provenance records which cache entry served it.
        _check_state(job, {PENDING}, op)
        job.state = DONE
        job.cached = True
        job.cache_provenance = record.get("provenance")
        job.summary = record.get("summary")
        job.finished_at = record.get("at")
    elif op == "fail":
        _check_state(job, {LEASED, PENDING}, op)
        job.state = FAILED
        job.error = record.get("error")
        job.finished_at = record.get("at")
        job.lease_owner = None
        job.lease_expires_at = None
    elif op == "cancel":
        _check_state(job, {PENDING, LEASED}, op)
        job.state = CANCELLED
        job.finished_at = record.get("at")
        job.lease_owner = None
        job.lease_expires_at = None
    elif op == "cancel_requested":
        _check_state(job, {LEASED}, op)
        job.cancel_requested = True
    else:
        raise JobStateError(f"unknown journal op {op!r}")
    return None


def replay_state(
    records: Iterable[dict],
) -> tuple[dict[str, Job], dict, dict, list[str]]:
    """Pure replay of journal records into ``(jobs, by_key, breakers, errors)``.

    The offline counterpart of :meth:`JobQueue._recover`: invalid records
    are skipped and reported, never fatal, and nothing on disk is touched.
    """
    jobs: dict[str, Job] = {}
    by_key: dict = {}
    breakers: dict = {}
    errors: list[str] = []
    for record in records:
        try:
            apply_record(record, jobs, by_key, breakers)
        except Exception as exc:
            errors.append(f"replay skipped record: {exc!r}")
    return jobs, by_key, breakers, errors


@dataclass
class QueueCounters:
    """Monotonic service counters (also exported through the obs registry)."""

    submitted: int = 0
    deduped: int = 0
    completed: int = 0
    #: Jobs completed straight from the result cache at submit time (no
    #: lease, no simulation) — a subset of ``completed``.
    done_cached: int = 0
    failed: int = 0
    cancelled: int = 0
    requeued: int = 0
    shed_degraded: int = 0
    rejected_full: int = 0
    rejected_quota: int = 0
    rejected_breaker: int = 0
    leases_expired: int = 0
    leases_recovered: int = 0    #: leases reclaimed by crash-recovery replay
    #: Jobs terminally failed because their last lease *expired* (a hung or
    #: vanished worker) — kept distinct from ``failed``, which counts
    #: worker-reported failures, so an operator can tell "the code is
    #: broken" from "workers keep disappearing" at a glance.
    lease_expiry_failed: int = 0


class JobQueue:
    """The WAL-backed queue (thread-safe; one instance per service).

    Args:
        journal: the write-ahead journal; replayed at construction.
        max_depth: bound on *active* (pending + leased) jobs.
        quota: bound on one submitter's active jobs.
        lease_s: lease duration granted to workers (renewable).
        max_attempts: lease grants before a job is terminally failed.
        shed_watermark: active/max_depth fraction above which low-priority
            submissions are degraded to quick estimates.
        shed_n_instrs: the quick-mode trace length shed jobs are clamped to.
        breaker_threshold: consecutive crash-type failures of one
            fingerprint that open its circuit.
        breaker_cooldown_s: quarantine duration before a half-open probe.
        clock: wall-clock source (injectable for tests; leases and breaker
            cooldowns use wall time so hints survive restarts sanely).
    """

    def __init__(
        self,
        journal: Journal,
        *,
        max_depth: int = 256,
        quota: int = 64,
        lease_s: float = 120.0,
        max_attempts: int = 3,
        shed_watermark: float = 0.75,
        shed_n_instrs: int = 24_000,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 300.0,
        clock: Callable[[], float] = _wall_clock,
        recorder=None,
    ) -> None:
        self.journal = journal
        #: Flight recorder for operational events (admissions, rejections,
        #: lease churn, breaker transitions); the shared no-op by default.
        self.recorder = recorder if recorder is not None else NULL_FLIGHT_RECORDER
        self.max_depth = max_depth
        self.quota = quota
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.shed_watermark = shed_watermark
        self.shed_n_instrs = shed_n_instrs
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.clock = clock
        self.counters = QueueCounters()
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[tuple[str, str, int], str] = {}
        self._breakers: dict[str, _Breaker] = {}
        self._next_seq = 1
        #: Exponential moving average of observed job service seconds —
        #: feeds the retry-after hints.  Starts at a sane guess.
        self._mean_service_s = 30.0
        self.replay_stats = self._recover()

    # ------------------------------------------------------------ recovery

    def _recover(self) -> ReplayStats:
        records, stats = self.journal.replay()
        for record in records:
            try:
                self._apply(record, recovering=True)
            except Exception as exc:
                # A record that replays to an invalid transition is a bug,
                # but one bad record must not cost the queue: log and keep
                # replaying (mirrors checkpoint quarantine philosophy).
                stats.errors.append(f"replay skipped record: {exc!r}")
                log_event(
                    logger, logging.WARNING, "replay skipped record",
                    error=repr(exc), record_op=record.get("op"),
                )
        recovered = 0
        for job in self._jobs.values():
            if job.state == LEASED:
                # The lease holder died with the previous incarnation.
                job.state = PENDING
                job.lease_owner = None
                job.lease_expires_at = None
                recovered += 1
        self.counters.leases_recovered = recovered
        if records or stats.torn_bytes:
            log_event(
                logger, logging.INFO, "journal replayed",
                records=stats.records, jobs=len(self._jobs),
                leases_recovered=recovered, torn_bytes=stats.torn_bytes,
            )
        return stats

    def compact(self) -> None:
        """Rewrite the journal as a snapshot of live state (bounded replay)."""
        with self._lock:
            payloads = [
                {"op": "job", "job": job.to_dict()}
                for job in sorted(self._jobs.values(), key=lambda j: j.seq)
            ]
            payloads += [
                {"op": "breaker", "fingerprint": fp, **breaker.to_dict()}
                for fp, breaker in self._breakers.items()
                if breaker.failures or breaker.opened_at is not None
            ]
            self.journal.rewrite(payloads)

    # ---------------------------------------------------------- journaling

    def _commit(self, record: dict) -> None:
        """Journal first, then apply: the WAL write is the commit point."""
        self.journal.append(record)
        self._apply(record)

    def _apply(self, record: dict, *, recovering: bool = False) -> None:
        installed = apply_record(
            record, self._jobs, self._by_key, self._breakers
        )
        if installed is not None:
            self._next_seq = max(self._next_seq, installed.seq + 1)

    # ------------------------------------------------------------ admission

    def submit(
        self,
        config: dict,
        workload: str,
        n_instrs: int,
        *,
        fingerprint: str,
        config_name: str = "",
        priority: int | str = "normal",
        submitter: str = "anonymous",
        trace_id: str = "",
        inject_fault: str | None = None,
        workload_fingerprint: str = "",
    ) -> tuple[Job, bool]:
        """Admit one submission; returns ``(job, deduped)``.

        Raises :class:`QueueFull`, :class:`QuotaExceeded` or
        :class:`CircuitOpen` (all :class:`~repro.errors.AdmissionError`
        with a ``retry_after_s`` hint) instead of queuing unboundedly.
        """
        if isinstance(priority, str):
            if priority not in PRIORITIES:
                raise ValueError(f"unknown priority {priority!r}")
            rank = PRIORITIES[priority]
        else:
            rank = int(priority)
        with self._lock:
            now = self.clock()
            self._check_breaker(
                fingerprint, now, trace_id=trace_id, config_name=config_name
            )
            degraded = False
            requested = None
            active = sum(1 for j in self._jobs.values() if j.active)
            shedding = active >= self.shed_watermark * self.max_depth
            if (
                shedding
                and rank <= PRIORITIES["low"]
                and n_instrs > self.shed_n_instrs
            ):
                # Degrade instead of failing: a quick estimate with
                # provenance beats a rejection for best-effort callers.
                degraded = True
                requested = n_instrs
                n_instrs = self.shed_n_instrs
            # Dedup by the *requested* length (Job.key semantics) — looked
            # up before the clamp could disguise this submission as a quick
            # one.  A full-length submission never dedups against a
            # degraded job: serving a clamped estimate to a caller whose
            # response carries no degraded provenance would silently swap
            # a measurement for a guess, so the full request runs fresh
            # (and takes over the key's dedup slot).  Degraded-against-
            # degraded and anything-against-full still dedup: those
            # responses carry honest provenance.
            existing_id = self._by_key.get(
                (
                    fingerprint,
                    workload_fingerprint or workload,
                    requested or n_instrs,
                )
            )
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if (existing.active or existing.state == DONE) and not (
                    existing.degraded and not degraded
                ):
                    self.counters.deduped += 1
                    self.recorder.record(
                        "dedup", job_id=existing.job_id, trace_id=trace_id,
                        config=config_name, workload=workload,
                        submitter=submitter,
                    )
                    return existing, True
            if active >= self.max_depth:
                self.counters.rejected_full += 1
                self.recorder.record(
                    "reject_full", config=config_name, workload=workload,
                    trace_id=trace_id, submitter=submitter, depth=active,
                )
                raise QueueFull(
                    f"queue depth {active} is at the {self.max_depth}-job "
                    f"bound",
                    retry_after_s=self._retry_after(),
                )
            mine = sum(
                1 for j in self._jobs.values()
                if j.active and j.submitter == submitter
            )
            if mine >= self.quota:
                self.counters.rejected_quota += 1
                self.recorder.record(
                    "reject_quota", config=config_name, workload=workload,
                    trace_id=trace_id, submitter=submitter, held=mine,
                )
                raise QuotaExceeded(
                    f"submitter {submitter!r} holds {mine} active jobs "
                    f"(quota {self.quota})",
                    retry_after_s=self._retry_after(),
                )
            seq = self._next_seq
            job = Job(
                job_id=f"j{seq:06d}",
                seq=seq,
                fingerprint=fingerprint,
                config_name=config_name,
                config=config,
                workload=workload,
                n_instrs=n_instrs,
                workload_fingerprint=workload_fingerprint,
                priority=rank,
                submitter=submitter,
                trace_id=trace_id,
                submitted_at=now,
                degraded=degraded,
                requested_n_instrs=requested,
                inject_fault=inject_fault,
            )
            self._commit({"op": "submit", "job": job.to_dict()})
            self.counters.submitted += 1
            if degraded:
                self.counters.shed_degraded += 1
            self.recorder.record(
                "submit", job_id=job.job_id, trace_id=trace_id,
                config=config_name, workload=workload, n_instrs=n_instrs,
                priority=rank, submitter=submitter, degraded=degraded,
            )
            log_event(
                logger, logging.INFO, "job submitted",
                job=job.job_id, config=config_name, workload=workload,
                n=n_instrs, priority=rank, submitter=submitter,
                degraded=degraded,
            )
            return job, False

    def _retry_after(self) -> float:
        return max(1.0, round(self._mean_service_s, 1))

    def _check_breaker(
        self, fingerprint: str, now: float, *,
        trace_id: str = "", config_name: str = "",
    ) -> None:
        breaker = self._breakers.get(fingerprint)
        if breaker is None or breaker.opened_at is None:
            return
        remaining = breaker.opened_at + self.breaker_cooldown_s - now
        if remaining > 0:
            self.counters.rejected_breaker += 1
            self.recorder.record(
                "reject_breaker", fingerprint=fingerprint[:12],
                config=config_name, trace_id=trace_id,
                failures=breaker.failures, retry_in_s=round(remaining, 1),
            )
            raise CircuitOpen(
                f"config {fingerprint[:12]} is quarantined after "
                f"{breaker.failures} worker crash(es); retry in "
                f"{remaining:.0f}s",
                retry_after_s=max(1.0, remaining),
            )
        # Cooldown over: half-open — admit submissions; the next leased job
        # of this fingerprint is the probe.

    # ------------------------------------------------------------- leasing

    def lease(self, owner: str) -> Job | None:
        """Grant the best pending job to ``owner``, or ``None`` if idle.

        Highest priority first, FIFO within a priority.  A fingerprint in
        half-open quarantine releases at most one probe job at a time.
        """
        with self._lock:
            now = self.clock()
            best: Job | None = None
            for job in self._jobs.values():
                if job.state != PENDING:
                    continue
                if not self._admissible_for_lease(job.fingerprint, now):
                    continue
                if best is None or (job.priority, -job.seq) > (
                    best.priority, -best.seq
                ):
                    best = job
            if best is None:
                return None
            breaker = self._breakers.get(best.fingerprint)
            if breaker is not None and breaker.opened_at is not None:
                breaker.probing = True  # the half-open probe is in flight
            self._commit({
                "op": "lease",
                "id": best.job_id,
                "owner": owner,
                "expires_at": now + self.lease_s,
            })
            self.recorder.record(
                "lease", job_id=best.job_id, trace_id=best.trace_id,
                owner=owner, attempts=best.attempts,
                queue_wait_s=round(max(0.0, now - best.submitted_at), 6)
                if best.submitted_at else None,
            )
            log_event(
                logger, logging.DEBUG, "job leased",
                job=best.job_id, owner=owner, attempts=best.attempts,
            )
            return best

    def _admissible_for_lease(self, fingerprint: str, now: float) -> bool:
        breaker = self._breakers.get(fingerprint)
        if breaker is None or breaker.opened_at is None:
            return True
        if breaker.probing:
            return False
        return now >= breaker.opened_at + self.breaker_cooldown_s

    def renew(self, job_id: str, owner: str) -> None:
        """Extend a live lease (in-memory only: leases never survive a
        restart, so renewals have no recovery value worth an fsync)."""
        with self._lock:
            job = self._get(job_id)
            self._check_owner(job, owner, "renew")
            job.lease_expires_at = self.clock() + self.lease_s

    def release(self, job_id: str, owner: str) -> None:
        """Voluntarily give a lease back (graceful shutdown path)."""
        with self._lock:
            job = self._get(job_id)
            self._check_owner(job, owner, "release")
            self._commit({"op": "release", "id": job_id})

    def recover_lease(self, job_id: str, owner: str) -> Job:
        """Give a lease back *without journaling* (storage-fault path).

        When a job's checkpoint write hit a storage fault, the journal may
        be on the same failing disk — requeuing must not require a durable
        append.  Releasing in memory only is crash-consistent: if the
        daemon dies before the disk recovers, startup replay finds the job
        still ``leased`` and reclaims it to ``pending`` anyway.  The
        attempt is refunded because the *disk* failed, not the job.
        """
        with self._lock:
            job = self._get(job_id)
            self._check_owner(job, owner, "recover")
            job.state = PENDING
            job.lease_owner = None
            job.lease_expires_at = None
            job.attempts = max(0, job.attempts - 1)
            self.counters.leases_recovered += 1
            self.recorder.record(
                "lease_recovered", job_id=job_id, trace_id=job.trace_id,
                owner=owner,
            )
            return job

    def expire_leases(self) -> list[Job]:
        """Reclaim jobs whose lease expired (hung worker); returns them."""
        with self._lock:
            now = self.clock()
            reclaimed = []
            for job in list(self._jobs.values()):
                if job.state != LEASED or job.lease_expires_at is None:
                    continue
                if now < job.lease_expires_at:
                    continue
                self.counters.leases_expired += 1
                self.recorder.record(
                    "lease_expired", job_id=job.job_id, trace_id=job.trace_id,
                    owner=job.lease_owner, attempts=job.attempts,
                )
                log_event(
                    logger, logging.WARNING, "lease expired",
                    job=job.job_id, owner=job.lease_owner,
                    attempts=job.attempts,
                )
                error = {
                    "error_type": "LeaseExpired",
                    "message": f"lease held by {job.lease_owner!r} expired",
                }
                if job.attempts >= self.max_attempts:
                    # Expiry-driven terminal failures get their own counter
                    # (lease_expiry_failed), never folded into `failed`.
                    self._terminal_fail(job, error, now, counter="lease_expiry_failed")
                else:
                    self._commit({
                        "op": "requeue", "id": job.job_id,
                        "error": error["message"],
                    })
                    self.counters.requeued += 1
                reclaimed.append(job)
            return reclaimed

    def _check_owner(self, job: Job, owner: str, op: str) -> None:
        if job.state != LEASED or job.lease_owner != owner:
            raise JobStateError(
                f"cannot {op} job {job.job_id}: state {job.state!r}, "
                f"lease owner {job.lease_owner!r} (caller {owner!r})"
            )

    # ------------------------------------------------------------ completion

    def complete(self, job_id: str, owner: str, summary: dict | None = None) -> Job:
        """Mark a leased job done (the full result lives in the store)."""
        with self._lock:
            job = self._get(job_id)
            self._check_owner(job, owner, "complete")
            now = self.clock()
            if job.submitted_at:
                self._observe_service_time(now - job.submitted_at)
            self._commit({
                "op": "done", "id": job_id, "summary": summary, "at": now,
            })
            self.counters.completed += 1
            self._breaker_success(job.fingerprint)
            self.recorder.record(
                "done", job_id=job_id, trace_id=job.trace_id, owner=owner,
                config=job.config_name, workload=job.workload,
                degraded=job.degraded,
            )
            log_event(
                logger, logging.INFO, "job done",
                job=job_id, config=job.config_name, workload=job.workload,
                degraded=job.degraded,
            )
            return job

    def complete_cached(
        self,
        job_id: str,
        *,
        summary: dict | None = None,
        provenance: dict | None = None,
    ) -> Job:
        """Complete a *pending* job straight from the result cache.

        No lease is involved: the daemon resolved the job against the
        content-addressed cache at submit time, so the job goes
        PENDING -> DONE via the distinct ``done-cached`` journal outcome,
        carrying the cache's provenance record.  The observed service time
        is *not* fed into the retry-after EMA — instant cache completions
        would drag the hint toward zero and make rejected callers hammer
        the queue.
        """
        with self._lock:
            job = self._get(job_id)
            _check_state(job, {PENDING}, "complete_cached")
            now = self.clock()
            self._commit({
                "op": "done-cached", "id": job_id, "summary": summary,
                "provenance": provenance, "at": now,
            })
            self.counters.completed += 1
            self.counters.done_cached += 1
            self.recorder.record(
                "done_cached", job_id=job_id, trace_id=job.trace_id,
                config=job.config_name, workload=job.workload,
                near=bool((provenance or {}).get("near_hit")),
            )
            log_event(
                logger, logging.INFO, "job completed from cache",
                job=job_id, config=job.config_name, workload=job.workload,
                near=bool((provenance or {}).get("near_hit")),
            )
            return job

    def fail(
        self,
        job_id: str,
        owner: str,
        *,
        error_type: str,
        message: str,
        crash: bool | None = None,
    ) -> Job:
        """Record a failed attempt; requeues or terminally fails the job.

        ``crash`` marks worker-process-death evidence for the circuit
        breaker; by default it is derived from ``error_type`` against
        :data:`CRASH_ERROR_TYPES` (the ``FailureRecord`` vocabulary).
        """
        with self._lock:
            job = self._get(job_id)
            self._check_owner(job, owner, "fail")
            now = self.clock()
            if crash is None:
                crash = error_type in CRASH_ERROR_TYPES
            if crash:
                self._breaker_failure(job.fingerprint, now)
            else:
                self._breaker_success(job.fingerprint)
            error = {"error_type": error_type, "message": message}
            if crash:
                self.recorder.record(
                    "worker_crash", job_id=job_id, trace_id=job.trace_id,
                    owner=owner, error_type=error_type, message=message,
                    attempts=job.attempts,
                )
            if job.cancel_requested:
                self._commit({"op": "cancel", "id": job_id, "at": now})
                self.counters.cancelled += 1
                self.recorder.record(
                    "cancelled", job_id=job_id, trace_id=job.trace_id,
                )
            elif job.attempts >= self.max_attempts or self._is_open(
                job.fingerprint, now
            ):
                self._terminal_fail(job, error, now)
            else:
                self._commit({
                    "op": "requeue", "id": job_id,
                    "error": f"{error_type}: {message}",
                })
                self.counters.requeued += 1
                self.recorder.record(
                    "requeue", job_id=job_id, trace_id=job.trace_id,
                    error_type=error_type, attempts=job.attempts,
                )
            return job

    def _terminal_fail(
        self, job: Job, error: dict, now: float, *, counter: str = "failed"
    ) -> None:
        error = dict(error, attempts=job.attempts,
                     attempt_errors=list(job.attempt_errors))
        self._commit({"op": "fail", "id": job.job_id, "error": error, "at": now})
        setattr(self.counters, counter, getattr(self.counters, counter) + 1)
        self.recorder.record(
            "failed", job_id=job.job_id, trace_id=job.trace_id,
            config=job.config_name, workload=job.workload,
            error_type=error.get("error_type"), attempts=job.attempts,
        )
        log_event(
            logger, logging.ERROR, "job failed terminally",
            job=job.job_id, config=job.config_name, workload=job.workload,
            error_type=error.get("error_type"), attempts=job.attempts,
        )

    def cancel(self, job_id: str) -> Job:
        """Cancel a pending job now, or flag a leased one for cancellation."""
        with self._lock:
            job = self._get(job_id)
            if job.state == PENDING:
                self._commit({"op": "cancel", "id": job_id, "at": self.clock()})
                self.counters.cancelled += 1
                self.recorder.record(
                    "cancelled", job_id=job_id, trace_id=job.trace_id,
                )
            elif job.state == LEASED:
                if not job.cancel_requested:
                    self._commit({"op": "cancel_requested", "id": job_id})
            else:
                raise JobStateError(
                    f"cannot cancel job {job_id} in terminal state "
                    f"{job.state!r}"
                )
            return job

    # ------------------------------------------------------ circuit breaker

    def _breaker_failure(self, fingerprint: str, now: float) -> None:
        breaker = self._breakers.setdefault(fingerprint, _Breaker())
        breaker.failures += 1
        breaker.probing = False
        if breaker.failures >= self.breaker_threshold or breaker.opened_at:
            breaker.opened_at = now  # (re-)open: cooldown restarts
            self.recorder.record(
                "breaker_open", fingerprint=fingerprint[:12],
                failures=breaker.failures,
            )
            log_event(
                logger, logging.WARNING, "circuit opened",
                fingerprint=fingerprint[:12], failures=breaker.failures,
            )
        self.journal.append({
            "op": "breaker", "fingerprint": fingerprint, **breaker.to_dict(),
        })

    def _breaker_success(self, fingerprint: str) -> None:
        breaker = self._breakers.get(fingerprint)
        if breaker is None:
            return
        was_open = breaker.opened_at is not None
        self._breakers.pop(fingerprint, None)
        self.journal.append({
            "op": "breaker", "fingerprint": fingerprint,
            "failures": 0, "opened_at": None, "probing": False,
        })
        if was_open:
            self.recorder.record(
                "breaker_close", fingerprint=fingerprint[:12],
            )
            log_event(
                logger, logging.INFO, "circuit closed by successful probe",
                fingerprint=fingerprint[:12],
            )

    def _is_open(self, fingerprint: str, now: float) -> bool:
        breaker = self._breakers.get(fingerprint)
        return (
            breaker is not None
            and breaker.opened_at is not None
            and now < breaker.opened_at + self.breaker_cooldown_s
        )

    # ------------------------------------------------------------- queries

    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(f"no job {job_id!r}")
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            return self._get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def depth(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.active)

    def idle(self) -> bool:
        with self._lock:
            return not any(j.active for j in self._jobs.values())

    def _observe_service_time(self, seconds: float) -> None:
        self._mean_service_s += 0.2 * (seconds - self._mean_service_s)

    def stats(self) -> dict:
        """Plain-data queue statistics (the ``/stats`` endpoint's core)."""
        with self._lock:
            now = self.clock()
            by_state: dict[str, int] = {
                s: 0 for s in (PENDING, LEASED, DONE, FAILED, CANCELLED)
            }
            for job in self._jobs.values():
                by_state[job.state] += 1
            breaker_states = {"closed": 0, "open": 0, "half_open": 0}
            for breaker in self._breakers.values():
                if breaker.opened_at is None:
                    breaker_states["closed"] += 1
                elif now < breaker.opened_at + self.breaker_cooldown_s:
                    breaker_states["open"] += 1
                else:
                    breaker_states["half_open"] += 1
            c = self.counters
            terminal = c.completed + c.failed + c.lease_expiry_failed
            error_rate = (
                (c.failed + c.lease_expiry_failed) / terminal if terminal else 0.0
            )
            return {
                "depth": by_state[PENDING] + by_state[LEASED],
                "max_depth": self.max_depth,
                "states": by_state,
                "counters": asdict(c),
                "error_rate": round(error_rate, 6),
                "breaker_states": breaker_states,
                "mean_service_s": round(self._mean_service_s, 3),
                "breakers": {
                    fp[:12]: breaker.to_dict()
                    for fp, breaker in self._breakers.items()
                },
                "journal": {
                    "appends": self.journal.appends,
                    "compactions": self.journal.rewrites,
                },
                "journal_replay": self.replay_stats.to_dict(),
            }

    # ------------------------------------------------------------ iteration

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def __iter__(self) -> Iterable[Job]:
        return iter(self.jobs())
