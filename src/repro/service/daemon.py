"""The long-lived campaign service: executors, housekeeping, lifecycle.

:class:`CampaignService` glues the durable queue (:mod:`repro.service.queue`)
to the existing execution stack (:mod:`repro.runner`):

* **Executor threads** lease jobs, run them through a per-thread runner
  bound to one shared :class:`~repro.runner.store.ResultStore` (opened with
  ``resume=True``, so a job re-run after a crash is a checkpoint hit and
  its payload is byte-identical to the first run), then journal the
  outcome.  Two isolation modes:

  - ``thread`` (default): an in-process
    :class:`~repro.runner.runner.ExperimentRunner`; the simulator's
    per-instruction hook renews the lease and honours cancellation.
  - ``process``: a per-thread single-worker
    :class:`~repro.runner.fleet.FleetRunner`, buying crash/OOM containment
    and hard timeouts; worker-death evidence
    (``WorkerCrashError``/``WorkerOOMError``) feeds the queue's circuit
    breaker.  While an executor is blocked in the fleet, the housekeeping
    thread renews its lease — hang protection is the fleet's hard kill.

* A **housekeeping thread** expires stale leases, publishes queue gauges
  to the service registry and (in process mode) renews in-flight leases.

* **Graceful shutdown** (:meth:`stop`): executors stop leasing, the
  in-flight jobs finish or are released back to ``pending``, the journal
  is compacted and closed.  Ungraceful death needs no handling at all —
  that is the journal's job: on the next start, replay reclaims every
  leased job and the store serves everything already completed.

* **Disk-fault safe mode** — storage-fault evidence (ENOSPC/EIO/EDQUOT/
  EROFS, see :func:`repro.ioutil.is_storage_fault`) from any durable write
  flips the service into safe mode: submissions are refused with
  :class:`~repro.errors.SafeModeActive` (HTTP 503 + ``Retry-After``), the
  affected job's lease is recovered *without journaling* (the journal's
  disk is the suspect), and housekeeping probes the filesystem with a real
  atomic write until it heals, then exits safe mode with a durable journal
  record.  No acknowledged job is ever lost to safe mode: acks only ever
  happen after durable writes succeeded.

Exactly-once contract: a run's checkpoint (``store.put``) lands *before*
its ``done`` journal record.  A crash between the two re-runs the job, but
the re-run is a store hit returning the identical payload — so an
acknowledged job completes exactly once as observed by any client, and its
result bytes never depend on how many crashes it survived.

Observability (see OBSERVABILITY.md, "Operating the service"):

* **Metrics** — the service records into :attr:`CampaignService.registry`:
  the *global* obs registry when one is active, otherwise a private
  always-on :class:`~repro.obs.registry.MetricsRegistry`.  Service-side
  events are per-*job* (a handful per second at most), so they are exempt
  from the per-instruction zero-overhead contract — the global
  ``NULL_REGISTRY`` stays empty either way, which
  ``tests/test_obs_overhead.py`` asserts.  :meth:`telemetry_snapshot`
  feeds the daemon's ``GET /metrics`` Prometheus exposition.
* **SLO latency accounting** — per-job phase durations (queue-wait,
  lease-to-start, run, result-write) land in quantile-capable histograms
  named ``job.<phase>_seconds``; :meth:`service_stats` summarises them as
  p50/p95/p99 for ``/api/v1/stats``.  Run latency covers *successful*
  runs; failures are visible through ``error_rate`` instead.
* **Tracing** — when a global tracer is active, every job emits lifecycle
  spans: ``job:submit`` (instant) → ``job:queue-wait`` (a retroactive span
  covering submit→lease) → ``job:run`` → ``job:result-write`` →
  ``job:done`` (instant), all tagged with the job's ``trace_id`` so one
  request is followable HTTP → queue → worker in a single Perfetto view.
* **Flight recorder** — the queue records operational events into the
  shared ring; :meth:`dump_flight_recorder` writes it to
  ``<flightrec_dir>/flightrec-<ts>.jsonl`` on worker-crash evidence (and
  is the hook the CLI wires to ``SIGQUIT`` and daemon crash paths).
"""

from __future__ import annotations

import logging
import threading
import time
from pathlib import Path
from typing import Callable

from .. import __version__, obs
from ..errors import ReproError, RunFailure, SafeModeActive
from ..ioutil import atomic_write_text, dir_fsync_failures, is_storage_fault
from ..obs import (
    MetricsRegistry,
    NULL_FLIGHT_RECORDER,
    FlightRecorder,
    current_tid,
    get_logger,
    log_event,
)
from ..runner import (
    ExperimentRunner,
    FleetRunner,
    ResultStore,
    config_fingerprint,
)
from ..plugins.workloads import is_mix, mix_names, workload_fingerprint
from ..runner.faultinject import WORKER_KINDS, FaultInjector
from ..sim.serialization import config_from_dict, config_to_dict, result_to_dict
from .journal import Journal
from .queue import CRASH_ERROR_TYPES, DONE, PENDING, Job, JobQueue

logger = get_logger("service")

#: Retired instructions between lease-renewal/cancellation checks in the
#: in-process executor's instruction hook.
RENEW_CHECK_INTERVAL = 8192

#: Bucket upper bounds (seconds) for the per-job SLO phase histograms:
#: sub-millisecond result writes up to multi-minute runs.
SLO_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: The SLO phases and their registry histogram names.
SLO_PHASES: dict[str, str] = {
    "queue_wait": "job.queue_wait_seconds",
    "lease_to_start": "job.lease_to_start_seconds",
    "run": "job.run_seconds",
    "result_write": "job.result_write_seconds",
}


class _JobCancelled(ReproError):
    """Internal: a leased job's cancellation flag was honoured mid-run."""


class _ExecutorHook:
    """Per-instruction hook: renew the lease, honour cancellation."""

    def __init__(self, service: "CampaignService", job: Job, owner: str) -> None:
        self._service = service
        self._job_id = job.job_id
        self._owner = owner
        self._countdown = RENEW_CHECK_INTERVAL

    def __call__(self, _retired: int) -> None:
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = RENEW_CHECK_INTERVAL
        queue = self._service.queue
        job = queue.get(self._job_id)
        if job.cancel_requested:
            raise _JobCancelled(f"job {self._job_id} cancelled mid-run")
        queue.renew(self._job_id, self._owner)


class CampaignService:
    """The serving loop around a :class:`JobQueue` and a result store.

    Args:
        queue: the durable queue (already recovered via journal replay).
        store: shared result store; must be constructed with
            ``resume=True`` so post-crash re-runs are checkpoint hits.
        workers: executor threads.
        isolation: ``"thread"`` (in-process runs) or ``"process"``
            (per-job worker subprocesses via a single-worker fleet).
        timeout_s / retries / max_rss_mb: forwarded to each executor's
            runner (``max_rss_mb`` needs process isolation).
        poll_s: idle executor sleep between lease attempts.
        recorder: the flight recorder shared with the queue (the no-op
            one unless :func:`build_service` wired a real ring).
        flightrec_dir: where :meth:`dump_flight_recorder` writes dumps.
        cache: optional content-addressed result cache
            (:class:`repro.cache.ResultCache`).  Consulted at *submit*
            time: an exact hit completes the job immediately via the
            ``done-cached`` journal outcome (no lease, no simulation)
            after first copying the result into the store, so
            ``result_payload`` stays byte-identical to a real run.
        cache_near: serve near hits (lower-``n_instrs`` / neighboring
            swept parameter) at submit time.  Off by default — near
            results are estimates and only ever served with explicit
            ``near_hit`` provenance.  Executor runners always consult
            the cache with near *disabled*: a near hit must be journaled
            with its provenance, which only the submit path does.
    """

    def __init__(
        self,
        queue: JobQueue,
        store: ResultStore,
        *,
        workers: int = 1,
        isolation: str = "thread",
        timeout_s: float | None = None,
        retries: int = 0,
        max_rss_mb: float | None = None,
        poll_s: float = 0.1,
        safe_mode_probe_s: float = 5.0,
        runner_factory: Callable[[], ExperimentRunner] | None = None,
        recorder=None,
        flightrec_dir: str | Path | None = None,
        cache=None,
        cache_near: bool = False,
    ) -> None:
        if isolation not in ("thread", "process"):
            raise ValueError(f"unknown isolation {isolation!r}")
        if max_rss_mb is not None and isolation != "process":
            raise ValueError("max_rss_mb requires isolation='process'")
        self.queue = queue
        self.store = store
        self.workers = max(1, workers)
        self.isolation = isolation
        self.timeout_s = timeout_s
        self.retries = retries
        self.max_rss_mb = max_rss_mb
        self.poll_s = poll_s
        #: Minimum seconds between disk-recovery probes while in safe mode.
        self.safe_mode_probe_s = safe_mode_probe_s
        self.recorder = recorder if recorder is not None else NULL_FLIGHT_RECORDER
        self.flightrec_dir = Path(flightrec_dir) if flightrec_dir else None
        self.cache = cache
        self.cache_near = bool(cache_near)
        self._runner_factory = runner_factory or self._default_runner
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._inflight: dict[str, str] = {}   # thread name -> job id
        self._inflight_lock = threading.Lock()
        self.started_at: float | None = None
        # Disk-fault safe mode: set on ENOSPC/EIO evidence from any durable
        # write, cleared by a successful housekeeping probe.  While set,
        # submissions are refused with SafeModeActive (HTTP 503).
        self._safe_mode_lock = threading.Lock()
        self._safe_mode_reason: str | None = None
        self._safe_mode_since: float | None = None
        self._safe_mode_last_probe: float | None = None
        self.safe_mode_entries = 0
        #: Pending queue-wait span anchors: job id -> submit ts (µs on the
        #: active tracer's timeline), consumed at lease time.
        self._marks: dict[str, float] = {}
        self._marks_lock = threading.Lock()
        #: The service's metrics home.  When global obs is enabled (e.g.
        #: ``serve --trace-out/--metrics-out``) the service *adopts* that
        #: registry and detaches it from the global slot: service-level
        #: accounting lands where the operator asked for it, while job
        #: runs execute uninstrumented — results and checkpoints stay
        #: byte-identical to a serial run no matter how the daemon itself
        #: is observed.  Otherwise a private always-on registry that only
        #: ``/metrics`` ever reads.
        active = obs.metrics()
        if active.enabled:
            self.registry: MetricsRegistry = active
            obs.set_registry(None)
        else:
            self.registry = MetricsRegistry()
        self._slo = {
            phase: self.registry.histogram(name, SLO_LATENCY_BUCKETS)
            for phase, name in SLO_PHASES.items()
        }
        self.registry.register_provider("service", self.queue.stats)
        if self.cache is not None:
            self.registry.register_provider("cache", self.cache.stats_dict)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Spawn the executor and housekeeping threads."""
        if self._threads:
            raise RuntimeError("service already started")
        self._stop.clear()
        self.started_at = time.time()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._executor_loop, name=f"svc-exec-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        keeper = threading.Thread(
            target=self._housekeeping_loop, name="svc-keeper", daemon=True
        )
        keeper.start()
        self._threads.append(keeper)
        log_event(
            logger, logging.INFO, "service started",
            workers=self.workers, isolation=self.isolation,
            queue_depth=self.queue.depth(),
        )

    def stop(self, *, timeout: float | None = None) -> None:
        """Graceful shutdown: drain executors, compact and close the journal.

        In-flight jobs finish (their results are checkpointed and
        journaled); nothing new is leased.  Safe to call more than once.
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self.queue.compact()
        self.queue.journal.close()
        log_event(
            logger, logging.INFO, "service stopped",
            **{k: v for k, v in self.queue.stats()["states"].items()},
        )

    def wait_idle(self, timeout: float | None = None, poll_s: float = 0.05) -> bool:
        """Block until no job is pending or leased (testing/drain helper)."""
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        while not self.queue.idle():
            if deadline is not None and _time.monotonic() > deadline:
                return False
            _time.sleep(poll_s)
        return True

    # ------------------------------------------------------------ admission

    def submit_config(
        self,
        config_payload: dict,
        workload: str,
        n_instrs: int,
        *,
        priority: int | str = "normal",
        submitter: str = "anonymous",
        trace_id: str = "",
        inject_fault: str | None = None,
    ) -> tuple[Job, bool]:
        """Validate and admit one submission (the HTTP layer's entry point).

        The configuration is round-tripped through the canonical serializer
        and eagerly validated, so a nonsense machine is rejected at the
        API boundary (:class:`~repro.errors.ConfigError`), never leased.
        ``trace_id`` is the request's correlation id; it is journaled with
        the job and tagged onto every downstream span and flight event.

        ``inject_fault`` (a :meth:`FaultInjector.from_spec` string) arms a
        deterministic fault for this job's runs — the chaos-testing hook.
        It is validated *here*, at admission: a malformed spec is a 400,
        and the process-level kinds (``worker-crash``/``worker-oom``/
        ``worker-hang``) are rejected outright under thread isolation,
        where they would take down the daemon itself instead of a
        disposable worker.
        """
        with self._safe_mode_lock:
            safe_reason = self._safe_mode_reason
        if safe_reason is not None:
            raise SafeModeActive(
                f"service is in disk-fault safe mode ({safe_reason}); "
                f"submissions are suspended until storage recovers",
                retry_after_s=max(1.0, self.safe_mode_probe_s),
                reason=safe_reason,
            )
        if inject_fault:
            injector = FaultInjector.from_spec(inject_fault)  # ValueError -> 400
            if injector.kind in WORKER_KINDS and self.isolation != "process":
                raise ValueError(
                    f"fault kind {injector.kind!r} kills the hosting process "
                    f"and is only admissible under process isolation; this "
                    f"daemon runs --isolation {self.isolation}"
                )
            if is_mix(workload):
                raise ValueError(
                    "fault injection is not supported for multi-programmed "
                    "mix jobs"
                )
        if is_mix(workload) and not mix_names(workload):
            raise ValueError(f"mix reference {workload!r} has no members")
        config = config_from_dict(config_payload)
        config.validate()
        job, deduped = self.queue.submit(
            config_to_dict(config),
            workload,
            int(n_instrs),
            fingerprint=config_fingerprint(config),
            config_name=config.name,
            priority=priority,
            submitter=submitter,
            trace_id=trace_id,
            inject_fault=inject_fault or None,
            workload_fingerprint=workload_fingerprint(workload),
        )
        tracer = obs.tracer()
        if tracer is not None:
            args = {
                "job_id": job.job_id, "trace_id": job.trace_id,
                "config": job.config_name, "workload": job.workload,
            }
            tracer.instant(
                "job:dedup" if deduped else "job:submit",
                "service", args, tid=current_tid(),
            )
            if not deduped:
                with self._marks_lock:
                    self._marks[job.job_id] = tracer.now_us()
        if not deduped and self.cache is not None and job.state == PENDING:
            # The queue installs a journal-round-tripped copy of the job;
            # completion mutates that copy, so return it, not the stale
            # pre-commit instance.
            job = self._complete_from_cache(job, config) or job
        return job, deduped

    def _complete_from_cache(self, job: Job, config) -> Job | None:
        """Try to complete a freshly admitted job straight from the cache.

        Exact hit: the result is first copied into the store (so
        ``result_payload`` serves it byte-identically, and the
        exactly-once contract keeps its checkpoint-before-journal order),
        then the job is journaled ``done-cached``.  Near hit (only when
        ``cache_near``): journaled ``done-cached`` with the near
        provenance; the result is served from the cache's *source* entry
        at read time, never written to the store — a neighbouring point's
        estimate must not masquerade as this point's checkpoint.

        Any failure leaves the job pending: it simply runs for real.
        Storage-fault evidence flips safe mode like every other durable
        write, but never loses the job.
        """
        try:
            hit = self.cache.lookup(
                config, job.workload, job.n_instrs, near=self.cache_near
            )
        except OSError as exc:
            log_event(
                logger, logging.WARNING, "cache lookup failed",
                job=job.job_id, error=repr(exc),
            )
            return None
        if hit is None:
            return None
        result = hit.result
        summary = {
            "ipc": result.ipc,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "avg_load_latency": result.avg_load_latency,
            "degraded": job.degraded,
            "cached": True,
        }
        try:
            if not hit.near:
                # Checkpoint before the done-cached journal record: a crash
                # between the two re-runs the job as a store hit, still
                # byte-identical (the exactly-once contract, cache edition).
                self.store.put(config, job.workload, job.n_instrs, result)
            return self.queue.complete_cached(
                job.job_id, summary=summary, provenance=dict(hit.provenance),
            )
        except OSError as exc:
            if is_storage_fault(exc):
                self.enter_safe_mode(f"{type(exc).__name__}: {exc}")
                return None
            log_event(
                logger, logging.WARNING, "cache completion failed",
                job=job.job_id, error=repr(exc),
            )
        except ReproError as exc:
            # The job moved under us (e.g. cancelled between submit and
            # here); it is no longer ours to complete.
            log_event(
                logger, logging.WARNING, "cache completion rejected",
                job=job.job_id, error=repr(exc),
            )
        return None

    def result_payload(self, job: Job) -> dict | None:
        """The stored :class:`RunResult` for a done job, serialized.

        Near-cached jobs have no store checkpoint of their own: their
        payload is read from the cache's *source* entry and stamped with
        the journaled near provenance (``telemetry.cache``), so a client
        can always tell an estimate from a measurement.
        """
        if job.state != DONE:
            return None
        provenance = job.cache_provenance or {}
        if job.cached and provenance.get("near_hit"):
            if self.cache is None:
                return None
            source_key = provenance.get("source_key") or []
            result = self.cache.get_by_key(*source_key)
            if result is None:
                return None
            payload = result_to_dict(result)
            payload["telemetry"] = dict(
                payload.get("telemetry") or {}, cache=dict(provenance)
            )
            return payload
        config = config_from_dict(job.config)
        result = self.store.get(config, job.workload, job.n_instrs)
        return result_to_dict(result) if result is not None else None

    # ------------------------------------------------------------ executors

    def _default_runner(self) -> ExperimentRunner:
        # Executors get the cache with near hits *disabled* (the runner
        # default): a near result completed by an executor would be a done
        # job with no journaled provenance.  Near serving happens only at
        # submit time, through complete_cached.
        if self.isolation == "process":
            return FleetRunner(
                self.store,
                jobs=1,
                timeout_s=self.timeout_s,
                retries=self.retries,
                max_rss_mb=self.max_rss_mb,
                cache=self.cache,
            )
        return ExperimentRunner(
            self.store, timeout_s=self.timeout_s, retries=self.retries,
            cache=self.cache,
        )

    def _executor_loop(self) -> None:
        owner = threading.current_thread().name
        runner = self._runner_factory()
        while not self._stop.is_set():
            job = self.queue.lease(owner)
            if job is None:
                self._stop.wait(self.poll_s)
                continue
            leased_pc = time.perf_counter()
            self._observe_lease(job)
            with self._inflight_lock:
                self._inflight[owner] = job.job_id
            try:
                self._run_job(runner, job, owner, leased_pc)
            finally:
                with self._inflight_lock:
                    self._inflight.pop(owner, None)

    def _observe_lease(self, job: Job) -> None:
        """Account the queue-wait phase and close its trace span."""
        now = self.queue.clock()
        if job.submitted_at:
            self._slo["queue_wait"].record(max(0.0, now - job.submitted_at))
        tracer = obs.tracer()
        if tracer is None:
            return
        with self._marks_lock:
            mark = self._marks.pop(job.job_id, None)
        args = {"job_id": job.job_id, "trace_id": job.trace_id}
        if mark is not None:
            end = tracer.now_us()
            tracer.complete(
                "job:queue-wait", mark, end - mark, "service", args,
                tid=current_tid(),
            )
        else:
            # No submit mark on this tracer's timeline (a job recovered
            # from the journal, or submitted before tracing started).
            tracer.instant("job:leased", "service", args, tid=current_tid())

    def _run_job(
        self,
        runner: ExperimentRunner,
        job: Job,
        owner: str,
        leased_pc: float | None = None,
    ) -> None:
        config = config_from_dict(job.config)
        if self.isolation == "thread":
            runner.instruction_hook = _ExecutorHook(self, job, owner)
        if isinstance(runner, FleetRunner):
            # Workers tag every span they ship back with the job identity,
            # so the merged trace reads end-to-end by trace_id.
            runner.trace_args = {
                "job_id": job.job_id, "trace_id": job.trace_id,
            }
        span_args = {
            "job_id": job.job_id, "trace_id": job.trace_id,
            "config": job.config_name, "workload": job.workload,
            "n_instrs": job.n_instrs,
        }
        restore_factory = None
        if job.inject_fault:
            # Per-job fault arming (validated at admission; journal replay
            # may still surface a spec this daemon's isolation refuses, so
            # re-check rather than crash).
            try:
                injector = FaultInjector.from_spec(job.inject_fault)
                if injector.kind in WORKER_KINDS and not isinstance(
                    runner, FleetRunner
                ):
                    raise ValueError(
                        f"fault kind {injector.kind!r} requires process "
                        f"isolation"
                    )
            except ValueError as exc:
                self.queue.fail(
                    job.job_id, owner,
                    error_type="ConfigError", message=str(exc), crash=False,
                )
                return
            if isinstance(runner, FleetRunner):
                runner.injectors = [injector]
            else:
                restore_factory = runner.simulator_factory
                runner.simulator_factory = injector.simulator_factory
        start_pc = time.perf_counter()
        if leased_pc is not None:
            self._slo["lease_to_start"].record(max(0.0, start_pc - leased_pc))
        try:
            with obs.span("job:run", "service", span_args, tid=current_tid()):
                result = runner.run(config, job.workload, job.n_instrs)
        except _JobCancelled:
            self.queue.fail(
                job.job_id, owner,
                error_type="Cancelled", message="cancelled mid-run",
                crash=False,
            )
            return
        except RunFailure:
            record = runner.failures[-1] if runner.failures else None
            error_type = record.error_type if record else "RunFailure"
            self.queue.fail(
                job.job_id, owner,
                error_type=error_type,
                message=record.message if record else "run failed",
            )
            if error_type in CRASH_ERROR_TYPES:
                self.dump_flight_recorder("worker-crash")
            return
        except Exception as exc:  # containment: an executor never dies
            if is_storage_fault(exc):
                # The checkpoint write (or the store beneath it) hit disk
                # trouble.  Failing the job would journal — onto the same
                # failing disk — so instead: safe mode, non-journaled lease
                # recovery, and the job re-runs after the disk heals.
                self._contain_storage_fault(job, owner, exc)
                return
            log_event(
                logger, logging.ERROR, "executor error",
                job=job.job_id, error=repr(exc),
            )
            self.queue.fail(
                job.job_id, owner,
                error_type=type(exc).__name__, message=str(exc), crash=False,
            )
            return
        finally:
            if job.inject_fault:
                if isinstance(runner, FleetRunner):
                    runner.injectors = []
                elif restore_factory is not None:
                    runner.simulator_factory = restore_factory
        self._slo["run"].record(time.perf_counter() - start_pc)
        summary = {
            "ipc": result.ipc,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "avg_load_latency": result.avg_load_latency,
            "degraded": job.degraded,
        }
        write_pc = time.perf_counter()
        try:
            with obs.span(
                "job:result-write", "service",
                {"job_id": job.job_id, "trace_id": job.trace_id},
                tid=current_tid(),
            ):
                self.queue.complete(job.job_id, owner, summary)
        except ReproError as exc:
            # Lease lost mid-run (expired and reclaimed, or cancelled):
            # the result is checkpointed either way, so a re-run is a hit.
            log_event(
                logger, logging.WARNING, "completion rejected",
                job=job.job_id, error=repr(exc),
            )
            return
        except OSError as exc:
            # The `done` journal append hit the disk.  The checkpoint is
            # already on disk, so after recovery the re-run is a store hit
            # and the client still observes exactly-once.
            if is_storage_fault(exc):
                self._contain_storage_fault(job, owner, exc)
                return
            raise
        self._slo["result_write"].record(time.perf_counter() - write_pc)
        obs.instant(
            "job:done", "service",
            {"job_id": job.job_id, "trace_id": job.trace_id},
            tid=current_tid(),
        )

    # ---------------------------------------------------------- housekeeping

    def _housekeeping_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.queue.expire_leases()
                if self.isolation == "process":
                    self._renew_inflight()
                self._maybe_probe_safe_mode()
                self._publish_gauges()
            except Exception as exc:  # housekeeping must never die
                log_event(
                    logger, logging.ERROR, "housekeeping error",
                    error=repr(exc),
                )
            self._stop.wait(max(self.poll_s, 0.05))

    def _renew_inflight(self) -> None:
        """Keep leases alive while executors block inside the fleet.

        Hang protection is not lost: the fleet's hard deadline kills a
        stuck worker, the executor returns, and renewal stops with it.
        """
        with self._inflight_lock:
            inflight = dict(self._inflight)
        for owner, job_id in inflight.items():
            try:
                self.queue.renew(job_id, owner)
            except ReproError:
                pass  # job finished or was reclaimed between snapshots

    # ------------------------------------------------------------- safe mode

    @property
    def safe_mode(self) -> bool:
        """True while the service is refusing writes over disk faults."""
        return self._safe_mode_reason is not None

    def safe_mode_status(self) -> dict:
        with self._safe_mode_lock:
            return {
                "active": self._safe_mode_reason is not None,
                "reason": self._safe_mode_reason,
                "since": self._safe_mode_since,
                "entries": self.safe_mode_entries,
            }

    def enter_safe_mode(self, reason: str) -> None:
        """Stop admitting writes: the disk under the journal/store is failing.

        Idempotent.  The entry is journaled *best-effort* (the journal may
        be the very thing that failed), recorded in the flight ring, and
        surfaced through the ``service.safe_mode`` gauge, ``/healthz``, and
        every refused submission's 503.
        """
        with self._safe_mode_lock:
            if self._safe_mode_reason is not None:
                return
            self._safe_mode_reason = reason
            self._safe_mode_since = time.time()
            self._safe_mode_last_probe = None
            self.safe_mode_entries += 1
        self.recorder.record("safe_mode_enter", reason=reason)
        log_event(
            logger, logging.ERROR,
            "entering safe mode: storage fault evidence; writes suspended",
            reason=reason,
        )
        self.dump_flight_recorder("safe-mode")
        try:
            self.queue.journal.append({
                "op": "safe_mode", "active": True, "reason": reason,
                "at": time.time(),
            })
        except (OSError, ReproError):
            pass  # expected: the journal's disk is likely the failing one

    def exit_safe_mode(self) -> None:
        """Resume admitting writes (called after a probe write succeeded).

        The exit record *must* journal durably — if it cannot, the disk is
        still sick and the service stays in safe mode.
        """
        with self._safe_mode_lock:
            if self._safe_mode_reason is None:
                return
            reason = self._safe_mode_reason
            since = self._safe_mode_since
            self._safe_mode_reason = None
            self._safe_mode_since = None
        try:
            self.queue.journal.append({
                "op": "safe_mode", "active": False, "at": time.time(),
            })
        except (OSError, ReproError) as exc:
            with self._safe_mode_lock:  # still sick: stay in safe mode
                self._safe_mode_reason = reason
                self._safe_mode_since = since
            log_event(
                logger, logging.WARNING,
                "safe-mode exit aborted: journal append still failing",
                error=repr(exc),
            )
            return
        duration = round(time.time() - since, 3) if since else None
        self.recorder.record("safe_mode_exit", reason=reason, duration_s=duration)
        log_event(
            logger, logging.INFO, "exiting safe mode: storage recovered",
            reason=reason, duration_s=duration,
        )

    def _maybe_probe_safe_mode(self) -> None:
        """While in safe mode, periodically test the disk with a real write."""
        if not self.safe_mode:
            return
        now = time.monotonic()
        with self._safe_mode_lock:
            last = self._safe_mode_last_probe
            if last is not None and now - last < self.safe_mode_probe_s:
                return
            self._safe_mode_last_probe = now
        probe = self.queue.journal.path.with_suffix(".probe")
        try:
            # The probe is the same durable atomic-write path real state
            # uses, on the same filesystem — a pass means journal appends
            # should succeed again.
            atomic_write_text(probe, "safe-mode probe\n")
        except OSError as exc:
            log_event(
                logger, logging.DEBUG, "safe-mode probe failed",
                error=repr(exc),
            )
            return
        self.exit_safe_mode()

    def _contain_storage_fault(self, job: Job, owner: str, exc: BaseException) -> None:
        """Containment for a storage fault raised while running ``job``.

        Enters safe mode and gives the lease back *without journaling*
        (see :meth:`JobQueue.recover_lease`) — the job stays pending and
        re-runs once the disk recovers, and any checkpoint that did land
        makes that re-run a byte-identical store hit.
        """
        log_event(
            logger, logging.ERROR, "storage fault while running job",
            job=job.job_id, error=repr(exc),
        )
        self.enter_safe_mode(f"{type(exc).__name__}: {exc}")
        try:
            self.queue.recover_lease(job.job_id, owner)
        except ReproError:
            pass  # lease already expired/reclaimed; replay covers the rest

    # ------------------------------------------------------------- telemetry

    def service_stats(self) -> dict:
        """Queue stats plus daemon identity and SLO latency quantiles
        (the ``/api/v1/stats`` payload)."""
        stats = self.queue.stats()
        stats["uptime_s"] = (
            round(time.time() - self.started_at, 3)
            if self.started_at is not None else 0.0
        )
        stats["version"] = __version__
        stats["safe_mode"] = self.safe_mode_status()
        stats["dir_fsync_failures"] = dir_fsync_failures()
        stats["latency"] = {
            phase: {
                "count": hist.count,
                "mean_s": round(hist.mean, 6),
                # Empty histograms have no quantiles: null, never 0.0 (and
                # never NaN, which is not valid JSON).
                "p50_s": None if hist.count == 0 else round(hist.quantile(0.50), 6),
                "p95_s": None if hist.count == 0 else round(hist.quantile(0.95), 6),
                "p99_s": None if hist.count == 0 else round(hist.quantile(0.99), 6),
            }
            for phase, hist in self._slo.items()
        }
        if self.cache is not None:
            stats["cache"] = self.cache.stats_dict()
        return stats

    def telemetry_snapshot(self) -> dict:
        """The service registry's snapshot (the ``GET /metrics`` source)."""
        return self.registry.snapshot()

    def dump_flight_recorder(self, reason: str) -> Path | None:
        """Write the flight-recorder ring to ``flightrec_dir`` (post-mortem).

        A no-op (returning ``None``) when no real recorder or directory is
        wired; dump failures are logged, never raised — a broken disk must
        not take the incident path down with it.
        """
        if not self.recorder.enabled or self.flightrec_dir is None:
            return None
        try:
            path = self.recorder.dump_to_dir(self.flightrec_dir, reason=reason)
        except OSError as exc:
            log_event(
                logger, logging.ERROR, "flight-recorder dump failed",
                reason=reason, error=repr(exc),
            )
            return None
        log_event(
            logger, logging.WARNING, "flight recorder dumped",
            path=str(path), reason=reason, events=len(self.recorder),
        )
        return path

    def _publish_gauges(self) -> None:
        registry = self.registry
        stats = self.queue.stats()
        registry.gauge("service.queue.depth").set(stats["depth"])
        registry.gauge("service.queue.leased").set(stats["states"]["leased"])
        counters = stats["counters"]
        for name in (
            "completed", "done_cached", "failed", "cancelled",
            "shed_degraded", "rejected_full", "rejected_quota",
            "rejected_breaker", "leases_expired", "lease_expiry_failed",
        ):
            registry.gauge(f"service.{name}").set(counters[name])
        if self.cache is not None:
            cstats = self.cache.stats
            registry.gauge("cache.exact_hits").set(cstats.exact_hits)
            registry.gauge("cache.near_hits").set(cstats.near_hits)
            registry.gauge("cache.misses").set(cstats.misses)
            registry.gauge("cache.bytes").set(self.cache.bytes())
        registry.gauge("service.safe_mode").set(1 if self.safe_mode else 0)
        registry.gauge("service.safe_mode_entries").set(self.safe_mode_entries)
        registry.gauge("service.dir_fsync_failures").set(dir_fsync_failures())


def build_service(
    journal_path,
    checkpoint_dir,
    *,
    fsync: bool = True,
    queue_kwargs: dict | None = None,
    recorder: FlightRecorder | None = None,
    flightrec_dir: str | Path | None = None,
    **service_kwargs,
) -> CampaignService:
    """Convenience constructor: journal + recovered queue + resuming store.

    This is the one true recipe for standing the service up — the CLI and
    the tests both use it, so crash recovery is exercised the same way
    everywhere: replay the journal, reclaim dead leases, and open the
    store with ``resume=True`` so completed work is never re-simulated.

    One :class:`FlightRecorder` ring is created here (unless injected) and
    shared by the queue and the service, so queue-side events (admissions,
    lease churn) and service-side dumps see the same history; dumps land
    next to the journal unless ``flightrec_dir`` says otherwise.
    """
    journal = Journal(journal_path, fsync=fsync)
    if recorder is None:
        recorder = FlightRecorder()
    qkw = dict(queue_kwargs or {})
    qkw.setdefault("recorder", recorder)
    queue = JobQueue(journal, **qkw)
    store = ResultStore(checkpoint_dir, resume=True)
    if flightrec_dir is None:
        flightrec_dir = Path(journal_path).parent
    return CampaignService(
        queue, store,
        recorder=recorder, flightrec_dir=flightrec_dir,
        **service_kwargs,
    )
