"""The long-lived campaign service: executors, housekeeping, lifecycle.

:class:`CampaignService` glues the durable queue (:mod:`repro.service.queue`)
to the existing execution stack (:mod:`repro.runner`):

* **Executor threads** lease jobs, run them through a per-thread runner
  bound to one shared :class:`~repro.runner.store.ResultStore` (opened with
  ``resume=True``, so a job re-run after a crash is a checkpoint hit and
  its payload is byte-identical to the first run), then journal the
  outcome.  Two isolation modes:

  - ``thread`` (default): an in-process
    :class:`~repro.runner.runner.ExperimentRunner`; the simulator's
    per-instruction hook renews the lease and honours cancellation.
  - ``process``: a per-thread single-worker
    :class:`~repro.runner.fleet.FleetRunner`, buying crash/OOM containment
    and hard timeouts; worker-death evidence
    (``WorkerCrashError``/``WorkerOOMError``) feeds the queue's circuit
    breaker.  While an executor is blocked in the fleet, the housekeeping
    thread renews its lease — hang protection is the fleet's hard kill.

* A **housekeeping thread** expires stale leases, publishes queue gauges
  to the active :mod:`repro.obs` registry and (in process mode) renews
  in-flight leases.

* **Graceful shutdown** (:meth:`stop`): executors stop leasing, the
  in-flight jobs finish or are released back to ``pending``, the journal
  is compacted and closed.  Ungraceful death needs no handling at all —
  that is the journal's job: on the next start, replay reclaims every
  leased job and the store serves everything already completed.

Exactly-once contract: a run's checkpoint (``store.put``) lands *before*
its ``done`` journal record.  A crash between the two re-runs the job, but
the re-run is a store hit returning the identical payload — so an
acknowledged job completes exactly once as observed by any client, and its
result bytes never depend on how many crashes it survived.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable

from .. import obs
from ..errors import ReproError, RunFailure
from ..obs import get_logger, log_event
from ..runner import (
    ExperimentRunner,
    FleetRunner,
    ResultStore,
    config_fingerprint,
)
from ..sim.serialization import config_from_dict, config_to_dict, result_to_dict
from .journal import Journal
from .queue import DONE, Job, JobQueue

logger = get_logger("service")

#: Retired instructions between lease-renewal/cancellation checks in the
#: in-process executor's instruction hook.
RENEW_CHECK_INTERVAL = 8192


class _JobCancelled(ReproError):
    """Internal: a leased job's cancellation flag was honoured mid-run."""


class _ExecutorHook:
    """Per-instruction hook: renew the lease, honour cancellation."""

    def __init__(self, service: "CampaignService", job: Job, owner: str) -> None:
        self._service = service
        self._job_id = job.job_id
        self._owner = owner
        self._countdown = RENEW_CHECK_INTERVAL

    def __call__(self, _retired: int) -> None:
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = RENEW_CHECK_INTERVAL
        queue = self._service.queue
        job = queue.get(self._job_id)
        if job.cancel_requested:
            raise _JobCancelled(f"job {self._job_id} cancelled mid-run")
        queue.renew(self._job_id, self._owner)


class CampaignService:
    """The serving loop around a :class:`JobQueue` and a result store.

    Args:
        queue: the durable queue (already recovered via journal replay).
        store: shared result store; must be constructed with
            ``resume=True`` so post-crash re-runs are checkpoint hits.
        workers: executor threads.
        isolation: ``"thread"`` (in-process runs) or ``"process"``
            (per-job worker subprocesses via a single-worker fleet).
        timeout_s / retries / max_rss_mb: forwarded to each executor's
            runner (``max_rss_mb`` needs process isolation).
        poll_s: idle executor sleep between lease attempts.
    """

    def __init__(
        self,
        queue: JobQueue,
        store: ResultStore,
        *,
        workers: int = 1,
        isolation: str = "thread",
        timeout_s: float | None = None,
        retries: int = 0,
        max_rss_mb: float | None = None,
        poll_s: float = 0.1,
        runner_factory: Callable[[], ExperimentRunner] | None = None,
    ) -> None:
        if isolation not in ("thread", "process"):
            raise ValueError(f"unknown isolation {isolation!r}")
        if max_rss_mb is not None and isolation != "process":
            raise ValueError("max_rss_mb requires isolation='process'")
        self.queue = queue
        self.store = store
        self.workers = max(1, workers)
        self.isolation = isolation
        self.timeout_s = timeout_s
        self.retries = retries
        self.max_rss_mb = max_rss_mb
        self.poll_s = poll_s
        self._runner_factory = runner_factory or self._default_runner
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._inflight: dict[str, str] = {}   # thread name -> job id
        self._inflight_lock = threading.Lock()
        self._register_metrics()

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Spawn the executor and housekeeping threads."""
        if self._threads:
            raise RuntimeError("service already started")
        self._stop.clear()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._executor_loop, name=f"svc-exec-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        keeper = threading.Thread(
            target=self._housekeeping_loop, name="svc-keeper", daemon=True
        )
        keeper.start()
        self._threads.append(keeper)
        log_event(
            logger, logging.INFO, "service started",
            workers=self.workers, isolation=self.isolation,
            queue_depth=self.queue.depth(),
        )

    def stop(self, *, timeout: float | None = None) -> None:
        """Graceful shutdown: drain executors, compact and close the journal.

        In-flight jobs finish (their results are checkpointed and
        journaled); nothing new is leased.  Safe to call more than once.
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self.queue.compact()
        self.queue.journal.close()
        log_event(
            logger, logging.INFO, "service stopped",
            **{k: v for k, v in self.queue.stats()["states"].items()},
        )

    def wait_idle(self, timeout: float | None = None, poll_s: float = 0.05) -> bool:
        """Block until no job is pending or leased (testing/drain helper)."""
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        while not self.queue.idle():
            if deadline is not None and _time.monotonic() > deadline:
                return False
            _time.sleep(poll_s)
        return True

    # ------------------------------------------------------------ admission

    def submit_config(
        self,
        config_payload: dict,
        workload: str,
        n_instrs: int,
        *,
        priority: int | str = "normal",
        submitter: str = "anonymous",
    ) -> tuple[Job, bool]:
        """Validate and admit one submission (the HTTP layer's entry point).

        The configuration is round-tripped through the canonical serializer
        and eagerly validated, so a nonsense machine is rejected at the
        API boundary (:class:`~repro.errors.ConfigError`), never leased.
        """
        config = config_from_dict(config_payload)
        config.validate()
        return self.queue.submit(
            config_to_dict(config),
            workload,
            int(n_instrs),
            fingerprint=config_fingerprint(config),
            config_name=config.name,
            priority=priority,
            submitter=submitter,
        )

    def result_payload(self, job: Job) -> dict | None:
        """The stored :class:`RunResult` for a done job, serialized."""
        if job.state != DONE:
            return None
        config = config_from_dict(job.config)
        result = self.store.get(config, job.workload, job.n_instrs)
        return result_to_dict(result) if result is not None else None

    # ------------------------------------------------------------ executors

    def _default_runner(self) -> ExperimentRunner:
        if self.isolation == "process":
            return FleetRunner(
                self.store,
                jobs=1,
                timeout_s=self.timeout_s,
                retries=self.retries,
                max_rss_mb=self.max_rss_mb,
            )
        return ExperimentRunner(
            self.store, timeout_s=self.timeout_s, retries=self.retries
        )

    def _executor_loop(self) -> None:
        owner = threading.current_thread().name
        runner = self._runner_factory()
        while not self._stop.is_set():
            job = self.queue.lease(owner)
            if job is None:
                self._stop.wait(self.poll_s)
                continue
            with self._inflight_lock:
                self._inflight[owner] = job.job_id
            try:
                self._run_job(runner, job, owner)
            finally:
                with self._inflight_lock:
                    self._inflight.pop(owner, None)

    def _run_job(self, runner: ExperimentRunner, job: Job, owner: str) -> None:
        config = config_from_dict(job.config)
        if self.isolation == "thread":
            runner.instruction_hook = _ExecutorHook(self, job, owner)
        try:
            result = runner.run(config, job.workload, job.n_instrs)
        except _JobCancelled:
            self.queue.fail(
                job.job_id, owner,
                error_type="Cancelled", message="cancelled mid-run",
                crash=False,
            )
            return
        except RunFailure:
            record = runner.failures[-1] if runner.failures else None
            self.queue.fail(
                job.job_id, owner,
                error_type=record.error_type if record else "RunFailure",
                message=record.message if record else "run failed",
            )
            return
        except Exception as exc:  # containment: an executor never dies
            log_event(
                logger, logging.ERROR, "executor error",
                job=job.job_id, error=repr(exc),
            )
            self.queue.fail(
                job.job_id, owner,
                error_type=type(exc).__name__, message=str(exc), crash=False,
            )
            return
        summary = {
            "ipc": result.ipc,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "avg_load_latency": result.avg_load_latency,
            "degraded": job.degraded,
        }
        try:
            self.queue.complete(job.job_id, owner, summary)
        except ReproError as exc:
            # Lease lost mid-run (expired and reclaimed, or cancelled):
            # the result is checkpointed either way, so a re-run is a hit.
            log_event(
                logger, logging.WARNING, "completion rejected",
                job=job.job_id, error=repr(exc),
            )

    # ---------------------------------------------------------- housekeeping

    def _housekeeping_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.queue.expire_leases()
                if self.isolation == "process":
                    self._renew_inflight()
                self._publish_gauges()
            except Exception as exc:  # housekeeping must never die
                log_event(
                    logger, logging.ERROR, "housekeeping error",
                    error=repr(exc),
                )
            self._stop.wait(max(self.poll_s, 0.05))

    def _renew_inflight(self) -> None:
        """Keep leases alive while executors block inside the fleet.

        Hang protection is not lost: the fleet's hard deadline kills a
        stuck worker, the executor returns, and renewal stops with it.
        """
        with self._inflight_lock:
            inflight = dict(self._inflight)
        for owner, job_id in inflight.items():
            try:
                self.queue.renew(job_id, owner)
            except ReproError:
                pass  # job finished or was reclaimed between snapshots

    # ------------------------------------------------------------- metrics

    def _register_metrics(self) -> None:
        registry = obs.metrics()
        if registry.enabled:
            registry.register_provider("service", self.queue.stats)

    def _publish_gauges(self) -> None:
        registry = obs.metrics()
        if not registry.enabled:
            return
        stats = self.queue.stats()
        registry.gauge("service.queue.depth").set(stats["depth"])
        registry.gauge("service.queue.leased").set(stats["states"]["leased"])
        counters = stats["counters"]
        for name in (
            "completed", "failed", "cancelled", "shed_degraded",
            "rejected_full", "rejected_quota", "rejected_breaker",
            "leases_expired",
        ):
            registry.gauge(f"service.{name}").set(counters[name])


def build_service(
    journal_path,
    checkpoint_dir,
    *,
    fsync: bool = True,
    queue_kwargs: dict | None = None,
    **service_kwargs,
) -> CampaignService:
    """Convenience constructor: journal + recovered queue + resuming store.

    This is the one true recipe for standing the service up — the CLI and
    the tests both use it, so crash recovery is exercised the same way
    everywhere: replay the journal, reclaim dead leases, and open the
    store with ``resume=True`` so completed work is never re-simulated.
    """
    journal = Journal(journal_path, fsync=fsync)
    queue = JobQueue(journal, **(queue_kwargs or {}))
    store = ResultStore(checkpoint_dir, resume=True)
    return CampaignService(queue, store, **service_kwargs)
